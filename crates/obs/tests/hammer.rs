//! Concurrency pins: counter conservation under a many-thread hammer
//! (every increment lands exactly once), histogram bucket/count/sum
//! conservation, and span-journal drains that stay consistent while
//! writers keep appending.

use geoproof_obs::{journal, span, Registry, SpanKind};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const THREADS: usize = 8;
const OPS_PER_THREAD: u64 = 50_000;

#[test]
fn counters_conserve_every_increment() {
    geoproof_obs::set_enabled(true);
    let r = Arc::new(Registry::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let r = r.clone();
        handles.push(std::thread::spawn(move || {
            // Half the threads resolve the handle once (the documented
            // hot-path idiom); the rest re-look it up every time to
            // hammer the registry's read path too.
            if t % 2 == 0 {
                let c = r.counter("hammer_total");
                for _ in 0..OPS_PER_THREAD {
                    c.inc();
                }
            } else {
                for _ in 0..OPS_PER_THREAD {
                    r.counter("hammer_total").inc();
                }
            }
            r.gauge("hammer_depth").add(1);
        }));
    }
    for h in handles {
        h.join().expect("hammer thread");
    }
    let snap = r.snapshot();
    assert_eq!(
        snap.counter("hammer_total"),
        Some(THREADS as u64 * OPS_PER_THREAD),
        "increments lost or duplicated"
    );
    assert_eq!(snap.gauge("hammer_depth"), Some(THREADS as i64));
}

#[test]
fn histograms_conserve_under_concurrent_recording() {
    geoproof_obs::set_enabled(true);
    let r = Arc::new(Registry::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let r = r.clone();
        handles.push(std::thread::spawn(move || {
            let h = r.histogram("hammer_us");
            let mut local_sum = 0u64;
            let mut x = (t as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for _ in 0..OPS_PER_THREAD {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let v = x % 1_000_000;
                h.record(v);
                local_sum = local_sum.wrapping_add(v);
            }
            local_sum
        }));
    }
    let expected_sum: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("hammer thread"))
        .fold(0u64, u64::wrapping_add);
    let frozen = r.snapshot();
    let h = frozen.histogram("hammer_us").expect("registered");
    let expected_count = THREADS as u64 * OPS_PER_THREAD;
    let bucket_total: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
    assert_eq!(bucket_total, expected_count, "bucket counts leak");
    assert_eq!(h.count, expected_count);
    assert_eq!(h.sum, expected_sum, "sum drifted under concurrency");
    // Quantiles stay inside the recorded range.
    assert!(h.quantile(0.5) < 1_000_000 + 1_000_000 / 16);
}

#[test]
fn span_journal_drains_while_writers_append() {
    geoproof_obs::set_enabled(true);
    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for _ in 0..4 {
        let stop = stop.clone();
        writers.push(std::thread::spawn(move || {
            let mut spans = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let _outer = span("hammer_outer");
                let _inner = span("hammer_inner");
                spans += 2;
            }
            spans
        }));
    }
    // Drain concurrently: every drained batch must be internally
    // consistent — ordinals ascend, kinds parse, names resolve, and
    // inner spans point at a live parent in the same batch or earlier.
    for _ in 0..50 {
        let events = journal().drain();
        assert!(events.len() <= journal().capacity());
        for w in events.windows(2) {
            assert!(w[0].ordinal < w[1].ordinal, "ordinals must ascend");
        }
        for e in &events {
            assert!(e.id != 0, "published event with unset id");
            assert!(
                e.name == "hammer_outer" || e.name == "hammer_inner" || e.name == "?",
                "unexpected name {:?}",
                e.name
            );
            if e.kind == SpanKind::Enter && e.name == "hammer_inner" {
                assert!(e.parent != 0, "inner span lost its parent");
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    let written: u64 = writers.into_iter().map(|w| w.join().expect("writer")).sum();
    assert!(written > 0);
    // The journal saw (almost) every write: tickets are drawn per event;
    // drops only occur on a full-lap race, which this cadence can hit
    // but only rarely — the written counter itself is exact.
    assert!(journal().written() >= written);
}
