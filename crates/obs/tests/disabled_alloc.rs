//! The disabled-path allocation pin (its own integration binary so no
//! sibling test can flip the global enable flag): with recording off —
//! the default — counter increments, histogram records, and span
//! guards allocate **zero** bytes; and even with recording *on*, the
//! steady-state record paths stay allocation-free once handles exist.
//! Same counting-allocator harness as `geoproof-bench`'s
//! `segment_datapath` audit and the ledger's `append_alloc` pin.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATED: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            ALLOCATED.fetch_add(layout.size(), Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && new_size > layout.size() {
            ALLOCATED.fetch_add(new_size - layout.size(), Ordering::Relaxed);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocated_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATED.load(Ordering::Relaxed);
    f();
    ALLOCATED.load(Ordering::Relaxed) - before
}

// One sequential test: both phases toggle the process-global enable
// flag, so they must not run as parallel test threads.
#[test]
fn recording_allocates_zero_bytes_disabled_and_enabled() {
    // Phase 1 — disabled (the default). Resolve handles while
    // allocation is expected (registration allocates by design — once,
    // cold).
    let counter = geoproof_obs::counter("alloc_pin_total");
    let gauge = geoproof_obs::gauge("alloc_pin_depth");
    let hist = geoproof_obs::histogram("alloc_pin_us");

    assert!(!geoproof_obs::enabled(), "recording must default to off");
    let bytes = allocated_during(|| {
        for i in 0..10_000u64 {
            counter.inc();
            gauge.add(1);
            hist.record(i);
            let _span = geoproof_obs::span("alloc_pin");
        }
    });
    assert_eq!(bytes, 0, "disabled hot path allocated {bytes} bytes");
    assert_eq!(counter.get(), 0, "disabled counter must not move");
    assert_eq!(hist.count(), 0);

    // Phase 2 — enabled steady state.
    let counter = geoproof_obs::counter("alloc_warm_total");
    let hist = geoproof_obs::histogram("alloc_warm_us");
    geoproof_obs::set_enabled(true);
    // Warm up: first span interns its name and seeds the journal/clock
    // one-time cells — that is the documented cold cost.
    {
        let _warm = geoproof_obs::span("alloc_warm");
        hist.record(1);
        counter.inc();
    }
    let bytes = allocated_during(|| {
        for i in 0..10_000u64 {
            counter.inc();
            hist.record(i % 1_000_000);
            let _span = geoproof_obs::span("alloc_warm");
        }
    });
    geoproof_obs::set_enabled(false);
    assert_eq!(bytes, 0, "enabled steady-state allocated {bytes} bytes");
    assert_eq!(counter.get(), 10_001);
    assert_eq!(hist.count(), 10_001);
}
