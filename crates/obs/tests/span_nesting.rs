//! Span semantics in a quiet process (its own integration binary, so
//! no concurrent hammer can lap the global ring): parent chaining,
//! interned names on both enter and exit, monotonic timestamps, and
//! the disabled path drawing no ids and writing nothing.

use geoproof_obs::{journal, span, SpanKind};

#[test]
fn span_nesting_chains_parents_and_disabled_path_is_silent() {
    // Disabled: no ids drawn, nothing written.
    geoproof_obs::set_enabled(false);
    {
        let ghost = span("ghost");
        assert_eq!(ghost.id(), 0);
    }
    assert_eq!(journal().written(), 0, "disabled span reached the journal");

    geoproof_obs::set_enabled(true);
    let (outer_id, inner_id, sibling_id) = {
        let outer = span("nest_outer");
        let inner_id = {
            let inner = span("nest_inner");
            inner.id()
        };
        let sibling = span("nest_sibling");
        (outer.id(), inner_id, sibling.id())
    };

    let events = journal().drain();
    let find = |id: u64, kind: SpanKind| {
        events
            .iter()
            .find(|e| e.id == id && e.kind == kind)
            .unwrap_or_else(|| panic!("missing event id={id} kind={kind:?}"))
    };

    let enter_outer = find(outer_id, SpanKind::Enter);
    assert_eq!(enter_outer.parent, 0, "outer span must be a root");
    assert_eq!(enter_outer.name, "nest_outer");

    let enter_inner = find(inner_id, SpanKind::Enter);
    assert_eq!(enter_inner.parent, outer_id);
    let exit_inner = find(inner_id, SpanKind::Exit);
    assert_eq!(exit_inner.name, "nest_inner", "exit keeps the span name");

    // The sibling opened after inner closed: same parent, not nested.
    let enter_sibling = find(sibling_id, SpanKind::Enter);
    assert_eq!(enter_sibling.parent, outer_id);
    assert!(enter_sibling.t_ns >= exit_inner.t_ns);

    // Exits close innermost-first and the clock never runs backwards.
    let exit_outer = find(outer_id, SpanKind::Exit);
    assert!(exit_inner.t_ns <= exit_outer.t_ns);
    let mut last = 0u64;
    for e in &events {
        assert!(e.t_ns >= last, "journal timestamps must be monotone");
        last = e.t_ns;
    }
}
