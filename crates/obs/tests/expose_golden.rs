//! Golden pin of the text exposition format, plus a real-TCP scrape
//! and push round-trip against [`geoproof_obs::expose::ScrapeServer`].
//!
//! The golden string is the contract external scrapers parse — any
//! change to ordering, `# TYPE` lines, `le` edges, or number rendering
//! must show up here as a deliberate diff.

use geoproof_obs::expose::{self, TextMetrics};
use geoproof_obs::Registry;

#[test]
fn text_exposition_golden() {
    geoproof_obs::set_enabled(true);
    let r = Registry::new();
    r.counter("audit_verdicts_total{outcome=\"accept\"}").add(7);
    r.counter("audit_verdicts_total{outcome=\"reject\"}").add(2);
    r.counter("ledger_appends_total").add(9);
    r.gauge("pool_queue_depth").set(3);
    let h = r.histogram("audit_session_latency_us");
    for v in [3u64, 3, 17, 800, 100_000] {
        h.record(v);
    }

    let rendered = r.snapshot().render_prometheus();
    let expected = "\
# TYPE audit_verdicts_total counter
audit_verdicts_total{outcome=\"accept\"} 7
audit_verdicts_total{outcome=\"reject\"} 2
# TYPE ledger_appends_total counter
ledger_appends_total 9
# TYPE pool_queue_depth gauge
pool_queue_depth 3
# TYPE audit_session_latency_us histogram
audit_session_latency_us_bucket{le=\"3\"} 2
audit_session_latency_us_bucket{le=\"17\"} 3
audit_session_latency_us_bucket{le=\"831\"} 4
audit_session_latency_us_bucket{le=\"102399\"} 5
audit_session_latency_us_bucket{le=\"+Inf\"} 5
audit_session_latency_us_sum 100823
audit_session_latency_us_count 5
";
    assert_eq!(rendered, expected, "text exposition drifted:\n{rendered}");
}

#[test]
fn labelled_histogram_merges_le_into_label_set() {
    geoproof_obs::set_enabled(true);
    let r = Registry::new();
    let h = r.histogram("rtt_us{vantage=\"syd\"}");
    h.record(10);
    let rendered = r.snapshot().render_prometheus();
    assert!(
        rendered.contains("rtt_us_bucket{vantage=\"syd\",le=\"10\"} 1"),
        "{rendered}"
    );
    assert!(
        rendered.contains("rtt_us_sum{vantage=\"syd\"} 10"),
        "{rendered}"
    );
    assert!(
        rendered.contains("rtt_us_count{vantage=\"syd\"} 1"),
        "{rendered}"
    );
    // And the parser reassembles it under the labelled key.
    let parsed = TextMetrics::parse(&rendered);
    let h = parsed
        .histogram("rtt_us{vantage=\"syd\"}")
        .expect("labelled histogram");
    assert_eq!(h.count, 1);
    assert_eq!(h.quantile(0.99), 10.0);
}

#[test]
fn scrape_and_push_over_real_tcp() {
    // Bind flips recording on for the process.
    let server = expose::ScrapeServer::bind("127.0.0.1:0").expect("bind scrape");
    let addr = server.addr();

    // Record through the global registry, then scrape it back.
    geoproof_obs::counter("e2e_events_total").add(5);
    let hist = geoproof_obs::histogram("e2e_lat_us");
    hist.record(40);
    hist.record(4_000);

    let body = expose::scrape(addr).expect("scrape");
    let parsed = TextMetrics::parse(&body);
    assert_eq!(parsed.value("e2e_events_total"), Some(5.0));
    let h = parsed.histogram("e2e_lat_us").expect("histogram scraped");
    assert_eq!(h.count, 2);

    // Push the one-shot-job way: counters and observations land in the
    // same registry the next scrape renders.
    expose::push(
        addr,
        "counter e2e_events_total 3\nobserve e2e_lat_us 123\ngauge e2e_depth 4\nbogus line here\n",
    )
    .expect("push");
    let parsed = TextMetrics::parse(&expose::scrape(addr).expect("rescrape"));
    assert_eq!(parsed.value("e2e_events_total"), Some(8.0));
    assert_eq!(parsed.value("e2e_depth"), Some(4.0));
    assert_eq!(parsed.histogram("e2e_lat_us").expect("histogram").count, 3);

    // Unknown paths 404 without killing the listener.
    let (status, _) = expose::http_get(addr, "/nope").expect("roundtrip");
    assert!(status.contains("404"), "{status}");
    let body = expose::scrape(addr).expect("scrape after 404");
    assert!(body.contains("e2e_events_total 8"));
}

#[test]
fn hostile_pushes_do_not_kill_the_listener() {
    let server = expose::ScrapeServer::bind("127.0.0.1:0").expect("bind scrape");
    let addr = server.addr();

    // Invalid names and type conflicts are skipped lines, not panics:
    // the listener keeps answering and the valid line still lands.
    expose::push(addr, "counter bad/name 1\ncounter hostile_ok_total 1\n").expect("push");
    expose::push(addr, "gauge hostile_ok_total 9\n").expect("conflicting push answers ok");
    let parsed = TextMetrics::parse(&expose::scrape(addr).expect("scrape"));
    assert_eq!(parsed.value("hostile_ok_total"), Some(1.0));
    assert_eq!(parsed.value("bad/name"), None);

    // A body over the 1 MiB cap is rejected whole with a 413…
    let line = "counter oversized_total 1\n";
    let big = line.repeat(expose::MAX_INGEST_BODY / line.len() + 2);
    assert!(big.len() > expose::MAX_INGEST_BODY);
    let err = expose::push(addr, &big).expect_err("oversized push must fail");
    assert!(err.to_string().contains("413"), "{err}");

    // …leaving no partial apply behind and the listener alive.
    let parsed = TextMetrics::parse(&expose::scrape(addr).expect("scrape after 413"));
    assert_eq!(parsed.value("oversized_total"), None);
    assert_eq!(parsed.value("hostile_ok_total"), Some(1.0));
}
