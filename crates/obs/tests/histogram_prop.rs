//! Property pins for the log-linear histogram: every value lands in
//! exactly one bucket, bucket edges tile `u64` with no gap or overlap,
//! and quantile estimates are bounded by the edges of the bucket the
//! true quantile falls in.

use geoproof_obs::Registry;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Recording an arbitrary batch of values: the rendered snapshot's
    /// bucket counts sum to the record count (each value in exactly one
    /// bucket), the sum is exact, and each value is inside the
    /// inclusive bounds of the bucket that counted it.
    #[test]
    fn every_value_lands_in_exactly_one_bucket(
        seed in any::<u64>(),
        n in 1usize..200,
        shift in 0u32..56,
    ) {
        geoproof_obs::set_enabled(true);
        let r = Registry::new();
        let h = r.histogram("prop_us");
        // A deterministic spread across magnitudes: xorshift over a
        // window positioned by `shift`.
        let mut x = seed | 1;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            values.push(x >> shift);
        }
        for &v in &values {
            h.record(v);
        }
        let snap = r.snapshot();
        let frozen = snap.histogram("prop_us").expect("registered");
        let bucket_total: u64 = frozen.buckets.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(bucket_total, n as u64, "values double- or un-counted");
        prop_assert_eq!(frozen.count, n as u64);
        let expected_sum: u64 = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        prop_assert_eq!(frozen.sum, expected_sum);

        // Upper edges ascend strictly and every recorded value is ≤ the
        // edge of some bucket whose count covers it.
        for w in frozen.buckets.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "bucket edges must ascend");
        }
    }

    /// Quantile estimates are bounded by bucket edges: for any recorded
    /// set, the estimated q-quantile is ≥ the true q-quantile's bucket
    /// lower edge and ≤ its upper edge — i.e. within one bucket width
    /// (≤ 6.25 % relative error above the linear range).
    #[test]
    fn quantiles_bounded_by_bucket_edges(
        seed in any::<u64>(),
        n in 1usize..300,
        q_mill in 0u32..=1000,
    ) {
        geoproof_obs::set_enabled(true);
        let r = Registry::new();
        let h = r.histogram("q_us");
        let mut x = seed | 1;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            values.push(x % 1_000_000);
        }
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let q = f64::from(q_mill) / 1000.0;
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        let true_q = values[rank - 1];
        let est = r.snapshot().histogram("q_us").expect("registered").quantile(q);

        // The estimate is the inclusive upper edge of the true
        // quantile's bucket: never below the true value, and at most
        // one sub-bucket width above it.
        prop_assert!(est >= true_q, "estimate {est} below true quantile {true_q}");
        let slack = (true_q / 16).max(1);
        prop_assert!(
            est <= true_q + slack,
            "estimate {est} beyond bucket width of true quantile {true_q}"
        );
    }
}
