//! Prometheus text exposition: rendering, a plain-TCP scrape listener,
//! a push path for short-lived processes, and a parser for the text
//! format (used by `geoproof stats` and the e2e tests).
//!
//! The listener speaks just enough HTTP/1.0 for a scraper:
//!
//! * `GET /metrics` → `200` with the global registry rendered in the
//!   text exposition format (version 0.0.4);
//! * `POST /ingest` → applies newline-separated deltas to the global
//!   registry — `counter <name> <delta>`, `gauge <name> <value>`,
//!   `observe <name> <value>` — and answers `ok <applied>`. This is
//!   the pushgateway idiom for one-shot jobs: the `audit` CLI lives
//!   for a single verdict, so it reports that verdict into the
//!   long-lived server's registry instead of hosting its own scrape
//!   target. Ingest input is untrusted: malformed lines, invalid
//!   names, and type conflicts are skipped (never panicking the
//!   listener), pushes may only create new series while the registry
//!   is under [`INGEST_MAX_SERIES`] total, and bodies over
//!   [`MAX_INGEST_BODY`] bytes are rejected whole with `413` rather
//!   than truncated;
//! * anything else → `404`.
//!
//! Histograms render cumulatively with inclusive-upper-edge `le`
//! labels over the non-empty log-linear buckets, a `+Inf` bucket, and
//! `_sum`/`_count` series — standard enough for Prometheus, Grafana
//! agent, or `curl` to consume.

use crate::registry::{global, Registry, Snapshot};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Largest `POST /ingest` body accepted; bigger pushes get a `413`
/// instead of a silently truncated apply.
pub const MAX_INGEST_BODY: usize = 1 << 20;

/// Once the global registry holds this many series, ingest lines may
/// only touch names that already exist — an unauthenticated remote
/// peer must not be able to grow the process's memory without bound,
/// one permanent registry entry per invented name.
pub const INGEST_MAX_SERIES: u64 = 4096;

/// Renders a registry snapshot in the Prometheus text format. Families
/// get one `# TYPE` line; label variants of a family group under it.
pub fn render_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    let mut typed = |out: &mut String, family: &str, kind: &str| {
        if family != last_family {
            out.push_str("# TYPE ");
            out.push_str(family);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            last_family = family.to_owned();
        }
    };
    for (name, value) in &snapshot.counters {
        typed(&mut out, family_of(name), "counter");
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    for (name, value) in &snapshot.gauges {
        typed(&mut out, family_of(name), "gauge");
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    for (name, h) in &snapshot.histograms {
        let family = family_of(name);
        typed(&mut out, family, "histogram");
        let labels = labels_of(name);
        let with_le = |le: &str| -> String {
            if labels.is_empty() {
                format!("{family}_bucket{{le=\"{le}\"}}")
            } else {
                format!("{family}_bucket{{{labels},le=\"{le}\"}}")
            }
        };
        let mut cumulative = 0u64;
        for &(upper, n) in &h.buckets {
            cumulative += n;
            out.push_str(&with_le(&upper.to_string()));
            out.push(' ');
            out.push_str(&cumulative.to_string());
            out.push('\n');
        }
        out.push_str(&with_le("+Inf"));
        out.push(' ');
        out.push_str(&h.count.to_string());
        out.push('\n');
        let suffixed = |suffix: &str| -> String {
            if labels.is_empty() {
                format!("{family}_{suffix}")
            } else {
                format!("{family}_{suffix}{{{labels}}}")
            }
        };
        out.push_str(&format!("{} {}\n", suffixed("sum"), h.sum));
        out.push_str(&format!("{} {}\n", suffixed("count"), h.count));
    }
    out
}

fn family_of(name: &str) -> &str {
    &name[..name.find('{').unwrap_or(name.len())]
}

fn labels_of(name: &str) -> &str {
    match name.find('{') {
        Some(i) => &name[i + 1..name.len() - 1],
        None => "",
    }
}

/// A scrape listener on a plain TCP socket, serving the **global**
/// registry. Accepts on a background thread; each request is answered
/// inline (scrapes are rare and small — no connection pool needed).
#[derive(Debug)]
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ScrapeServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving. Also flips [`crate::set_enabled`] on: a process
    /// that exposes metrics wants them recorded.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(addr: &str) -> std::io::Result<ScrapeServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        crate::set_enabled(true);
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = stop.clone();
        let handle = std::thread::spawn(move || {
            while !thread_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // Inline: a scrape is one small request/response.
                        let _ = handle_request(stream);
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(ScrapeServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the listener thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_request(stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_owned();
    let path = parts.next().unwrap_or("").to_owned();
    // Headers: only Content-Length matters (for the ingest body).
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line.trim().is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().unwrap_or(0);
        }
    }
    let mut stream = stream;
    match (method.as_str(), path.as_str()) {
        ("GET", "/metrics") => {
            let body = global().snapshot().render_prometheus();
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        ("POST", "/ingest") => {
            if content_length > MAX_INGEST_BODY {
                // Drain (bounded; the read timeout caps a trickling
                // client) so the peer can read the rejection instead
                // of dying on a connection reset mid-write.
                let drain = content_length.min(8 * MAX_INGEST_BODY) as u64;
                let _ = std::io::copy(&mut (&mut reader).take(drain), &mut std::io::sink());
                return respond(
                    &mut stream,
                    "413 Payload Too Large",
                    "text/plain; charset=utf-8",
                    &format!("ingest body of {content_length} bytes exceeds {MAX_INGEST_BODY}\n"),
                );
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body)?;
            let applied = apply_ingest(&String::from_utf8_lossy(&body));
            respond(
                &mut stream,
                "200 OK",
                "text/plain; charset=utf-8",
                &format!("ok {applied}\n"),
            )
        }
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "only GET /metrics and POST /ingest live here\n",
        ),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Applies a pushed ingest body to the global registry; returns the
/// number of lines applied. The body is untrusted remote input, and a
/// telemetry push must never take the server down: unknown verbs,
/// malformed lines, invalid metric names, and type conflicts are all
/// skipped via the fallible `try_*` registry API (no panics), and new
/// series stop being created once the registry reaches
/// [`INGEST_MAX_SERIES`].
fn apply_ingest(body: &str) -> usize {
    apply_ingest_to(global(), body)
}

fn apply_ingest_to(registry: &Registry, body: &str) -> usize {
    let mut applied = 0usize;
    for line in body.lines() {
        let mut parts = line.split_whitespace();
        let (Some(verb), Some(name), Some(value)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        if registry.serial() >= INGEST_MAX_SERIES && !registry.contains(name) {
            continue;
        }
        let ok = match verb {
            "counter" => match (value.parse::<u64>(), registry.try_counter(name)) {
                (Ok(v), Ok(c)) => {
                    c.add(v);
                    true
                }
                _ => false,
            },
            "gauge" => match (value.parse::<i64>(), registry.try_gauge(name)) {
                (Ok(v), Ok(g)) => {
                    g.set(v);
                    true
                }
                _ => false,
            },
            "observe" => match (value.parse::<u64>(), registry.try_histogram(name)) {
                (Ok(v), Ok(h)) => {
                    h.record(v);
                    true
                }
                _ => false,
            },
            _ => false,
        };
        if ok {
            applied += 1;
        }
    }
    applied
}

/// Fetches `GET /metrics` from a scrape listener and returns the body.
///
/// # Errors
///
/// Propagates socket errors; non-200 responses become
/// [`std::io::ErrorKind::InvalidData`].
pub fn scrape(addr: impl ToSocketAddrs) -> std::io::Result<String> {
    let (_status, body) = http_roundtrip(addr, "GET /metrics HTTP/1.0\r\n\r\n", true)?;
    Ok(body)
}

/// Pushes an ingest body (see [`crate::expose`] module docs for the
/// line grammar) to a scrape listener.
///
/// # Errors
///
/// As [`scrape`].
pub fn push(addr: impl ToSocketAddrs, body: &str) -> std::io::Result<()> {
    let request = format!(
        "POST /ingest HTTP/1.0\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    http_roundtrip(addr, &request, true).map(|_| ())
}

/// Issues a bare `GET <path>` against a scrape listener, returning the
/// status line and body without insisting on a 200 — lets tests and
/// probes inspect error handling.
///
/// # Errors
///
/// Propagates socket errors.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<(String, String)> {
    http_roundtrip(addr, &format!("GET {path} HTTP/1.0\r\n\r\n"), false)
}

fn http_roundtrip(
    addr: impl ToSocketAddrs,
    request: &str,
    require_ok: bool,
) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no HTTP header"))?;
    let status = head.lines().next().unwrap_or("").to_owned();
    if require_ok && !status.contains("200") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("scrape endpoint answered: {status}"),
        ));
    }
    Ok((status, body.to_owned()))
}

// --- text-format parsing ----------------------------------------------------

/// A parsed text exposition: enough structure for `geoproof stats` and
/// tests to assert on counters and estimate histogram quantiles.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TextMetrics {
    /// `(full series name with labels, value)` for counters and gauges,
    /// sorted by name.
    pub samples: Vec<(String, f64)>,
    /// Parsed histograms keyed by `family{labels}`.
    pub histograms: Vec<(String, TextHistogram)>,
}

/// One histogram reconstructed from `_bucket`/`_sum`/`_count` series.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TextHistogram {
    /// `(upper edge, cumulative count)`, ascending, excluding `+Inf`.
    pub buckets: Vec<(f64, u64)>,
    /// Total observations (the `+Inf` bucket / `_count`).
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
}

impl TextHistogram {
    /// Quantile estimate from cumulative buckets (upper-edge rule, as
    /// [`crate::HistogramSnapshot::quantile`]).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil()).max(1.0) as u64;
        for &(upper, cumulative) in &self.buckets {
            if cumulative >= target {
                return upper;
            }
        }
        self.buckets.last().map_or(0.0, |&(upper, _)| upper)
    }
}

impl TextMetrics {
    /// Parses a text exposition body. Unknown lines are ignored.
    pub fn parse(text: &str) -> TextMetrics {
        let mut samples = Vec::new();
        let mut histograms: Vec<(String, TextHistogram)> = Vec::new();
        fn hist_entry(
            histograms: &mut Vec<(String, TextHistogram)>,
            key: String,
        ) -> &mut TextHistogram {
            if let Some(i) = histograms.iter().position(|(k, _)| *k == key) {
                &mut histograms[i].1
            } else {
                histograms.push((key, TextHistogram::default()));
                &mut histograms.last_mut().expect("just pushed").1
            }
        }
        fn find_hist<'a>(
            histograms: &'a mut [(String, TextHistogram)],
            key: &str,
        ) -> Option<&'a mut TextHistogram> {
            histograms
                .iter_mut()
                .find(|(k, _)| k == key)
                .map(|(_, h)| h)
        }
        let series_values: Vec<(&str, f64)> = text
            .lines()
            .filter(|line| !line.starts_with('#') && !line.trim().is_empty())
            .filter_map(|line| {
                let (series, value) = line.rsplit_once(' ')?;
                Some((series, value.parse::<f64>().ok()?))
            })
            .collect();
        // Pass 1: `_bucket` series decide which families are
        // histograms — nothing else creates one.
        for &(series, value) in &series_values {
            if let Some((key, le)) = split_bucket(series) {
                let h = hist_entry(&mut histograms, key);
                if le == "+Inf" {
                    h.count = value as u64;
                } else if let Ok(le) = le.parse::<f64>() {
                    h.buckets.push((le, value as u64));
                }
            }
        }
        // Pass 2: `_sum`/`_count` fold into histograms seen above;
        // anything else — including a counter or gauge that merely
        // ends in `_count` — stays a plain sample.
        for &(series, value) in &series_values {
            if split_bucket(series).is_some() {
                continue;
            }
            if let Some(h) = strip_histogram_suffix(series, "_sum")
                .and_then(|key| find_hist(&mut histograms, &key))
            {
                h.sum = value;
            } else if let Some(h) = strip_histogram_suffix(series, "_count")
                .and_then(|key| find_hist(&mut histograms, &key))
            {
                h.count = value as u64;
            } else {
                samples.push((series.to_owned(), value));
            }
        }
        samples.sort_by(|a, b| a.0.cmp(&b.0));
        for (_, h) in &mut histograms {
            h.buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        TextMetrics {
            samples,
            histograms,
        }
    }

    /// The value of the series named exactly `name` (labels included).
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The reconstructed histogram keyed `family{labels}` (or bare
    /// family).
    pub fn histogram(&self, key: &str) -> Option<&TextHistogram> {
        self.histograms
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, h)| h)
    }

    /// Sums every series in `family` across label variants.
    pub fn family_total(&self, family: &str) -> f64 {
        self.samples
            .iter()
            .filter(|(n, _)| {
                n == family || (n.starts_with(family) && n[family.len()..].starts_with('{'))
            })
            .map(|&(_, v)| v)
            .sum()
    }
}

/// Splits `family_bucket{…,le="X"}` into the histogram key
/// (`family` or `family{other labels}`) and the `le` edge.
fn split_bucket(series: &str) -> Option<(String, String)> {
    let brace = series.find('{')?;
    let family = series[..brace].strip_suffix("_bucket")?;
    let labels = &series[brace + 1..series.len().checked_sub(1)?];
    let mut le = None;
    let mut rest = Vec::new();
    for pair in split_label_pairs(labels) {
        match pair.strip_prefix("le=\"").and_then(|v| v.strip_suffix('"')) {
            Some(v) => le = Some(v.to_owned()),
            None => rest.push(pair),
        }
    }
    let key = if rest.is_empty() {
        family.to_owned()
    } else {
        format!("{family}{{{}}}", rest.join(","))
    };
    Some((key, le?))
}

/// Splits `family_sum` / `family_sum{labels}` into the histogram key —
/// only when the family was seen as a histogram is the result used.
fn strip_histogram_suffix(series: &str, suffix: &str) -> Option<String> {
    match series.find('{') {
        Some(brace) => {
            let family = series[..brace].strip_suffix(suffix)?;
            Some(format!("{family}{}", &series[brace..]))
        }
        None => series.strip_suffix(suffix).map(str::to_owned),
    }
}

/// Splits rendered label pairs on commas outside quotes.
fn split_label_pairs(labels: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth_quote = false;
    let mut start = 0usize;
    for (i, c) in labels.char_indices() {
        match c {
            '"' => depth_quote = !depth_quote,
            ',' if !depth_quote => {
                out.push(&labels[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < labels.len() {
        out.push(&labels[start..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_series_split() {
        let (key, le) = split_bucket("lat_us_bucket{le=\"17\"}").unwrap();
        assert_eq!(key, "lat_us");
        assert_eq!(le, "17");
        let (key, le) = split_bucket("lat_us_bucket{file=\"a,b\",le=\"+Inf\"}").unwrap();
        assert_eq!(key, "lat_us{file=\"a,b\"}");
        assert_eq!(le, "+Inf");
        assert!(split_bucket("plain_counter_total").is_none());
    }

    #[test]
    fn sum_count_suffixes_without_buckets_stay_samples() {
        let text = "# TYPE foo_count counter\nfoo_count 3\nfoo_sum 1.5\n";
        let parsed = TextMetrics::parse(text);
        assert_eq!(parsed.value("foo_count"), Some(3.0));
        assert_eq!(parsed.value("foo_sum"), Some(1.5));
        assert!(
            parsed.histograms.is_empty(),
            "no bucket series, no histogram"
        );
    }

    #[test]
    fn hostile_ingest_lines_are_skipped_not_fatal() {
        crate::set_enabled(true);
        let r = Registry::new();
        let body = "counter ok_total 2\n\
                    counter bad-name! 1\n\
                    counter ok{unclosed 1\n\
                    gauge ok_total 5\n\
                    bogus ok_total 1\n\
                    counter ok_total nope\n";
        assert_eq!(apply_ingest_to(&r, body), 1);
        assert_eq!(r.snapshot().counter("ok_total"), Some(2));
        assert_eq!(r.serial(), 1, "rejected lines register nothing");
    }

    #[test]
    fn ingest_stops_creating_series_at_the_cap() {
        crate::set_enabled(true);
        let r = Registry::new();
        for i in 0..INGEST_MAX_SERIES {
            let _ = r.counter(&format!("flood_{i}_total"));
        }
        // New names are refused once the registry is at the cap…
        assert_eq!(apply_ingest_to(&r, "counter invented_total 1"), 0);
        assert!(!r.contains("invented_total"));
        // …but existing series still take updates.
        assert_eq!(apply_ingest_to(&r, "counter flood_7_total 3"), 1);
        assert_eq!(r.snapshot().counter("flood_7_total"), Some(3));
    }

    #[test]
    fn parse_roundtrips_a_rendered_snapshot() {
        let r = crate::Registry::new();
        crate::set_enabled(true);
        r.counter("a_total").add(3);
        r.counter("v_total{outcome=\"accept\"}").add(2);
        r.gauge("depth").set(-4);
        let h = r.histogram("lat_us");
        for v in [1u64, 1, 17, 900] {
            h.record(v);
        }
        let text = r.snapshot().render_prometheus();
        let parsed = TextMetrics::parse(&text);
        assert_eq!(parsed.value("a_total"), Some(3.0));
        assert_eq!(parsed.value("v_total{outcome=\"accept\"}"), Some(2.0));
        assert_eq!(parsed.value("depth"), Some(-4.0));
        let h = parsed.histogram("lat_us").expect("histogram parsed");
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 919.0);
        assert_eq!(h.quantile(0.5) as u64, 1);
        assert!(h.quantile(0.99) >= 900.0);
    }
}
