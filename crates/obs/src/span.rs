//! Lightweight span tracing: enter/exit events with monotonic
//! timestamps and parent ids, written into a fixed-size lock-free ring
//! journal that observers drain without stopping the writers.
//!
//! Each ring slot is guarded by a per-slot sequence word (a seqlock
//! keyed to the writer's global ticket): a writer claims slot
//! `idx % capacity` by CAS-ing the sequence from the previous lap's
//! even value to `2·idx + 1`, stores the event words, then publishes
//! `2·idx + 2`. A reader accepts a slot only when it observes the same
//! even sequence before and after copying the words — torn or in-flight
//! slots are skipped, never returned. A writer that loses the claim CAS
//! (it was lapped while parked) drops its event rather than tearing a
//! newer one; under any realistic rate that requires the ring to wrap
//! a full lap between a writer's ticket draw and its store.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Default ring capacity (events, power of two) of [`journal`].
const DEFAULT_CAPACITY: usize = 4096;

/// Words per event slot: packed kind+name, span id, parent id,
/// timestamp.
const WORDS: usize = 4;

/// What an event marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// Span opened.
    Enter,
    /// Span closed.
    Exit,
}

/// One drained journal entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Global event ordinal (journal ticket) — ascending, gap-free per
    /// writer but with drops possible under extreme lapping.
    pub ordinal: u64,
    /// Enter or exit.
    pub kind: SpanKind,
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Enclosing span's id at enter time, or 0 for a root span.
    pub parent: u64,
    /// Interned span name.
    pub name: &'static str,
    /// Monotonic nanoseconds since process telemetry start
    /// ([`crate::now_ns`]).
    pub t_ns: u64,
}

/// The fixed-size lock-free event ring.
pub struct SpanJournal {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl std::fmt::Debug for SpanJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanJournal")
            .field("capacity", &self.slots.len())
            .field("written", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl SpanJournal {
    /// A journal holding the latest `capacity` events (rounded up to a
    /// power of two, minimum 8).
    pub fn with_capacity(capacity: usize) -> SpanJournal {
        let capacity = capacity.next_power_of_two().max(8);
        SpanJournal {
            slots: std::iter::repeat_with(|| Slot {
                seq: AtomicU64::new(0),
                words: std::array::from_fn(|_| AtomicU64::new(0)),
            })
            .take(capacity)
            .collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Events ever written (including any since overwritten).
    pub fn written(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn write(&self, kind: SpanKind, name_id: u32, id: u64, parent: u64, t_ns: u64) {
        let cap = self.slots.len() as u64;
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx % cap) as usize];
        let expected = if idx >= cap { 2 * (idx - cap) + 2 } else { 0 };
        // Claim the slot for this ticket; losing means we were lapped a
        // whole ring while parked — drop instead of tearing fresh data.
        if slot
            .seq
            .compare_exchange(expected, 2 * idx + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let kind_word = (u64::from(name_id) << 1)
            | match kind {
                SpanKind::Enter => 0,
                SpanKind::Exit => 1,
            };
        slot.words[0].store(kind_word, Ordering::Relaxed);
        slot.words[1].store(id, Ordering::Relaxed);
        slot.words[2].store(parent, Ordering::Relaxed);
        slot.words[3].store(t_ns, Ordering::Relaxed);
        slot.seq.store(2 * idx + 2, Ordering::Release);
    }

    /// Copies out the currently retained events, oldest first, without
    /// pausing writers. Slots mid-write (or overwritten during the
    /// copy) are skipped.
    pub fn drain(&self) -> Vec<SpanEvent> {
        let cap = self.slots.len() as u64;
        let head = self.head.load(Ordering::Acquire);
        let start = head.saturating_sub(cap);
        let mut out = Vec::new();
        for idx in start..head {
            let slot = &self.slots[(idx % cap) as usize];
            let want = 2 * idx + 2;
            if slot.seq.load(Ordering::Acquire) != want {
                continue;
            }
            let words: [u64; WORDS] =
                std::array::from_fn(|w| slot.words[w].load(Ordering::Relaxed));
            // Re-check: unchanged sequence ⇒ the words above are the
            // ones published under it.
            if slot.seq.load(Ordering::Acquire) != want {
                continue;
            }
            let name_id = (words[0] >> 1) as u32;
            out.push(SpanEvent {
                ordinal: idx,
                kind: if words[0] & 1 == 0 {
                    SpanKind::Enter
                } else {
                    SpanKind::Exit
                },
                id: words[1],
                parent: words[2],
                name: intern_lookup(name_id),
                t_ns: words[3],
            });
        }
        out
    }
}

/// The process-global journal (capacity 4096 events).
pub fn journal() -> &'static SpanJournal {
    static JOURNAL: OnceLock<SpanJournal> = OnceLock::new();
    JOURNAL.get_or_init(|| SpanJournal::with_capacity(DEFAULT_CAPACITY))
}

// --- name interning ---------------------------------------------------------
//
// Span names are `&'static str`, interned once into a u32 id; the hot
// path then stores one word per event. The intern table locks only on
// a name's *first* use.

type InternTables = (Mutex<HashMap<&'static str, u32>>, Mutex<Vec<&'static str>>);

fn intern_tables() -> &'static InternTables {
    static TABLES: OnceLock<InternTables> = OnceLock::new();
    TABLES.get_or_init(|| (Mutex::new(HashMap::new()), Mutex::new(Vec::new())))
}

fn intern(name: &'static str) -> u32 {
    let (map, list) = intern_tables();
    let mut map = map.lock().expect("intern map");
    if let Some(&id) = map.get(name) {
        return id;
    }
    let mut list = list.lock().expect("intern list");
    let id = list.len() as u32;
    list.push(name);
    map.insert(name, id);
    id
}

fn intern_lookup(id: u32) -> &'static str {
    let (_, list) = intern_tables();
    list.lock()
        .expect("intern list")
        .get(id as usize)
        .copied()
        .unwrap_or("?")
}

// --- the span guard ---------------------------------------------------------

thread_local! {
    /// The innermost live span on this thread — the parent of the next
    /// [`span`] call.
    static CURRENT: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Opens a span: writes an enter event now and an exit event when the
/// returned guard drops. Nested calls on one thread chain parent ids.
/// When recording is disabled this is a single load — no id is drawn,
/// no clock read, nothing written.
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            id: 0,
            prev: 0,
            name_id: 0,
        };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT.with(|c| c.replace(id));
    let name_id = intern(name);
    journal().write(SpanKind::Enter, name_id, id, parent, crate::now_ns());
    SpanGuard {
        id,
        prev: parent,
        name_id,
    }
}

/// Closes its span on drop. See [`span`].
#[derive(Debug)]
#[must_use = "a span guard closes its span when dropped"]
pub struct SpanGuard {
    id: u64,
    prev: u64,
    name_id: u32,
}

impl SpanGuard {
    /// The span's id (0 when recording was disabled at entry).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        CURRENT.with(|c| c.set(self.prev));
        journal().write(
            SpanKind::Exit,
            self.name_id,
            self.id,
            self.prev,
            crate::now_ns(),
        );
    }
}
