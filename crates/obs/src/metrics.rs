//! Counters and gauges: one atomic cell behind the global enable gate.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// The parsed shape of a registered metric name: the Prometheus family
/// (text before `{`) plus the rendered label pairs inside the braces,
/// if any. `audit_verdicts_total{outcome="accept"}` has family
/// `audit_verdicts_total` and labels `outcome="accept"`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct MetricName {
    full: String,
    family_len: usize,
}

impl MetricName {
    /// Validates and splits a metric name. Fallible rather than
    /// panicking — the ingest path feeds this untrusted input; the
    /// registry's infallible `counter`/`gauge`/`histogram` entry
    /// points turn the error into a panic themselves.
    pub(crate) fn try_parse(name: &str) -> Result<MetricName, String> {
        if name.is_empty() {
            return Err("metric name must not be empty".to_owned());
        }
        let family_len = name.find('{').unwrap_or(name.len());
        let family = &name[..family_len];
        if family.is_empty()
            || !family
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
        {
            return Err(format!("metric family {family:?} must be [a-zA-Z0-9_:]+"));
        }
        if family_len < name.len() && !(name.ends_with('}') && name.len() > family_len + 2) {
            return Err(format!(
                "labels in {name:?} must be non-empty and brace-closed"
            ));
        }
        Ok(MetricName {
            full: name.to_owned(),
            family_len,
        })
    }

    pub(crate) fn full(&self) -> &str {
        &self.full
    }

    #[cfg(test)]
    pub(crate) fn family(&self) -> &str {
        &self.full[..self.family_len]
    }

    /// The rendered label pairs (no braces), or `""`.
    #[cfg(test)]
    pub(crate) fn labels(&self) -> &str {
        if self.family_len == self.full.len() {
            ""
        } else {
            &self.full[self.family_len + 1..self.full.len() - 1]
        }
    }
}

/// A monotone event counter. Recording is a relaxed `fetch_add` behind
/// the [`crate::enabled`] gate — lock- and allocation-free either way.
#[derive(Debug)]
pub struct Counter {
    pub(crate) name: MetricName,
    value: AtomicU64,
}

impl Counter {
    pub(crate) fn new(name: MetricName) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The full registered name (family plus rendered labels).
    pub fn name(&self) -> &str {
        self.name.full()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, live connections). Signed so
/// transient dips below a racing zero don't wrap.
#[derive(Debug)]
pub struct Gauge {
    pub(crate) name: MetricName,
    value: AtomicI64,
}

impl Gauge {
    pub(crate) fn new(name: MetricName) -> Gauge {
        Gauge {
            name,
            value: AtomicI64::new(0),
        }
    }

    /// The full registered name (family plus rendered labels).
    pub fn name(&self) -> &str {
        self.name.full()
    }

    /// Adds `n` (negative to decrease).
    #[inline]
    pub fn add(&self, n: i64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrements by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Overwrites the level.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_name_parses_family_and_labels() {
        let plain = MetricName::try_parse("ledger_appends_total").unwrap();
        assert_eq!(plain.family(), "ledger_appends_total");
        assert_eq!(plain.labels(), "");
        let labelled = MetricName::try_parse("audit_verdicts_total{outcome=\"accept\"}").unwrap();
        assert_eq!(labelled.family(), "audit_verdicts_total");
        assert_eq!(labelled.labels(), "outcome=\"accept\"");
    }

    #[test]
    fn try_parse_reports_errors_without_panicking() {
        assert!(MetricName::try_parse("ok_total").is_ok());
        assert!(MetricName::try_parse("").is_err());
        assert!(MetricName::try_parse("bad name").is_err());
        assert!(MetricName::try_parse("name{x=\"y\"").is_err());
        assert!(MetricName::try_parse("name{}").is_err());
    }

    #[test]
    fn metric_name_rejects_bad_family() {
        let e = MetricName::try_parse("bad name{x=\"y\"}").unwrap_err();
        assert!(e.contains("must be [a-zA-Z0-9_:]+"), "{e}");
    }

    #[test]
    fn metric_name_rejects_unclosed_labels() {
        let e = MetricName::try_parse("name{x=\"y\"").unwrap_err();
        assert!(e.contains("brace-closed"), "{e}");
    }
}
