//! Counters and gauges: one atomic cell behind the global enable gate.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// The parsed shape of a registered metric name: the Prometheus family
/// (text before `{`) plus the rendered label pairs inside the braces,
/// if any. `audit_verdicts_total{outcome="accept"}` has family
/// `audit_verdicts_total` and labels `outcome="accept"`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct MetricName {
    full: String,
    family_len: usize,
}

impl MetricName {
    pub(crate) fn parse(name: &str) -> MetricName {
        assert!(!name.is_empty(), "metric name must not be empty");
        let family_len = name.find('{').unwrap_or(name.len());
        let family = &name[..family_len];
        assert!(
            !family.is_empty()
                && family
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':'),
            "metric family {family:?} must be [a-zA-Z0-9_:]+"
        );
        if family_len < name.len() {
            assert!(
                name.ends_with('}') && name.len() > family_len + 2,
                "labels in {name:?} must be non-empty and brace-closed"
            );
        }
        MetricName {
            full: name.to_owned(),
            family_len,
        }
    }

    pub(crate) fn full(&self) -> &str {
        &self.full
    }

    #[cfg(test)]
    pub(crate) fn family(&self) -> &str {
        &self.full[..self.family_len]
    }

    /// The rendered label pairs (no braces), or `""`.
    #[cfg(test)]
    pub(crate) fn labels(&self) -> &str {
        if self.family_len == self.full.len() {
            ""
        } else {
            &self.full[self.family_len + 1..self.full.len() - 1]
        }
    }
}

/// A monotone event counter. Recording is a relaxed `fetch_add` behind
/// the [`crate::enabled`] gate — lock- and allocation-free either way.
#[derive(Debug)]
pub struct Counter {
    pub(crate) name: MetricName,
    value: AtomicU64,
}

impl Counter {
    pub(crate) fn new(name: MetricName) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The full registered name (family plus rendered labels).
    pub fn name(&self) -> &str {
        self.name.full()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, live connections). Signed so
/// transient dips below a racing zero don't wrap.
#[derive(Debug)]
pub struct Gauge {
    pub(crate) name: MetricName,
    value: AtomicI64,
}

impl Gauge {
    pub(crate) fn new(name: MetricName) -> Gauge {
        Gauge {
            name,
            value: AtomicI64::new(0),
        }
    }

    /// The full registered name (family plus rendered labels).
    pub fn name(&self) -> &str {
        self.name.full()
    }

    /// Adds `n` (negative to decrease).
    #[inline]
    pub fn add(&self, n: i64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrements by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Overwrites the level.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_name_parses_family_and_labels() {
        let plain = MetricName::parse("ledger_appends_total");
        assert_eq!(plain.family(), "ledger_appends_total");
        assert_eq!(plain.labels(), "");
        let labelled = MetricName::parse("audit_verdicts_total{outcome=\"accept\"}");
        assert_eq!(labelled.family(), "audit_verdicts_total");
        assert_eq!(labelled.labels(), "outcome=\"accept\"");
    }

    #[test]
    #[should_panic(expected = "must be [a-zA-Z0-9_:]+")]
    fn metric_name_rejects_bad_family() {
        MetricName::parse("bad name{x=\"y\"}");
    }

    #[test]
    #[should_panic(expected = "brace-closed")]
    fn metric_name_rejects_unclosed_labels() {
        MetricName::parse("name{x=\"y\"");
    }
}
