//! The sharded name → metric registry and the process-global instance.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::metrics::{Counter, Gauge, MetricName};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Shards in the registry. Registration is rare (cold, cached by call
/// sites) but snapshots walk every shard; 16 keeps both cheap.
const SHARDS: usize = 16;

#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A get-or-register table of named metrics, sharded by FNV-1a of the
/// full name so concurrent registration from many threads rarely
/// contends. Lookups take a shard read lock; recording through the
/// returned [`Arc`] handles takes no lock at all.
#[derive(Debug, Default)]
pub struct Registry {
    shards: [RwLock<HashMap<String, Metric>>; SHARDS],
    /// Bumped on every registration, so `serial()` cheaply tells a
    /// renderer whether the metric set changed.
    registrations: AtomicU64,
}

impl Registry {
    /// An empty registry (tests; production code uses [`global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    fn shard(&self, name: &str) -> &RwLock<HashMap<String, Metric>> {
        &self.shards[(crate::fnv1a(name.as_bytes()) as usize) % SHARDS]
    }

    /// Validation happens **before** the shard write lock is taken: a
    /// malformed name must return an error without poisoning the shard
    /// for every later registration and snapshot hashing to it.
    fn try_get_or_insert(
        &self,
        name: &str,
        make: impl FnOnce(MetricName) -> Metric,
    ) -> Result<Metric, String> {
        let shard = self.shard(name);
        if let Some(m) = shard.read().expect("registry shard").get(name) {
            return Ok(m.clone());
        }
        let parsed = MetricName::try_parse(name)?;
        let mut w = shard.write().expect("registry shard");
        Ok(w.entry(name.to_owned())
            .or_insert_with(|| {
                self.registrations.fetch_add(1, Ordering::Relaxed);
                make(parsed)
            })
            .clone())
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type, or is not a valid metric name. Untrusted names go through
    /// [`Registry::try_counter`] instead.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.try_counter(name) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// As [`Registry::counter`], but invalid names and type conflicts
    /// come back as errors — the ingest path feeds this client input.
    ///
    /// # Errors
    ///
    /// `name` is malformed or already registered as another type.
    pub fn try_counter(&self, name: &str) -> Result<Arc<Counter>, String> {
        match self.try_get_or_insert(name, |n| Metric::Counter(Arc::new(Counter::new(n))))? {
            Metric::Counter(c) => Ok(c),
            other => Err(format!(
                "{name:?} is registered as a {}, not a counter",
                other.kind()
            )),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// As [`Registry::counter`].
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.try_gauge(name) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// As [`Registry::gauge`], but fallible; see [`Registry::try_counter`].
    ///
    /// # Errors
    ///
    /// `name` is malformed or already registered as another type.
    pub fn try_gauge(&self, name: &str) -> Result<Arc<Gauge>, String> {
        match self.try_get_or_insert(name, |n| Metric::Gauge(Arc::new(Gauge::new(n))))? {
            Metric::Gauge(g) => Ok(g),
            other => Err(format!(
                "{name:?} is registered as a {}, not a gauge",
                other.kind()
            )),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// As [`Registry::counter`].
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.try_histogram(name) {
            Ok(h) => h,
            Err(e) => panic!("{e}"),
        }
    }

    /// As [`Registry::histogram`], but fallible; see
    /// [`Registry::try_counter`].
    ///
    /// # Errors
    ///
    /// `name` is malformed or already registered as another type.
    pub fn try_histogram(&self, name: &str) -> Result<Arc<Histogram>, String> {
        match self.try_get_or_insert(name, |n| Metric::Histogram(Arc::new(Histogram::new(n))))? {
            Metric::Histogram(h) => Ok(h),
            other => Err(format!(
                "{name:?} is registered as a {}, not a histogram",
                other.kind()
            )),
        }
    }

    /// Whether `name` is already registered (as any metric type).
    pub fn contains(&self, name: &str) -> bool {
        self.shard(name)
            .read()
            .expect("registry shard")
            .contains_key(name)
    }

    /// Metrics registered so far (monotone; cheap).
    pub fn serial(&self) -> u64 {
        self.registrations.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every registered metric, sorted by full
    /// name. Recording continues concurrently; each value is itself
    /// consistent (see [`Histogram::snapshot`]).
    pub fn snapshot(&self) -> Snapshot {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for shard in &self.shards {
            for (name, metric) in shard.read().expect("registry shard").iter() {
                match metric {
                    Metric::Counter(c) => counters.push((name.clone(), c.get())),
                    Metric::Gauge(g) => gauges.push((name.clone(), g.get())),
                    Metric::Histogram(h) => histograms.push((name.clone(), h.snapshot())),
                }
            }
        }
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// The process-global registry every instrumented crate records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// [`Registry::counter`] on the [`global`] registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// [`Registry::gauge`] on the [`global`] registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// [`Registry::histogram`] on the [`global`] registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// A frozen view of a registry: every metric, sorted by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(full name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(full name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(full name, frozen buckets)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// The value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The value of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The frozen histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Sum of all counters in `family` across label sets (e.g. every
    /// `audit_verdicts_total{outcome=…}` variant).
    pub fn counter_family(&self, family: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _)| {
                n == family || n.starts_with(family) && n[family.len()..].starts_with('{')
            })
            .map(|&(_, v)| v)
            .sum()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the snapshot in the Prometheus text exposition format —
    /// see [`crate::expose`].
    pub fn render_prometheus(&self) -> String {
        crate::expose::render_prometheus(self)
    }

    /// Renders the snapshot as one flat JSON object — the shape
    /// `geoproof-bench` embeds under a `"metrics"` key in
    /// `BENCH_*.json`. Counters and gauges map to integers; histograms
    /// to `{count, sum, p50, p99}` objects.
    pub fn to_json(&self) -> String {
        let mut fields = Vec::new();
        for (name, v) in &self.counters {
            fields.push(format!("{}: {v}", json_escape(name)));
        }
        for (name, v) in &self.gauges {
            fields.push(format!("{}: {v}", json_escape(name)));
        }
        for (name, h) in &self.histograms {
            fields.push(format!(
                "{}: {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}}}",
                json_escape(name),
                h.count,
                h.sum,
                h.quantile(0.50),
                h.quantile(0.99),
            ));
        }
        format!("{{{}}}", fields.join(", "))
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_the_same_cell() {
        let r = Registry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(r.serial(), 1);
    }

    #[test]
    #[should_panic(expected = "registered as a counter, not a gauge")]
    fn type_conflicts_panic() {
        let r = Registry::new();
        let _ = r.counter("x_total");
        let _ = r.gauge("x_total");
    }

    #[test]
    fn fallible_registration_reports_conflicts_and_bad_names() {
        let r = Registry::new();
        let _ = r.counter("x_total");
        assert!(r.try_gauge("x_total").is_err(), "type conflict is an Err");
        assert!(r.try_counter("x_total").is_ok());
        assert!(r.try_counter("bad name").is_err());
        assert!(r.contains("x_total"));
        assert!(!r.contains("bad name"));
        // A rejected name must not poison its shard: later
        // registration and snapshotting still work everywhere.
        assert!(r.try_counter("fine_total").is_ok());
        assert_eq!(r.snapshot().counters.len(), 2);
        assert_eq!(r.serial(), 2, "rejected names never register");
    }

    #[test]
    fn snapshot_sorts_and_looks_up() {
        let r = Registry::new();
        let _ = r.counter("b_total");
        let _ = r.counter("a_total");
        let _ = r.gauge("depth");
        let _ = r.histogram("lat_us");
        let s = r.snapshot();
        assert_eq!(
            s.counters
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            ["a_total", "b_total"]
        );
        assert_eq!(s.counter("a_total"), Some(0));
        assert_eq!(s.gauge("depth"), Some(0));
        assert!(s.histogram("lat_us").is_some());
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn counter_family_sums_label_variants() {
        let r = Registry::new();
        // Values stay 0 while disabled — family membership is what's
        // under test here.
        let _ = r.counter("v_total{outcome=\"accept\"}");
        let _ = r.counter("v_total{outcome=\"reject\"}");
        let _ = r.counter("v_total_other");
        let s = r.snapshot();
        assert_eq!(s.counter_family("v_total"), 0);
        assert_eq!(s.counters.len(), 3, "label variants register independently");
    }
}
