//! Log-linear (HDR-style) histograms over `u64` values.
//!
//! Bucketing: values below [`LINEAR_MAX`] get an exact bucket each;
//! above, each power-of-two octave splits into [`SUB_BUCKETS`] equal
//! sub-buckets, so a bucket's width never exceeds 1/16 of its lower
//! edge. The full `u64` range fits in [`BUCKETS`] buckets (~7.6 KiB of
//! atomics per histogram), recording is three relaxed `fetch_add`s, and
//! any quantile estimate is bounded by its bucket's edges — a ≤ 6.25 %
//! relative error, pinned by `tests/histogram_prop.rs`.

use crate::metrics::MetricName;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per octave above the linear range.
pub(crate) const SUB_BUCKETS: usize = 16;

/// Values below this get one exact bucket each.
pub(crate) const LINEAR_MAX: u64 = SUB_BUCKETS as u64;

/// Total bucket count covering all of `u64`: 16 exact buckets, then 60
/// octaves (exponents 4..=63) × 16 sub-buckets.
pub const BUCKETS: usize = SUB_BUCKETS + 60 * SUB_BUCKETS;

/// The bucket index `value` lands in.
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    if value < LINEAR_MAX {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros() as usize; // 4..=63
    let group = exp - 4;
    let sub = ((value >> (exp - 4)) & 0xF) as usize;
    SUB_BUCKETS + group * SUB_BUCKETS + sub
}

/// The inclusive `[lo, hi]` range of values mapping to bucket `index`.
pub(crate) fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index out of range");
    if index < SUB_BUCKETS {
        return (index as u64, index as u64);
    }
    let group = (index - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = ((index - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    let lo = (LINEAR_MAX + sub) << group;
    let hi = lo + ((1u64 << group) - 1);
    (lo, hi)
}

/// A lock-free log-linear histogram: per-bucket counts plus a running
/// count and sum, all relaxed atomics behind the [`crate::enabled`]
/// gate.
pub struct Histogram {
    pub(crate) name: MetricName,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("name", &self.name.full())
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    pub(crate) fn new(name: MetricName) -> Histogram {
        Histogram {
            name,
            buckets: std::iter::repeat_with(|| AtomicU64::new(0))
                .take(BUCKETS)
                .collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The full registered name (family plus rendered labels).
    pub fn name(&self) -> &str {
        self.name.full()
    }

    /// Records one observation. Lock- and allocation-free.
    #[inline]
    pub fn record(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in whole microseconds — the
    /// convention for every `*_us` histogram.
    #[inline]
    pub fn record_duration_us(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy. Concurrent recording keeps running; the
    /// copy is internally consistent up to in-flight observations
    /// (bucket totals may momentarily lead or trail `count` by the
    /// number of racing recorders — never by more).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut nonempty = Vec::new();
        let mut bucket_total = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                bucket_total += n;
                nonempty.push((bucket_bounds(i).1, n));
            }
        }
        HistogramSnapshot {
            buckets: nonempty,
            // Derive the headline count from the buckets themselves so a
            // snapshot is self-consistent even mid-record.
            count: bucket_total,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A frozen histogram: `(inclusive upper edge, count)` for each
/// non-empty bucket in ascending order, plus totals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Non-empty buckets as `(inclusive upper bound, observations)`.
    pub buckets: Vec<(u64, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The estimated `q`-quantile (`0.0 ..= 1.0`): the upper edge of
    /// the first bucket whose cumulative count reaches `ceil(q·count)`.
    /// Bounded by the true quantile's bucket edges; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(upper, n) in &self.buckets {
            seen += n;
            if seen >= target {
                return upper;
            }
        }
        self.buckets.last().map_or(0, |&(upper, _)| upper)
    }

    /// Mean of recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_partition_u64() {
        // Consecutive buckets tile the line with no gap or overlap.
        let mut expected_lo = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i} starts off-tile");
            assert!(hi >= lo);
            expected_lo = hi.wrapping_add(1);
        }
        assert_eq!(expected_lo, 0, "last bucket must end at u64::MAX");
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn index_agrees_with_bounds_at_edges() {
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[16u64, 100, 1_000, 123_456, u64::MAX / 3, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi);
            // Width ≤ lo/16 above the linear range.
            assert!(hi - lo <= lo / 16, "bucket [{lo}, {hi}] too wide for {v}");
        }
    }
}
