//! # geoproof-obs — fleet-scale telemetry for the audit stack
//!
//! A dependency-free observability subsystem in the workspace's
//! vendored-shim discipline (crates.io is unreachable, so there is no
//! `prometheus`, no `tracing`, no `hdrhistogram` — the useful tenth of
//! each is rebuilt here on `std` atomics alone):
//!
//! * **[`Counter`]/[`Gauge`]** — single `AtomicU64`/`AtomicI64` cells;
//! * **[`Histogram`]** — log-linear (HDR-style) buckets: exact below
//!   16, then 16 sub-buckets per power of two, so any `u64` lands in a
//!   bucket whose width is ≤ 1/16 of its value and quantile estimates
//!   carry a bounded ≤ 6.25 % relative error;
//! * **[`Registry`]** — a sharded get-or-register name → metric table.
//!   [`global()`] is the process-wide instance every instrumented crate
//!   records into;
//! * **[`span`]/[`SpanJournal`]** — enter/exit events with monotonic
//!   timestamps and parent ids in a fixed-size lock-free ring buffer,
//!   drainable while writers keep appending;
//! * **[`expose`]** — Prometheus-text-format rendering, a plain-TCP
//!   scrape listener (`GET /metrics`), and a push path
//!   (`POST /ingest`) for short-lived processes (the `audit` CLI)
//!   to report verdicts into a long-lived server's registry.
//!
//! ## The overhead contract
//!
//! Recording is **disabled by default**. Every record path starts with
//! one relaxed [`enabled()`] load; while disabled, instrumented hot
//! paths pay that single branch and nothing else — no allocation, no
//! atomic RMW, no clock read (the counting-allocator suites in
//! `geoproof-bench` and this crate's `tests/disabled_alloc.rs` pin the
//! zero-allocation half of that claim). While *enabled*, recording is
//! lock-free atomics only — still allocation-free — so a scraped
//! production server never stalls a data-path thread. Registration
//! (first use of a metric name) allocates and may take a shard write
//! lock; instrumented code therefore registers once and caches the
//! returned [`std::sync::Arc`] handle.
//!
//! With the `noop` cargo feature, [`enabled()`] is a constant `false`
//! and the optimizer deletes the recording paths outright — the
//! "compiled out" arm of the CI overhead guard.
//!
//! ## Naming scheme
//!
//! `<domain>_<what>[_<unit>][_total]{label="value"}` — domains are
//! `audit`, `encode`, `ledger`, `mux`, `pool`, `fleet`; units are
//! explicit (`_us`, `_bytes`); monotone counters end in `_total`.
//! Labelled variants embed rendered Prometheus labels directly in the
//! registered name: `audit_verdicts_total{outcome="accept"}`. See
//! `docs/observability.md` for the full catalogue.

pub mod expose;
mod histogram;
mod metrics;
mod registry;
mod span;

pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use metrics::{Counter, Gauge};
pub use registry::{counter, gauge, global, histogram, Registry, Snapshot};
pub use span::{journal, span, SpanEvent, SpanGuard, SpanJournal, SpanKind};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns recording on or off process-wide. Off (the default) keeps
/// every instrumented hot path at a single relaxed load + branch.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether recording is currently on. A constant `false` under the
/// `noop` feature, so recording compiles out entirely.
#[inline(always)]
pub fn enabled() -> bool {
    if cfg!(feature = "noop") {
        return false;
    }
    ENABLED.load(Ordering::Relaxed)
}

/// Monotonic nanoseconds since the first observability call in this
/// process — the span journal's clock.
pub fn now_ns() -> u64 {
    use std::sync::OnceLock;
    static START: OnceLock<std::time::Instant> = OnceLock::new();
    START
        .get_or_init(std::time::Instant::now)
        .elapsed()
        .as_nanos() as u64
}

/// FNV-1a over a name — the deterministic shard/intern hash (std's
/// `RandomState` would randomise layout per process, making load
/// investigations unrepeatable; matches the session-table idiom in
/// `geoproof-wire`).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
