//! # geoproof-ecc
//!
//! Error-correcting codes for the GeoProof reproduction:
//!
//! * [`gf256`] — GF(2^8) field arithmetic with log/antilog tables;
//! * [`rs`] — systematic Reed–Solomon codes with full error-and-erasure
//!   decoding (syndromes → Berlekamp–Massey → Chien → Forney);
//! * [`block_code`] — the paper's view of 128-bit file blocks as code
//!   symbols, realised as 16 byte-striped RS(255, 223) lanes.
//!
//! GeoProof's setup phase (paper §V-A step 2) applies the
//! "(255, 223, 32)-Reed-Solomon code" to 255-block chunks, expanding the
//! file ≈ 14 % and letting the extractor repair bounded corruption the
//! provider might hope goes unnoticed.
//!
//! # Examples
//!
//! ```
//! use geoproof_ecc::rs::RsCode;
//!
//! let code = RsCode::paper_code();
//! assert_eq!((code.n(), code.k(), code.t()), (255, 223, 16));
//! ```

pub mod block_code;
pub mod gf256;
pub mod rs;

pub use block_code::{Block, BlockCode, BLOCK_BYTES};
pub use rs::{DecodeError, RsCode};
