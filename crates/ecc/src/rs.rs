//! Reed–Solomon codes over GF(2^8) with full error *and* erasure decoding.
//!
//! GeoProof's setup phase (paper §V-A step 2) groups file blocks into
//! 255-block chunks and applies "the adapted (255, 223, 32)-Reed-Solomon
//! code", expanding the file by ≈ 14.3 %. This module implements the codec:
//! systematic encoding, syndrome computation, Berlekamp–Massey,
//! Chien search and Forney's algorithm.
//!
//! Layout convention: [`RsCode::encode`] returns `data ‖ parity`; internally
//! parity occupies the low-degree coefficients so that the generator
//! divides the codeword polynomial.
//!
//! # Examples
//!
//! ```
//! use geoproof_ecc::rs::RsCode;
//!
//! let code = RsCode::new(255, 223);
//! let data: Vec<u8> = (0..223).map(|i| i as u8).collect();
//! let mut cw = code.encode(&data);
//! // Corrupt up to t = 16 symbols anywhere…
//! for i in 0..16 { cw[i * 13] ^= 0xA5; }
//! // …and decoding still recovers the original data.
//! let recovered = code.decode(&cw, &[]).expect("within capacity");
//! assert_eq!(recovered, data);
//! ```

use crate::gf256::Gf;

/// A systematic Reed–Solomon code RS(n, k) over GF(2^8).
///
/// Corrects up to `t = (n-k)/2` symbol errors, or any mix of `e` errors and
/// `ρ` erasures with `2e + ρ ≤ n - k`.
#[derive(Clone, Debug)]
pub struct RsCode {
    n: usize,
    k: usize,
    generator: Vec<Gf>, // ascending coefficients, monic, degree n-k
    // One 256-entry multiply-by-g[i] table per non-monic generator
    // coefficient (≤ 8 KiB total), built once at construction. The hot
    // encode loop then runs branch-free table-lookup-and-XOR instead of
    // log/exp arithmetic per symbol.
    gen_tables: Vec<[u8; 256]>,
    // Split-nibble companions to `gen_tables` for the SIMD parity path:
    // bytes 0..16 hold g·x for x in 0..16, bytes 16..32 hold g·(x<<4).
    // Multiplication by a constant is GF(2)-linear, so g·b is the XOR of
    // the two nibble lookups — the form PSHUFB can evaluate 16 lanes at
    // a time.
    gen_nibbles: Vec<[u8; 32]>,
}

/// Errors returned by [`RsCode::decode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// More errata than the code can correct.
    TooManyErrors,
    /// Input length does not equal the code length `n`.
    WrongLength {
        /// Expected codeword length.
        expected: usize,
        /// Actual input length.
        actual: usize,
    },
    /// An erasure position is out of range.
    BadErasure(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TooManyErrors => write!(f, "errata exceed correction capacity"),
            DecodeError::WrongLength { expected, actual } => {
                write!(f, "codeword length {actual}, expected {expected}")
            }
            DecodeError::BadErasure(p) => write!(f, "erasure position {p} out of range"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl RsCode {
    /// Creates an RS(n, k) code.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < k < n <= 255`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n <= 255, "n must be at most 255 for GF(2^8)");
        assert!(k >= 1 && k < n, "require 1 <= k < n");
        let nsym = n - k;
        // g(x) = Π_{j=0}^{nsym-1} (x + α^j), ascending coefficients.
        let mut generator = vec![Gf::ONE];
        for j in 0..nsym {
            generator = crate::gf256::poly_mul(&generator, &[Gf::alpha_pow(j), Gf::ONE]);
        }
        let gen_tables = generator[..nsym]
            .iter()
            .map(|&g| {
                let mut table = [0u8; 256];
                for (x, slot) in table.iter_mut().enumerate() {
                    *slot = Gf(x as u8).mul(g).0;
                }
                table
            })
            .collect();
        let gen_nibbles = generator[..nsym]
            .iter()
            .map(|&g| {
                let mut table = [0u8; 32];
                for x in 0..16usize {
                    table[x] = Gf(x as u8).mul(g).0;
                    table[16 + x] = Gf((x << 4) as u8).mul(g).0;
                }
                table
            })
            .collect();
        RsCode {
            n,
            k,
            generator,
            gen_tables,
            gen_nibbles,
        }
    }

    /// The paper's (255, 223, 32) configuration: t = 16.
    pub fn paper_code() -> Self {
        RsCode::new(255, 223)
    }

    /// Codeword length `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Message length `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Parity symbol count `n - k`.
    pub fn nsym(&self) -> usize {
        self.n - self.k
    }

    /// Error-correction radius `t = (n-k)/2`.
    pub fn t(&self) -> usize {
        self.nsym() / 2
    }

    /// Rate expansion factor `n / k` (the paper quotes ≈ 1.143 → "14 %").
    pub fn expansion(&self) -> f64 {
        self.n as f64 / self.k as f64
    }

    // API index (data-first) -> polynomial coefficient index.
    fn api_to_poly(&self, idx: usize) -> usize {
        if idx < self.k {
            self.nsym() + idx
        } else {
            idx - self.k
        }
    }

    /// Encodes `data` (length `k`) into a codeword `data ‖ parity`
    /// (length `n`).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k`.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), self.k, "data must be exactly k symbols");
        let nsym = self.nsym();
        // dividend = m(x) * x^nsym, ascending; data symbol j at coeff nsym+j.
        let mut dividend = vec![Gf::ZERO; self.n];
        for (j, &d) in data.iter().enumerate() {
            dividend[nsym + j] = Gf(d);
        }
        // Long division by the monic generator, top degree downwards.
        for deg in (nsym..self.n).rev() {
            let coef = dividend[deg];
            if coef == Gf::ZERO {
                continue;
            }
            // Subtract coef * x^(deg-nsym) * g(x).
            let shift = deg - nsym;
            for (i, &g) in self.generator.iter().enumerate() {
                dividend[shift + i] = dividend[shift + i].sub(coef.mul(g));
            }
            debug_assert_eq!(dividend[deg], Gf::ZERO);
        }
        // Remainder (low nsym coefficients) is the negated parity; in char 2
        // the codeword is m(x)·x^nsym + rem.
        let mut out = Vec::with_capacity(self.n);
        out.extend_from_slice(data);
        out.extend(dividend[..nsym].iter().map(|g| g.0));
        out
    }

    /// Computes the `nsym × width` parity bytes for `k` data rows of
    /// `width` bytes each, laid out row-major in `data` — the LFSR form
    /// of [`RsCode::encode`] run over all `width` interleaved byte lanes
    /// at once, through the precomputed multiply tables. `parity` must be
    /// `nsym × width` bytes and is fully overwritten.
    ///
    /// Byte `b` of parity row `i` equals parity symbol `i` of the
    /// codeword for lane `b` (the `b`-th byte of every data row); tests
    /// pin this equivalence against [`RsCode::encode`].
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn encode_parity_rows(&self, data: &[u8], width: usize, parity: &mut [u8]) {
        let nsym = self.nsym();
        assert_eq!(data.len(), self.k * width, "data must be k rows");
        assert_eq!(parity.len(), nsym * width, "parity must be nsym rows");
        parity.fill(0);
        if nsym == 0 {
            return;
        }
        #[cfg(target_arch = "x86_64")]
        if width == 16 && simd::available() {
            // SAFETY: `available` confirmed SSSE3 at runtime; the length
            // asserts above establish the k×16 / nsym×16 layout.
            unsafe { simd::encode_parity_rows_x16(&self.gen_nibbles, data, parity) };
            return;
        }
        self.encode_parity_rows_scalar(data, width, parity);
    }

    fn encode_parity_rows_scalar(&self, data: &[u8], width: usize, parity: &mut [u8]) {
        let nsym = self.nsym();
        // Feedback scratch: f = data row ⊕ top parity row.
        let mut f = vec![0u8; width];
        // The polynomial division in `encode` consumes coefficients top
        // degree first, i.e. data rows in reverse; each step shifts the
        // remainder registers up one row and folds f·g[i] into row i.
        for row in (0..self.k).rev() {
            let d = &data[row * width..(row + 1) * width];
            let top = &parity[(nsym - 1) * width..];
            for b in 0..width {
                f[b] = d[b] ^ top[b];
            }
            for i in (1..nsym).rev() {
                let table = &self.gen_tables[i];
                let (lo, hi) = parity.split_at_mut(i * width);
                let prev = &lo[(i - 1) * width..];
                for b in 0..width {
                    hi[b] = prev[b] ^ table[f[b] as usize];
                }
            }
            let table = &self.gen_tables[0];
            for b in 0..width {
                parity[b] = table[f[b] as usize];
            }
        }
    }

    fn syndromes(&self, poly: &[Gf]) -> Vec<Gf> {
        (0..self.nsym())
            .map(|j| {
                let x = Gf::alpha_pow(j);
                // Horner over ascending coefficients.
                let mut acc = Gf::ZERO;
                for &c in poly.iter().rev() {
                    acc = acc.mul(x).add(c);
                }
                acc
            })
            .collect()
    }

    /// Decodes a codeword (layout `data ‖ parity`), optionally with known
    /// erasure positions (API indices into the codeword).
    ///
    /// Returns the recovered `k` data symbols.
    ///
    /// # Errors
    ///
    /// [`DecodeError::TooManyErrors`] when errata exceed `2e + ρ ≤ n - k`;
    /// [`DecodeError::WrongLength`] / [`DecodeError::BadErasure`] on
    /// malformed input.
    pub fn decode(&self, codeword: &[u8], erasures: &[usize]) -> Result<Vec<u8>, DecodeError> {
        let corrected = self.correct(codeword, erasures)?;
        Ok(corrected[..self.k].to_vec())
    }

    /// Like [`RsCode::decode`] but returns the full corrected codeword.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RsCode::decode`].
    pub fn correct(&self, codeword: &[u8], erasures: &[usize]) -> Result<Vec<u8>, DecodeError> {
        if codeword.len() != self.n {
            return Err(DecodeError::WrongLength {
                expected: self.n,
                actual: codeword.len(),
            });
        }
        let nsym = self.nsym();
        if erasures.len() > nsym {
            return Err(DecodeError::TooManyErrors);
        }
        // Received polynomial, ascending coefficients.
        let mut r = vec![Gf::ZERO; self.n];
        for (idx, &b) in codeword.iter().enumerate() {
            r[self.api_to_poly(idx)] = Gf(b);
        }
        let synd = self.syndromes(&r);
        if synd.iter().all(|s| *s == Gf::ZERO) {
            return Ok(codeword.to_vec()); // already a codeword
        }

        // Erasure locator Γ(x) = Π (1 + α^p x).
        let mut gamma = vec![Gf::ONE];
        for &e in erasures {
            if e >= self.n {
                return Err(DecodeError::BadErasure(e));
            }
            let p = self.api_to_poly(e);
            gamma = crate::gf256::poly_mul(&gamma, &[Gf::ONE, Gf::alpha_pow(p)]);
        }
        let rho = erasures.len();

        // Modified syndromes Ξ = S·Γ mod x^nsym; BM over Ξ[ρ..]. The
        // product comes back zero-trimmed, but Berlekamp–Massey needs all
        // 2t positions — a trailing zero syndrome is information, not
        // padding (dropping it leaves Λ under-determined at full load).
        let mut xi = poly_mul_mod(&synd, &gamma, nsym);
        xi.resize(nsym, Gf::ZERO);
        let lambda = berlekamp_massey(&xi[rho..]);

        // Combined errata locator Ψ = Λ·Γ.
        let psi = crate::gf256::poly_mul(&lambda, &gamma);
        let errata_count = psi.len() - 1;
        if errata_count == 0 || 2 * (lambda.len() - 1) + rho > nsym {
            return Err(DecodeError::TooManyErrors);
        }

        // Chien search: roots of Ψ at x = α^{-i} mark errata at coeff i.
        let mut positions = Vec::new();
        for i in 0..self.n {
            let x_inv = Gf::alpha_pow((255 - i % 255) % 255);
            if crate::gf256::poly_eval(&psi, x_inv) == Gf::ZERO {
                positions.push(i);
            }
        }
        if positions.len() != errata_count {
            return Err(DecodeError::TooManyErrors); // locator degenerate
        }

        // Forney: Ω = S·Ψ mod x^nsym; Y = X·Ω(X^{-1}) / Ψ'(X^{-1}).
        let omega = poly_mul_mod(&synd, &psi, nsym);
        let psi_deriv = crate::gf256::poly_deriv(&psi);
        for &p in &positions {
            let x = Gf::alpha_pow(p % 255);
            let x_inv = x.inv();
            let denom = crate::gf256::poly_eval(&psi_deriv, x_inv);
            if denom == Gf::ZERO {
                return Err(DecodeError::TooManyErrors);
            }
            let y = x.mul(crate::gf256::poly_eval(&omega, x_inv)).div(denom);
            r[p] = r[p].sub(y);
        }

        // Re-check syndromes: a decoding beyond capacity lands on garbage.
        let check = self.syndromes(&r);
        if check.iter().any(|s| *s != Gf::ZERO) {
            return Err(DecodeError::TooManyErrors);
        }

        // Map back to API layout.
        let mut out = vec![0u8; self.n];
        for idx in 0..self.n {
            out[idx] = r[self.api_to_poly(idx)].0;
        }
        Ok(out)
    }
}

/// `a(x)·b(x) mod x^limit`, ascending coefficients.
fn poly_mul_mod(a: &[Gf], b: &[Gf], limit: usize) -> Vec<Gf> {
    let mut out = vec![Gf::ZERO; limit];
    for (i, &ai) in a.iter().enumerate() {
        if ai == Gf::ZERO || i >= limit {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            if i + j >= limit {
                break;
            }
            out[i + j] = out[i + j].add(ai.mul(bj));
        }
    }
    // Trim trailing zeros but keep at least one coefficient.
    while out.len() > 1 && *out.last().expect("non-empty") == Gf::ZERO {
        out.pop();
    }
    out
}

/// Berlekamp–Massey over GF(2^8): minimal LFSR (ascending-coefficient
/// locator polynomial, constant term 1) generating `seq`.
fn berlekamp_massey(seq: &[Gf]) -> Vec<Gf> {
    let mut lambda = vec![Gf::ONE];
    let mut b_poly = vec![Gf::ONE];
    let mut l = 0usize;
    let mut m = 1usize;
    let mut b = Gf::ONE;
    for n_iter in 0..seq.len() {
        // Discrepancy δ = Σ_{i=0..deg Λ} Λ_i seq[n-i]. Summing over the
        // full stored polynomial (not just L) keeps δ correct even when
        // an update transiently stores coefficients above degree L.
        let mut delta = seq[n_iter];
        for i in 1..lambda.len().min(n_iter + 1) {
            delta = delta.add(lambda[i].mul(seq[n_iter - i]));
        }
        if delta == Gf::ZERO {
            m += 1;
        } else if 2 * l <= n_iter {
            let t = lambda.clone();
            lambda = poly_sub_scaled_shift(&lambda, &b_poly, delta.div(b), m);
            l = n_iter + 1 - l;
            b_poly = t;
            b = delta;
            m = 1;
        } else {
            lambda = poly_sub_scaled_shift(&lambda, &b_poly, delta.div(b), m);
            m += 1;
        }
    }
    // Trim trailing zeros.
    while lambda.len() > 1 && *lambda.last().expect("non-empty") == Gf::ZERO {
        lambda.pop();
    }
    lambda
}

/// `a(x) - c·x^shift·b(x)` (ascending coefficients; char 2 so sub == add).
fn poly_sub_scaled_shift(a: &[Gf], b: &[Gf], c: Gf, shift: usize) -> Vec<Gf> {
    let len = a.len().max(b.len() + shift);
    let mut out = vec![Gf::ZERO; len];
    out[..a.len()].copy_from_slice(a);
    for (i, &bi) in b.iter().enumerate() {
        out[i + shift] = out[i + shift].add(c.mul(bi));
    }
    out
}

/// PSHUFB-vectorised LFSR parity for 16-byte rows.
///
/// One RS chunk stripes 16 byte lanes and a row is exactly one XMM
/// register, so the whole interleaved remainder update — `hi = prev ⊕
/// g[i]·f` across all 16 lanes — collapses to two nibble shuffles and two
/// XORs per generator coefficient. Same arithmetic as the scalar tables,
/// just 16 lanes per instruction; the block-code tests pin byte equality
/// against the per-lane reference encoder.
#[cfg(target_arch = "x86_64")]
mod simd {
    use std::arch::x86_64::*;
    use std::sync::atomic::{AtomicU8, Ordering};

    /// Runtime feature probe, cached so the hot path is one relaxed load.
    pub(super) fn available() -> bool {
        const UNKNOWN: u8 = 0;
        const NO: u8 = 1;
        const YES: u8 = 2;
        static STATE: AtomicU8 = AtomicU8::new(UNKNOWN);
        match STATE.load(Ordering::Relaxed) {
            UNKNOWN => {
                let avail = std::arch::is_x86_feature_detected!("ssse3");
                STATE.store(if avail { YES } else { NO }, Ordering::Relaxed);
                avail
            }
            found => found == YES,
        }
    }

    /// LFSR parity over 16-byte rows; mirrors `encode_parity_rows_scalar`
    /// with `width == 16` exactly.
    ///
    /// # Safety
    ///
    /// The caller must have verified SSSE3 support (see [`available`]) and
    /// that `data.len() == k·16`, `parity.len() == nsym·16` with
    /// `nsym == gen_nibbles.len() >= 1`, `parity` zeroed on entry.
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn encode_parity_rows_x16(
        gen_nibbles: &[[u8; 32]],
        data: &[u8],
        parity: &mut [u8],
    ) {
        const W: usize = 16;
        let nsym = gen_nibbles.len();
        let k = data.len() / W;
        let low_mask = _mm_set1_epi8(0x0f);
        // g[i]·f for all 16 lanes: split f into nibbles, look each half up
        // with PSHUFB, XOR the halves (constant multiply is GF(2)-linear).
        let mul = |i: usize, flo: __m128i, fhi: __m128i| {
            let t = gen_nibbles[i].as_ptr() as *const __m128i;
            let lo = _mm_shuffle_epi8(_mm_loadu_si128(t), flo);
            let hi = _mm_shuffle_epi8(_mm_loadu_si128(t.add(1)), fhi);
            _mm_xor_si128(lo, hi)
        };
        let p = parity.as_mut_ptr() as *mut __m128i;
        for row in (0..k).rev() {
            let d = _mm_loadu_si128(data.as_ptr().add(row * W) as *const __m128i);
            let f = _mm_xor_si128(d, _mm_loadu_si128(p.add(nsym - 1) as *const __m128i));
            let flo = _mm_and_si128(f, low_mask);
            let fhi = _mm_and_si128(_mm_srli_epi16::<4>(f), low_mask);
            for i in (1..nsym).rev() {
                let prev = _mm_loadu_si128(p.add(i - 1) as *const __m128i);
                _mm_storeu_si128(p.add(i), _mm_xor_si128(prev, mul(i, flo, fhi)));
            }
            _mm_storeu_si128(p, mul(0, flo, fhi));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_data(k: usize, seed: u8) -> Vec<u8> {
        (0..k)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    /// The PSHUFB parity kernel must agree byte for byte with the scalar
    /// table LFSR across code shapes, including nsym == 1 (no shift loop).
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn simd_parity_matches_scalar() {
        if !super::simd::available() {
            eprintln!("skipping: CPU lacks SSSE3");
            return;
        }
        for (n, k) in [
            (255usize, 223usize),
            (15, 11),
            (5, 2),
            (10, 7),
            (255, 1),
            (3, 2),
        ] {
            let code = RsCode::new(n, k);
            let nsym = code.nsym();
            let data: Vec<u8> = (0..k * 16)
                .map(|i| (i as u8).wrapping_mul(113).wrapping_add((n + k) as u8))
                .collect();
            let mut fast = vec![0u8; nsym * 16];
            code.encode_parity_rows(&data, 16, &mut fast);
            let mut scalar = vec![0xAAu8; nsym * 16];
            scalar.fill(0);
            code.encode_parity_rows_scalar(&data, 16, &mut scalar);
            assert_eq!(fast, scalar, "RS({n},{k})");
        }
    }

    #[test]
    fn encode_is_systematic() {
        let code = RsCode::new(15, 11);
        let data = make_data(11, 1);
        let cw = code.encode(&data);
        assert_eq!(cw.len(), 15);
        assert_eq!(&cw[..11], &data[..]);
    }

    #[test]
    fn clean_roundtrip() {
        let code = RsCode::new(255, 223);
        let data = make_data(223, 2);
        let cw = code.encode(&data);
        assert_eq!(code.decode(&cw, &[]).unwrap(), data);
    }

    #[test]
    fn corrects_single_error_every_position() {
        let code = RsCode::new(15, 11);
        let data = make_data(11, 3);
        let cw = code.encode(&data);
        for pos in 0..15 {
            let mut bad = cw.clone();
            bad[pos] ^= 0x5a;
            assert_eq!(code.decode(&bad, &[]).unwrap(), data, "pos {pos}");
        }
    }

    #[test]
    fn corrects_t_errors() {
        let code = RsCode::new(255, 223); // t = 16
        let data = make_data(223, 4);
        let cw = code.encode(&data);
        let mut bad = cw.clone();
        for i in 0..16 {
            bad[i * 15 + 1] ^= (i as u8) + 1;
        }
        assert_eq!(code.decode(&bad, &[]).unwrap(), data);
    }

    #[test]
    fn detects_more_than_t_errors() {
        let code = RsCode::new(255, 223);
        let data = make_data(223, 5);
        let cw = code.encode(&data);
        let mut bad = cw.clone();
        // 30 errors: far beyond t=16; decoder must not return wrong data
        // silently *for this pattern* (miscorrection probability is low but
        // nonzero in general; this fixed pattern is checked to fail).
        for i in 0..30 {
            bad[i * 8] ^= 0xff;
        }
        match code.decode(&bad, &[]) {
            Err(DecodeError::TooManyErrors) => {}
            Ok(d) => assert_ne!(d, data, "silently mis-corrected to original?!"),
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn corrects_full_erasure_budget() {
        let code = RsCode::new(255, 223); // 32 erasures correctable
        let data = make_data(223, 6);
        let cw = code.encode(&data);
        let mut bad = cw.clone();
        let erasures: Vec<usize> = (0..32).map(|i| i * 7).collect();
        for &e in &erasures {
            bad[e] = 0;
        }
        assert_eq!(code.decode(&bad, &erasures).unwrap(), data);
    }

    #[test]
    fn corrects_mixed_errors_and_erasures() {
        // 2e + ρ <= 32: e = 10 errors, ρ = 12 erasures.
        let code = RsCode::new(255, 223);
        let data = make_data(223, 7);
        let cw = code.encode(&data);
        let mut bad = cw.clone();
        let erasures: Vec<usize> = (0..12).map(|i| 3 * i + 100).collect();
        for &e in &erasures {
            bad[e] ^= 0x77;
        }
        for i in 0..10 {
            bad[i * 9] ^= 0x11;
        }
        assert_eq!(code.decode(&bad, &erasures).unwrap(), data);
    }

    #[test]
    fn rejects_too_many_erasures() {
        let code = RsCode::new(15, 11);
        let data = make_data(11, 8);
        let cw = code.encode(&data);
        let erasures: Vec<usize> = (0..5).collect(); // nsym = 4
        assert_eq!(code.decode(&cw, &erasures), Err(DecodeError::TooManyErrors));
    }

    #[test]
    fn rejects_wrong_length() {
        let code = RsCode::new(15, 11);
        assert!(matches!(
            code.decode(&[0u8; 14], &[]),
            Err(DecodeError::WrongLength {
                expected: 15,
                actual: 14
            })
        ));
    }

    #[test]
    fn rejects_bad_erasure_position() {
        let code = RsCode::new(15, 11);
        let data = make_data(11, 9);
        let mut cw = code.encode(&data);
        cw[0] ^= 1;
        assert_eq!(code.decode(&cw, &[99]), Err(DecodeError::BadErasure(99)));
    }

    #[test]
    fn parity_error_only_still_recovers_data() {
        let code = RsCode::new(255, 223);
        let data = make_data(223, 10);
        let cw = code.encode(&data);
        let mut bad = cw.clone();
        bad[250] ^= 0xde; // parity region
        assert_eq!(code.decode(&bad, &[]).unwrap(), data);
    }

    #[test]
    fn expansion_matches_paper_14_percent() {
        let code = RsCode::paper_code();
        let overhead = code.expansion() - 1.0;
        assert!((overhead - 0.1435).abs() < 0.001, "overhead {overhead}");
    }

    #[test]
    fn full_load_with_trailing_zero_syndrome() {
        // Regression (found by proptest): at exactly t = 16 errors some
        // patterns produce S[2t-1] = 0; Berlekamp–Massey must still see
        // all 2t syndrome positions or Λ is under-determined.
        let code = RsCode::new(255, 223);
        let mut data = vec![0u8; 150];
        data.extend_from_slice(&[
            110, 88, 165, 86, 93, 138, 154, 239, 38, 165, 6, 73, 23, 22, 232, 25, 136, 63, 245,
            144, 173, 192, 24, 166, 44, 6, 120, 95, 59, 100, 95, 237, 213, 241, 254, 99, 136, 166,
            129, 251, 217, 73, 183, 6, 42, 9, 225, 26, 15, 226, 103, 234, 84, 156, 149, 72, 193,
            14, 57, 250, 114, 53, 18, 174, 196, 47, 55, 92, 43, 98, 121, 134, 203,
        ]);
        let positions = [
            4usize, 10, 21, 40, 53, 60, 66, 82, 83, 97, 106, 123, 146, 173, 187, 241,
        ];
        let masks = [
            26u8, 7, 163, 181, 18, 118, 249, 95, 24, 76, 46, 1, 111, 13, 147, 106,
        ];
        let cw = code.encode(&data);
        let mut bad = cw.clone();
        for (i, &pos) in positions.iter().enumerate() {
            bad[pos] ^= masks[i];
        }
        assert_eq!(code.decode(&bad, &[]).unwrap(), data);
    }

    #[test]
    fn random_error_fuzz_within_capacity() {
        use geoproof_crypto_like_rng::rand_u64;
        let code = RsCode::new(255, 223);
        let mut seed = 0xfeed_beefu64;
        for trial in 0..40 {
            let data: Vec<u8> = (0..223)
                .map(|_| {
                    seed = rand_u64(seed);
                    seed as u8
                })
                .collect();
            let cw = code.encode(&data);
            let mut bad = cw.clone();
            let nerr = (trial % 17) as usize; // 0..=16
            let mut used = std::collections::HashSet::new();
            for _ in 0..nerr {
                loop {
                    seed = rand_u64(seed);
                    let pos = (seed % 255) as usize;
                    if used.insert(pos) {
                        seed = rand_u64(seed);
                        bad[pos] ^= (seed as u8) | 1; // nonzero flip
                        break;
                    }
                }
            }
            assert_eq!(code.decode(&bad, &[]).unwrap(), data, "trial {trial}");
        }
    }

    // Minimal xorshift for the fuzz test without external deps.
    mod geoproof_crypto_like_rng {
        pub fn rand_u64(mut x: u64) -> u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        }
    }
}
