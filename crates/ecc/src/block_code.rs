//! Reed–Solomon coding of 128-bit file blocks.
//!
//! The paper treats each 128-bit (16-byte) file block as one symbol of a
//! (255, 223, 32) code "over GF(2^128)". Operationally we stripe: the i-th
//! byte of every block in a chunk forms a GF(2^8) codeword, giving 16
//! parallel RS(255, 223) codes. A corrupted *block* corrupts at most one
//! symbol in each lane, so the per-chunk correction capacity — t = 16
//! blocks, or 32 erased blocks — is exactly the paper's.
//!
//! # Examples
//!
//! ```
//! use geoproof_ecc::block_code::{Block, BlockCode};
//!
//! let code = BlockCode::paper_code();
//! let chunk: Vec<Block> = (0..code.data_blocks())
//!     .map(|i| [i as u8; 16])
//!     .collect();
//! let mut encoded = code.encode_chunk(&chunk);
//! encoded[5] = [0xFF; 16]; // trash a whole block
//! let decoded = code.decode_chunk(&encoded, &[]).expect("1 error < t");
//! assert_eq!(decoded, chunk);
//! ```

use crate::rs::{DecodeError, RsCode};

/// A 128-bit file block (ℓ_B = 128 bits, "the size of an AES block").
pub type Block = [u8; BLOCK_BYTES];

/// Bytes per block.
pub const BLOCK_BYTES: usize = 16;

/// Striped Reed–Solomon code over 16-byte blocks.
#[derive(Clone, Debug)]
pub struct BlockCode {
    rs: RsCode,
}

impl BlockCode {
    /// Creates a block code from an RS(n, k) configuration.
    pub fn new(n: usize, k: usize) -> Self {
        BlockCode {
            rs: RsCode::new(n, k),
        }
    }

    /// The paper's (255, 223, 32) configuration.
    pub fn paper_code() -> Self {
        BlockCode {
            rs: RsCode::paper_code(),
        }
    }

    /// Number of data blocks per chunk (`k`).
    pub fn data_blocks(&self) -> usize {
        self.rs.k()
    }

    /// Number of encoded blocks per chunk (`n`).
    pub fn encoded_blocks(&self) -> usize {
        self.rs.n()
    }

    /// Block-error correction radius per chunk (`t`).
    pub fn t(&self) -> usize {
        self.rs.t()
    }

    /// File expansion factor `n/k`.
    pub fn expansion(&self) -> f64 {
        self.rs.expansion()
    }

    /// Encodes one chunk of exactly `k` blocks into `n` blocks
    /// (data blocks first, parity blocks appended).
    ///
    /// # Panics
    ///
    /// Panics if `chunk.len() != k`.
    pub fn encode_chunk(&self, chunk: &[Block]) -> Vec<Block> {
        assert_eq!(
            chunk.len(),
            self.rs.k(),
            "chunk must contain exactly k blocks"
        );
        let (n, k) = (self.rs.n(), self.rs.k());
        // Systematic prefix, then the 16 byte lanes' parity computed in
        // one interleaved LFSR pass (each block is one row of 16 lanes).
        let mut out = vec![[0u8; BLOCK_BYTES]; n];
        out[..k].copy_from_slice(chunk);
        let mut data = vec![0u8; k * BLOCK_BYTES];
        for (row, block) in chunk.iter().enumerate() {
            data[row * BLOCK_BYTES..(row + 1) * BLOCK_BYTES].copy_from_slice(block);
        }
        let mut parity = vec![0u8; (n - k) * BLOCK_BYTES];
        self.rs.encode_parity_rows(&data, BLOCK_BYTES, &mut parity);
        for (row, block) in out[k..].iter_mut().enumerate() {
            block.copy_from_slice(&parity[row * BLOCK_BYTES..(row + 1) * BLOCK_BYTES]);
        }
        out
    }

    /// Decodes one chunk of `n` blocks back to `k` data blocks.
    ///
    /// `erasures` lists block indices known to be bad (e.g. blocks whose
    /// segment failed MAC verification during extraction).
    ///
    /// # Errors
    ///
    /// Propagates [`DecodeError`] from any lane; all 16 lanes must decode.
    pub fn decode_chunk(
        &self,
        encoded: &[Block],
        erasures: &[usize],
    ) -> Result<Vec<Block>, DecodeError> {
        if encoded.len() != self.rs.n() {
            return Err(DecodeError::WrongLength {
                expected: self.rs.n(),
                actual: encoded.len(),
            });
        }
        let k = self.rs.k();
        let mut out = vec![[0u8; BLOCK_BYTES]; k];
        let mut lane = vec![0u8; self.rs.n()];
        for byte_idx in 0..BLOCK_BYTES {
            for (j, block) in encoded.iter().enumerate() {
                lane[j] = block[byte_idx];
            }
            let data = self.rs.decode(&lane, erasures)?;
            for (j, &symbol) in data.iter().enumerate() {
                out[j][byte_idx] = symbol;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk_of(k: usize, seed: u8) -> Vec<Block> {
        (0..k)
            .map(|i| {
                let mut b = [0u8; BLOCK_BYTES];
                for (j, byte) in b.iter_mut().enumerate() {
                    *byte = (i as u8)
                        .wrapping_mul(7)
                        .wrapping_add(j as u8)
                        .wrapping_add(seed);
                }
                b
            })
            .collect()
    }

    #[test]
    fn roundtrip_clean() {
        let code = BlockCode::paper_code();
        let chunk = chunk_of(code.data_blocks(), 1);
        let enc = code.encode_chunk(&chunk);
        assert_eq!(enc.len(), 255);
        assert_eq!(&enc[..223], &chunk[..], "systematic prefix");
        assert_eq!(code.decode_chunk(&enc, &[]).unwrap(), chunk);
    }

    #[test]
    fn corrects_16_block_errors() {
        let code = BlockCode::paper_code();
        let chunk = chunk_of(223, 2);
        let mut enc = code.encode_chunk(&chunk);
        for i in 0..16 {
            enc[i * 14] = [0xEE; BLOCK_BYTES];
        }
        assert_eq!(code.decode_chunk(&enc, &[]).unwrap(), chunk);
    }

    #[test]
    fn corrects_32_block_erasures() {
        let code = BlockCode::paper_code();
        let chunk = chunk_of(223, 3);
        let mut enc = code.encode_chunk(&chunk);
        let erasures: Vec<usize> = (0..32).map(|i| i * 7 + 2).collect();
        for &e in &erasures {
            enc[e] = [0u8; BLOCK_BYTES];
        }
        assert_eq!(code.decode_chunk(&enc, &erasures).unwrap(), chunk);
    }

    #[test]
    fn fails_beyond_capacity() {
        let code = BlockCode::paper_code();
        let chunk = chunk_of(223, 4);
        let mut enc = code.encode_chunk(&chunk);
        for i in 0..40 {
            enc[i * 6] = [0xAA; BLOCK_BYTES];
        }
        match code.decode_chunk(&enc, &[]) {
            Err(_) => {}
            Ok(d) => assert_ne!(d, chunk),
        }
    }

    #[test]
    fn small_code_roundtrip() {
        let code = BlockCode::new(15, 11);
        let chunk = chunk_of(11, 5);
        let mut enc = code.encode_chunk(&chunk);
        enc[3][7] ^= 0x40; // single-byte corruption in one block
        enc[9] = [0x01; BLOCK_BYTES]; // whole-block corruption
        assert_eq!(code.decode_chunk(&enc, &[]).unwrap(), chunk);
    }

    #[test]
    #[should_panic(expected = "exactly k blocks")]
    fn wrong_chunk_size_panics() {
        BlockCode::new(15, 11).encode_chunk(&chunk_of(10, 0));
    }

    /// The interleaved-LFSR chunk encoder must agree byte for byte with
    /// the reference per-lane polynomial division, across code shapes.
    #[test]
    fn blockwise_parity_matches_per_lane_reference() {
        for (n, k) in [(255usize, 223usize), (15, 11), (5, 2), (10, 7), (255, 1)] {
            let code = BlockCode::new(n, k);
            let chunk = chunk_of(k, (n + k) as u8);
            let fast = code.encode_chunk(&chunk);
            let mut lane = vec![0u8; k];
            for byte_idx in 0..BLOCK_BYTES {
                for (j, block) in chunk.iter().enumerate() {
                    lane[j] = block[byte_idx];
                }
                let reference = code.rs.encode(&lane);
                for (j, &symbol) in reference.iter().enumerate() {
                    assert_eq!(
                        fast[j][byte_idx], symbol,
                        "RS({n},{k}) block {j} byte {byte_idx}"
                    );
                }
            }
        }
    }
}
