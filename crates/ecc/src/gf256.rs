//! Arithmetic in GF(2^8) = GF(2)\[x\] / (x⁸ + x⁴ + x³ + x² + 1).
//!
//! The field under the (255, 223) Reed–Solomon code of GeoProof's setup
//! phase (paper §V-A step 2, citing the "adapted (255, 223, 32)-Reed-Solomon
//! code"). We use the CCSDS/standard RS polynomial 0x11d with generator
//! element α = 0x02, and precomputed log/antilog tables.

/// The reduction polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d).
pub const POLY: u16 = 0x11d;

/// The field generator α = 2.
pub const GENERATOR: u8 = 0x02;

/// Field order minus one: the multiplicative group size.
pub const GROUP_ORDER: usize = 255;

struct Tables {
    exp: [u8; 512], // doubled to avoid a mod in mul
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static T: OnceLock<Tables> = OnceLock::new();
    T.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x = 1u16;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// An element of GF(2^8).
///
/// Addition is XOR; multiplication is via log/antilog tables.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gf(pub u8);

impl Gf {
    /// The additive identity.
    pub const ZERO: Gf = Gf(0);
    /// The multiplicative identity.
    pub const ONE: Gf = Gf(1);

    /// α (the primitive element 2).
    pub const ALPHA: Gf = Gf(GENERATOR);

    /// α^i for i in [0, 255).
    pub fn alpha_pow(i: usize) -> Gf {
        Gf(tables().exp[i % GROUP_ORDER])
    }

    /// Addition (XOR). Named methods are kept instead of the `std::ops`
    /// traits: field arithmetic here is deliberately explicit (no `+`
    /// sugar in the RS hot loops), and the names mirror the coding-theory
    /// references.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Gf) -> Gf {
        Gf(self.0 ^ other.0)
    }

    /// Subtraction — identical to addition in characteristic 2.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Gf) -> Gf {
        self.add(other)
    }

    /// Multiplication.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Gf) -> Gf {
        if self.0 == 0 || other.0 == 0 {
            return Gf::ZERO;
        }
        let t = tables();
        let idx = t.log[self.0 as usize] as usize + t.log[other.0 as usize] as usize;
        Gf(t.exp[idx])
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on zero (which has no inverse).
    #[inline]
    pub fn inv(self) -> Gf {
        assert!(self.0 != 0, "zero has no inverse in GF(2^8)");
        let t = tables();
        Gf(t.exp[GROUP_ORDER - t.log[self.0 as usize] as usize])
    }

    /// Division: `self / other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Gf) -> Gf {
        self.mul(other.inv())
    }

    /// Exponentiation `self^n`.
    pub fn pow(self, mut n: u64) -> Gf {
        if self.0 == 0 {
            return if n == 0 { Gf::ONE } else { Gf::ZERO };
        }
        let t = tables();
        n %= GROUP_ORDER as u64;
        let idx = (t.log[self.0 as usize] as u64 * n) % GROUP_ORDER as u64;
        Gf(t.exp[idx as usize])
    }

    /// Discrete log base α; `None` for zero.
    pub fn log(self) -> Option<u8> {
        if self.0 == 0 {
            None
        } else {
            Some(tables().log[self.0 as usize])
        }
    }
}

/// Evaluates a polynomial (coefficients low-to-high degree) at `x` via
/// Horner's rule.
pub fn poly_eval(coeffs: &[Gf], x: Gf) -> Gf {
    let mut acc = Gf::ZERO;
    for &c in coeffs.iter().rev() {
        acc = acc.mul(x).add(c);
    }
    acc
}

/// Multiplies two polynomials over GF(2^8) (coefficients low-to-high).
pub fn poly_mul(a: &[Gf], b: &[Gf]) -> Vec<Gf> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![Gf::ZERO; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        if ai == Gf::ZERO {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            out[i + j] = out[i + j].add(ai.mul(bj));
        }
    }
    out
}

/// Formal derivative of a polynomial over GF(2^8): odd-degree coefficients
/// survive (char-2 field), shifted down one degree.
pub fn poly_deriv(coeffs: &[Gf]) -> Vec<Gf> {
    coeffs
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, &c)| if i % 2 == 1 { c } else { Gf::ZERO })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_xor() {
        assert_eq!(Gf(0x53).add(Gf(0xca)), Gf(0x99));
        assert_eq!(Gf(5).add(Gf(5)), Gf::ZERO);
    }

    #[test]
    fn alpha_powers_cycle() {
        assert_eq!(Gf::alpha_pow(0), Gf::ONE);
        assert_eq!(Gf::alpha_pow(1), Gf(2));
        assert_eq!(Gf::alpha_pow(255), Gf::ONE); // full cycle
        assert_eq!(Gf::alpha_pow(8), Gf(0x1d)); // x^8 = poly - x^8
    }

    #[test]
    fn mul_commutes_and_has_identity() {
        for a in 0..=255u8 {
            assert_eq!(Gf(a).mul(Gf::ONE), Gf(a));
            for b in [0u8, 1, 2, 37, 129, 255] {
                assert_eq!(Gf(a).mul(Gf(b)), Gf(b).mul(Gf(a)));
            }
        }
    }

    #[test]
    fn inverse_roundtrip_all_nonzero() {
        for a in 1..=255u8 {
            assert_eq!(Gf(a).mul(Gf(a).inv()), Gf::ONE, "a = {a}");
        }
    }

    #[test]
    #[should_panic(expected = "zero has no inverse")]
    fn zero_inverse_panics() {
        Gf::ZERO.inv();
    }

    #[test]
    fn distributivity_exhaustive_sample() {
        for a in (0..=255u8).step_by(17) {
            for b in (0..=255u8).step_by(23) {
                for c in (0..=255u8).step_by(31) {
                    let lhs = Gf(a).mul(Gf(b).add(Gf(c)));
                    let rhs = Gf(a).mul(Gf(b)).add(Gf(a).mul(Gf(c)));
                    assert_eq!(lhs, rhs);
                }
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = Gf(37);
        let mut acc = Gf::ONE;
        for n in 0..20u64 {
            assert_eq!(a.pow(n), acc);
            acc = acc.mul(a);
        }
    }

    #[test]
    fn pow_zero_base() {
        assert_eq!(Gf::ZERO.pow(0), Gf::ONE);
        assert_eq!(Gf::ZERO.pow(5), Gf::ZERO);
    }

    #[test]
    fn log_exp_roundtrip() {
        for a in 1..=255u8 {
            let l = Gf(a).log().unwrap();
            assert_eq!(Gf::alpha_pow(l as usize), Gf(a));
        }
        assert!(Gf::ZERO.log().is_none());
    }

    #[test]
    fn poly_eval_horner() {
        // p(x) = 1 + 2x + 3x^2 at x = 2: 1 ^ (2*2) ^ (3*4) = 1 ^ 4 ^ 12 = 9
        let p = [Gf(1), Gf(2), Gf(3)];
        assert_eq!(
            poly_eval(&p, Gf(2)),
            Gf(1).add(Gf(2).mul(Gf(2))).add(Gf(3).mul(Gf(4)))
        );
    }

    #[test]
    fn poly_mul_degree_and_identity() {
        let a = [Gf(1), Gf(2), Gf(3)];
        let one = [Gf::ONE];
        assert_eq!(poly_mul(&a, &one), a.to_vec());
        let b = [Gf(5), Gf(7)];
        let prod = poly_mul(&a, &b);
        assert_eq!(prod.len(), 4);
        // Evaluate both sides at a few points.
        for x in [Gf(0), Gf(1), Gf(2), Gf(77)] {
            assert_eq!(poly_eval(&prod, x), poly_eval(&a, x).mul(poly_eval(&b, x)));
        }
    }

    #[test]
    fn poly_deriv_char2() {
        // d/dx (c0 + c1 x + c2 x^2 + c3 x^3) = c1 + 0 + c3 x^2 (char 2)
        let p = [Gf(9), Gf(7), Gf(5), Gf(3)];
        assert_eq!(poly_deriv(&p), vec![Gf(7), Gf::ZERO, Gf(3)]);
    }
}
