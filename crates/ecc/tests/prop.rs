//! Property-based tests for GF(2^8) and the Reed–Solomon codec.

use geoproof_ecc::block_code::BlockCode;
use geoproof_ecc::gf256::{poly_eval, poly_mul, Gf};
use geoproof_ecc::rs::RsCode;
use proptest::prelude::*;

proptest! {
    // --- Field axioms ------------------------------------------------------

    #[test]
    fn gf_field_axioms(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        let (a, b, c) = (Gf(a), Gf(b), Gf(c));
        prop_assert_eq!(a.add(b), b.add(a));
        prop_assert_eq!(a.mul(b), b.mul(a));
        prop_assert_eq!(a.mul(b).mul(c), a.mul(b.mul(c)));
        prop_assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
        prop_assert_eq!(a.add(a), Gf::ZERO); // char 2
    }

    #[test]
    fn gf_inverse(a in 1u8..=255) {
        let a = Gf(a);
        prop_assert_eq!(a.mul(a.inv()), Gf::ONE);
        prop_assert_eq!(a.div(a), Gf::ONE);
    }

    #[test]
    fn gf_pow_laws(a in 1u8..=255, m in 0u64..300, n in 0u64..300) {
        let a = Gf(a);
        prop_assert_eq!(a.pow(m).mul(a.pow(n)), a.pow(m + n));
    }

    #[test]
    fn poly_mul_eval_homomorphism(
        p in prop::collection::vec(any::<u8>(), 1..8),
        q in prop::collection::vec(any::<u8>(), 1..8),
        x in any::<u8>(),
    ) {
        let p: Vec<Gf> = p.into_iter().map(Gf).collect();
        let q: Vec<Gf> = q.into_iter().map(Gf).collect();
        let prod = poly_mul(&p, &q);
        prop_assert_eq!(
            poly_eval(&prod, Gf(x)),
            poly_eval(&p, Gf(x)).mul(poly_eval(&q, Gf(x)))
        );
    }

    // --- RS codec -------------------------------------------------------------

    #[test]
    fn rs_any_code_clean_roundtrip(
        k in 2usize..30,
        extra in 2usize..10,
        seed in any::<u64>(),
    ) {
        let n = (k + 2 * extra).min(255);
        let code = RsCode::new(n, k);
        let data: Vec<u8> = (0..k).map(|i| (seed.wrapping_mul(i as u64 + 1) >> 5) as u8).collect();
        let cw = code.encode(&data);
        prop_assert_eq!(code.decode(&cw, &[]).unwrap(), data);
    }

    #[test]
    fn rs_small_code_corrects_up_to_t(
        data in prop::collection::vec(any::<u8>(), 11),
        positions in prop::collection::btree_set(0usize..15, 0..=2),
        mask in 1u8..=255,
    ) {
        let code = RsCode::new(15, 11); // t = 2
        let cw = code.encode(&data);
        let mut bad = cw.clone();
        for &p in &positions {
            bad[p] ^= mask;
        }
        prop_assert_eq!(code.decode(&bad, &[]).unwrap(), data);
    }

    #[test]
    fn rs_erasures_to_the_limit(
        data in prop::collection::vec(any::<u8>(), 11),
        erasures in prop::collection::btree_set(0usize..15, 0..=4),
    ) {
        let code = RsCode::new(15, 11); // nsym = 4 erasures
        let cw = code.encode(&data);
        let mut bad = cw.clone();
        for &e in &erasures {
            bad[e] = bad[e].wrapping_add(1);
        }
        let er: Vec<usize> = erasures.into_iter().collect();
        prop_assert_eq!(code.decode(&bad, &er).unwrap(), data);
    }

    #[test]
    fn rs_mixed_errata_within_budget(
        data in prop::collection::vec(any::<u8>(), 223),
        erasures in prop::collection::btree_set(0usize..255, 0..=10),
        errors in prop::collection::btree_set(0usize..255, 0..=5),
    ) {
        // 2e + ρ <= 32 guaranteed: e <= 5, ρ <= 10 → 20 ≤ 32. Positions may
        // overlap; an "error" at an erased spot is still just an erasure.
        let code = RsCode::paper_code();
        let cw = code.encode(&data);
        let mut bad = cw.clone();
        for &e in &erasures {
            bad[e] = 0;
        }
        for &p in &errors {
            bad[p] ^= 0x3c;
        }
        let er: Vec<usize> = erasures.into_iter().collect();
        prop_assert_eq!(code.decode(&bad, &er).unwrap(), data);
    }

    #[test]
    fn block_code_single_block_corruption(
        seed in any::<u64>(),
        victim in 0usize..15,
    ) {
        let code = BlockCode::new(15, 11);
        let chunk: Vec<[u8; 16]> = (0..11)
            .map(|i| {
                let mut b = [0u8; 16];
                for (j, byte) in b.iter_mut().enumerate() {
                    *byte = (seed >> (j % 8)) as u8 ^ (i as u8);
                }
                b
            })
            .collect();
        let mut enc = code.encode_chunk(&chunk);
        enc[victim] = [0xde; 16];
        prop_assert_eq!(code.decode_chunk(&enc, &[]).unwrap(), chunk);
    }
}
