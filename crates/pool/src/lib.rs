//! A small work-stealing thread pool shared across the GeoProof stack.
//!
//! Two very different workloads schedule through it: the audit engine
//! runs whole sessions as jobs (k sequential challenge rounds — the
//! protocol's timing only means something if the rounds of a session
//! stay ordered), and the POR streaming encoder fans chunk-groups of
//! CPU-bound encode work across workers. Both want the same shape: each
//! worker owns a deque seeded round-robin; when its own deque runs dry
//! it steals from the back of a sibling's, so a worker stuck behind slow
//! jobs sheds its backlog to idle ones.
//!
//! This crate sits below `geoproof-core` so that `geoproof-por` (which
//! `core` depends on) can use the same pool; `core` re-exports it as
//! `geoproof_core::pool` for its existing callers.
//!
//! Dependency-free by necessity (no crossbeam in the build environment):
//! per-worker `parking_lot` mutex deques, which at session/chunk-group
//! granularity cost nothing measurable.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Cached handles into the global telemetry registry — resolved once so
/// the per-job path is a gated atomic op, never a registry lookup.
struct PoolMetrics {
    jobs: Arc<geoproof_obs::Counter>,
    steals: Arc<geoproof_obs::Counter>,
    depth: Arc<geoproof_obs::Gauge>,
}

fn metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        jobs: geoproof_obs::counter("pool_jobs_total"),
        steals: geoproof_obs::counter("pool_steals_total"),
        depth: geoproof_obs::gauge("pool_queue_depth"),
    })
}

/// One unit of work.
pub type Job<'a> = Box<dyn FnOnce() + Send + 'a>;

/// What a pool run did — exposed so tests (and benches) can observe that
/// stealing actually happens under skew.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads used.
    pub workers: usize,
    /// Jobs executed.
    pub jobs: u64,
    /// Jobs a worker took from a sibling's deque.
    pub steals: u64,
}

/// Runs `jobs` to completion on `workers` threads with work stealing.
///
/// Jobs may borrow from the caller's stack (the pool is scoped); the call
/// returns when every job has finished. Zero workers is clamped to one,
/// and a worker count beyond the job count is clamped down to it — a
/// surplus worker can never run anything, but on an oversubscribed
/// machine its idle scan-and-sleep loop actively starves the workers
/// that do have jobs.
pub fn run_jobs<'env>(workers: usize, jobs: Vec<Job<'env>>) -> PoolStats {
    let total = jobs.len();
    let workers = workers.clamp(1, 256).min(total.max(1));
    let queues: Vec<Mutex<VecDeque<Job<'env>>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        queues[i % workers].lock().push_back(job);
    }
    let remaining = AtomicUsize::new(total);
    let steals = AtomicU64::new(0);
    let m = metrics();
    m.jobs.add(total as u64);
    m.depth.add(total as i64);

    // Counts a job as done even if it panics: without this, a panicking
    // job would leave `remaining` nonzero forever, the surviving workers
    // would spin, and `thread::scope` would never join (deadlock instead
    // of a propagated panic).
    struct DoneGuard<'a>(&'a AtomicUsize, &'static PoolMetrics);
    impl Drop for DoneGuard<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::AcqRel);
            self.1.depth.dec();
        }
    }

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let remaining = &remaining;
            let steals = &steals;
            scope.spawn(move || {
                let mut idle_rounds: u32 = 0;
                loop {
                    if remaining.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    // Own deque first (front: FIFO for cache-friendly order).
                    // The guard must drop before the steal scan below: a
                    // `lock().pop_front().or_else(steal)` chain keeps the
                    // own-queue guard alive for the whole statement, so two
                    // workers going empty together would each hold their own
                    // lock while trying the other's — an ABBA deadlock.
                    let mut job = queues[me].lock().pop_front();
                    if job.is_none() {
                        // Steal from a sibling's back, one lock at a time.
                        for delta in 1..queues.len() {
                            let victim = (me + delta) % queues.len();
                            if let Some(stolen) = queues[victim].lock().pop_back() {
                                steals.fetch_add(1, Ordering::Relaxed);
                                job = Some(stolen);
                                break;
                            }
                        }
                    }
                    match job {
                        Some(job) => {
                            idle_rounds = 0;
                            let guard = DoneGuard(remaining, m);
                            job();
                            drop(guard);
                        }
                        None => {
                            // Nothing runnable: yield briefly, then back
                            // off to sleeping so idle workers don't burn a
                            // core while the tail jobs finish elsewhere.
                            idle_rounds = idle_rounds.saturating_add(1);
                            if idle_rounds < 16 {
                                std::thread::yield_now();
                            } else {
                                std::thread::sleep(std::time::Duration::from_micros(
                                    100u64 << (idle_rounds - 16).min(6),
                                ));
                            }
                        }
                    }
                }
            });
        }
    });

    let stolen = steals.load(Ordering::Relaxed);
    m.steals.add(stolen);
    PoolStats {
        workers,
        jobs: total as u64,
        steals: stolen,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn every_job_runs_exactly_once() {
        let hits: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
        let jobs: Vec<Job> = (0..100)
            .map(|i| {
                let hits = &hits;
                Box::new(move || {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }) as Job
            })
            .collect();
        let stats = run_jobs(4, jobs);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(stats.jobs, 100);
        assert_eq!(stats.workers, 4);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let ran = AtomicU32::new(0);
        let jobs: Vec<Job> = (0..5)
            .map(|_| {
                let ran = &ran;
                Box::new(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                }) as Job
            })
            .collect();
        let stats = run_jobs(0, jobs);
        assert_eq!(ran.load(Ordering::Relaxed), 5);
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn skewed_load_gets_stolen() {
        // Round-robin seeding puts all the slow jobs on worker 0 (indices
        // ≡ 0 mod 2 with 2 workers); worker 1 finishes its fast jobs and
        // must steal to keep the wall clock short.
        let jobs: Vec<Job> = (0..32)
            .map(|i| {
                Box::new(move || {
                    if i % 2 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                }) as Job
            })
            .collect();
        let stats = run_jobs(2, jobs);
        assert!(stats.steals > 0, "expected stealing under skew");
    }

    #[test]
    fn panicking_job_propagates_instead_of_deadlocking() {
        // Regression: a panicking job used to leave `remaining` stuck
        // above zero, spinning the other workers forever inside
        // thread::scope. Now the panic propagates and every other job
        // still runs.
        let ran = AtomicU32::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let jobs: Vec<Job> = (0..8)
                .map(|i| {
                    let ran = &ran;
                    Box::new(move || {
                        if i == 3 {
                            panic!("boom");
                        }
                        ran.fetch_add(1, Ordering::Relaxed);
                    }) as Job
                })
                .collect();
            run_jobs(2, jobs);
        }));
        assert!(result.is_err(), "panic must propagate");
        assert_eq!(ran.load(Ordering::Relaxed), 7, "other jobs still ran");
    }

    #[test]
    fn concurrent_steal_scans_do_not_deadlock() {
        // Regression: the worker loop used to hold its own queue lock
        // across the steal scan (guard temporary lived to the end of the
        // `lock().pop_front().or_else(steal)` statement), so two workers
        // going empty together could each block on the other's queue —
        // an ABBA deadlock hit ~1–4% of encoder property-test runs on a
        // single-core host. Hammer the empty-queue/steal path and fail
        // via watchdog timeout instead of hanging the suite.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            for round in 0..300 {
                let jobs: Vec<Job> = (0..6).map(|_| Box::new(|| {}) as Job).collect();
                run_jobs(4, jobs);
                if round % 100 == 0 {
                    std::thread::yield_now();
                }
            }
            let _ = tx.send(());
        });
        rx.recv_timeout(std::time::Duration::from_secs(120))
            .expect("pool deadlocked: steal scan held the worker's own queue lock");
    }

    #[test]
    fn empty_job_list_is_fine() {
        let stats = run_jobs(8, Vec::new());
        assert_eq!(stats.jobs, 0);
    }

    #[test]
    fn jobs_may_borrow_caller_state() {
        let results = Mutex::new(Vec::new());
        let inputs = [1u32, 2, 3, 4, 5];
        let jobs: Vec<Job> = inputs
            .iter()
            .map(|&x| {
                let results = &results;
                Box::new(move || results.lock().push(x * x)) as Job
            })
            .collect();
        run_jobs(3, jobs);
        let mut got = results.into_inner();
        got.sort_unstable();
        assert_eq!(got, vec![1, 4, 9, 16, 25]);
    }
}
