//! ChaCha20 stream cipher (RFC 8439) and a deterministic random-bit
//! generator built on it.
//!
//! The GeoProof verifier needs unpredictable challenge indices and the setup
//! phase needs key material; [`ChaChaRng`] provides a seedable, reproducible
//! CSPRNG so whole protocol runs and experiments are replayable from a seed.
//!
//! # Examples
//!
//! ```
//! use geoproof_crypto::chacha::ChaChaRng;
//!
//! let mut a = ChaChaRng::from_seed([7u8; 32]);
//! let mut b = ChaChaRng::from_seed([7u8; 32]);
//! assert_eq!(a.next_u64(), b.next_u64()); // deterministic
//! ```

/// The ChaCha20 block function output size in bytes.
pub const BLOCK_LEN: usize = 64;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 block for (key, counter, nonce).
pub fn chacha20_block(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; BLOCK_LEN] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }
    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let v = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// Seedable deterministic CSPRNG producing the ChaCha20 keystream.
///
/// The 96-bit nonce is fixed to zero; uniqueness comes from the seed. The
/// 32-bit block counter gives 256 GiB of stream per seed, far beyond any
/// experiment here.
#[derive(Clone, Debug)]
pub struct ChaChaRng {
    key: [u8; 32],
    counter: u32,
    buf: [u8; BLOCK_LEN],
    pos: usize,
}

impl ChaChaRng {
    /// Creates a generator from a 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        ChaChaRng {
            key: seed,
            counter: 0,
            buf: [0u8; BLOCK_LEN],
            pos: BLOCK_LEN, // force refill on first use
        }
    }

    /// Creates a generator from a u64 seed (convenience for experiments).
    pub fn from_u64_seed(seed: u64) -> Self {
        let mut s = [0u8; 32];
        s[..8].copy_from_slice(&seed.to_le_bytes());
        Self::from_seed(s)
    }

    fn refill(&mut self) {
        self.buf = chacha20_block(&self.key, self.counter, &[0u8; 12]);
        self.counter = self
            .counter
            .checked_add(1)
            .expect("ChaChaRng exhausted 2^32 blocks");
        self.pos = 0;
    }

    /// Fills `dest` with pseudorandom bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for byte in dest.iter_mut() {
            if self.pos == BLOCK_LEN {
                self.refill();
            }
            *byte = self.buf[self.pos];
            self.pos += 1;
        }
    }

    /// Returns the next pseudorandom u32.
    pub fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_le_bytes(b)
    }

    /// Returns the next pseudorandom u64.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    /// Uniform sample in `[0, bound)` by rejection sampling (no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection zone: multiples of bound fitting in u64.
        let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (Floyd's algorithm).
    ///
    /// This is exactly the verifier's challenge-index generation
    /// `c = {c_1..c_k} ⊆ {1..n}` from the paper's Fig. 5 (0-based here).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: u64, k: usize) -> Vec<u64> {
        assert!(
            (k as u64) <= n,
            "cannot sample {k} distinct values from {n}"
        );
        let mut chosen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        for j in (n - k as u64)..n {
            let t = self.gen_range(j + 1);
            let v = if chosen.contains(&t) { j } else { t };
            chosen.insert(v);
            out.push(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key: [u8; 32] =
            from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = from_hex("000000090000004a00000000").try_into().unwrap();
        let block = chacha20_block(&key, 1, &nonce);
        let expected = from_hex(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(block.to_vec(), expected);
    }

    #[test]
    fn determinism_across_chunked_reads() {
        let mut a = ChaChaRng::from_u64_seed(42);
        let mut b = ChaChaRng::from_u64_seed(42);
        let mut buf_a = [0u8; 100];
        a.fill_bytes(&mut buf_a);
        let mut buf_b = [0u8; 100];
        for chunk in buf_b.chunks_mut(7) {
            b.fill_bytes(chunk);
        }
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaChaRng::from_u64_seed(1);
        let mut b = ChaChaRng::from_u64_seed(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = ChaChaRng::from_u64_seed(3);
        for bound in [1u64, 2, 3, 10, 255, 1 << 40] {
            for _ in 0..50 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = ChaChaRng::from_u64_seed(4);
        let sample = rng.sample_distinct(1000, 100);
        assert_eq!(sample.len(), 100);
        let set: std::collections::HashSet<_> = sample.iter().collect();
        assert_eq!(set.len(), 100, "indices must be distinct");
        assert!(sample.iter().all(|&i| i < 1000));
    }

    #[test]
    fn sample_distinct_full_range() {
        let mut rng = ChaChaRng::from_u64_seed(5);
        let mut sample = rng.sample_distinct(10, 10);
        sample.sort_unstable();
        assert_eq!(sample, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_distinct_too_many_panics() {
        ChaChaRng::from_u64_seed(0).sample_distinct(5, 6);
    }
}
