//! The edwards25519 group and scalar arithmetic modulo its prime order.
//!
//! Twisted Edwards curve `-x² + y² = 1 + d·x²·y²` over GF(2^255 - 19) with
//! `d = -121665/121666`; prime-order subgroup of size
//! `ℓ = 2^252 + 27742317777372353535851937790883648493`. This is the group
//! in which the GeoProof verifier device signs audit transcripts.

use crate::fe25519::Fe;

/// Prime subgroup order ℓ, little-endian bytes.
pub const L_BYTES_LE: [u8; 32] = [
    0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10,
];

const L_WORDS: [u64; 4] = [
    0x5812631a5cf5d3ed,
    0x14def9dea2f79cd6,
    0x0000000000000000,
    0x1000000000000000,
];

/// A scalar modulo ℓ (four little-endian u64 words, always reduced).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Scalar(pub(crate) [u64; 4]);

impl std::fmt::Debug for Scalar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Scalar(0x")?;
        for b in self.to_bytes_le().iter().rev() {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

fn ge(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
    }
    true // equal
}

fn sub_in_place(a: &mut [u64; 4], b: &[u64; 4]) {
    let mut borrow = 0u64;
    for i in 0..4 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0, "subtraction underflow");
}

impl Scalar {
    /// The zero scalar.
    pub const ZERO: Scalar = Scalar([0; 4]);
    /// The scalar one.
    pub const ONE: Scalar = Scalar([1, 0, 0, 0]);

    /// Reduces an arbitrary big-endian-bit stream of little-endian bytes
    /// modulo ℓ (Horner over bits, MSB first).
    pub fn from_bytes_mod_order(bytes: &[u8]) -> Scalar {
        let mut rem = [0u64; 4];
        for &byte in bytes.iter().rev() {
            for bit_idx in (0..8).rev() {
                let bit = (byte >> bit_idx) & 1;
                // rem = rem*2 + bit
                let mut carry = bit as u64;
                for word in rem.iter_mut() {
                    let new_carry = *word >> 63;
                    *word = (*word << 1) | carry;
                    carry = new_carry;
                }
                debug_assert_eq!(carry, 0, "remainder overflow");
                if ge(&rem, &L_WORDS) {
                    sub_in_place(&mut rem, &L_WORDS);
                }
            }
        }
        Scalar(rem)
    }

    /// Builds a scalar from a small integer.
    pub fn from_u64(x: u64) -> Scalar {
        Scalar([x, 0, 0, 0])
    }

    /// Serialises to 32 little-endian bytes.
    pub fn to_bytes_le(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, w) in self.0.iter().enumerate() {
            out[8 * i..8 * i + 8].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Addition mod ℓ.
    pub fn add(&self, other: &Scalar) -> Scalar {
        let mut sum = [0u64; 4];
        let mut carry = 0u64;
        for (i, word) in sum.iter_mut().enumerate() {
            let (s1, c1) = self.0[i].overflowing_add(other.0[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            *word = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        // Both inputs < ℓ < 2^253, so no carry out of word 3.
        debug_assert_eq!(carry, 0);
        if ge(&sum, &L_WORDS) {
            sub_in_place(&mut sum, &L_WORDS);
        }
        Scalar(sum)
    }

    /// Subtraction mod ℓ.
    pub fn sub(&self, other: &Scalar) -> Scalar {
        if ge(&self.0, &other.0) {
            let mut d = self.0;
            sub_in_place(&mut d, &other.0);
            Scalar(d)
        } else {
            let mut d = L_WORDS;
            sub_in_place(&mut d, &other.0);
            let mut sum = d;
            let mut carry = 0u64;
            for (i, word) in sum.iter_mut().enumerate() {
                let (s1, c1) = word.overflowing_add(self.0[i]);
                let (s2, c2) = s1.overflowing_add(carry);
                *word = s2;
                carry = (c1 as u64) + (c2 as u64);
            }
            debug_assert_eq!(carry, 0);
            Scalar(sum)
        }
    }

    /// Multiplication mod ℓ (schoolbook product, bitwise reduction).
    pub fn mul(&self, other: &Scalar) -> Scalar {
        // 4x4 -> 8-word product.
        let mut prod = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let t = prod[i + j] as u128 + (self.0[i] as u128) * (other.0[j] as u128) + carry;
                prod[i + j] = t as u64;
                carry = t >> 64;
            }
            prod[i + 4] = carry as u64;
        }
        // Reduce 512-bit product mod ℓ, MSB-first Horner.
        let mut rem = [0u64; 4];
        for word_idx in (0..8).rev() {
            for bit_idx in (0..64).rev() {
                let bit = (prod[word_idx] >> bit_idx) & 1;
                let mut carry = bit;
                for word in rem.iter_mut() {
                    let new_carry = *word >> 63;
                    *word = (*word << 1) | carry;
                    carry = new_carry;
                }
                if ge(&rem, &L_WORDS) {
                    sub_in_place(&mut rem, &L_WORDS);
                }
            }
        }
        Scalar(rem)
    }

    /// True if the scalar is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Bit `i` of the scalar (LSB = bit 0).
    fn bit(&self, i: usize) -> u8 {
        ((self.0[i / 64] >> (i % 64)) & 1) as u8
    }
}

/// A point on edwards25519 in extended coordinates (X:Y:Z:T), XY = ZT.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

/// Curve constant `d = -121665/121666 mod p`, computed once.
fn const_d() -> Fe {
    use std::sync::OnceLock;
    static D: OnceLock<Fe> = OnceLock::new();
    *D.get_or_init(|| {
        Fe::from_u64(121_665)
            .neg()
            .mul(&Fe::from_u64(121_666).invert())
    })
}

fn const_2d() -> Fe {
    use std::sync::OnceLock;
    static D2: OnceLock<Fe> = OnceLock::new();
    *D2.get_or_init(|| {
        let d = const_d();
        d.add(&d)
    })
}

impl PartialEq for Point {
    fn eq(&self, other: &Self) -> bool {
        // (X1/Z1 == X2/Z2) && (Y1/Z1 == Y2/Z2), cross-multiplied.
        self.x.mul(&other.z) == other.x.mul(&self.z) && self.y.mul(&other.z) == other.y.mul(&self.z)
    }
}
impl Eq for Point {}

impl Point {
    /// The group identity (neutral element).
    pub fn identity() -> Point {
        Point {
            x: Fe::ZERO,
            y: Fe::ONE,
            z: Fe::ONE,
            t: Fe::ZERO,
        }
    }

    /// The standard base point B (order ℓ).
    pub fn base() -> Point {
        use std::sync::OnceLock;
        static B: OnceLock<Point> = OnceLock::new();
        *B.get_or_init(|| {
            // y = 4/5 mod p; x recovered with even sign... The canonical
            // basepoint has x odd? Canonically Gx ends in ...5D51A (even low
            // byte 0x1a, bit0 = 0). Recover x from y and pick the
            // non-negative (even) root.
            let y = Fe::from_u64(4).mul(&Fe::from_u64(5).invert());
            Point::from_y_with_sign(&y, false).expect("base point must exist")
        })
    }

    /// Constructs the point with the given `y` and sign bit of `x`.
    ///
    /// Returns `None` if `y` is not the y-coordinate of any curve point.
    pub fn from_y_with_sign(y: &Fe, x_is_negative: bool) -> Option<Point> {
        // x² = (y² - 1) / (d·y² + 1)
        let yy = y.square();
        let num = yy.sub(&Fe::ONE);
        let den = const_d().mul(&yy).add(&Fe::ONE);
        let xx = num.mul(&den.invert());
        let mut x = xx.sqrt()?;
        if x.is_negative() != x_is_negative {
            x = x.neg();
        }
        // Handle x == 0 with requested negative sign: invalid encoding.
        if x.is_zero() && x_is_negative {
            return None;
        }
        Some(Point {
            x,
            y: *y,
            z: Fe::ONE,
            t: x.mul(y),
        })
    }

    /// Compresses to the standard 32-byte encoding (y with x-sign in the
    /// top bit).
    pub fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(&zinv);
        let y = self.y.mul(&zinv);
        let mut bytes = y.to_bytes();
        if x.is_negative() {
            bytes[31] |= 0x80;
        }
        bytes
    }

    /// Decompresses a 32-byte encoding; `None` if not a valid point.
    pub fn decompress(bytes: &[u8; 32]) -> Option<Point> {
        let x_neg = bytes[31] & 0x80 != 0;
        let mut y_bytes = *bytes;
        y_bytes[31] &= 0x7f;
        let y = Fe::from_bytes(&y_bytes);
        // Reject non-canonical y (>= p).
        if y.to_bytes() != y_bytes {
            return None;
        }
        Point::from_y_with_sign(&y, x_neg)
    }

    /// Point addition (unified formula, complete for a = -1 twisted
    /// Edwards curves).
    pub fn add(&self, other: &Point) -> Point {
        let a = self.y.sub(&self.x).mul(&other.y.sub(&other.x));
        let b = self.y.add(&self.x).mul(&other.y.add(&other.x));
        let c = self.t.mul(&const_2d()).mul(&other.t);
        let d = self.z.mul(&other.z);
        let d = d.add(&d);
        let e = b.sub(&a);
        let f = d.sub(&c);
        let g = d.add(&c);
        let h = b.add(&a);
        Point {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Point doubling.
    pub fn double(&self) -> Point {
        let a = self.x.square();
        let b = self.y.square();
        let zz = self.z.square();
        let c = zz.add(&zz);
        let d = a.neg();
        let xy = self.x.add(&self.y);
        let e = xy.square().sub(&a).sub(&b);
        let g = d.add(&b);
        let f = g.sub(&c);
        let h = d.sub(&b);
        Point {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Negation: `(x, y) -> (-x, y)`.
    pub fn neg(&self) -> Point {
        Point {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// Scalar multiplication `n * self` (double-and-add, fixed 253
    /// iterations).
    pub fn mul(&self, n: &Scalar) -> Point {
        let mut acc = Point::identity();
        for i in (0..253).rev() {
            acc = acc.double();
            if n.bit(i) == 1 {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// True if this is the identity element.
    pub fn is_identity(&self) -> bool {
        // x/z == 0 and y/z == 1  <=>  x == 0 and y == z.
        self.x.is_zero() && self.y == self.z
    }

    /// Checks the curve equation `-x² + y² = 1 + d x² y²` (affine).
    pub fn is_on_curve(&self) -> bool {
        let zinv = self.z.invert();
        let x = self.x.mul(&zinv);
        let y = self.y.mul(&zinv);
        let xx = x.square();
        let yy = y.square();
        let lhs = yy.sub(&xx);
        let rhs = Fe::ONE.add(&const_d().mul(&xx).mul(&yy));
        lhs == rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_point_is_on_curve() {
        assert!(Point::base().is_on_curve());
    }

    #[test]
    fn base_point_matches_rfc8032_encoding() {
        // RFC 8032: B compresses to 0x58666...66 (LE: 58 66 66 ... 66).
        let enc = Point::base().compress();
        assert_eq!(enc[0], 0x58);
        assert!(enc[1..31].iter().all(|&b| b == 0x66));
        assert_eq!(enc[31], 0x66);
    }

    #[test]
    fn order_annihilates_base() {
        let l = Scalar(super::L_WORDS);
        // ℓ reduces to zero as a Scalar, so multiply by ℓ via raw bits:
        // compute (ℓ-1)*B + B instead.
        let l_minus_1 = l.sub(&Scalar::ONE);
        let p = Point::base().mul(&l_minus_1).add(&Point::base());
        assert!(p.is_identity());
    }

    #[test]
    fn add_is_commutative_and_matches_double() {
        let b = Point::base();
        let two_b = b.add(&b);
        assert_eq!(two_b, b.double());
        let three_b = two_b.add(&b);
        assert_eq!(three_b, b.add(&two_b));
        assert!(three_b.is_on_curve());
    }

    #[test]
    fn scalar_mul_matches_repeated_add() {
        let b = Point::base();
        let mut acc = Point::identity();
        for k in 0..8u64 {
            assert_eq!(b.mul(&Scalar::from_u64(k)), acc, "k = {k}");
            acc = acc.add(&b);
        }
    }

    #[test]
    fn compress_decompress_roundtrip() {
        for k in [1u64, 2, 3, 42, 10_000] {
            let p = Point::base().mul(&Scalar::from_u64(k));
            let enc = p.compress();
            let q = Point::decompress(&enc).expect("valid encoding");
            assert_eq!(p, q);
        }
    }

    #[test]
    fn decompress_rejects_invalid() {
        // y = 2 is not on the curve component reachable: check a known-bad
        // encoding. Not every y works; find one that fails.
        let mut bad = 0;
        for y in 0..20u64 {
            let mut enc = Fe::from_u64(y).to_bytes();
            enc[31] &= 0x7f;
            if Point::decompress(&enc).is_none() {
                bad += 1;
            }
        }
        assert!(bad > 0, "some small y must be invalid");
    }

    #[test]
    fn neg_add_gives_identity() {
        let p = Point::base().mul(&Scalar::from_u64(7));
        assert!(p.add(&p.neg()).is_identity());
    }

    #[test]
    fn scalar_add_mul_consistency() {
        let a = Scalar::from_u64(123_456);
        let b = Scalar::from_u64(654_321);
        let p = Point::base();
        let lhs = p.mul(&a.add(&b));
        let rhs = p.mul(&a).add(&p.mul(&b));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn scalar_mul_distributes() {
        let a = Scalar::from_u64(1001);
        let b = Scalar::from_u64(2002);
        let p = Point::base();
        assert_eq!(p.mul(&a).mul(&b), p.mul(&a.mul(&b)));
    }

    #[test]
    fn scalar_reduction_of_l_is_zero() {
        assert!(Scalar::from_bytes_mod_order(&L_BYTES_LE).is_zero());
    }

    #[test]
    fn scalar_reduction_below_l_is_identity_map() {
        let s = Scalar::from_u64(99);
        assert_eq!(Scalar::from_bytes_mod_order(&s.to_bytes_le()), s);
    }

    #[test]
    fn scalar_sub_wraps() {
        let a = Scalar::from_u64(5);
        let b = Scalar::from_u64(7);
        let d = a.sub(&b); // -2 mod ℓ
        assert!(!d.is_zero());
        assert_eq!(d.add(&b), a);
        assert_eq!(d.add(&Scalar::from_u64(2)), Scalar::ZERO);
    }

    #[test]
    fn wide_reduction_matches_mul() {
        // (2^256) mod l  ==  from_bytes_mod_order over 33 bytes with a 1 on top.
        let mut wide = [0u8; 33];
        wide[32] = 1;
        let r = Scalar::from_bytes_mod_order(&wide);
        // Verify: r == 2^128 * 2^128 mod l.
        let two128 = {
            let mut b = [0u8; 17];
            b[16] = 1;
            Scalar::from_bytes_mod_order(&b)
        };
        assert_eq!(two128.mul(&two128), r);
    }
}
