//! The edwards25519 group and scalar arithmetic modulo its prime order.
//!
//! Twisted Edwards curve `-x² + y² = 1 + d·x²·y²` over GF(2^255 - 19) with
//! `d = -121665/121666`; prime-order subgroup of size
//! `ℓ = 2^252 + 27742317777372353535851937790883648493`. This is the group
//! in which the GeoProof verifier device signs audit transcripts.

use crate::fe25519::Fe;

/// Prime subgroup order ℓ, little-endian bytes.
pub const L_BYTES_LE: [u8; 32] = [
    0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10,
];

const L_WORDS: [u64; 4] = [
    0x5812631a5cf5d3ed,
    0x14def9dea2f79cd6,
    0x0000000000000000,
    0x1000000000000000,
];

/// A scalar modulo ℓ (four little-endian u64 words, always reduced).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Scalar(pub(crate) [u64; 4]);

impl std::fmt::Debug for Scalar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Scalar(0x")?;
        for b in self.to_bytes_le().iter().rev() {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

fn ge(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
    }
    true // equal
}

fn sub_in_place(a: &mut [u64; 4], b: &[u64; 4]) {
    let mut borrow = 0u64;
    for i in 0..4 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0, "subtraction underflow");
}

/// `c = ℓ - 2^252`, the low 126 bits of the group order. Folding with
/// `2^252 ≡ -c (mod ℓ)` is what makes wide reduction a handful of word
/// multiplies instead of a 512-step bit ladder.
const C_WORDS: [u64; 2] = [0x5812631a5cf5d3ed, 0x14def9dea2f79cd6];

/// Reduces a 512-bit little-endian value modulo ℓ.
///
/// Splits `v = a + b·2^252` and recurses on `b·c` (`≤ 2^386`, so depth
/// is bounded at four); the split parts are below ℓ by construction, so
/// the subtraction stays in [`Scalar::sub`]'s reduced domain.
fn reduce_wide(v: [u64; 8]) -> Scalar {
    let a = Scalar([v[0], v[1], v[2], v[3] & 0x0fff_ffff_ffff_ffff]);
    let mut b = [0u64; 5];
    for (i, word) in b.iter_mut().enumerate() {
        let lo = v[i + 3] >> 60;
        let hi = if i + 4 < 8 { v[i + 4] << 4 } else { 0 };
        *word = lo | hi;
    }
    if b == [0; 5] {
        return a; // v < 2^252 < ℓ: nothing to fold.
    }
    // b·c: column sums stay under u128 because c's words are < 2^63.
    let mut cols = [0u128; 7];
    for (i, &bw) in b.iter().enumerate() {
        for (j, &cw) in C_WORDS.iter().enumerate() {
            cols[i + j] += (bw as u128) * (cw as u128);
        }
    }
    let mut m = [0u64; 8];
    let mut carry = 0u128;
    for (k, &col) in cols.iter().enumerate() {
        let t = col + carry;
        m[k] = t as u64;
        carry = t >> 64;
    }
    m[7] = carry as u64;
    a.sub(&reduce_wide(m))
}

/// `2^256 mod ℓ`, the chunk stride of [`Scalar::from_bytes_mod_order`].
fn two_256_mod_l() -> Scalar {
    use std::sync::OnceLock;
    static R: OnceLock<Scalar> = OnceLock::new();
    *R.get_or_init(|| reduce_wide([0, 0, 0, 0, 1, 0, 0, 0]))
}

impl Scalar {
    /// The zero scalar.
    pub const ZERO: Scalar = Scalar([0; 4]);
    /// The scalar one.
    pub const ONE: Scalar = Scalar([1, 0, 0, 0]);

    /// Reduces an arbitrary-length little-endian byte string modulo ℓ
    /// (Horner over 256-bit chunks, each folded with `reduce_wide`).
    pub fn from_bytes_mod_order(bytes: &[u8]) -> Scalar {
        let mut rem = Scalar::ZERO;
        for ci in (0..bytes.len().div_ceil(32)).rev() {
            let start = ci * 32;
            let end = (start + 32).min(bytes.len());
            let mut chunk = [0u8; 32];
            chunk[..end - start].copy_from_slice(&bytes[start..end]);
            let mut words = [0u64; 8];
            for (w, word) in words.iter_mut().take(4).enumerate() {
                *word = u64::from_le_bytes(chunk[8 * w..8 * w + 8].try_into().expect("8"));
            }
            rem = rem.mul(&two_256_mod_l()).add(&reduce_wide(words));
        }
        rem
    }

    /// Builds a scalar from a small integer.
    pub fn from_u64(x: u64) -> Scalar {
        Scalar([x, 0, 0, 0])
    }

    /// Serialises to 32 little-endian bytes.
    pub fn to_bytes_le(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, w) in self.0.iter().enumerate() {
            out[8 * i..8 * i + 8].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Addition mod ℓ.
    pub fn add(&self, other: &Scalar) -> Scalar {
        let mut sum = [0u64; 4];
        let mut carry = 0u64;
        for (i, word) in sum.iter_mut().enumerate() {
            let (s1, c1) = self.0[i].overflowing_add(other.0[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            *word = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        // Both inputs < ℓ < 2^253, so no carry out of word 3.
        debug_assert_eq!(carry, 0);
        if ge(&sum, &L_WORDS) {
            sub_in_place(&mut sum, &L_WORDS);
        }
        Scalar(sum)
    }

    /// Subtraction mod ℓ.
    pub fn sub(&self, other: &Scalar) -> Scalar {
        if ge(&self.0, &other.0) {
            let mut d = self.0;
            sub_in_place(&mut d, &other.0);
            Scalar(d)
        } else {
            let mut d = L_WORDS;
            sub_in_place(&mut d, &other.0);
            let mut sum = d;
            let mut carry = 0u64;
            for (i, word) in sum.iter_mut().enumerate() {
                let (s1, c1) = word.overflowing_add(self.0[i]);
                let (s2, c2) = s1.overflowing_add(carry);
                *word = s2;
                carry = (c1 as u64) + (c2 as u64);
            }
            debug_assert_eq!(carry, 0);
            Scalar(sum)
        }
    }

    /// Multiplication mod ℓ (schoolbook product, folded reduction).
    pub fn mul(&self, other: &Scalar) -> Scalar {
        // 4x4 -> 8-word product.
        let mut prod = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let t = prod[i + j] as u128 + (self.0[i] as u128) * (other.0[j] as u128) + carry;
                prod[i + j] = t as u64;
                carry = t >> 64;
            }
            prod[i + 4] = carry as u64;
        }
        reduce_wide(prod)
    }

    /// True if the scalar is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Bit `i` of the scalar (LSB = bit 0).
    fn bit(&self, i: usize) -> u8 {
        ((self.0[i / 64] >> (i % 64)) & 1) as u8
    }
}

/// A point on edwards25519 in extended coordinates (X:Y:Z:T), XY = ZT.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

/// Curve constant `d = -121665/121666 mod p`, computed once.
fn const_d() -> Fe {
    use std::sync::OnceLock;
    static D: OnceLock<Fe> = OnceLock::new();
    *D.get_or_init(|| {
        Fe::from_u64(121_665)
            .neg()
            .mul(&Fe::from_u64(121_666).invert())
    })
}

fn const_2d() -> Fe {
    use std::sync::OnceLock;
    static D2: OnceLock<Fe> = OnceLock::new();
    *D2.get_or_init(|| {
        let d = const_d();
        d.add(&d)
    })
}

impl PartialEq for Point {
    fn eq(&self, other: &Self) -> bool {
        // (X1/Z1 == X2/Z2) && (Y1/Z1 == Y2/Z2), cross-multiplied.
        self.x.mul(&other.z) == other.x.mul(&self.z) && self.y.mul(&other.z) == other.y.mul(&self.z)
    }
}
impl Eq for Point {}

impl Point {
    /// The group identity (neutral element).
    pub fn identity() -> Point {
        Point {
            x: Fe::ZERO,
            y: Fe::ONE,
            z: Fe::ONE,
            t: Fe::ZERO,
        }
    }

    /// The standard base point B (order ℓ).
    pub fn base() -> Point {
        use std::sync::OnceLock;
        static B: OnceLock<Point> = OnceLock::new();
        *B.get_or_init(|| {
            // y = 4/5 mod p; x recovered with even sign... The canonical
            // basepoint has x odd? Canonically Gx ends in ...5D51A (even low
            // byte 0x1a, bit0 = 0). Recover x from y and pick the
            // non-negative (even) root.
            let y = Fe::from_u64(4).mul(&Fe::from_u64(5).invert());
            Point::from_y_with_sign(&y, false).expect("base point must exist")
        })
    }

    /// Constructs the point with the given `y` and sign bit of `x`.
    ///
    /// Returns `None` if `y` is not the y-coordinate of any curve point.
    pub fn from_y_with_sign(y: &Fe, x_is_negative: bool) -> Option<Point> {
        // x² = (y² - 1) / (d·y² + 1), rooted in one exponentiation.
        let yy = y.square();
        let num = yy.sub(&Fe::ONE);
        let den = const_d().mul(&yy).add(&Fe::ONE);
        let mut x = Fe::sqrt_ratio(&num, &den)?;
        if x.is_negative() != x_is_negative {
            x = x.neg();
        }
        // Handle x == 0 with requested negative sign: invalid encoding.
        if x.is_zero() && x_is_negative {
            return None;
        }
        Some(Point {
            x,
            y: *y,
            z: Fe::ONE,
            t: x.mul(y),
        })
    }

    /// Compresses to the standard 32-byte encoding (y with x-sign in the
    /// top bit).
    pub fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(&zinv);
        let y = self.y.mul(&zinv);
        let mut bytes = y.to_bytes();
        if x.is_negative() {
            bytes[31] |= 0x80;
        }
        bytes
    }

    /// Decompresses a 32-byte encoding; `None` if not a valid point.
    pub fn decompress(bytes: &[u8; 32]) -> Option<Point> {
        let x_neg = bytes[31] & 0x80 != 0;
        let mut y_bytes = *bytes;
        y_bytes[31] &= 0x7f;
        let y = Fe::from_bytes(&y_bytes);
        // Reject non-canonical y (>= p).
        if y.to_bytes() != y_bytes {
            return None;
        }
        Point::from_y_with_sign(&y, x_neg)
    }

    /// Point addition (unified formula, complete for a = -1 twisted
    /// Edwards curves).
    pub fn add(&self, other: &Point) -> Point {
        let a = self.y.sub(&self.x).mul(&other.y.sub(&other.x));
        let b = self.y.add(&self.x).mul(&other.y.add(&other.x));
        let c = self.t.mul(&const_2d()).mul(&other.t);
        let d = self.z.mul(&other.z);
        let d = d.add(&d);
        let e = b.sub(&a);
        let f = d.sub(&c);
        let g = d.add(&c);
        let h = b.add(&a);
        Point {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Point doubling.
    pub fn double(&self) -> Point {
        let a = self.x.square();
        let b = self.y.square();
        let zz = self.z.square();
        let c = zz.add(&zz);
        let d = a.neg();
        let xy = self.x.add(&self.y);
        let e = xy.square().sub(&a).sub(&b);
        let g = d.add(&b);
        let f = g.sub(&c);
        let h = d.sub(&b);
        Point {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Negation: `(x, y) -> (-x, y)`.
    pub fn neg(&self) -> Point {
        Point {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// Scalar multiplication `n * self` (double-and-add, fixed 253
    /// iterations).
    pub fn mul(&self, n: &Scalar) -> Point {
        let mut acc = Point::identity();
        for i in (0..253).rev() {
            acc = acc.double();
            if n.bit(i) == 1 {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// True if this is the identity element.
    pub fn is_identity(&self) -> bool {
        // x/z == 0 and y/z == 1  <=>  x == 0 and y == z.
        self.x.is_zero() && self.y == self.z
    }

    /// Checks the curve equation `-x² + y² = 1 + d x² y²` (affine).
    pub fn is_on_curve(&self) -> bool {
        let zinv = self.z.invert();
        let x = self.x.mul(&zinv);
        let y = self.y.mul(&zinv);
        let xx = x.square();
        let yy = y.square();
        let lhs = yy.sub(&xx);
        let rhs = Fe::ONE.add(&const_d().mul(&xx).mul(&yy));
        lhs == rhs
    }
}

/// A precomputed table for scalar multiplication by one **fixed** point:
/// 64 radix-16 windows of 15 odd-and-even multiples each, so a 253-bit
/// multiply costs at most 64 additions and **zero** doublings (against
/// the 253 doublings + ~126 additions of the generic ladder).
///
/// Build one per long-lived point — the basepoint table is cached
/// process-wide behind [`base_table`]; verifiers with a hot public key
/// (the TPA's) build their own via [`FixedBaseTable::new`].
#[derive(Clone)]
pub struct FixedBaseTable {
    /// `windows[i][j] = (j+1) · 16^i · P`.
    windows: Vec<[Point; 15]>,
}

impl FixedBaseTable {
    /// Precomputes the table for `point` (~960 point additions, done
    /// once).
    pub fn new(point: &Point) -> FixedBaseTable {
        let mut windows = Vec::with_capacity(64);
        let mut base = *point;
        for _ in 0..64 {
            let mut row = [base; 15];
            for j in 1..15 {
                row[j] = row[j - 1].add(&base);
            }
            windows.push(row);
            base = row[14].add(&base); // 16·base
        }
        FixedBaseTable { windows }
    }

    /// `n · P` by table lookup: one addition per non-zero nibble of `n`.
    pub fn mul(&self, n: &Scalar) -> Point {
        let bytes = n.to_bytes_le();
        let mut acc = Point::identity();
        for (i, row) in self.windows.iter().enumerate() {
            let byte = bytes[i / 2];
            let digit = if i % 2 == 0 { byte & 0xf } else { byte >> 4 };
            if digit != 0 {
                acc = acc.add(&row[digit as usize - 1]);
            }
        }
        acc
    }
}

/// The process-wide precomputed table for the standard basepoint.
pub fn base_table() -> &'static FixedBaseTable {
    use std::sync::OnceLock;
    static T: OnceLock<FixedBaseTable> = OnceLock::new();
    T.get_or_init(|| FixedBaseTable::new(&Point::base()))
}

/// `Σ scalars[i] · points[i]` via Pippenger's bucket method, the shared
/// multi-scalar multiplication under batched signature verification.
/// Cost per point falls with batch size (window width grows with `n`);
/// empty input yields the identity.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn multiscalar_mul(scalars: &[Scalar], points: &[Point]) -> Point {
    assert_eq!(scalars.len(), points.len(), "scalar/point length mismatch");
    let n = scalars.len();
    if n == 0 {
        return Point::identity();
    }
    let w: usize = match n {
        1..=7 => 4,
        8..=31 => 5,
        32..=127 => 6,
        128..=511 => 7,
        _ => 8,
    };
    let n_windows = 253usize.div_ceil(w);
    let mask = (1u64 << w) - 1;
    let digit = |s: &Scalar, win: usize| -> usize {
        let bit = win * w;
        let (word, shift) = (bit / 64, bit % 64);
        let mut d = s.0[word] >> shift;
        if shift + w > 64 && word + 1 < 4 {
            d |= s.0[word + 1] << (64 - shift);
        }
        (d & mask) as usize
    };
    let mut acc = Point::identity();
    let mut buckets = vec![Point::identity(); (1 << w) - 1];
    for win in (0..n_windows).rev() {
        if !acc.is_identity() {
            for _ in 0..w {
                acc = acc.double();
            }
        }
        // Scatter into buckets; track the highest live bucket so the
        // running-sum sweep doesn't pay for empty high multiples (the
        // common case once 128-bit batching coefficients run out of
        // windows).
        let mut top = 0usize;
        for b in buckets.iter_mut() {
            *b = Point::identity();
        }
        for (s, p) in scalars.iter().zip(points) {
            let d = digit(s, win);
            if d != 0 {
                buckets[d - 1] = buckets[d - 1].add(p);
                top = top.max(d);
            }
        }
        if top == 0 {
            continue;
        }
        // Σ d·bucket[d] by the running-sum trick: two adds per bucket.
        let mut running = Point::identity();
        let mut sum = Point::identity();
        for b in buckets[..top].iter().rev() {
            running = running.add(b);
            sum = sum.add(&running);
        }
        acc = acc.add(&sum);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_point_is_on_curve() {
        assert!(Point::base().is_on_curve());
    }

    #[test]
    fn base_point_matches_rfc8032_encoding() {
        // RFC 8032: B compresses to 0x58666...66 (LE: 58 66 66 ... 66).
        let enc = Point::base().compress();
        assert_eq!(enc[0], 0x58);
        assert!(enc[1..31].iter().all(|&b| b == 0x66));
        assert_eq!(enc[31], 0x66);
    }

    #[test]
    fn order_annihilates_base() {
        let l = Scalar(super::L_WORDS);
        // ℓ reduces to zero as a Scalar, so multiply by ℓ via raw bits:
        // compute (ℓ-1)*B + B instead.
        let l_minus_1 = l.sub(&Scalar::ONE);
        let p = Point::base().mul(&l_minus_1).add(&Point::base());
        assert!(p.is_identity());
    }

    #[test]
    fn add_is_commutative_and_matches_double() {
        let b = Point::base();
        let two_b = b.add(&b);
        assert_eq!(two_b, b.double());
        let three_b = two_b.add(&b);
        assert_eq!(three_b, b.add(&two_b));
        assert!(three_b.is_on_curve());
    }

    #[test]
    fn scalar_mul_matches_repeated_add() {
        let b = Point::base();
        let mut acc = Point::identity();
        for k in 0..8u64 {
            assert_eq!(b.mul(&Scalar::from_u64(k)), acc, "k = {k}");
            acc = acc.add(&b);
        }
    }

    #[test]
    fn compress_decompress_roundtrip() {
        for k in [1u64, 2, 3, 42, 10_000] {
            let p = Point::base().mul(&Scalar::from_u64(k));
            let enc = p.compress();
            let q = Point::decompress(&enc).expect("valid encoding");
            assert_eq!(p, q);
        }
    }

    #[test]
    fn decompress_rejects_invalid() {
        // y = 2 is not on the curve component reachable: check a known-bad
        // encoding. Not every y works; find one that fails.
        let mut bad = 0;
        for y in 0..20u64 {
            let mut enc = Fe::from_u64(y).to_bytes();
            enc[31] &= 0x7f;
            if Point::decompress(&enc).is_none() {
                bad += 1;
            }
        }
        assert!(bad > 0, "some small y must be invalid");
    }

    #[test]
    fn neg_add_gives_identity() {
        let p = Point::base().mul(&Scalar::from_u64(7));
        assert!(p.add(&p.neg()).is_identity());
    }

    #[test]
    fn scalar_add_mul_consistency() {
        let a = Scalar::from_u64(123_456);
        let b = Scalar::from_u64(654_321);
        let p = Point::base();
        let lhs = p.mul(&a.add(&b));
        let rhs = p.mul(&a).add(&p.mul(&b));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn scalar_mul_distributes() {
        let a = Scalar::from_u64(1001);
        let b = Scalar::from_u64(2002);
        let p = Point::base();
        assert_eq!(p.mul(&a).mul(&b), p.mul(&a.mul(&b)));
    }

    #[test]
    fn scalar_reduction_of_l_is_zero() {
        assert!(Scalar::from_bytes_mod_order(&L_BYTES_LE).is_zero());
    }

    #[test]
    fn scalar_reduction_below_l_is_identity_map() {
        let s = Scalar::from_u64(99);
        assert_eq!(Scalar::from_bytes_mod_order(&s.to_bytes_le()), s);
    }

    #[test]
    fn scalar_sub_wraps() {
        let a = Scalar::from_u64(5);
        let b = Scalar::from_u64(7);
        let d = a.sub(&b); // -2 mod ℓ
        assert!(!d.is_zero());
        assert_eq!(d.add(&b), a);
        assert_eq!(d.add(&Scalar::from_u64(2)), Scalar::ZERO);
    }

    /// The original bit-at-a-time Horner reduction, kept as the oracle
    /// for the folded fast path.
    fn reduce_bits_reference(bytes: &[u8]) -> Scalar {
        let mut rem = [0u64; 4];
        for &byte in bytes.iter().rev() {
            for bit_idx in (0..8).rev() {
                let bit = (byte >> bit_idx) & 1;
                let mut carry = bit as u64;
                for word in rem.iter_mut() {
                    let new_carry = *word >> 63;
                    *word = (*word << 1) | carry;
                    carry = new_carry;
                }
                if ge(&rem, &L_WORDS) {
                    sub_in_place(&mut rem, &L_WORDS);
                }
            }
        }
        Scalar(rem)
    }

    #[test]
    fn folded_reduction_matches_bitwise_reference() {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        for len in [0usize, 1, 5, 16, 31, 32, 33, 48, 64, 96] {
            let bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            assert_eq!(
                Scalar::from_bytes_mod_order(&bytes),
                reduce_bits_reference(&bytes),
                "len {len}"
            );
        }
        // Boundary values: ℓ-1, ℓ, ℓ+1, all-ones.
        for delta in [-1i64, 0, 1] {
            let mut s = Scalar(L_WORDS).to_bytes_le();
            let mut carry = delta;
            for b in s.iter_mut() {
                let v = *b as i64 + carry;
                *b = (v & 0xff) as u8;
                carry = v >> 8;
            }
            assert_eq!(
                Scalar::from_bytes_mod_order(&s),
                reduce_bits_reference(&s),
                "ℓ{delta:+}"
            );
        }
        assert_eq!(
            Scalar::from_bytes_mod_order(&[0xff; 64]),
            reduce_bits_reference(&[0xff; 64])
        );
    }

    #[test]
    fn fixed_base_table_matches_generic_mul() {
        let table = base_table();
        let mut s = Scalar::from_u64(1);
        for _ in 0..20 {
            assert_eq!(table.mul(&s), Point::base().mul(&s));
            s = s.mul(&Scalar::from_u64(0xdead_beef)).add(&Scalar::ONE);
        }
        assert!(table.mul(&Scalar::ZERO).is_identity());
        // ℓ-1 exercises every window.
        let top = Scalar(L_WORDS).sub(&Scalar::ONE);
        assert_eq!(table.mul(&top), Point::base().mul(&top));
        // A non-basepoint table.
        let p = Point::base().mul(&Scalar::from_u64(97));
        let t2 = FixedBaseTable::new(&p);
        assert_eq!(
            t2.mul(&Scalar::from_u64(12345)),
            p.mul(&Scalar::from_u64(12345))
        );
    }

    #[test]
    fn multiscalar_matches_sum_of_muls() {
        let mut state = 42u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            state
        };
        for n in [0usize, 1, 2, 3, 9, 40] {
            let scalars: Vec<Scalar> = (0..n)
                .map(|_| {
                    let mut b = [0u8; 32];
                    for x in b.iter_mut() {
                        *x = next() as u8;
                    }
                    Scalar::from_bytes_mod_order(&b)
                })
                .collect();
            let points: Vec<Point> = (0..n)
                .map(|_| Point::base().mul(&Scalar::from_u64(next() % 1000 + 1)))
                .collect();
            let expect = scalars
                .iter()
                .zip(&points)
                .fold(Point::identity(), |acc, (s, p)| acc.add(&p.mul(s)));
            assert_eq!(multiscalar_mul(&scalars, &points), expect, "n = {n}");
        }
    }

    #[test]
    fn wide_reduction_matches_mul() {
        // (2^256) mod l  ==  from_bytes_mod_order over 33 bytes with a 1 on top.
        let mut wide = [0u8; 33];
        wide[32] = 1;
        let r = Scalar::from_bytes_mod_order(&wide);
        // Verify: r == 2^128 * 2^128 mod l.
        let two128 = {
            let mut b = [0u8; 17];
            b[16] = 1;
            Scalar::from_bytes_mod_order(&b)
        };
        assert_eq!(two128.mul(&two128), r);
    }
}
