//! HKDF (RFC 5869) over HMAC-SHA-256.
//!
//! GeoProof's setup derives independent keys for encryption, permutation and
//! MAC tagging from the owner's master secret; the distance-bounding
//! protocol of Reid et al. (paper Fig. 3) likewise derives a session
//! encryption key with a KDF. Both use this module.
//!
//! # Examples
//!
//! ```
//! use geoproof_crypto::kdf::Hkdf;
//!
//! let hk = Hkdf::extract(b"salt", b"input key material");
//! let k1 = hk.expand(b"enc", 16);
//! let k2 = hk.expand(b"mac", 32);
//! assert_ne!(&k1[..], &k2[..16]);
//! ```

use crate::hmac::HmacSha256;
use crate::sha256::DIGEST_LEN;

/// An extracted pseudorandom key ready for expansion.
#[derive(Clone)]
pub struct Hkdf {
    prk: [u8; DIGEST_LEN],
}

impl std::fmt::Debug for Hkdf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hkdf").finish_non_exhaustive()
    }
}

impl Hkdf {
    /// HKDF-Extract: condenses `ikm` into a pseudorandom key using `salt`.
    pub fn extract(salt: &[u8], ikm: &[u8]) -> Self {
        Hkdf {
            prk: HmacSha256::mac(salt, ikm),
        }
    }

    /// Builds an `Hkdf` directly from a 32-byte pseudorandom key.
    pub fn from_prk(prk: [u8; DIGEST_LEN]) -> Self {
        Hkdf { prk }
    }

    /// HKDF-Expand: derives `len` bytes of output keyed to `info`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 255 * 32` (the RFC 5869 limit).
    pub fn expand(&self, info: &[u8], len: usize) -> Vec<u8> {
        assert!(len <= 255 * DIGEST_LEN, "HKDF output too long");
        let mut out = Vec::with_capacity(len);
        let mut t: Vec<u8> = Vec::new();
        let mut counter = 1u8;
        while out.len() < len {
            let mut h = HmacSha256::new(&self.prk);
            h.update(&t);
            h.update(info);
            h.update(&[counter]);
            let block = h.finalize();
            let take = (len - out.len()).min(DIGEST_LEN);
            out.extend_from_slice(&block[..take]);
            t = block.to_vec();
            counter = counter.wrapping_add(1);
        }
        out
    }

    /// Convenience: derives a fixed 16-byte (AES-128) key.
    pub fn expand_key16(&self, info: &[u8]) -> [u8; 16] {
        self.expand(info, 16).try_into().expect("length is 16")
    }

    /// Convenience: derives a fixed 32-byte key.
    pub fn expand_key32(&self, info: &[u8]) -> [u8; 32] {
        self.expand(info, 32).try_into().expect("length is 32")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt = from_hex("000102030405060708090a0b0c");
        let info = from_hex("f0f1f2f3f4f5f6f7f8f9");
        let hk = Hkdf::extract(&salt, &ikm);
        let okm = hk.expand(&info, 42);
        assert_eq!(
            okm,
            from_hex(
                "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
                 34007208d5b887185865"
            )
        );
    }

    // RFC 5869 test case 3 (empty salt and info).
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0bu8; 22];
        let hk = Hkdf::extract(&[], &ikm);
        let okm = hk.expand(&[], 42);
        assert_eq!(
            okm,
            from_hex(
                "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d\
                 9d201395faa4b61a96c8"
            )
        );
    }

    #[test]
    fn distinct_info_distinct_keys() {
        let hk = Hkdf::extract(b"s", b"master");
        assert_ne!(hk.expand_key16(b"a"), hk.expand_key16(b"b"));
        assert_ne!(hk.expand_key32(b"a"), hk.expand_key32(b"b"));
    }

    #[test]
    fn expand_is_prefix_consistent() {
        let hk = Hkdf::extract(b"s", b"master");
        let long = hk.expand(b"x", 64);
        let short = hk.expand(b"x", 16);
        assert_eq!(&long[..16], &short[..]);
    }

    #[test]
    #[should_panic(expected = "HKDF output too long")]
    fn expand_too_long_panics() {
        Hkdf::extract(b"s", b"m").expand(b"x", 255 * 32 + 1);
    }
}
