//! AES-128 block cipher implemented from scratch per FIPS 197.
//!
//! GeoProof's setup phase (§V-A, step 3) encrypts the error-corrected file
//! with a symmetric cipher before permuting and tagging it; the paper fixes
//! the block size ℓ_B = 128 bits "as it is the size of an AES block". This
//! module provides that cipher. The table-based implementation is not
//! side-channel hardened — the threat model here is a remote storage
//! provider, not a co-resident cache attacker.
//!
//! # Examples
//!
//! ```
//! use geoproof_crypto::aes::Aes128;
//!
//! let key = [0u8; 16];
//! let cipher = Aes128::new(&key);
//! let pt = *b"0123456789abcdef";
//! let ct = cipher.encrypt_block(&pt);
//! assert_eq!(cipher.decrypt_block(&ct), pt);
//! ```

/// Bytes per AES block (ℓ_B = 128 bits in the paper).
pub const BLOCK_LEN: usize = 16;

const NR: usize = 10; // rounds for AES-128
const NK: usize = 4; // key words

/// Forward S-box, generated at first use from the GF(2^8) inverse plus the
/// affine transform, then cached.
fn sbox() -> &'static [u8; 256] {
    use std::sync::OnceLock;
    static SBOX: OnceLock<[u8; 256]> = OnceLock::new();
    SBOX.get_or_init(|| {
        let mut sb = [0u8; 256];
        // p and q walk multiplicative generator 3 and its inverse.
        let (mut p, mut q) = (1u8, 1u8);
        loop {
            // p := p * 3 in GF(2^8)
            p = p ^ (p << 1) ^ if p & 0x80 != 0 { 0x1b } else { 0 };
            // q := q / 3 (q * 0xf6)
            q ^= q << 1;
            q ^= q << 2;
            q ^= q << 4;
            if q & 0x80 != 0 {
                q ^= 0x09;
            }
            let x = q ^ q.rotate_left(1) ^ q.rotate_left(2) ^ q.rotate_left(3) ^ q.rotate_left(4);
            sb[p as usize] = x ^ 0x63;
            if p == 1 {
                break;
            }
        }
        sb[0] = 0x63;
        sb
    })
}

fn inv_sbox() -> &'static [u8; 256] {
    use std::sync::OnceLock;
    static INV: OnceLock<[u8; 256]> = OnceLock::new();
    INV.get_or_init(|| {
        let sb = sbox();
        let mut inv = [0u8; 256];
        for (i, &v) in sb.iter().enumerate() {
            inv[v as usize] = i as u8;
        }
        inv
    })
}

#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ if b & 0x80 != 0 { 0x1b } else { 0 }
}

#[inline]
fn gmul(a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    let mut a = a;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    acc
}

/// AES-128 with a fixed expanded key schedule.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; NR + 1],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128").finish_non_exhaustive()
    }
}

impl Aes128 {
    /// Expands `key` into the 11 round keys.
    pub fn new(key: &[u8; 16]) -> Self {
        let sb = sbox();
        let mut w = [[0u8; 4]; 4 * (NR + 1)];
        for i in 0..NK {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        let mut rcon = 1u8;
        for i in NK..4 * (NR + 1) {
            let mut temp = w[i - 1];
            if i % NK == 0 {
                temp.rotate_left(1);
                for t in temp.iter_mut() {
                    *t = sb[*t as usize];
                }
                temp[0] ^= rcon;
                rcon = xtime(rcon);
            }
            for j in 0..4 {
                w[i][j] = w[i - NK][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; NR + 1];
        for r in 0..=NR {
            for c in 0..4 {
                round_keys[r][4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; BLOCK_LEN]) -> [u8; BLOCK_LEN] {
        #[cfg(target_arch = "x86_64")]
        if aesni::available() {
            // SAFETY: `available` confirmed the aes/sse2 features at runtime.
            return unsafe { aesni::encrypt_block(&self.round_keys, block) };
        }
        self.encrypt_block_soft(block)
    }

    fn encrypt_block_soft(&self, block: &[u8; BLOCK_LEN]) -> [u8; BLOCK_LEN] {
        let sb = sbox();
        let mut s = *block;
        add_round_key(&mut s, &self.round_keys[0]);
        for r in 1..NR {
            sub_bytes(&mut s, sb);
            shift_rows(&mut s);
            mix_columns(&mut s);
            add_round_key(&mut s, &self.round_keys[r]);
        }
        sub_bytes(&mut s, sb);
        shift_rows(&mut s);
        add_round_key(&mut s, &self.round_keys[NR]);
        s
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; BLOCK_LEN]) -> [u8; BLOCK_LEN] {
        let isb = inv_sbox();
        let mut s = *block;
        add_round_key(&mut s, &self.round_keys[NR]);
        for r in (1..NR).rev() {
            inv_shift_rows(&mut s);
            sub_bytes(&mut s, isb);
            add_round_key(&mut s, &self.round_keys[r]);
            inv_mix_columns(&mut s);
        }
        inv_shift_rows(&mut s);
        sub_bytes(&mut s, isb);
        add_round_key(&mut s, &self.round_keys[0]);
        s
    }
}

// State is column-major: s[4*c + r] is row r, column c (FIPS 197 layout).

fn add_round_key(s: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        s[i] ^= rk[i];
    }
}

fn sub_bytes(s: &mut [u8; 16], table: &[u8; 256]) {
    for b in s.iter_mut() {
        *b = table[*b as usize];
    }
}

fn shift_rows(s: &mut [u8; 16]) {
    let copy = *s;
    for r in 1..4 {
        for c in 0..4 {
            s[4 * c + r] = copy[4 * ((c + r) % 4) + r];
        }
    }
}

fn inv_shift_rows(s: &mut [u8; 16]) {
    let copy = *s;
    for r in 1..4 {
        for c in 0..4 {
            s[4 * ((c + r) % 4) + r] = copy[4 * c + r];
        }
    }
}

fn mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        s[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
        s[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
        s[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
        s[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

fn inv_mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        s[4 * c] =
            gmul(col[0], 0x0e) ^ gmul(col[1], 0x0b) ^ gmul(col[2], 0x0d) ^ gmul(col[3], 0x09);
        s[4 * c + 1] =
            gmul(col[0], 0x09) ^ gmul(col[1], 0x0e) ^ gmul(col[2], 0x0b) ^ gmul(col[3], 0x0d);
        s[4 * c + 2] =
            gmul(col[0], 0x0d) ^ gmul(col[1], 0x09) ^ gmul(col[2], 0x0e) ^ gmul(col[3], 0x0b);
        s[4 * c + 3] =
            gmul(col[0], 0x0b) ^ gmul(col[1], 0x0d) ^ gmul(col[2], 0x09) ^ gmul(col[3], 0x0e);
    }
}

/// AES-128 in counter (CTR) mode: a length-preserving stream cipher.
///
/// The keystream block for offset `i` is `AES_K(nonce || i)` with a 64-bit
/// big-endian counter in the low half of the block.
#[derive(Clone, Debug)]
pub struct Aes128Ctr {
    cipher: Aes128,
    nonce: [u8; 8],
}

impl Aes128Ctr {
    /// Creates a CTR-mode cipher with an 8-byte nonce.
    pub fn new(key: &[u8; 16], nonce: [u8; 8]) -> Self {
        Aes128Ctr {
            cipher: Aes128::new(key),
            nonce,
        }
    }

    /// Encrypts or decrypts `data` in place starting from block counter 0.
    ///
    /// CTR mode is an involution, so the same call decrypts.
    pub fn apply_keystream(&self, data: &mut [u8]) {
        self.apply_keystream_at(data, 0);
    }

    /// Applies keystream starting at block counter `start_block`.
    ///
    /// Allows random access into the stream: block `i` of the file can be
    /// decrypted without touching the rest, which is what the POR extractor
    /// needs after un-permuting blocks.
    pub fn apply_keystream_at(&self, data: &mut [u8], start_block: u64) {
        #[cfg(target_arch = "x86_64")]
        if aesni::available() {
            // SAFETY: `available` confirmed the aes/sse2 features at runtime.
            unsafe { aesni::ctr_xor(&self.cipher.round_keys, &self.nonce, start_block, data) };
            return;
        }
        self.apply_keystream_soft(data, start_block);
    }

    fn apply_keystream_soft(&self, data: &mut [u8], start_block: u64) {
        let mut counter = start_block;
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let mut ctr_block = [0u8; BLOCK_LEN];
            ctr_block[..8].copy_from_slice(&self.nonce);
            ctr_block[8..].copy_from_slice(&counter.to_be_bytes());
            let ks = self.cipher.encrypt_block_soft(&ctr_block);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }
}

/// Hardware AES-128 via the x86-64 AES-NI instructions.
///
/// The expanded round keys produced by [`Aes128::new`] are already in the
/// byte order `aesenc` expects, so the hardware path reuses the software key
/// schedule unchanged and the two paths are interchangeable bit for bit.
/// Only encryption is accelerated: CTR mode never runs the inverse cipher,
/// and block decryption sits on cold paths.
#[cfg(target_arch = "x86_64")]
mod aesni {
    use super::{BLOCK_LEN, NR};
    use std::arch::x86_64::*;
    use std::sync::atomic::{AtomicU8, Ordering};

    /// Runtime feature probe, cached so the hot path is one relaxed load.
    pub(super) fn available() -> bool {
        const UNKNOWN: u8 = 0;
        const NO: u8 = 1;
        const YES: u8 = 2;
        static STATE: AtomicU8 = AtomicU8::new(UNKNOWN);
        match STATE.load(Ordering::Relaxed) {
            UNKNOWN => {
                let avail = std::arch::is_x86_feature_detected!("aes");
                STATE.store(if avail { YES } else { NO }, Ordering::Relaxed);
                avail
            }
            found => found == YES,
        }
    }

    #[inline]
    unsafe fn load_keys(rk: &[[u8; 16]; NR + 1]) -> [__m128i; NR + 1] {
        let mut keys = [_mm_setzero_si128(); NR + 1];
        for (k, bytes) in keys.iter_mut().zip(rk.iter()) {
            *k = _mm_loadu_si128(bytes.as_ptr() as *const __m128i);
        }
        keys
    }

    #[inline]
    unsafe fn encrypt_one(keys: &[__m128i; NR + 1], mut s: __m128i) -> __m128i {
        s = _mm_xor_si128(s, keys[0]);
        for key in &keys[1..NR] {
            s = _mm_aesenc_si128(s, *key);
        }
        _mm_aesenclast_si128(s, keys[NR])
    }

    /// Encrypts one block with the AES round instructions.
    ///
    /// # Safety
    ///
    /// The caller must have verified AES-NI support (see [`available`]).
    #[target_feature(enable = "aes,sse2")]
    pub(super) unsafe fn encrypt_block(
        rk: &[[u8; 16]; NR + 1],
        block: &[u8; BLOCK_LEN],
    ) -> [u8; BLOCK_LEN] {
        let keys = load_keys(rk);
        let s = encrypt_one(&keys, _mm_loadu_si128(block.as_ptr() as *const __m128i));
        let mut out = [0u8; BLOCK_LEN];
        _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, s);
        out
    }

    /// XORs the CTR keystream starting at `start_block` into `data`.
    ///
    /// Four counter blocks are kept in flight per round so the `aesenc`
    /// dependency chains overlap instead of serialising on latency.
    ///
    /// # Safety
    ///
    /// The caller must have verified AES-NI support (see [`available`]).
    #[target_feature(enable = "aes,sse2")]
    pub(super) unsafe fn ctr_xor(
        rk: &[[u8; 16]; NR + 1],
        nonce: &[u8; 8],
        start_block: u64,
        data: &mut [u8],
    ) {
        let keys = load_keys(rk);
        let ctr_block = |counter: u64| {
            let mut b = [0u8; BLOCK_LEN];
            b[..8].copy_from_slice(nonce);
            b[8..].copy_from_slice(&counter.to_be_bytes());
            _mm_loadu_si128(b.as_ptr() as *const __m128i)
        };
        let mut counter = start_block;
        let mut quads = data.chunks_exact_mut(4 * BLOCK_LEN);
        for quad in &mut quads {
            let mut s = [
                ctr_block(counter),
                ctr_block(counter.wrapping_add(1)),
                ctr_block(counter.wrapping_add(2)),
                ctr_block(counter.wrapping_add(3)),
            ];
            for b in s.iter_mut() {
                *b = _mm_xor_si128(*b, keys[0]);
            }
            for key in &keys[1..NR] {
                for b in s.iter_mut() {
                    *b = _mm_aesenc_si128(*b, *key);
                }
            }
            for b in s.iter_mut() {
                *b = _mm_aesenclast_si128(*b, keys[NR]);
            }
            let p = quad.as_mut_ptr() as *mut __m128i;
            for (i, b) in s.iter().enumerate() {
                let d = _mm_loadu_si128(p.add(i) as *const __m128i);
                _mm_storeu_si128(p.add(i), _mm_xor_si128(d, *b));
            }
            counter = counter.wrapping_add(4);
        }
        for chunk in quads.into_remainder().chunks_mut(BLOCK_LEN) {
            let ks = encrypt_one(&keys, ctr_block(counter));
            let mut bytes = [0u8; BLOCK_LEN];
            _mm_storeu_si128(bytes.as_mut_ptr() as *mut __m128i, ks);
            for (b, k) in chunk.iter_mut().zip(bytes.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // FIPS 197 Appendix B.
    #[test]
    fn fips197_appendix_b() {
        let key: [u8; 16] = from_hex("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        let pt: [u8; 16] = from_hex("3243f6a8885a308d313198a2e0370734")
            .try_into()
            .unwrap();
        let cipher = Aes128::new(&key);
        let ct = cipher.encrypt_block(&pt);
        assert_eq!(ct.to_vec(), from_hex("3925841d02dc09fbdc118597196a0b32"));
        assert_eq!(cipher.decrypt_block(&ct), pt);
    }

    // FIPS 197 Appendix C.1.
    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = from_hex("000102030405060708090a0b0c0d0e0f")
            .try_into()
            .unwrap();
        let pt: [u8; 16] = from_hex("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        let cipher = Aes128::new(&key);
        let ct = cipher.encrypt_block(&pt);
        assert_eq!(ct.to_vec(), from_hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(cipher.decrypt_block(&ct), pt);
    }

    // NIST SP 800-38A F.1.1 (first two ECB-AES128 blocks double as S-box checks).
    #[test]
    fn sp800_38a_ecb_blocks() {
        let key: [u8; 16] = from_hex("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        let cipher = Aes128::new(&key);
        let pt1: [u8; 16] = from_hex("6bc1bee22e409f96e93d7e117393172a")
            .try_into()
            .unwrap();
        assert_eq!(
            cipher.encrypt_block(&pt1).to_vec(),
            from_hex("3ad77bb40d7a3660a89ecaf32466ef97")
        );
        let pt2: [u8; 16] = from_hex("ae2d8a571e03ac9c9eb76fac45af8e51")
            .try_into()
            .unwrap();
        assert_eq!(
            cipher.encrypt_block(&pt2).to_vec(),
            from_hex("f5d3d58503b9699de785895a96fdbaaf")
        );
    }

    // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt, adapted: our counter layout
    // differs from the NIST one, so we test the involution property plus
    // keystream determinism instead of the published vector.
    #[test]
    fn ctr_roundtrip_and_random_access() {
        let key = [7u8; 16];
        let ctr = Aes128Ctr::new(&key, *b"nonce!!!");
        let mut data: Vec<u8> = (0..100u8).collect();
        let orig = data.clone();
        ctr.apply_keystream(&mut data);
        assert_ne!(data, orig);
        // Random access: decrypt only blocks 2.. (bytes 32..)
        let mut tail = data[32..].to_vec();
        ctr.apply_keystream_at(&mut tail, 2);
        assert_eq!(&tail[..], &orig[32..]);
        // Full decrypt.
        ctr.apply_keystream(&mut data);
        assert_eq!(data, orig);
    }

    /// The AES-NI paths must agree with the portable tables on arbitrary
    /// keys, blocks, lengths and counter origins (including counter
    /// wraparound mid-buffer).
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn hardware_paths_match_software() {
        if !super::aesni::available() {
            eprintln!("skipping: CPU lacks AES-NI");
            return;
        }
        let mut lcg = 0xfeed_face_cafe_beefu64;
        let mut next = || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg
        };
        for trial in 0..200 {
            let mut key = [0u8; 16];
            let mut block = [0u8; 16];
            for b in key.iter_mut().chain(block.iter_mut()) {
                *b = (next() >> 33) as u8;
            }
            let cipher = Aes128::new(&key);
            let soft = cipher.encrypt_block_soft(&block);
            let hw = unsafe { super::aesni::encrypt_block(&cipher.round_keys, &block) };
            assert_eq!(soft, hw, "block trial {trial}");
        }
        let key = [0x5au8; 16];
        let ctr = Aes128Ctr::new(&key, *b"diff-ctr");
        for len in [0usize, 1, 15, 16, 17, 63, 64, 65, 100, 257, 1024] {
            for start in [0u64, 1, 7, u64::MAX - 2] {
                let mut hw: Vec<u8> = (0..len).map(|_| (next() >> 33) as u8).collect();
                let mut soft = hw.clone();
                ctr.apply_keystream_at(&mut hw, start);
                ctr.apply_keystream_soft(&mut soft, start);
                assert_eq!(hw, soft, "len {len} start {start}");
            }
        }
    }

    #[test]
    fn distinct_keys_give_distinct_ciphertexts() {
        let pt = [0u8; 16];
        let c1 = Aes128::new(&[1u8; 16]).encrypt_block(&pt);
        let c2 = Aes128::new(&[2u8; 16]).encrypt_block(&pt);
        assert_ne!(c1, c2);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let s = format!("{:?}", Aes128::new(&[9u8; 16]));
        assert!(!s.contains('9'));
    }
}
