//! # geoproof-crypto
//!
//! Cryptographic primitives for the GeoProof reproduction, all implemented
//! from scratch against published specifications and test vectors:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4)
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104) and the truncated segment tags of
//!   the paper's MAC-based POR (§V-A step 5, 20-bit tags)
//! * [`kdf`] — HKDF (RFC 5869), used for key separation in setup and in the
//!   Reid et al. distance-bounding protocol
//! * [`aes`] — AES-128 (FIPS 197) plus CTR mode, the paper's `E_K` with
//!   ℓ_B = 128-bit blocks
//! * [`chacha`] — ChaCha20 (RFC 8439) and a deterministic seedable CSPRNG
//! * [`prp`] — Luby–Rackoff-style Feistel PRP with cycle-walking for the
//!   block-reordering step (§V-A step 4)
//! * [`fe25519`] / [`ed25519`] / [`schnorr`] — Schnorr signatures over
//!   edwards25519 for the verifier device's transcript signature `Sign_SK`
//! * [`ct`] — constant-time comparison helpers
//!
//! # Examples
//!
//! ```
//! use geoproof_crypto::{hmac::TruncatedMac, kdf::Hkdf};
//!
//! // Derive the paper's setup keys from one master secret…
//! let master = Hkdf::extract(b"file-id-0001", b"owner master secret");
//! let enc_key = master.expand_key16(b"enc");
//! let mac_key = master.expand_key32(b"mac");
//!
//! // …and tag a segment with a 20-bit MAC as in §V-A.
//! let tag = TruncatedMac::new(20).mac(&mac_key, b"segment bytes");
//! assert_eq!(tag.len(), 3);
//! # let _ = enc_key;
//! ```

pub mod aes;
pub mod chacha;
pub mod ct;
pub mod ed25519;
pub mod fe25519;
pub mod fnv;
pub mod hmac;
pub mod kdf;
pub mod prp;
pub mod schnorr;
pub mod sha256;

pub use aes::{Aes128, Aes128Ctr};
pub use chacha::ChaChaRng;
pub use hmac::{HmacSha256, TruncatedMac};
pub use kdf::Hkdf;
pub use prp::DomainPrp;
pub use schnorr::{Signature, SigningKey, VerifyingKey};
pub use sha256::Sha256;
