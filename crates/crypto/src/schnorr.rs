//! Schnorr signatures over edwards25519.
//!
//! The GeoProof verifier device holds a private key `SK` and signs the audit
//! transcript `R = (Δt*, c, {S_cj}, N, Pos_v)` before returning it to the
//! TPA (paper Fig. 5). We use the classic Schnorr scheme (the Ed25519
//! ancestor): given secret `a` with public `A = a·B`,
//!
//! ```text
//! sign(m):  k = H(a ‖ z ‖ m) mod ℓ,  R = k·B,
//!           e = H(enc(R) ‖ enc(A) ‖ m) mod ℓ,  s = k + e·a mod ℓ
//! verify:   s·B == R + e·A
//! ```
//!
//! with `z` fresh randomness hedging the derandomised nonce.
//!
//! # Examples
//!
//! ```
//! use geoproof_crypto::schnorr::SigningKey;
//! use geoproof_crypto::chacha::ChaChaRng;
//!
//! let mut rng = ChaChaRng::from_u64_seed(1);
//! let sk = SigningKey::generate(&mut rng);
//! let sig = sk.sign(b"audit transcript", &mut rng);
//! assert!(sk.verifying_key().verify(b"audit transcript", &sig));
//! assert!(!sk.verifying_key().verify(b"forged transcript", &sig));
//! ```

use crate::chacha::ChaChaRng;
use crate::ct::ct_eq;
use crate::ed25519::{Point, Scalar};
use crate::sha256::Sha256;

/// A Schnorr signature: compressed nonce point `R` and response scalar `s`.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    /// Compressed commitment point.
    pub r_bytes: [u8; 32],
    /// Response scalar, little-endian.
    pub s_bytes: [u8; 32],
}

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Signature(R=")?;
        for b in &self.r_bytes[..4] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…, s=")?;
        for b in &self.s_bytes[..4] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…)")
    }
}

impl Signature {
    /// Serialises to 64 bytes (`R ‖ s`).
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r_bytes);
        out[32..].copy_from_slice(&self.s_bytes);
        out
    }

    /// Parses from 64 bytes. Always succeeds structurally; validity is
    /// decided by [`VerifyingKey::verify`].
    pub fn from_bytes(bytes: &[u8; 64]) -> Signature {
        let mut r_bytes = [0u8; 32];
        let mut s_bytes = [0u8; 32];
        r_bytes.copy_from_slice(&bytes[..32]);
        s_bytes.copy_from_slice(&bytes[32..]);
        Signature { r_bytes, s_bytes }
    }
}

/// A verification (public) key.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct VerifyingKey {
    point: Point,
    encoded: [u8; 32],
}

impl std::fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VerifyingKey(")?;
        for b in &self.encoded[..8] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…)")
    }
}

impl VerifyingKey {
    /// The 32-byte compressed encoding of the key.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.encoded
    }

    /// Parses and validates a compressed public key.
    ///
    /// Returns `None` for encodings that are not points on the curve.
    pub fn from_bytes(bytes: &[u8; 32]) -> Option<VerifyingKey> {
        let point = Point::decompress(bytes)?;
        Some(VerifyingKey {
            point,
            encoded: *bytes,
        })
    }

    /// Verifies `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        let s = Scalar::from_bytes_mod_order(&signature.s_bytes);
        // Reject non-canonical s (must round-trip).
        if s.to_bytes_le() != signature.s_bytes {
            return false;
        }
        let e = challenge_scalar(&signature.r_bytes, &self.encoded, message);
        // R' = s·B - e·A must equal R.
        let r_prime = Point::base().mul(&s).add(&self.point.mul(&e).neg());
        ct_eq(&r_prime.compress(), &signature.r_bytes)
    }
}

/// A signing (private) key.
#[derive(Clone)]
pub struct SigningKey {
    secret: Scalar,
    public: VerifyingKey,
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SigningKey")
            .field("public", &self.public)
            .finish_non_exhaustive()
    }
}

fn challenge_scalar(r_enc: &[u8; 32], a_enc: &[u8; 32], message: &[u8]) -> Scalar {
    let mut h = Sha256::new();
    h.update(b"geoproof-schnorr-v1");
    h.update(r_enc);
    h.update(a_enc);
    h.update(message);
    Scalar::from_bytes_mod_order(&h.finalize())
}

impl SigningKey {
    /// Generates a fresh keypair from the given RNG.
    pub fn generate(rng: &mut ChaChaRng) -> SigningKey {
        loop {
            let mut seed = [0u8; 32];
            rng.fill_bytes(&mut seed);
            let secret = Scalar::from_bytes_mod_order(&seed);
            if secret.is_zero() {
                continue;
            }
            return SigningKey::from_scalar(secret);
        }
    }

    /// Builds a keypair from an existing secret scalar.
    pub fn from_scalar(secret: Scalar) -> SigningKey {
        let point = Point::base().mul(&secret);
        let encoded = point.compress();
        SigningKey {
            secret,
            public: VerifyingKey { point, encoded },
        }
    }

    /// Deterministic keypair from a 32-byte seed (reduced mod ℓ).
    ///
    /// # Panics
    ///
    /// Panics if the seed reduces to the zero scalar (probability ≈ 2^-252).
    pub fn from_seed(seed: &[u8; 32]) -> SigningKey {
        let secret = Scalar::from_bytes_mod_order(seed);
        assert!(!secret.is_zero(), "degenerate seed");
        SigningKey::from_scalar(secret)
    }

    /// The corresponding public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.public
    }

    /// Signs `message`, hedging the nonce with randomness from `rng`.
    pub fn sign(&self, message: &[u8], rng: &mut ChaChaRng) -> Signature {
        let mut z = [0u8; 32];
        rng.fill_bytes(&mut z);
        let mut h = Sha256::new();
        h.update(b"geoproof-nonce-v1");
        h.update(&self.secret.to_bytes_le());
        h.update(&z);
        h.update(message);
        let mut k = Scalar::from_bytes_mod_order(&h.finalize());
        if k.is_zero() {
            k = Scalar::ONE; // unreachable in practice; keep k usable
        }
        let r_point = Point::base().mul(&k);
        let r_bytes = r_point.compress();
        let e = challenge_scalar(&r_bytes, &self.public.encoded, message);
        let s = k.add(&e.mul(&self.secret));
        Signature {
            r_bytes,
            s_bytes: s.to_bytes_le(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> ChaChaRng {
        ChaChaRng::from_u64_seed(seed)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut r = rng(1);
        let sk = SigningKey::generate(&mut r);
        let sig = sk.sign(b"hello", &mut r);
        assert!(sk.verifying_key().verify(b"hello", &sig));
    }

    #[test]
    fn rejects_wrong_message() {
        let mut r = rng(2);
        let sk = SigningKey::generate(&mut r);
        let sig = sk.sign(b"hello", &mut r);
        assert!(!sk.verifying_key().verify(b"hellp", &sig));
        assert!(!sk.verifying_key().verify(b"", &sig));
    }

    #[test]
    fn rejects_wrong_key() {
        let mut r = rng(3);
        let sk1 = SigningKey::generate(&mut r);
        let sk2 = SigningKey::generate(&mut r);
        let sig = sk1.sign(b"msg", &mut r);
        assert!(!sk2.verifying_key().verify(b"msg", &sig));
    }

    #[test]
    fn rejects_tampered_signature() {
        let mut r = rng(4);
        let sk = SigningKey::generate(&mut r);
        let sig = sk.sign(b"msg", &mut r);
        for byte in 0..64 {
            let mut bytes = sig.to_bytes();
            bytes[byte] ^= 1;
            let bad = Signature::from_bytes(&bytes);
            assert!(
                !sk.verifying_key().verify(b"msg", &bad),
                "flip at byte {byte} accepted"
            );
        }
    }

    #[test]
    fn rejects_non_canonical_s() {
        let mut r = rng(5);
        let sk = SigningKey::generate(&mut r);
        let mut sig = sk.sign(b"msg", &mut r);
        // Add ℓ to s: same value mod ℓ but non-canonical encoding.
        use crate::ed25519::L_BYTES_LE;
        let mut carry = 0u16;
        for (byte, l) in sig.s_bytes.iter_mut().zip(L_BYTES_LE) {
            let v = *byte as u16 + l as u16 + carry;
            *byte = v as u8;
            carry = v >> 8;
        }
        assert!(!sk.verifying_key().verify(b"msg", &sig));
    }

    #[test]
    fn public_key_roundtrip() {
        let mut r = rng(6);
        let sk = SigningKey::generate(&mut r);
        let pk = sk.verifying_key();
        let parsed = VerifyingKey::from_bytes(&pk.to_bytes()).expect("valid");
        let sig = sk.sign(b"m", &mut r);
        assert!(parsed.verify(b"m", &sig));
    }

    #[test]
    fn signature_serialisation_roundtrip() {
        let mut r = rng(7);
        let sk = SigningKey::generate(&mut r);
        let sig = sk.sign(b"m", &mut r);
        assert_eq!(Signature::from_bytes(&sig.to_bytes()), sig);
    }

    #[test]
    fn deterministic_from_seed() {
        let a = SigningKey::from_seed(&[42u8; 32]);
        let b = SigningKey::from_seed(&[42u8; 32]);
        assert_eq!(a.verifying_key(), b.verifying_key());
    }

    #[test]
    fn signatures_are_randomised_but_both_valid() {
        let mut r = rng(8);
        let sk = SigningKey::generate(&mut r);
        let s1 = sk.sign(b"m", &mut r);
        let s2 = sk.sign(b"m", &mut r);
        assert_ne!(s1, s2, "hedged nonce should differ");
        assert!(sk.verifying_key().verify(b"m", &s1));
        assert!(sk.verifying_key().verify(b"m", &s2));
    }
}
