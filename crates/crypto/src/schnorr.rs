//! Schnorr signatures over edwards25519.
//!
//! The GeoProof verifier device holds a private key `SK` and signs the audit
//! transcript `R = (Δt*, c, {S_cj}, N, Pos_v)` before returning it to the
//! TPA (paper Fig. 5). We use the classic Schnorr scheme (the Ed25519
//! ancestor): given secret `a` with public `A = a·B`,
//!
//! ```text
//! sign(m):  k = H(a ‖ z ‖ m) mod ℓ,  R = k·B,
//!           e = H(enc(R) ‖ enc(A) ‖ m) mod ℓ,  s = k + e·a mod ℓ
//! verify:   s·B == R + e·A
//! ```
//!
//! with `z` fresh randomness hedging the derandomised nonce.
//!
//! # Examples
//!
//! ```
//! use geoproof_crypto::schnorr::SigningKey;
//! use geoproof_crypto::chacha::ChaChaRng;
//!
//! let mut rng = ChaChaRng::from_u64_seed(1);
//! let sk = SigningKey::generate(&mut rng);
//! let sig = sk.sign(b"audit transcript", &mut rng);
//! assert!(sk.verifying_key().verify(b"audit transcript", &sig));
//! assert!(!sk.verifying_key().verify(b"forged transcript", &sig));
//! ```

use crate::chacha::ChaChaRng;
use crate::ct::ct_eq;
use crate::ed25519::{base_table, multiscalar_mul, FixedBaseTable, Point, Scalar};
use crate::sha256::Sha256;
use std::collections::HashMap;

/// A Schnorr signature: compressed nonce point `R` and response scalar `s`.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    /// Compressed commitment point.
    pub r_bytes: [u8; 32],
    /// Response scalar, little-endian.
    pub s_bytes: [u8; 32],
}

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Signature(R=")?;
        for b in &self.r_bytes[..4] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…, s=")?;
        for b in &self.s_bytes[..4] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…)")
    }
}

impl Signature {
    /// Serialises to 64 bytes (`R ‖ s`).
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r_bytes);
        out[32..].copy_from_slice(&self.s_bytes);
        out
    }

    /// Parses from 64 bytes. Always succeeds structurally; validity is
    /// decided by [`VerifyingKey::verify`].
    pub fn from_bytes(bytes: &[u8; 64]) -> Signature {
        let mut r_bytes = [0u8; 32];
        let mut s_bytes = [0u8; 32];
        r_bytes.copy_from_slice(&bytes[..32]);
        s_bytes.copy_from_slice(&bytes[32..]);
        Signature { r_bytes, s_bytes }
    }
}

/// A verification (public) key.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct VerifyingKey {
    point: Point,
    encoded: [u8; 32],
}

impl std::fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VerifyingKey(")?;
        for b in &self.encoded[..8] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…)")
    }
}

impl VerifyingKey {
    /// The 32-byte compressed encoding of the key.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.encoded
    }

    /// Parses and validates a compressed public key.
    ///
    /// Returns `None` for encodings that are not points on the curve.
    pub fn from_bytes(bytes: &[u8; 32]) -> Option<VerifyingKey> {
        let point = Point::decompress(bytes)?;
        Some(VerifyingKey {
            point,
            encoded: *bytes,
        })
    }

    /// Verifies `signature` over `message`. The fixed-base half (`s·B`)
    /// goes through the process-wide precomputed basepoint table; the
    /// accept/reject decision is pinned identical to
    /// [`VerifyingKey::verify_reference`] by a property test.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        let s = Scalar::from_bytes_mod_order(&signature.s_bytes);
        // Reject non-canonical s (must round-trip).
        if s.to_bytes_le() != signature.s_bytes {
            return false;
        }
        let e = challenge_scalar(&signature.r_bytes, &self.encoded, message);
        // R' = s·B - e·A must equal R.
        let r_prime = base_table().mul(&s).add(&self.point.mul(&e).neg());
        ct_eq(&r_prime.compress(), &signature.r_bytes)
    }

    /// The pre-table verification path: both scalar multiplications via
    /// the generic double-and-add ladder. Kept as the oracle the
    /// table-accelerated [`VerifyingKey::verify`] is pinned against.
    pub fn verify_reference(&self, message: &[u8], signature: &Signature) -> bool {
        let s = Scalar::from_bytes_mod_order(&signature.s_bytes);
        if s.to_bytes_le() != signature.s_bytes {
            return false;
        }
        let e = challenge_scalar(&signature.r_bytes, &self.encoded, message);
        let r_prime = Point::base().mul(&s).add(&self.point.mul(&e).neg());
        ct_eq(&r_prime.compress(), &signature.r_bytes)
    }
}

/// A verifying key with its own [`FixedBaseTable`], for keys that verify
/// many signatures — the TPA checkpoint key during ledger replay. Both
/// scalar multiplications of a verify become table lookups (~128
/// additions against ~506 doublings + ~252 additions).
#[derive(Clone)]
pub struct PrecomputedKey {
    key: VerifyingKey,
    table: FixedBaseTable,
}

impl PrecomputedKey {
    /// Builds the table for `key` (~960 point additions, once).
    pub fn new(key: &VerifyingKey) -> PrecomputedKey {
        PrecomputedKey {
            key: *key,
            table: FixedBaseTable::new(&key.point),
        }
    }

    /// The underlying key.
    pub fn key(&self) -> &VerifyingKey {
        &self.key
    }

    /// Verifies `signature` over `message`; decision identical to
    /// [`VerifyingKey::verify`].
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        let s = Scalar::from_bytes_mod_order(&signature.s_bytes);
        if s.to_bytes_le() != signature.s_bytes {
            return false;
        }
        let e = challenge_scalar(&signature.r_bytes, &self.key.encoded, message);
        let r_prime = base_table().mul(&s).add(&self.table.mul(&e).neg());
        ct_eq(&r_prime.compress(), &signature.r_bytes)
    }
}

/// One `(key, message, signature)` triple of a verification batch.
#[derive(Clone, Copy)]
pub struct BatchEntry<'a> {
    /// The claimed signer.
    pub key: VerifyingKey,
    /// The signed message bytes.
    pub message: &'a [u8],
    /// The signature to check.
    pub signature: Signature,
}

/// A pre-screened batch candidate: everything scalar-shaped hoisted out
/// of the (possibly repeated) batch equation checks.
struct Candidate {
    /// Index into the caller's entry slice.
    idx: usize,
    /// Response scalar (canonical by pre-screening).
    s: Scalar,
    /// Challenge `e = H(R ‖ A ‖ m)`.
    e: Scalar,
    /// 128-bit random-linear-combination coefficient.
    z: Scalar,
    /// Decompressed commitment point.
    r_point: Point,
}

/// One random-linear-combination check over a candidate subset:
/// `(Σ zᵢsᵢ)·B == Σ zᵢ·Rᵢ + Σ_keys (Σ_{i∈key} zᵢeᵢ)·A_key`, the
/// right-hand side as one shared Pippenger multi-scalar multiplication
/// and the left through the precomputed basepoint table.
fn batch_equation_holds(entries: &[BatchEntry<'_>], cands: &[&Candidate]) -> bool {
    let mut s_sum = Scalar::ZERO;
    let mut scalars = Vec::with_capacity(cands.len() + 4);
    let mut points = Vec::with_capacity(cands.len() + 4);
    let mut per_key: HashMap<[u8; 32], (Scalar, Point)> = HashMap::new();
    for c in cands {
        s_sum = s_sum.add(&c.z.mul(&c.s));
        scalars.push(c.z);
        points.push(c.r_point);
        let key = &entries[c.idx].key;
        let slot = per_key
            .entry(key.encoded)
            .or_insert((Scalar::ZERO, key.point));
        slot.0 = slot.0.add(&c.z.mul(&c.e));
    }
    for (e_sum, key_point) in per_key.into_values() {
        scalars.push(e_sum);
        points.push(key_point);
    }
    base_table().mul(&s_sum) == multiscalar_mul(&scalars, &points)
}

/// Settles every candidate in `cands`: one batch equation when the whole
/// subset passes, bisection to isolate offenders otherwise. Size-1
/// subsets delegate to the sequential [`VerifyingKey::verify`], so the
/// per-entry verdict (and any diagnostic built on it) is byte-identical
/// to the sequential path.
fn settle(entries: &[BatchEntry<'_>], cands: &[&Candidate], results: &mut [bool]) {
    match cands {
        [] => {}
        [only] => {
            let entry = &entries[only.idx];
            results[only.idx] = entry.key.verify(entry.message, &entry.signature);
        }
        _ if batch_equation_holds(entries, cands) => {
            for c in cands {
                results[c.idx] = true;
            }
        }
        _ => {
            let (left, right) = cands.split_at(cands.len() / 2);
            settle(entries, left, results);
            settle(entries, right, results);
        }
    }
}

/// Verifies a batch of signatures, returning one verdict per entry —
/// each **identical** to what `entry.key.verify(entry.message,
/// &entry.signature)` returns, at a fraction of the cost: shared-base
/// multi-scalar accumulation amortises the group operations, and a
/// random 128-bit linear combination (coefficients derived
/// Fiat–Shamir-style from the batch contents, so runs are reproducible)
/// makes a passing batch equation a 2⁻¹²⁸-sound proof that every
/// member verifies. A failing batch is bisected until each offender is
/// pinpointed by the sequential path itself.
pub fn batch_verify_each(entries: &[BatchEntry<'_>]) -> Vec<bool> {
    let mut results = vec![false; entries.len()];
    // Pre-screen: non-canonical s or an undecodable R can never equal a
    // compressed point from the verify equation — sequential verify
    // rejects them, so the batch does too, before any group arithmetic.
    let mut screened: Vec<(usize, Scalar, Point)> = Vec::with_capacity(entries.len());
    let mut transcript = Sha256::new();
    transcript.update(b"geoproof-schnorr-batch-v1");
    transcript.update(&(entries.len() as u64).to_be_bytes());
    for entry in entries {
        transcript.update(&entry.key.encoded);
        transcript.update(&entry.signature.r_bytes);
        transcript.update(&entry.signature.s_bytes);
        transcript.update(&(entry.message.len() as u64).to_be_bytes());
        transcript.update(entry.message);
    }
    let seed = transcript.finalize();
    for (idx, entry) in entries.iter().enumerate() {
        let s = Scalar::from_bytes_mod_order(&entry.signature.s_bytes);
        if s.to_bytes_le() != entry.signature.s_bytes {
            continue;
        }
        let Some(r_point) = Point::decompress(&entry.signature.r_bytes) else {
            continue;
        };
        screened.push((idx, s, r_point));
    }
    let candidates: Vec<Candidate> = screened
        .into_iter()
        .map(|(idx, s, r_point)| {
            let entry = &entries[idx];
            let e = challenge_scalar(&entry.signature.r_bytes, &entry.key.encoded, entry.message);
            let mut zh = Sha256::new();
            zh.update(b"geoproof-schnorr-batch-z-v1");
            zh.update(&seed);
            zh.update(&(idx as u64).to_be_bytes());
            let mut z = Scalar::from_bytes_mod_order(&zh.finalize()[..16]);
            if z.is_zero() {
                z = Scalar::ONE; // keep the coefficient invertible
            }
            Candidate {
                idx,
                s,
                e,
                z,
                r_point,
            }
        })
        .collect();
    let refs: Vec<&Candidate> = candidates.iter().collect();
    settle(entries, &refs, &mut results);
    results
}

/// True when **every** entry verifies ([`batch_verify_each`] with the
/// verdicts folded).
pub fn batch_verify(entries: &[BatchEntry<'_>]) -> bool {
    entries.is_empty() || batch_verify_each(entries).into_iter().all(|ok| ok)
}

/// A signing (private) key.
#[derive(Clone)]
pub struct SigningKey {
    secret: Scalar,
    public: VerifyingKey,
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SigningKey")
            .field("public", &self.public)
            .finish_non_exhaustive()
    }
}

fn challenge_scalar(r_enc: &[u8; 32], a_enc: &[u8; 32], message: &[u8]) -> Scalar {
    let mut h = Sha256::new();
    h.update(b"geoproof-schnorr-v1");
    h.update(r_enc);
    h.update(a_enc);
    h.update(message);
    Scalar::from_bytes_mod_order(&h.finalize())
}

impl SigningKey {
    /// Generates a fresh keypair from the given RNG.
    pub fn generate(rng: &mut ChaChaRng) -> SigningKey {
        loop {
            let mut seed = [0u8; 32];
            rng.fill_bytes(&mut seed);
            let secret = Scalar::from_bytes_mod_order(&seed);
            if secret.is_zero() {
                continue;
            }
            return SigningKey::from_scalar(secret);
        }
    }

    /// Builds a keypair from an existing secret scalar.
    pub fn from_scalar(secret: Scalar) -> SigningKey {
        let point = Point::base().mul(&secret);
        let encoded = point.compress();
        SigningKey {
            secret,
            public: VerifyingKey { point, encoded },
        }
    }

    /// Deterministic keypair from a 32-byte seed (reduced mod ℓ).
    ///
    /// # Panics
    ///
    /// Panics if the seed reduces to the zero scalar (probability ≈ 2^-252).
    pub fn from_seed(seed: &[u8; 32]) -> SigningKey {
        let secret = Scalar::from_bytes_mod_order(seed);
        assert!(!secret.is_zero(), "degenerate seed");
        SigningKey::from_scalar(secret)
    }

    /// The corresponding public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.public
    }

    /// Signs `message`, hedging the nonce with randomness from `rng`.
    pub fn sign(&self, message: &[u8], rng: &mut ChaChaRng) -> Signature {
        let mut z = [0u8; 32];
        rng.fill_bytes(&mut z);
        let mut h = Sha256::new();
        h.update(b"geoproof-nonce-v1");
        h.update(&self.secret.to_bytes_le());
        h.update(&z);
        h.update(message);
        let mut k = Scalar::from_bytes_mod_order(&h.finalize());
        if k.is_zero() {
            k = Scalar::ONE; // unreachable in practice; keep k usable
        }
        let r_point = Point::base().mul(&k);
        let r_bytes = r_point.compress();
        let e = challenge_scalar(&r_bytes, &self.public.encoded, message);
        let s = k.add(&e.mul(&self.secret));
        Signature {
            r_bytes,
            s_bytes: s.to_bytes_le(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> ChaChaRng {
        ChaChaRng::from_u64_seed(seed)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut r = rng(1);
        let sk = SigningKey::generate(&mut r);
        let sig = sk.sign(b"hello", &mut r);
        assert!(sk.verifying_key().verify(b"hello", &sig));
    }

    #[test]
    fn rejects_wrong_message() {
        let mut r = rng(2);
        let sk = SigningKey::generate(&mut r);
        let sig = sk.sign(b"hello", &mut r);
        assert!(!sk.verifying_key().verify(b"hellp", &sig));
        assert!(!sk.verifying_key().verify(b"", &sig));
    }

    #[test]
    fn rejects_wrong_key() {
        let mut r = rng(3);
        let sk1 = SigningKey::generate(&mut r);
        let sk2 = SigningKey::generate(&mut r);
        let sig = sk1.sign(b"msg", &mut r);
        assert!(!sk2.verifying_key().verify(b"msg", &sig));
    }

    #[test]
    fn rejects_tampered_signature() {
        let mut r = rng(4);
        let sk = SigningKey::generate(&mut r);
        let sig = sk.sign(b"msg", &mut r);
        for byte in 0..64 {
            let mut bytes = sig.to_bytes();
            bytes[byte] ^= 1;
            let bad = Signature::from_bytes(&bytes);
            assert!(
                !sk.verifying_key().verify(b"msg", &bad),
                "flip at byte {byte} accepted"
            );
        }
    }

    #[test]
    fn rejects_non_canonical_s() {
        let mut r = rng(5);
        let sk = SigningKey::generate(&mut r);
        let mut sig = sk.sign(b"msg", &mut r);
        // Add ℓ to s: same value mod ℓ but non-canonical encoding.
        use crate::ed25519::L_BYTES_LE;
        let mut carry = 0u16;
        for (byte, l) in sig.s_bytes.iter_mut().zip(L_BYTES_LE) {
            let v = *byte as u16 + l as u16 + carry;
            *byte = v as u8;
            carry = v >> 8;
        }
        assert!(!sk.verifying_key().verify(b"msg", &sig));
    }

    #[test]
    fn public_key_roundtrip() {
        let mut r = rng(6);
        let sk = SigningKey::generate(&mut r);
        let pk = sk.verifying_key();
        let parsed = VerifyingKey::from_bytes(&pk.to_bytes()).expect("valid");
        let sig = sk.sign(b"m", &mut r);
        assert!(parsed.verify(b"m", &sig));
    }

    #[test]
    fn signature_serialisation_roundtrip() {
        let mut r = rng(7);
        let sk = SigningKey::generate(&mut r);
        let sig = sk.sign(b"m", &mut r);
        assert_eq!(Signature::from_bytes(&sig.to_bytes()), sig);
    }

    #[test]
    fn deterministic_from_seed() {
        let a = SigningKey::from_seed(&[42u8; 32]);
        let b = SigningKey::from_seed(&[42u8; 32]);
        assert_eq!(a.verifying_key(), b.verifying_key());
    }

    #[test]
    fn batch_empty_and_single() {
        assert!(batch_verify(&[]));
        assert_eq!(batch_verify_each(&[]), Vec::<bool>::new());
        let mut r = rng(9);
        let sk = SigningKey::generate(&mut r);
        let sig = sk.sign(b"solo", &mut r);
        let good = BatchEntry {
            key: sk.verifying_key(),
            message: b"solo",
            signature: sig,
        };
        assert_eq!(batch_verify_each(&[good]), vec![true]);
        let mut bad = good;
        bad.signature.r_bytes[0] ^= 1;
        assert_eq!(batch_verify_each(&[bad]), vec![false]);
    }

    #[test]
    fn batch_all_valid_many_keys() {
        let mut r = rng(10);
        let keys: Vec<SigningKey> = (0..5).map(|_| SigningKey::generate(&mut r)).collect();
        let messages: Vec<Vec<u8>> = (0..40).map(|i| vec![i as u8; 9]).collect();
        let sigs: Vec<Signature> = messages
            .iter()
            .enumerate()
            .map(|(i, m)| keys[i % 5].sign(m, &mut r))
            .collect();
        let entries: Vec<BatchEntry> = (0..40)
            .map(|i| BatchEntry {
                key: keys[i % 5].verifying_key(),
                message: &messages[i],
                signature: sigs[i],
            })
            .collect();
        assert!(batch_verify(&entries));
        assert!(batch_verify_each(&entries).into_iter().all(|ok| ok));
    }

    #[test]
    fn batch_bisection_pinpoints_the_one_forgery() {
        let mut r = rng(11);
        let sk = SigningKey::generate(&mut r);
        let messages: Vec<Vec<u8>> = (0..17).map(|i| vec![i as u8, 0xaa]).collect();
        for forged_at in [0usize, 7, 16] {
            let entries: Vec<BatchEntry> = messages
                .iter()
                .enumerate()
                .map(|(i, m)| {
                    let mut sig = sk.sign(m, &mut r);
                    if i == forged_at {
                        sig.s_bytes[1] ^= 0x10;
                    }
                    BatchEntry {
                        key: sk.verifying_key(),
                        message: m,
                        signature: sig,
                    }
                })
                .collect();
            let verdicts = batch_verify_each(&entries);
            for (i, &ok) in verdicts.iter().enumerate() {
                assert_eq!(ok, i != forged_at, "forged_at {forged_at}, entry {i}");
            }
            assert!(!batch_verify(&entries));
        }
    }

    #[test]
    fn batch_rejects_structurally_bad_entries() {
        let mut r = rng(12);
        let sk = SigningKey::generate(&mut r);
        let ok_sig = sk.sign(b"fine", &mut r);
        // Non-canonical s (s + ℓ).
        let mut noncanon = sk.sign(b"nc", &mut r);
        use crate::ed25519::L_BYTES_LE;
        let mut carry = 0u16;
        for (byte, l) in noncanon.s_bytes.iter_mut().zip(L_BYTES_LE) {
            let v = *byte as u16 + l as u16 + carry;
            *byte = v as u8;
            carry = v >> 8;
        }
        // R that decodes to no curve point.
        let mut bad_r = sk.sign(b"badr", &mut r);
        bad_r.r_bytes = [0xff; 32];
        let entries = [
            BatchEntry {
                key: sk.verifying_key(),
                message: b"fine",
                signature: ok_sig,
            },
            BatchEntry {
                key: sk.verifying_key(),
                message: b"nc",
                signature: noncanon,
            },
            BatchEntry {
                key: sk.verifying_key(),
                message: b"badr",
                signature: bad_r,
            },
        ];
        let verdicts = batch_verify_each(&entries);
        assert_eq!(verdicts, vec![true, false, false]);
        for (v, entry) in verdicts.iter().zip(&entries) {
            assert_eq!(*v, entry.key.verify(entry.message, &entry.signature));
        }
    }

    #[test]
    fn signatures_are_randomised_but_both_valid() {
        let mut r = rng(8);
        let sk = SigningKey::generate(&mut r);
        let s1 = sk.sign(b"m", &mut r);
        let s2 = sk.sign(b"m", &mut r);
        assert_ne!(s1, s2, "hedged nonce should differ");
        assert!(sk.verifying_key().verify(b"m", &s1));
        assert!(sk.verifying_key().verify(b"m", &s2));
    }
}
