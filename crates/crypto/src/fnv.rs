//! FNV-1a — a tiny, deterministic, non-cryptographic hash.
//!
//! Used wherever the workspace needs a *stable* hash for routing or
//! seed-mixing (shard selection in the audit engine and the mux server,
//! per-request latency derivation in the storage model): unlike std's
//! `RandomState`, the result never varies per process, so load patterns
//! and simulations reproduce exactly. Never use this where an adversary
//! controls the input and collisions have security consequences — that
//! is what [`crate::sha256`] is for.

/// Incremental 64-bit FNV-1a.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

/// FNV-1a 64-bit offset basis.
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const PRIME: u64 = 0x100_0000_01b3;

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// Starts a hash at the offset basis.
    pub fn new() -> Self {
        Fnv1a(OFFSET_BASIS)
    }

    /// Absorbs bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
        self
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a over a byte string.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Fnv1a::new();
        h.write(b"foo").write(b"bar");
        assert_eq!(h.finish(), fnv1a_64(b"foobar"));
    }

    #[test]
    fn distinct_inputs_diverge() {
        assert_ne!(fnv1a_64(b"prover-0001"), fnv1a_64(b"prover-0002"));
    }
}
