//! Constant-time comparison helpers.
//!
//! MAC and signature verification must not leak how many prefix bytes
//! matched; these helpers compare without data-dependent branches.

/// Compares two byte slices in constant time (for equal-length inputs).
///
/// Returns `false` immediately when lengths differ — the length of a MAC tag
/// is public information, only its *contents* are secret.
///
/// # Examples
///
/// ```
/// use geoproof_crypto::ct::ct_eq;
/// assert!(ct_eq(b"abc", b"abc"));
/// assert!(!ct_eq(b"abc", b"abd"));
/// assert!(!ct_eq(b"abc", b"ab"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Constant-time conditional select: returns `a` if `choice` is 1, `b` if 0.
///
/// # Panics
///
/// Panics if `choice` is not 0 or 1.
pub fn ct_select_u64(choice: u8, a: u64, b: u64) -> u64 {
    assert!(choice <= 1, "choice must be a bit");
    let mask = (choice as u64).wrapping_neg(); // 0x00..00 or 0xff..ff
    (a & mask) | (b & !mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_basic() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
        assert!(!ct_eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!ct_eq(&[1, 2, 3], &[1, 2]));
    }

    #[test]
    fn select_basic() {
        assert_eq!(ct_select_u64(1, 7, 9), 7);
        assert_eq!(ct_select_u64(0, 7, 9), 9);
    }

    #[test]
    #[should_panic(expected = "choice must be a bit")]
    fn select_rejects_non_bit() {
        ct_select_u64(2, 0, 0);
    }
}
