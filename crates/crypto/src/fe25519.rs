//! Field arithmetic modulo `p = 2^255 - 19`, the Curve25519 base field.
//!
//! Elements are held in five 51-bit limbs (radix 2^51); products are
//! accumulated in `u128`. This underpins the Edwards-curve group used for
//! the verifier device's Schnorr transcript signatures (paper Fig. 5:
//! `Sign_SK(R)`).

/// A field element mod `2^255 - 19`, five 51-bit limbs, little-endian.
#[derive(Clone, Copy)]
pub struct Fe(pub(crate) [u64; 5]);

const MASK51: u64 = (1u64 << 51) - 1;

impl std::fmt::Debug for Fe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Fe(0x")?;
        for b in self.to_bytes().iter().rev() {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl PartialEq for Fe {
    fn eq(&self, other: &Self) -> bool {
        self.to_bytes() == other.to_bytes()
    }
}
impl Eq for Fe {}

impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe([0; 5]);
    /// The multiplicative identity.
    pub const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    /// Constructs from a small integer.
    pub fn from_u64(x: u64) -> Fe {
        let mut fe = Fe::ZERO;
        fe.0[0] = x & MASK51;
        fe.0[1] = x >> 51;
        fe
    }

    /// Parses 32 little-endian bytes; the top bit is ignored (mod p).
    pub fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |i: usize| -> u64 {
            let mut v = 0u64;
            for j in (0..8).rev() {
                v = (v << 8) | bytes[i + j] as u64;
            }
            v
        };
        let l0 = load(0) & MASK51;
        let l1 = (load(6) >> 3) & MASK51;
        let l2 = (load(12) >> 6) & MASK51;
        let l3 = (load(19) >> 1) & MASK51;
        let l4 = (load(24) >> 12) & MASK51;
        Fe([l0, l1, l2, l3, l4])
    }

    /// Serialises to 32 little-endian bytes in canonical reduced form.
    pub fn to_bytes(self) -> [u8; 32] {
        let mut h = self.reduce_limbs();
        // Final strong reduction: compute h - p and select.
        let mut q = (h.0[0].wrapping_add(19)) >> 51;
        q = (h.0[1].wrapping_add(q)) >> 51;
        q = (h.0[2].wrapping_add(q)) >> 51;
        q = (h.0[3].wrapping_add(q)) >> 51;
        q = (h.0[4].wrapping_add(q)) >> 51;
        // q is 1 iff h >= p.
        h.0[0] = h.0[0].wrapping_add(19u64.wrapping_mul(q));
        let mut carry = h.0[0] >> 51;
        h.0[0] &= MASK51;
        h.0[1] = h.0[1].wrapping_add(carry);
        carry = h.0[1] >> 51;
        h.0[1] &= MASK51;
        h.0[2] = h.0[2].wrapping_add(carry);
        carry = h.0[2] >> 51;
        h.0[2] &= MASK51;
        h.0[3] = h.0[3].wrapping_add(carry);
        carry = h.0[3] >> 51;
        h.0[3] &= MASK51;
        h.0[4] = h.0[4].wrapping_add(carry);
        h.0[4] &= MASK51;

        let mut out = [0u8; 32];
        let limbs = h.0;
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let mut byte_idx = 0usize;
        for &limb in limbs.iter() {
            acc |= (limb as u128) << acc_bits;
            acc_bits += 51;
            while acc_bits >= 8 && byte_idx < 32 {
                out[byte_idx] = (acc & 0xff) as u8;
                acc >>= 8;
                acc_bits -= 8;
                byte_idx += 1;
            }
        }
        while byte_idx < 32 {
            out[byte_idx] = (acc & 0xff) as u8;
            acc >>= 8;
            byte_idx += 1;
        }
        out
    }

    fn reduce_limbs(self) -> Fe {
        let mut l = self.0;
        let mut carry;
        for _ in 0..2 {
            carry = l[0] >> 51;
            l[0] &= MASK51;
            l[1] += carry;
            carry = l[1] >> 51;
            l[1] &= MASK51;
            l[2] += carry;
            carry = l[2] >> 51;
            l[2] &= MASK51;
            l[3] += carry;
            carry = l[3] >> 51;
            l[3] &= MASK51;
            l[4] += carry;
            carry = l[4] >> 51;
            l[4] &= MASK51;
            l[0] += 19 * carry;
        }
        Fe(l)
    }

    /// Field addition.
    pub fn add(&self, other: &Fe) -> Fe {
        let mut l = [0u64; 5];
        for (i, limb) in l.iter_mut().enumerate() {
            *limb = self.0[i] + other.0[i];
        }
        Fe(l).reduce_limbs()
    }

    /// Field subtraction.
    pub fn sub(&self, other: &Fe) -> Fe {
        // Add 2p (in limb form) to avoid underflow before subtracting.
        const TWO_P: [u64; 5] = [
            0xfffffffffffda,
            0xffffffffffffe,
            0xffffffffffffe,
            0xffffffffffffe,
            0xffffffffffffe,
        ];
        let mut l = [0u64; 5];
        for i in 0..5 {
            l[i] = self.0[i] + TWO_P[i] - other.0[i];
        }
        Fe(l).reduce_limbs()
    }

    /// Field negation.
    pub fn neg(&self) -> Fe {
        Fe::ZERO.sub(self)
    }

    /// Field multiplication.
    pub fn mul(&self, other: &Fe) -> Fe {
        let a = &self.0;
        let b = &other.0;
        let a0 = a[0] as u128;
        let a1 = a[1] as u128;
        let a2 = a[2] as u128;
        let a3 = a[3] as u128;
        let a4 = a[4] as u128;
        let b0 = b[0] as u128;
        let b1 = b[1] as u128;
        let b2 = b[2] as u128;
        let b3 = b[3] as u128;
        let b4 = b[4] as u128;
        // 19 * high limbs folded down (since 2^255 ≡ 19).
        let b1_19 = b1 * 19;
        let b2_19 = b2 * 19;
        let b3_19 = b3 * 19;
        let b4_19 = b4 * 19;

        let t0 = a0 * b0 + a1 * b4_19 + a2 * b3_19 + a3 * b2_19 + a4 * b1_19;
        let mut t1 = a0 * b1 + a1 * b0 + a2 * b4_19 + a3 * b3_19 + a4 * b2_19;
        let mut t2 = a0 * b2 + a1 * b1 + a2 * b0 + a3 * b4_19 + a4 * b3_19;
        let mut t3 = a0 * b3 + a1 * b2 + a2 * b1 + a3 * b0 + a4 * b4_19;
        let mut t4 = a0 * b4 + a1 * b3 + a2 * b2 + a3 * b1 + a4 * b0;

        // Carry propagation.
        let mut l = [0u64; 5];
        t1 += t0 >> 51;
        l[0] = (t0 as u64) & MASK51;
        t2 += t1 >> 51;
        l[1] = (t1 as u64) & MASK51;
        t3 += t2 >> 51;
        l[2] = (t2 as u64) & MASK51;
        t4 += t3 >> 51;
        l[3] = (t3 as u64) & MASK51;
        let carry = (t4 >> 51) as u64;
        l[4] = (t4 as u64) & MASK51;
        l[0] += 19 * carry;
        let c = l[0] >> 51;
        l[0] &= MASK51;
        l[1] += c;
        Fe(l)
    }

    /// Field squaring (dedicated formula: 15 limb products against the
    /// 25 of a general multiply).
    pub fn square(&self) -> Fe {
        let a = &self.0;
        let a0 = a[0] as u128;
        let a1 = a[1] as u128;
        let a2 = a[2] as u128;
        let a3 = a[3] as u128;
        let a4 = a[4] as u128;
        let a3_19 = a3 * 19;
        let a4_19 = a4 * 19;

        let t0 = a0 * a0 + 2 * (a1 * a4_19 + a2 * a3_19);
        let mut t1 = a3 * a3_19 + 2 * (a0 * a1 + a2 * a4_19);
        let mut t2 = a1 * a1 + 2 * (a0 * a2 + a4 * a3_19);
        let mut t3 = a4 * a4_19 + 2 * (a0 * a3 + a1 * a2);
        let mut t4 = a2 * a2 + 2 * (a0 * a4 + a1 * a3);

        let mut l = [0u64; 5];
        t1 += t0 >> 51;
        l[0] = (t0 as u64) & MASK51;
        t2 += t1 >> 51;
        l[1] = (t1 as u64) & MASK51;
        t3 += t2 >> 51;
        l[2] = (t2 as u64) & MASK51;
        t4 += t3 >> 51;
        l[3] = (t3 as u64) & MASK51;
        let carry = (t4 >> 51) as u64;
        l[4] = (t4 as u64) & MASK51;
        l[0] += 19 * carry;
        let c = l[0] >> 51;
        l[0] &= MASK51;
        l[1] += c;
        Fe(l)
    }

    /// `self^(2^k)`: `k` successive squarings.
    fn pow2k(&self, k: u32) -> Fe {
        let mut r = *self;
        for _ in 0..k {
            r = r.square();
        }
        r
    }

    /// Shared prefix of the inversion and square-root exponents:
    /// `(self^(2^250 - 1), self^11)` via the standard curve25519
    /// addition chain (11 multiplies instead of one per exponent bit).
    fn pow22501(&self) -> (Fe, Fe) {
        let t0 = self.square(); // 2
        let t1 = t0.square().square(); // 8
        let t2 = self.mul(&t1); // 9
        let t3 = t0.mul(&t2); // 11
        let t4 = t3.square(); // 22
        let t5 = t2.mul(&t4); // 2^5 - 1
        let t6 = t5.pow2k(5).mul(&t5); // 2^10 - 1
        let t7 = t6.pow2k(10).mul(&t6); // 2^20 - 1
        let t8 = t7.pow2k(20).mul(&t7); // 2^40 - 1
        let t9 = t8.pow2k(10).mul(&t6); // 2^50 - 1
        let t10 = t9.pow2k(50).mul(&t9); // 2^100 - 1
        let t11 = t10.pow2k(100).mul(&t10); // 2^200 - 1
        let t12 = t11.pow2k(50).mul(&t9); // 2^250 - 1
        (t12, t3)
    }

    /// Multiplicative inverse via Fermat: `self^(p-2)`.
    ///
    /// Returns `Fe::ZERO` for input zero (zero has no inverse; callers that
    /// care must check separately).
    pub fn invert(&self) -> Fe {
        // p - 2 = 2^255 - 21 = (2^250 - 1)·2^5 + 11.
        let (t, x11) = self.pow22501();
        t.pow2k(5).mul(&x11)
    }

    /// `self^((p-5)/8)`, the core exponentiation of [`Fe::sqrt_ratio`].
    fn pow_p58(&self) -> Fe {
        // (p-5)/8 = 2^252 - 3 = (2^250 - 1)·2^2 + 1.
        let (t, _) = self.pow22501();
        t.pow2k(2).mul(self)
    }

    /// Computes `sqrt(num/den)` with a **single** exponentiation — the
    /// RFC 8032 point-decoding trick: candidate
    /// `r = num·den³·(num·den⁷)^((p-5)/8)`, fixed up by `sqrt(-1)` when
    /// `den·r²  == -num`. Replaces the separate `invert` + `sqrt` pair
    /// (two full exponentiations) on the decompression hot path.
    ///
    /// Returns `None` when `num/den` is a non-residue. `sqrt_ratio(0, 0)`
    /// yields `Some(ZERO)`, matching `Fe::ZERO.invert() == ZERO` followed
    /// by `sqrt(0)` in the code it replaces.
    pub fn sqrt_ratio(num: &Fe, den: &Fe) -> Option<Fe> {
        let den2 = den.square();
        let den3 = den2.mul(den);
        let den7 = den3.square().mul(den);
        let r = num.mul(&den3).mul(&num.mul(&den7).pow_p58());
        let check = den.mul(&r.square());
        if check == *num {
            return Some(r);
        }
        if check == num.neg() {
            return Some(r.mul(&sqrt_m1()));
        }
        None
    }

    /// Raises to a little-endian byte exponent (square-and-multiply).
    pub fn pow_bytes_le(&self, exp: &[u8]) -> Fe {
        let mut result = Fe::ONE;
        let mut base = *self;
        for &byte in exp.iter() {
            let mut b = byte;
            for _ in 0..8 {
                if b & 1 == 1 {
                    result = result.mul(&base);
                }
                base = base.square();
                b >>= 1;
            }
        }
        result
    }

    /// True if the element is zero.
    pub fn is_zero(&self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    /// Parity of the canonical representation (bit 0), used as the "sign"
    /// in point compression.
    pub fn is_negative(&self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }

    /// Square root for p ≡ 5 (mod 8): returns a root of `self` if one
    /// exists.
    ///
    /// Uses the standard `sqrt(u) = u^((p+3)/8)` candidate, multiplied by
    /// `sqrt(-1)` when needed.
    pub fn sqrt(&self) -> Option<Fe> {
        // (p+3)/8 = 2^252 - 2, little-endian bytes.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xfe;
        exp[31] = 0x0f;
        let candidate = self.pow_bytes_le(&exp);
        if candidate.square() == *self {
            return Some(candidate);
        }
        let root = candidate.mul(&sqrt_m1());
        if root.square() == *self {
            Some(root)
        } else {
            None
        }
    }
}

/// `sqrt(-1) mod p` computed once as `2^((p-1)/4)`.
pub fn sqrt_m1() -> Fe {
    use std::sync::OnceLock;
    static CACHE: OnceLock<Fe> = OnceLock::new();
    *CACHE.get_or_init(|| {
        // (p-1)/4 = 2^253 - 5, little-endian bytes.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xfb;
        exp[31] = 0x1f;
        Fe::from_u64(2).pow_bytes_le(&exp)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_plus_one() {
        assert_eq!(Fe::ONE.add(&Fe::ONE), Fe::from_u64(2));
    }

    #[test]
    fn roundtrip_bytes() {
        let x = Fe::from_u64(123_456_789);
        assert_eq!(Fe::from_bytes(&x.to_bytes()), x);
    }

    #[test]
    fn sub_and_neg() {
        let a = Fe::from_u64(1000);
        let b = Fe::from_u64(999);
        assert_eq!(a.sub(&b), Fe::ONE);
        assert_eq!(b.sub(&a), Fe::ONE.neg());
        assert_eq!(a.add(&a.neg()), Fe::ZERO);
    }

    #[test]
    fn mul_matches_small_ints() {
        let a = Fe::from_u64(1 << 30);
        let b = Fe::from_u64(1 << 25);
        assert_eq!(a.mul(&b), Fe::from_u64(1 << 55));
    }

    #[test]
    fn p_is_zero() {
        // p = 2^255 - 19 must serialise to zero.
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        assert!(Fe::from_bytes(&p_bytes).is_zero());
    }

    #[test]
    fn p_minus_one() {
        let mut bytes = [0xffu8; 32];
        bytes[0] = 0xec;
        bytes[31] = 0x7f;
        let pm1 = Fe::from_bytes(&bytes);
        assert_eq!(pm1.add(&Fe::ONE), Fe::ZERO);
        assert_eq!(pm1, Fe::ONE.neg());
    }

    #[test]
    fn invert_basic() {
        let a = Fe::from_u64(987_654_321);
        let inv = a.invert();
        assert_eq!(a.mul(&inv), Fe::ONE);
    }

    #[test]
    fn invert_of_one_is_one() {
        assert_eq!(Fe::ONE.invert(), Fe::ONE);
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = sqrt_m1();
        assert_eq!(i.square(), Fe::ONE.neg());
    }

    #[test]
    fn sqrt_roundtrip() {
        for v in [4u64, 9, 16, 25, 12345] {
            let x = Fe::from_u64(v);
            let sq = x.square();
            let root = sq.sqrt().expect("square must have a root");
            assert!(root == x || root == x.neg());
        }
    }

    #[test]
    fn two_is_not_a_square() {
        // 2 is a quadratic non-residue mod p (p ≡ 5 mod 8).
        assert!(Fe::from_u64(2).sqrt().is_none());
    }

    #[test]
    fn square_matches_mul() {
        let mut x = Fe::from_u64(0x1234_5678_9abc_def0);
        for _ in 0..50 {
            assert_eq!(x.square(), x.mul(&x));
            x = x.mul(&Fe::from_u64(0x9e37_79b9)).add(&Fe::ONE);
        }
    }

    #[test]
    fn invert_chain_matches_pow_bytes() {
        // The addition chain must agree with the generic Fermat ladder.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xeb;
        exp[31] = 0x7f;
        let mut x = Fe::from_u64(7);
        for _ in 0..20 {
            assert_eq!(x.invert(), x.pow_bytes_le(&exp));
            x = x.square().add(&Fe::ONE);
        }
    }

    #[test]
    fn sqrt_ratio_matches_invert_then_sqrt() {
        let mut num = Fe::from_u64(3);
        let den = Fe::from_u64(5);
        let mut residues = 0;
        for _ in 0..40 {
            let via_pair = num.mul(&den.invert()).sqrt();
            let via_ratio = Fe::sqrt_ratio(&num, &den);
            match (via_pair, via_ratio) {
                (Some(a), Some(b)) => {
                    assert!(a == b || a == b.neg());
                    assert_eq!(b.square().mul(&den), num);
                    residues += 1;
                }
                (None, None) => {}
                (a, b) => panic!("sqrt disagreement: {a:?} vs {b:?}"),
            }
            num = num.square().add(&Fe::from_u64(11));
        }
        assert!(residues > 0, "some ratios must be squares");
    }

    #[test]
    fn sqrt_ratio_degenerate_inputs() {
        assert_eq!(Fe::sqrt_ratio(&Fe::ZERO, &Fe::from_u64(9)), Some(Fe::ZERO));
        assert_eq!(Fe::sqrt_ratio(&Fe::ZERO, &Fe::ZERO), Some(Fe::ZERO));
    }

    #[test]
    fn distributive_law_spot_check() {
        let a = Fe::from_u64(0xdead_beef);
        let b = Fe::from_u64(0xcafe_babe);
        let c = Fe::from_u64(0x1234_5678);
        let lhs = a.mul(&b.add(&c));
        let rhs = a.mul(&b).add(&a.mul(&c));
        assert_eq!(lhs, rhs);
    }
}
