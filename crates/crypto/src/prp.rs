//! Pseudorandom permutations over arbitrary integer domains.
//!
//! GeoProof's setup (§V-A, step 4) reorders the encrypted file's blocks with
//! a pseudorandom permutation so the provider cannot tell which blocks share
//! an error-correction chunk (citing Luby–Rackoff, reference 28). Real files are not
//! a power of two long, so we build:
//!
//! 1. [`FeistelPrp`] — a balanced Feistel network over `2^(2w)`-sized
//!    domains with HMAC round functions (Luby–Rackoff: 4 rounds already give
//!    a strong PRP; we use 8 for margin), and
//! 2. [`DomainPrp`] — cycle-walking on top of the Feistel network to obtain
//!    a permutation of an arbitrary domain `[0, n)`.
//!
//! # Examples
//!
//! ```
//! use geoproof_crypto::prp::DomainPrp;
//!
//! let prp = DomainPrp::new(&[1u8; 32], 1000);
//! let image: Vec<u64> = (0..1000).map(|i| prp.permute(i)).collect();
//! let mut sorted = image.clone();
//! sorted.sort_unstable();
//! assert_eq!(sorted, (0..1000).collect::<Vec<_>>()); // bijection
//! assert_eq!(prp.inverse(prp.permute(123)), 123);
//! ```

use crate::hmac::HmacSha256;

const ROUNDS: usize = 8;

/// Balanced Feistel permutation over `[0, 2^(2*half_bits))`.
///
/// Round function: `F_i(x) = HMAC_k(i || x)` truncated to `half_bits` bits.
#[derive(Clone)]
pub struct FeistelPrp {
    key: [u8; 32],
    half_bits: u32,
}

impl std::fmt::Debug for FeistelPrp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeistelPrp")
            .field("half_bits", &self.half_bits)
            .finish_non_exhaustive()
    }
}

impl FeistelPrp {
    /// Creates a Feistel PRP over a `2^(2*half_bits)` domain.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= half_bits <= 32`.
    pub fn new(key: &[u8; 32], half_bits: u32) -> Self {
        assert!((1..=32).contains(&half_bits), "half_bits must be in 1..=32");
        FeistelPrp {
            key: *key,
            half_bits,
        }
    }

    /// Size of the permuted domain (`2^(2*half_bits)`), saturating at `u64::MAX`
    /// when `half_bits == 32`.
    pub fn domain_size(&self) -> u64 {
        if self.half_bits == 32 {
            u64::MAX // 2^64 - 1; treated as "full u64 domain" marker
        } else {
            1u64 << (2 * self.half_bits)
        }
    }

    fn round(&self, round_idx: u32, half: u64) -> u64 {
        let mut h = HmacSha256::new(&self.key);
        h.update(&round_idx.to_be_bytes());
        h.update(&half.to_be_bytes());
        let tag = h.finalize();
        let v = u64::from_be_bytes(tag[..8].try_into().expect("8 bytes"));
        v & self.half_mask()
    }

    fn half_mask(&self) -> u64 {
        if self.half_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.half_bits) - 1
        }
    }

    /// Applies the forward permutation.
    pub fn permute(&self, x: u64) -> u64 {
        let mask = self.half_mask();
        let mut left = (x >> self.half_bits) & mask;
        let mut right = x & mask;
        for r in 0..ROUNDS as u32 {
            let new_left = right;
            let new_right = left ^ self.round(r, right);
            left = new_left;
            right = new_right;
        }
        (left << self.half_bits) | right
    }

    /// Applies the inverse permutation.
    pub fn inverse(&self, y: u64) -> u64 {
        let mask = self.half_mask();
        let mut left = (y >> self.half_bits) & mask;
        let mut right = y & mask;
        for r in (0..ROUNDS as u32).rev() {
            let prev_right = left;
            let prev_left = right ^ self.round(r, prev_right);
            left = prev_left;
            right = prev_right;
        }
        (left << self.half_bits) | right
    }
}

/// Pseudorandom permutation of an arbitrary domain `[0, n)` by cycle-walking
/// a [`FeistelPrp`] over the next power-of-four-sized domain.
///
/// Cycle-walking repeatedly applies the base permutation until the output
/// lands back inside `[0, n)`; because the base map is a bijection of a
/// superset, the walk always terminates and the restriction is a bijection
/// of `[0, n)`. Expected iterations are below 4.
#[derive(Clone, Debug)]
pub struct DomainPrp {
    feistel: FeistelPrp,
    n: u64,
}

impl DomainPrp {
    /// Creates a PRP over `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(key: &[u8; 32], n: u64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        // Smallest even bit-width >= bits needed for n-1.
        let needed = 64 - n.saturating_sub(1).leading_zeros();
        let half_bits = needed.div_ceil(2).max(1);
        DomainPrp {
            feistel: FeistelPrp::new(key, half_bits),
            n,
        }
    }

    /// Domain size `n`.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// Forward permutation of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= n`.
    pub fn permute(&self, x: u64) -> u64 {
        assert!(x < self.n, "input {x} outside domain [0, {})", self.n);
        let mut y = self.feistel.permute(x);
        while y >= self.n {
            y = self.feistel.permute(y);
        }
        y
    }

    /// Inverse permutation of `y`.
    ///
    /// # Panics
    ///
    /// Panics if `y >= n`.
    pub fn inverse(&self, y: u64) -> u64 {
        assert!(y < self.n, "input {y} outside domain [0, {})", self.n);
        let mut x = self.feistel.inverse(y);
        while x >= self.n {
            x = self.feistel.inverse(x);
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feistel_roundtrip_small_domain() {
        let prp = FeistelPrp::new(&[3u8; 32], 4); // domain 2^8
        for x in 0..256u64 {
            let y = prp.permute(x);
            assert!(y < 256);
            assert_eq!(prp.inverse(y), x);
        }
    }

    #[test]
    fn feistel_is_bijection() {
        let prp = FeistelPrp::new(&[5u8; 32], 4);
        let mut seen = vec![false; 256];
        for x in 0..256u64 {
            let y = prp.permute(x) as usize;
            assert!(!seen[y], "collision at {y}");
            seen[y] = true;
        }
    }

    #[test]
    fn domain_prp_bijection_odd_domain() {
        // 1000 is not a power of two: exercises cycle-walking.
        let prp = DomainPrp::new(&[7u8; 32], 1000);
        let mut seen = vec![false; 1000];
        for x in 0..1000u64 {
            let y = prp.permute(x);
            assert!(y < 1000);
            assert!(!seen[y as usize]);
            seen[y as usize] = true;
            assert_eq!(prp.inverse(y), x);
        }
    }

    #[test]
    fn domain_prp_singleton() {
        let prp = DomainPrp::new(&[0u8; 32], 1);
        assert_eq!(prp.permute(0), 0);
        assert_eq!(prp.inverse(0), 0);
    }

    #[test]
    fn distinct_keys_give_distinct_permutations() {
        let a = DomainPrp::new(&[1u8; 32], 4096);
        let b = DomainPrp::new(&[2u8; 32], 4096);
        let differs = (0..4096u64).any(|x| a.permute(x) != b.permute(x));
        assert!(differs);
    }

    #[test]
    fn permutation_looks_non_trivial() {
        // Not the identity and not a simple shift.
        let prp = DomainPrp::new(&[9u8; 32], 1 << 16);
        let fixed = (0..(1u64 << 16)).filter(|&x| prp.permute(x) == x).count();
        // A random permutation of 65536 points has ~1 fixed point on average.
        assert!(fixed < 20, "too many fixed points: {fixed}");
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_panics() {
        DomainPrp::new(&[0u8; 32], 10).permute(10);
    }

    #[test]
    fn large_domain_smoke() {
        // The paper's example file has ~1.5e8 blocks; test at that scale.
        let prp = DomainPrp::new(&[4u8; 32], 153_008_209);
        for x in [0u64, 1, 76_504_104, 153_008_208] {
            let y = prp.permute(x);
            assert!(y < 153_008_209);
            assert_eq!(prp.inverse(y), x);
        }
    }
}
