//! Pseudorandom permutations over arbitrary integer domains.
//!
//! GeoProof's setup (§V-A, step 4) reorders the encrypted file's blocks with
//! a pseudorandom permutation so the provider cannot tell which blocks share
//! an error-correction chunk (citing Luby–Rackoff, reference 28). Real files are not
//! a power of two long, so we build:
//!
//! 1. [`FeistelPrp`] — a balanced Feistel network over `2^(2w)`-sized
//!    domains with HMAC round functions (Luby–Rackoff: 4 rounds already give
//!    a strong PRP; we use 8 for margin), and
//! 2. [`DomainPrp`] — cycle-walking on top of the Feistel network to obtain
//!    a permutation of an arbitrary domain `[0, n)`.
//!
//! # Examples
//!
//! ```
//! use geoproof_crypto::prp::DomainPrp;
//!
//! let prp = DomainPrp::new(&[1u8; 32], 1000);
//! let image: Vec<u64> = (0..1000).map(|i| prp.permute(i)).collect();
//! let mut sorted = image.clone();
//! sorted.sort_unstable();
//! assert_eq!(sorted, (0..1000).collect::<Vec<_>>()); // bijection
//! assert_eq!(prp.inverse(prp.permute(123)), 123);
//! ```

use crate::hmac::{HmacKeySchedule, HmacSha256};

const ROUNDS: usize = 8;

/// Largest `half_bits` for which [`FeistelSchedule`] tabulates the round
/// functions: 8 rounds × 2^16 entries × 8 bytes = 4 MiB. That covers
/// domains up to 2^32 blocks (a 64 TiB file at 16-byte blocks); larger
/// domains fall back to midstate HMACs.
const TABLE_HALF_BITS_MAX: u32 = 16;

/// Balanced Feistel permutation over `[0, 2^(2*half_bits))`.
///
/// Round function: `F_i(x) = HMAC_k(i || x)` truncated to `half_bits` bits.
#[derive(Clone)]
pub struct FeistelPrp {
    key: [u8; 32],
    half_bits: u32,
}

impl std::fmt::Debug for FeistelPrp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeistelPrp")
            .field("half_bits", &self.half_bits)
            .finish_non_exhaustive()
    }
}

impl FeistelPrp {
    /// Creates a Feistel PRP over a `2^(2*half_bits)` domain.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= half_bits <= 32`.
    pub fn new(key: &[u8; 32], half_bits: u32) -> Self {
        assert!((1..=32).contains(&half_bits), "half_bits must be in 1..=32");
        FeistelPrp {
            key: *key,
            half_bits,
        }
    }

    /// Size of the permuted domain (`2^(2*half_bits)`), saturating at `u64::MAX`
    /// when `half_bits == 32`.
    pub fn domain_size(&self) -> u64 {
        if self.half_bits == 32 {
            u64::MAX // 2^64 - 1; treated as "full u64 domain" marker
        } else {
            1u64 << (2 * self.half_bits)
        }
    }

    fn round(&self, round_idx: u32, half: u64) -> u64 {
        let mut h = HmacSha256::new(&self.key);
        h.update(&round_idx.to_be_bytes());
        h.update(&half.to_be_bytes());
        let tag = h.finalize();
        let v = u64::from_be_bytes(tag[..8].try_into().expect("8 bytes"));
        v & self.half_mask()
    }

    /// Precomputes the per-key round schedule (see [`FeistelSchedule`]).
    pub fn precompute(&self) -> FeistelSchedule {
        FeistelSchedule::new(&self.key, self.half_bits)
    }

    fn half_mask(&self) -> u64 {
        half_mask(self.half_bits)
    }

    /// Applies the forward permutation.
    pub fn permute(&self, x: u64) -> u64 {
        let mask = self.half_mask();
        let mut left = (x >> self.half_bits) & mask;
        let mut right = x & mask;
        for r in 0..ROUNDS as u32 {
            let new_left = right;
            let new_right = left ^ self.round(r, right);
            left = new_left;
            right = new_right;
        }
        (left << self.half_bits) | right
    }

    /// Applies the inverse permutation.
    pub fn inverse(&self, y: u64) -> u64 {
        let mask = self.half_mask();
        let mut left = (y >> self.half_bits) & mask;
        let mut right = y & mask;
        for r in (0..ROUNDS as u32).rev() {
            let prev_right = left;
            let prev_left = right ^ self.round(r, prev_right);
            left = prev_left;
            right = prev_right;
        }
        (left << self.half_bits) | right
    }
}

/// A per-key precomputed [`FeistelPrp`]: identical permutation, hoisted
/// round-function work.
///
/// [`FeistelPrp::permute`] pays 8 HMAC invocations (≈ 32 SHA-256
/// compressions) per call, every call. But the round function
/// `F_i(x) = HMAC_k(i ‖ x)` only ever sees `x < 2^half_bits` — for any
/// realistic file the whole round-function domain is a few thousand
/// points. The schedule evaluates each `(round, x)` pair **once** into a
/// flat table, so one HMAC invocation covers every block whose Feistel
/// walk passes through that point and `permute` itself is eight table
/// loads and XORs. Domains too large to tabulate (`half_bits >` 16) keep
/// per-call HMACs but reuse precomputed key-pad midstates
/// ([`HmacKeySchedule`]), halving the compressions.
///
/// Outputs are bit-identical to the plain [`FeistelPrp`] — the schedule
/// is a cache, not a different construction; `crate::prp` tests pin the
/// equivalence over full small domains and sampled paper-sized ones.
#[derive(Clone)]
pub struct FeistelSchedule {
    half_bits: u32,
    hmac: HmacKeySchedule,
    /// Flat round table, entry `(r << half_bits) | x`; `None` when the
    /// domain is too large to tabulate.
    table: Option<Vec<u64>>,
}

impl std::fmt::Debug for FeistelSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeistelSchedule")
            .field("half_bits", &self.half_bits)
            .field("tabulated", &self.table.is_some())
            .finish_non_exhaustive()
    }
}

impl FeistelSchedule {
    /// Precomputes the schedule for `key` over a `2^(2*half_bits)` domain.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= half_bits <= 32`.
    pub fn new(key: &[u8; 32], half_bits: u32) -> Self {
        Self::with_table_limit(key, half_bits, TABLE_HALF_BITS_MAX)
    }

    fn with_table_limit(key: &[u8; 32], half_bits: u32, table_max: u32) -> Self {
        assert!((1..=32).contains(&half_bits), "half_bits must be in 1..=32");
        let hmac = HmacKeySchedule::new(key);
        let mask = half_mask(half_bits);
        let table = (half_bits <= table_max).then(|| {
            let size = 1usize << half_bits;
            let mut t = vec![0u64; ROUNDS * size];
            for (r, round) in t.chunks_exact_mut(size).enumerate() {
                for (x, slot) in round.iter_mut().enumerate() {
                    *slot = hmac_round(&hmac, r as u32, x as u64, mask);
                }
            }
            t
        });
        FeistelSchedule {
            half_bits,
            hmac,
            table,
        }
    }

    fn round(&self, round_idx: u32, half: u64) -> u64 {
        match &self.table {
            Some(t) => t[((round_idx as usize) << self.half_bits) | half as usize],
            None => hmac_round(&self.hmac, round_idx, half, half_mask(self.half_bits)),
        }
    }

    /// Applies the forward permutation (identical to [`FeistelPrp::permute`]).
    pub fn permute(&self, x: u64) -> u64 {
        let mask = half_mask(self.half_bits);
        let mut left = (x >> self.half_bits) & mask;
        let mut right = x & mask;
        for r in 0..ROUNDS as u32 {
            let new_left = right;
            let new_right = left ^ self.round(r, right);
            left = new_left;
            right = new_right;
        }
        (left << self.half_bits) | right
    }

    /// Applies the inverse permutation (identical to [`FeistelPrp::inverse`]).
    pub fn inverse(&self, y: u64) -> u64 {
        let mask = half_mask(self.half_bits);
        let mut left = (y >> self.half_bits) & mask;
        let mut right = y & mask;
        for r in (0..ROUNDS as u32).rev() {
            let prev_right = left;
            let prev_left = right ^ self.round(r, prev_right);
            left = prev_left;
            right = prev_right;
        }
        (left << self.half_bits) | right
    }
}

fn half_mask(half_bits: u32) -> u64 {
    if half_bits == 64 {
        u64::MAX
    } else {
        (1u64 << half_bits) - 1
    }
}

/// One round-function evaluation from precomputed key midstates — the
/// same bytes [`FeistelPrp::round`] hashes.
fn hmac_round(hmac: &HmacKeySchedule, round_idx: u32, half: u64, mask: u64) -> u64 {
    let mut h = hmac.start();
    h.update(&round_idx.to_be_bytes());
    h.update(&half.to_be_bytes());
    let tag = h.finalize();
    u64::from_be_bytes(tag[..8].try_into().expect("8 bytes")) & mask
}

/// Pseudorandom permutation of an arbitrary domain `[0, n)` by cycle-walking
/// a [`FeistelPrp`] over the next power-of-four-sized domain.
///
/// Cycle-walking repeatedly applies the base permutation until the output
/// lands back inside `[0, n)`; because the base map is a bijection of a
/// superset, the walk always terminates and the restriction is a bijection
/// of `[0, n)`. Expected iterations are below 4.
#[derive(Clone, Debug)]
pub struct DomainPrp {
    feistel: FeistelPrp,
    n: u64,
}

impl DomainPrp {
    /// Creates a PRP over `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(key: &[u8; 32], n: u64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        // Smallest even bit-width >= bits needed for n-1.
        let needed = 64 - n.saturating_sub(1).leading_zeros();
        let half_bits = needed.div_ceil(2).max(1);
        DomainPrp {
            feistel: FeistelPrp::new(key, half_bits),
            n,
        }
    }

    /// Domain size `n`.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// Forward permutation of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= n`.
    pub fn permute(&self, x: u64) -> u64 {
        assert!(x < self.n, "input {x} outside domain [0, {})", self.n);
        let mut y = self.feistel.permute(x);
        while y >= self.n {
            y = self.feistel.permute(y);
        }
        y
    }

    /// Inverse permutation of `y`.
    ///
    /// # Panics
    ///
    /// Panics if `y >= n`.
    pub fn inverse(&self, y: u64) -> u64 {
        assert!(y < self.n, "input {y} outside domain [0, {})", self.n);
        let mut x = self.feistel.inverse(y);
        while x >= self.n {
            x = self.feistel.inverse(x);
        }
        x
    }

    /// Precomputes the per-key round schedule (see [`PrpSchedule`]).
    pub fn precompute(&self) -> PrpSchedule {
        PrpSchedule {
            feistel: self.feistel.precompute(),
            n: self.n,
        }
    }
}

/// A precomputed [`DomainPrp`]: the same cycle-walked permutation of
/// `[0, n)`, with the Feistel round functions tabulated per key (see
/// [`FeistelSchedule`]). Cycle-walking visits points of the enclosing
/// power-of-four domain, all of which the table covers, so every walk —
/// however long — is table lookups only.
///
/// `Send + Sync` and cheap to share: the POR encoder builds one per file
/// and hands references to every worker.
#[derive(Clone, Debug)]
pub struct PrpSchedule {
    feistel: FeistelSchedule,
    n: u64,
}

impl PrpSchedule {
    /// Precomputes a PRP schedule over `[0, n)` — equivalent to
    /// `DomainPrp::new(key, n).precompute()`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(key: &[u8; 32], n: u64) -> Self {
        DomainPrp::new(key, n).precompute()
    }

    /// Domain size `n`.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// Forward permutation of `x` (identical to [`DomainPrp::permute`]).
    ///
    /// # Panics
    ///
    /// Panics if `x >= n`.
    pub fn permute(&self, x: u64) -> u64 {
        assert!(x < self.n, "input {x} outside domain [0, {})", self.n);
        let mut y = self.feistel.permute(x);
        while y >= self.n {
            y = self.feistel.permute(y);
        }
        y
    }

    /// Inverse permutation of `y` (identical to [`DomainPrp::inverse`]).
    ///
    /// # Panics
    ///
    /// Panics if `y >= n`.
    pub fn inverse(&self, y: u64) -> u64 {
        assert!(y < self.n, "input {y} outside domain [0, {})", self.n);
        let mut x = self.feistel.inverse(y);
        while x >= self.n {
            x = self.feistel.inverse(x);
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feistel_roundtrip_small_domain() {
        let prp = FeistelPrp::new(&[3u8; 32], 4); // domain 2^8
        for x in 0..256u64 {
            let y = prp.permute(x);
            assert!(y < 256);
            assert_eq!(prp.inverse(y), x);
        }
    }

    #[test]
    fn feistel_is_bijection() {
        let prp = FeistelPrp::new(&[5u8; 32], 4);
        let mut seen = vec![false; 256];
        for x in 0..256u64 {
            let y = prp.permute(x) as usize;
            assert!(!seen[y], "collision at {y}");
            seen[y] = true;
        }
    }

    #[test]
    fn domain_prp_bijection_odd_domain() {
        // 1000 is not a power of two: exercises cycle-walking.
        let prp = DomainPrp::new(&[7u8; 32], 1000);
        let mut seen = vec![false; 1000];
        for x in 0..1000u64 {
            let y = prp.permute(x);
            assert!(y < 1000);
            assert!(!seen[y as usize]);
            seen[y as usize] = true;
            assert_eq!(prp.inverse(y), x);
        }
    }

    #[test]
    fn domain_prp_singleton() {
        let prp = DomainPrp::new(&[0u8; 32], 1);
        assert_eq!(prp.permute(0), 0);
        assert_eq!(prp.inverse(0), 0);
    }

    #[test]
    fn distinct_keys_give_distinct_permutations() {
        let a = DomainPrp::new(&[1u8; 32], 4096);
        let b = DomainPrp::new(&[2u8; 32], 4096);
        let differs = (0..4096u64).any(|x| a.permute(x) != b.permute(x));
        assert!(differs);
    }

    #[test]
    fn permutation_looks_non_trivial() {
        // Not the identity and not a simple shift.
        let prp = DomainPrp::new(&[9u8; 32], 1 << 16);
        let fixed = (0..(1u64 << 16)).filter(|&x| prp.permute(x) == x).count();
        // A random permutation of 65536 points has ~1 fixed point on average.
        assert!(fixed < 20, "too many fixed points: {fixed}");
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_panics() {
        DomainPrp::new(&[0u8; 32], 10).permute(10);
    }

    #[test]
    fn large_domain_smoke() {
        // The paper's example file has ~1.5e8 blocks; test at that scale.
        let prp = DomainPrp::new(&[4u8; 32], 153_008_209);
        for x in [0u64, 1, 76_504_104, 153_008_208] {
            let y = prp.permute(x);
            assert!(y < 153_008_209);
            assert_eq!(prp.inverse(y), x);
        }
    }

    // --- precomputed schedule ≡ per-call construction ----------------------

    #[test]
    fn feistel_schedule_agrees_on_full_domain_small_half_bits() {
        for half_bits in 1..=6u32 {
            let key = [half_bits as u8; 32];
            let prp = FeistelPrp::new(&key, half_bits);
            let sched = prp.precompute();
            for x in 0..(1u64 << (2 * half_bits)) {
                assert_eq!(sched.permute(x), prp.permute(x), "hb {half_bits} x {x}");
                assert_eq!(sched.inverse(x), prp.inverse(x), "hb {half_bits} y {x}");
            }
        }
    }

    #[test]
    fn untabulated_schedule_agrees_on_full_domain() {
        // Force the midstate-HMAC fallback (table_max = 0) and pin it to
        // the same permutation — big-domain behaviour tested small.
        let key = [0x42u8; 32];
        let prp = FeistelPrp::new(&key, 4);
        let sched = FeistelSchedule::with_table_limit(&key, 4, 0);
        for x in 0..256u64 {
            assert_eq!(sched.permute(x), prp.permute(x), "x {x}");
            assert_eq!(sched.inverse(x), prp.inverse(x), "y {x}");
        }
    }

    #[test]
    fn domain_schedule_agrees_through_cycle_walking() {
        // Non-power-of-four domains force cycle walks; every walked point
        // must resolve identically. 5 and 1000 walk hard; 4096 not at all.
        for n in [1u64, 2, 3, 5, 17, 1000, 4096, 4097] {
            let key = [0x17u8; 32];
            let prp = DomainPrp::new(&key, n);
            let sched = prp.precompute();
            for x in 0..n {
                let y = sched.permute(x);
                assert_eq!(y, prp.permute(x), "n {n} x {x}");
                assert_eq!(sched.inverse(y), x, "n {n} y {y}");
            }
        }
    }

    #[test]
    fn domain_schedule_agrees_on_paper_sized_domain() {
        // b′ ≈ 1.5e8 blocks: tabulated at half_bits 14. Sample points
        // across the domain rather than enumerate it.
        let key = [0x29u8; 32];
        let n = 153_008_209u64;
        let prp = DomainPrp::new(&key, n);
        let sched = prp.precompute();
        let mut x = 0u64;
        for i in 0..64u64 {
            x = (x.wrapping_mul(6364136223846793005).wrapping_add(i)) % n;
            let y = sched.permute(x);
            assert_eq!(y, prp.permute(x), "x {x}");
            assert_eq!(sched.inverse(y), x, "y {y}");
        }
        assert_eq!(sched.domain(), n);
    }

    #[test]
    fn prp_schedule_new_matches_domain_prp_precompute() {
        let key = [9u8; 32];
        let a = PrpSchedule::new(&key, 777);
        let b = DomainPrp::new(&key, 777).precompute();
        for x in 0..777u64 {
            assert_eq!(a.permute(x), b.permute(x));
        }
    }
}
