//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1) and the truncated segment tags used
//! by the MAC-based POR variant of Juels–Kaliski that GeoProof employs.
//!
//! The paper (§V-A, step 5) computes `τ_i = MAC_{K'}(S_i, i, fid)` and notes
//! that because a challenge verifies many tags, the tag can be truncated to
//! as little as 20 bits. [`TruncatedMac`] captures that parameterisation.
//!
//! # Examples
//!
//! ```
//! use geoproof_crypto::hmac::HmacSha256;
//!
//! let tag = HmacSha256::mac(b"key", b"message");
//! assert!(HmacSha256::verify(b"key", b"message", &tag));
//! assert!(!HmacSha256::verify(b"key", b"tampered", &tag));
//! ```

use crate::ct::ct_eq;
use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Incremental HMAC-SHA-256.
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let (inner, outer) = padded_key_states(key);
        HmacSha256 { inner, outer }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the full 32-byte tag.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        self.outer.update(&inner_digest);
        self.outer.finalize()
    }

    /// One-shot MAC of `message` under `key`.
    pub fn mac(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = HmacSha256::new(key);
        h.update(message);
        h.finalize()
    }

    /// Constant-time verification of a full-length tag.
    pub fn verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
        let expected = Self::mac(key, message);
        ct_eq(&expected, tag)
    }
}

/// The SHA-256 states after absorbing the XOR-padded key blocks — the
/// first compression of the inner and outer hashes, shared by every MAC
/// under the same key.
fn padded_key_states(key: &[u8]) -> (Sha256, Sha256) {
    let mut k_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let digest = Sha256::digest(key);
        k_block[..DIGEST_LEN].copy_from_slice(&digest);
    } else {
        k_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= k_block[i];
        opad[i] ^= k_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    let mut outer = Sha256::new();
    outer.update(&opad);
    (inner, outer)
}

/// A precomputed HMAC key schedule: the inner and outer SHA-256 states
/// with their padded key blocks already compressed.
///
/// [`HmacSha256::new`] spends two SHA-256 compressions absorbing the key
/// pads before it sees a byte of message — for a short message that is
/// half the total work. Callers that MAC many messages under one key
/// (the POR segment tagger, the Feistel PRP round function) build the
/// schedule once and [`HmacKeySchedule::start`] clones the midstates
/// instead, making a short-message HMAC cost two compressions, not four.
/// Output is identical to [`HmacSha256`] by construction.
#[derive(Clone)]
pub struct HmacKeySchedule {
    inner: Sha256,
    outer: Sha256,
}

impl std::fmt::Debug for HmacKeySchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HmacKeySchedule").finish_non_exhaustive()
    }
}

impl HmacKeySchedule {
    /// Precomputes the pad midstates for `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let (inner, outer) = padded_key_states(key);
        HmacKeySchedule { inner, outer }
    }

    /// Starts a MAC computation from the precomputed midstates.
    pub fn start(&self) -> HmacSha256 {
        HmacSha256 {
            inner: self.inner.clone(),
            outer: self.outer.clone(),
        }
    }

    /// One-shot MAC of `message` from the precomputed midstates.
    pub fn mac(&self, message: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = self.start();
        h.update(message);
        h.finalize()
    }
}

/// A MAC truncated to `bits` bits, as the paper's 20-bit segment tags.
///
/// Truncation keeps the *high-order* bits of the HMAC output, padded into
/// whole bytes (a 20-bit tag occupies 3 bytes with the low 4 bits of the
/// final byte zeroed). The paper argues short tags suffice because an audit
/// verifies many tags, so a forger must win every round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TruncatedMac {
    bits: u32,
}

impl TruncatedMac {
    /// Creates a truncated-MAC description.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or exceeds 256.
    pub fn new(bits: u32) -> Self {
        assert!(
            (1..=256).contains(&bits),
            "tag width must be in 1..=256 bits"
        );
        TruncatedMac { bits }
    }

    /// Tag width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of bytes needed to carry the tag.
    pub fn byte_len(&self) -> usize {
        self.bits.div_ceil(8) as usize
    }

    /// Computes the truncated tag of `message` under `key`.
    pub fn mac(&self, key: &[u8], message: &[u8]) -> Vec<u8> {
        let full = HmacSha256::mac(key, message);
        self.truncate(&full)
    }

    /// Truncates a full 32-byte tag to this width.
    pub fn truncate(&self, full: &[u8; DIGEST_LEN]) -> Vec<u8> {
        let nbytes = self.byte_len();
        let mut out = full[..nbytes].to_vec();
        let rem = self.bits % 8;
        if rem != 0 {
            let mask = 0xffu8 << (8 - rem);
            out[nbytes - 1] &= mask;
        }
        out
    }

    /// Constant-time verification of a truncated tag.
    pub fn verify(&self, key: &[u8], message: &[u8], tag: &[u8]) -> bool {
        if tag.len() != self.byte_len() {
            return false;
        }
        let expected = self.mac(key, message);
        ct_eq(&expected, tag)
    }

    /// Probability that a single random guess passes verification: `2^-bits`.
    pub fn forgery_probability(&self) -> f64 {
        (-(self.bits as f64) * std::f64::consts::LN_2).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = HmacSha256::mac(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let tag = HmacSha256::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = HmacSha256::new(b"k");
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finalize(), HmacSha256::mac(b"k", b"hello world"));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let tag = HmacSha256::mac(b"key-a", b"msg");
        assert!(!HmacSha256::verify(b"key-b", b"msg", &tag));
    }

    #[test]
    fn truncated_20_bit_tag() {
        let t = TruncatedMac::new(20);
        assert_eq!(t.byte_len(), 3);
        let tag = t.mac(b"key", b"segment-data");
        assert_eq!(tag.len(), 3);
        assert_eq!(tag[2] & 0x0f, 0, "low 4 bits must be masked off");
        assert!(t.verify(b"key", b"segment-data", &tag));
        assert!(!t.verify(b"key", b"segment-datb", &tag));
    }

    #[test]
    fn truncated_tag_is_prefix_of_full() {
        let t = TruncatedMac::new(24);
        let full = HmacSha256::mac(b"key", b"data");
        assert_eq!(t.mac(b"key", b"data"), full[..3].to_vec());
    }

    #[test]
    fn forgery_probability_matches_width() {
        let t = TruncatedMac::new(20);
        let p = t.forgery_probability();
        assert!((p - 2f64.powi(-20)).abs() < 1e-12);
    }

    #[test]
    fn verify_rejects_wrong_length() {
        let t = TruncatedMac::new(20);
        let tag = t.mac(b"key", b"data");
        assert!(!t.verify(b"key", b"data", &tag[..2]));
    }

    #[test]
    #[should_panic(expected = "tag width")]
    fn zero_width_panics() {
        TruncatedMac::new(0);
    }

    #[test]
    fn key_schedule_matches_direct_hmac() {
        // Every key-length regime: short, exactly one block, hashed-down.
        for key in [&b"k"[..], &[0xabu8; BLOCK_LEN][..], &[0xcdu8; 131][..]] {
            let sched = HmacKeySchedule::new(key);
            for msg in [&b""[..], &b"hello"[..], &[0x55u8; 200][..]] {
                assert_eq!(sched.mac(msg), HmacSha256::mac(key, msg));
            }
        }
    }

    #[test]
    fn key_schedule_incremental_matches_oneshot() {
        let sched = HmacKeySchedule::new(b"segment-key");
        let mut h = sched.start();
        h.update(b"body ");
        h.update(b"index fid");
        assert_eq!(
            h.finalize(),
            HmacSha256::mac(b"segment-key", b"body index fid")
        );
    }

    #[test]
    fn key_schedule_is_reusable() {
        let sched = HmacKeySchedule::new(b"k");
        let a = sched.mac(b"one");
        let b = sched.mac(b"two");
        assert_eq!(a, HmacSha256::mac(b"k", b"one"));
        assert_eq!(b, HmacSha256::mac(b"k", b"two"));
        assert_ne!(a, b);
    }
}
