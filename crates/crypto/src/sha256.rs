//! SHA-256 implemented from scratch per FIPS 180-4.
//!
//! This is the hash underlying every MAC, KDF and signature in the GeoProof
//! stack. The portable compression function is written for clarity; on
//! x86-64 hosts with the SHA extensions a hardware path is selected at
//! runtime (the digest is bit-identical either way, so protocol transcripts
//! and tags never depend on which path ran).
//!
//! # Examples
//!
//! ```
//! use geoproof_crypto::sha256::Sha256;
//!
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(
//!     hex(&digest),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//!
//! fn hex(bytes: &[u8]) -> String {
//!     bytes.iter().map(|b| format!("{b:02x}")).collect()
//! }
//! ```

/// Number of bytes in a SHA-256 digest.
pub const DIGEST_LEN: usize = 32;

/// Number of bytes in one SHA-256 input block.
pub const BLOCK_LEN: usize = 64;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// Use [`Sha256::update`] to absorb data and [`Sha256::finalize`] to produce
/// the digest. For one-shot hashing prefer [`Sha256::digest`].
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher in the FIPS 180-4 initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// One-shot convenience: digest of `data`.
    pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= BLOCK_LEN {
            let (block, tail) = rest.split_at(BLOCK_LEN);
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes the computation, returning the 32-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80 then zero padding up to 56 mod 64, then the length.
        self.update_padding();
        let mut out = [0u8; DIGEST_LEN];
        // update_padding leaves exactly 8 bytes of room in the final block.
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn update_padding(&mut self) {
        // Write 0x80 plus zeros into buf until buf_len == 56, compressing if
        // the marker spills over the block boundary.
        let mut pad = [0u8; BLOCK_LEN];
        pad[0] = 0x80;
        if self.buf_len < 56 {
            let n = 56 - self.buf_len;
            self.buf[self.buf_len..56].copy_from_slice(&pad[..n]);
        } else {
            let n = BLOCK_LEN - self.buf_len;
            self.buf[self.buf_len..].copy_from_slice(&pad[..n]);
            let block = self.buf;
            self.compress(&block);
            self.buf = [0u8; BLOCK_LEN];
        }
        self.buf_len = 56;
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        #[cfg(target_arch = "x86_64")]
        if shani::available() {
            // SAFETY: `available` confirmed the sha/ssse3/sse4.1 features at
            // runtime, which is exactly what `compress` is gated on.
            unsafe { shani::compress(&mut self.state, block) };
            return;
        }
        self.compress_soft(block);
    }

    fn compress_soft(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// Hardware SHA-256 compression via the x86-64 SHA extensions.
///
/// This follows the canonical SHA-NI round structure: the eight state words
/// are repacked into the ABEF/CDGH register layout the `sha256rnds2`
/// instruction expects, the message schedule is advanced four words at a
/// time with `sha256msg1`/`sha256msg2`, and the state is repacked on exit.
/// The result is the same FIPS 180-4 function as [`Sha256::compress_soft`],
/// just computed by dedicated silicon.
#[cfg(target_arch = "x86_64")]
mod shani {
    use super::{BLOCK_LEN, K};
    use std::arch::x86_64::*;
    use std::sync::atomic::{AtomicU8, Ordering};

    /// Runtime feature probe, cached so the hot path is one relaxed load.
    pub(super) fn available() -> bool {
        const UNKNOWN: u8 = 0;
        const NO: u8 = 1;
        const YES: u8 = 2;
        static STATE: AtomicU8 = AtomicU8::new(UNKNOWN);
        match STATE.load(Ordering::Relaxed) {
            UNKNOWN => {
                let avail = std::arch::is_x86_feature_detected!("sha")
                    && std::arch::is_x86_feature_detected!("ssse3")
                    && std::arch::is_x86_feature_detected!("sse4.1");
                STATE.store(if avail { YES } else { NO }, Ordering::Relaxed);
                avail
            }
            found => found == YES,
        }
    }

    /// One compression round over `block`, updating `state` in place.
    ///
    /// # Safety
    ///
    /// The caller must have verified that the CPU supports the `sha`,
    /// `ssse3` and `sse4.1` features (see [`available`]).
    #[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
    pub(super) unsafe fn compress(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
        // Round-constant quad i as a vector (lane 0 = K[4i]).
        macro_rules! kv {
            ($i:expr) => {
                _mm_set_epi32(
                    K[4 * $i + 3] as i32,
                    K[4 * $i + 2] as i32,
                    K[4 * $i + 1] as i32,
                    K[4 * $i] as i32,
                )
            };
        }
        // Four rounds fed by the message quad `$m` and constant quad `$i`.
        macro_rules! rounds4 {
            ($abef:ident, $cdgh:ident, $m:expr, $i:expr) => {{
                let msg = _mm_add_epi32($m, kv!($i));
                $cdgh = _mm_sha256rnds2_epu32($cdgh, $abef, msg);
                let msg = _mm_shuffle_epi32(msg, 0x0E);
                $abef = _mm_sha256rnds2_epu32($abef, $cdgh, msg);
            }};
        }
        // Next message quad w[t..t+4] from the previous four quads
        // (`$w0` oldest): msg1 adds the σ0 terms, the alignr supplies
        // w[t-7..t-3], and msg2 folds in the cascading σ1 terms.
        macro_rules! schedule {
            ($w0:expr, $w1:expr, $w2:expr, $w3:expr) => {
                _mm_sha256msg2_epu32(
                    _mm_add_epi32(_mm_sha256msg1_epu32($w0, $w1), _mm_alignr_epi8($w3, $w2, 4)),
                    $w3,
                )
            };
        }

        // Repack little-endian [a,b,c,d][e,f,g,h] into ABEF / CDGH.
        let dcba = _mm_loadu_si128(state.as_ptr() as *const __m128i);
        let hgfe = _mm_loadu_si128(state.as_ptr().add(4) as *const __m128i);
        let cdab = _mm_shuffle_epi32(dcba, 0xB1);
        let efgh = _mm_shuffle_epi32(hgfe, 0x1B);
        let mut abef = _mm_alignr_epi8(cdab, efgh, 8);
        let mut cdgh = _mm_blend_epi16(efgh, cdab, 0xF0);
        let abef_save = abef;
        let cdgh_save = cdgh;

        // Byte-swap mask: the message words are big-endian in the block.
        let mask = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0bu64 as i64, 0x0405_0607_0001_0203);
        let p = block.as_ptr() as *const __m128i;
        let mut w0 = _mm_shuffle_epi8(_mm_loadu_si128(p), mask);
        let mut w1 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(1)), mask);
        let mut w2 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(2)), mask);
        let mut w3 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(3)), mask);

        rounds4!(abef, cdgh, w0, 0);
        rounds4!(abef, cdgh, w1, 1);
        rounds4!(abef, cdgh, w2, 2);
        rounds4!(abef, cdgh, w3, 3);
        let mut w4 = schedule!(w0, w1, w2, w3);
        rounds4!(abef, cdgh, w4, 4);
        w0 = schedule!(w1, w2, w3, w4);
        rounds4!(abef, cdgh, w0, 5);
        w1 = schedule!(w2, w3, w4, w0);
        rounds4!(abef, cdgh, w1, 6);
        w2 = schedule!(w3, w4, w0, w1);
        rounds4!(abef, cdgh, w2, 7);
        w3 = schedule!(w4, w0, w1, w2);
        rounds4!(abef, cdgh, w3, 8);
        w4 = schedule!(w0, w1, w2, w3);
        rounds4!(abef, cdgh, w4, 9);
        w0 = schedule!(w1, w2, w3, w4);
        rounds4!(abef, cdgh, w0, 10);
        w1 = schedule!(w2, w3, w4, w0);
        rounds4!(abef, cdgh, w1, 11);
        w2 = schedule!(w3, w4, w0, w1);
        rounds4!(abef, cdgh, w2, 12);
        w3 = schedule!(w4, w0, w1, w2);
        rounds4!(abef, cdgh, w3, 13);
        w4 = schedule!(w0, w1, w2, w3);
        rounds4!(abef, cdgh, w4, 14);
        w0 = schedule!(w1, w2, w3, w4);
        rounds4!(abef, cdgh, w0, 15);

        let abef = _mm_add_epi32(abef, abef_save);
        let cdgh = _mm_add_epi32(cdgh, cdgh_save);

        // Repack ABEF / CDGH back into [a,b,c,d][e,f,g,h].
        let feba = _mm_shuffle_epi32(abef, 0x1B);
        let dchg = _mm_shuffle_epi32(cdgh, 0xB1);
        let dcba = _mm_blend_epi16(feba, dchg, 0xF0);
        let hgfe = _mm_alignr_epi8(dchg, feba, 8);
        _mm_storeu_si128(state.as_mut_ptr() as *mut __m128i, dcba);
        _mm_storeu_si128(state.as_mut_ptr().add(4) as *mut __m128i, hgfe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_string_vector() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 55, 56, 63, 64, 65, 128, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "split at {split}");
        }
    }

    /// The SHA-NI path must agree with the portable rounds on arbitrary
    /// chaining states, not just the fixed IV the NIST vectors exercise.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn hardware_compress_matches_software() {
        if !super::shani::available() {
            eprintln!("skipping: CPU lacks the SHA extensions");
            return;
        }
        let mut lcg = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg
        };
        for trial in 0..500 {
            let mut block = [0u8; BLOCK_LEN];
            for b in block.iter_mut() {
                *b = (next() >> 33) as u8;
            }
            let mut state = H0;
            for w in state.iter_mut() {
                *w = (next() >> 16) as u32;
            }
            let mut soft = Sha256::new();
            soft.state = state;
            soft.compress_soft(&block);
            let mut hw = state;
            unsafe { super::shani::compress(&mut hw, &block) };
            assert_eq!(soft.state, hw, "trial {trial}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Exercise padding around the 56/64-byte block boundary.
        for len in 50..70usize {
            let data = vec![0xabu8; len];
            let d1 = Sha256::digest(&data);
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(d1, h.finalize(), "len {len}");
        }
    }
}
