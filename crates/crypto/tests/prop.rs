//! Property-based tests for the crypto substrate: algebraic axioms of the
//! field/scalar arithmetic, PRP bijectivity, cipher involutions, and
//! signature soundness under random tampering.

use geoproof_crypto::aes::{Aes128, Aes128Ctr};
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_crypto::ed25519::{Point, Scalar};
use geoproof_crypto::fe25519::Fe;
use geoproof_crypto::hmac::HmacSha256;
use geoproof_crypto::kdf::Hkdf;
use geoproof_crypto::prp::DomainPrp;
use geoproof_crypto::schnorr::{
    batch_verify, batch_verify_each, BatchEntry, PrecomputedKey, Signature, SigningKey,
};
use geoproof_crypto::sha256::Sha256;
use proptest::prelude::*;

fn fe(bytes: [u8; 32]) -> Fe {
    Fe::from_bytes(&bytes)
}

proptest! {
    // --- Field mod 2^255-19 axioms ---------------------------------------

    #[test]
    fn fe_addition_commutes(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        prop_assert_eq!(fe(a).add(&fe(b)), fe(b).add(&fe(a)));
    }

    #[test]
    fn fe_multiplication_commutes_and_associates(
        a in any::<[u8; 32]>(), b in any::<[u8; 32]>(), c in any::<[u8; 32]>()
    ) {
        let (a, b, c) = (fe(a), fe(b), fe(c));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn fe_distributive(a in any::<[u8; 32]>(), b in any::<[u8; 32]>(), c in any::<[u8; 32]>()) {
        let (a, b, c) = (fe(a), fe(b), fe(c));
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn fe_inverse_is_inverse(a in any::<[u8; 32]>()) {
        let a = fe(a);
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a.mul(&a.invert()), Fe::ONE);
    }

    #[test]
    fn fe_sub_then_add_roundtrips(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let (a, b) = (fe(a), fe(b));
        prop_assert_eq!(a.sub(&b).add(&b), a);
    }

    #[test]
    fn fe_serialisation_is_canonical(a in any::<[u8; 32]>()) {
        let x = fe(a);
        prop_assert_eq!(Fe::from_bytes(&x.to_bytes()), x);
    }

    // --- Scalar ring mod ℓ -------------------------------------------------

    #[test]
    fn scalar_ring_axioms(a in any::<[u8; 32]>(), b in any::<[u8; 32]>(), c in any::<[u8; 32]>()) {
        let a = Scalar::from_bytes_mod_order(&a);
        let b = Scalar::from_bytes_mod_order(&b);
        let c = Scalar::from_bytes_mod_order(&c);
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        prop_assert_eq!(a.sub(&b).add(&b), a);
    }

    #[test]
    fn scalar_mul_distributes_over_group(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let sa = Scalar::from_u64(a);
        let sb = Scalar::from_u64(b);
        let base = Point::base();
        prop_assert_eq!(
            base.mul(&sa).add(&base.mul(&sb)),
            base.mul(&sa.add(&sb))
        );
    }

    // --- Hash/MAC/KDF ---------------------------------------------------------

    #[test]
    fn sha_incremental_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..2000),
        split in 0usize..2000,
    ) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn hmac_is_deterministic_and_key_sensitive(
        key in prop::collection::vec(any::<u8>(), 1..80),
        msg in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let t1 = HmacSha256::mac(&key, &msg);
        let t2 = HmacSha256::mac(&key, &msg);
        prop_assert_eq!(t1, t2);
        let mut key2 = key.clone();
        key2[0] ^= 1;
        prop_assert_ne!(HmacSha256::mac(&key2, &msg), t1);
    }

    #[test]
    fn hkdf_outputs_differ_by_info(
        ikm in prop::collection::vec(any::<u8>(), 1..64),
        info_a in prop::collection::vec(any::<u8>(), 0..32),
        info_b in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        prop_assume!(info_a != info_b);
        let hk = Hkdf::extract(b"salt", &ikm);
        prop_assert_ne!(hk.expand(&info_a, 32), hk.expand(&info_b, 32));
    }

    // --- Ciphers ---------------------------------------------------------------

    #[test]
    fn aes_decrypt_inverts_encrypt(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let c = Aes128::new(&key);
        prop_assert_eq!(c.decrypt_block(&c.encrypt_block(&block)), block);
    }

    #[test]
    fn ctr_random_access_consistent(
        key in any::<[u8; 16]>(),
        nonce in any::<[u8; 8]>(),
        data in prop::collection::vec(any::<u8>(), 48..400),
    ) {
        // Decrypting a 16-byte-aligned suffix independently must agree
        // with the full-stream decryption.
        let ctr = Aes128Ctr::new(&key, nonce);
        let mut full = data.clone();
        ctr.apply_keystream(&mut full);
        let start_block = 2usize;
        let mut suffix = full[start_block * 16..].to_vec();
        ctr.apply_keystream_at(&mut suffix, start_block as u64);
        prop_assert_eq!(&suffix[..], &data[start_block * 16..]);
    }

    // --- PRP --------------------------------------------------------------------

    #[test]
    fn prp_bijective_on_small_domains(key in any::<[u8; 32]>(), n in 1u64..600) {
        let prp = DomainPrp::new(&key, n);
        let mut seen = vec![false; n as usize];
        for x in 0..n {
            let y = prp.permute(x);
            prop_assert!(y < n);
            prop_assert!(!seen[y as usize], "collision");
            seen[y as usize] = true;
        }
    }

    // --- Signatures -----------------------------------------------------------------

    #[test]
    fn tampered_signatures_rejected(
        seed in any::<u64>(),
        msg in prop::collection::vec(any::<u8>(), 1..100),
        flip_byte in 0usize..64,
        flip_bit in 0u8..8,
    ) {
        let mut rng = ChaChaRng::from_u64_seed(seed);
        let sk = SigningKey::generate(&mut rng);
        let sig = sk.sign(&msg, &mut rng);
        let mut bytes = sig.to_bytes();
        bytes[flip_byte] ^= 1 << flip_bit;
        let forged = Signature::from_bytes(&bytes);
        prop_assert!(!sk.verifying_key().verify(&msg, &forged));
    }

    #[test]
    fn rng_range_uniformity_smoke(seed in any::<u64>(), bound in 1u64..1000) {
        let mut rng = ChaChaRng::from_u64_seed(seed);
        for _ in 0..50 {
            prop_assert!(rng.gen_range(bound) < bound);
        }
    }

    // --- Table-accelerated verify pinned to the reference path ---------------

    #[test]
    fn table_verify_identical_to_reference(
        seed in any::<u64>(),
        msg in prop::collection::vec(any::<u8>(), 0..80),
        tamper_byte in 0usize..65, // 64 = leave the signature intact
        tamper_bit in 0u8..8,
    ) {
        let mut rng = ChaChaRng::from_u64_seed(seed);
        let sk = SigningKey::generate(&mut rng);
        let mut sig = sk.sign(&msg, &mut rng);
        if tamper_byte < 64 {
            let mut bytes = sig.to_bytes();
            bytes[tamper_byte] ^= 1 << tamper_bit;
            sig = Signature::from_bytes(&bytes);
        }
        let vk = sk.verifying_key();
        // Valid, forged, or structurally mangled — the fixed-base-table
        // fast path must agree with the double-and-add reference bit for
        // bit, and the per-key precomputed variant with both.
        let reference = vk.verify_reference(&msg, &sig);
        prop_assert_eq!(vk.verify(&msg, &sig), reference);
        prop_assert_eq!(PrecomputedKey::new(&vk).verify(&msg, &sig), reference);
    }

    // --- Batch verification ≡ sequential --------------------------------------

    #[test]
    fn batch_verdicts_identical_to_sequential(
        seed in any::<u64>(),
        n in 0usize..12,
        forged in prop::collection::vec(any::<bool>(), 12),
        cross in prop::collection::vec(any::<bool>(), 12),
    ) {
        let mut rng = ChaChaRng::from_u64_seed(seed);
        // A couple of shared keys so per-key aggregation sees reuse.
        let keys = [SigningKey::generate(&mut rng), SigningKey::generate(&mut rng)];
        let messages: Vec<Vec<u8>> = (0..n).map(|i| format!("audit-{i}").into_bytes()).collect();
        let mut entries = Vec::new();
        for i in 0..n {
            let sk = &keys[i % 2];
            let mut sig = sk.sign(&messages[i], &mut rng);
            if forged[i] {
                sig.s_bytes[3] ^= 0x40;
            }
            // Attribute some signatures to the wrong key.
            let key = if cross[i] { keys[(i + 1) % 2].verifying_key() } else { sk.verifying_key() };
            entries.push(BatchEntry { key, message: &messages[i], signature: sig });
        }
        let batch = batch_verify_each(&entries);
        for (i, entry) in entries.iter().enumerate() {
            prop_assert_eq!(
                batch[i],
                entry.key.verify(entry.message, &entry.signature),
                "entry {}", i
            );
        }
        prop_assert_eq!(batch_verify(&entries), batch.iter().all(|&ok| ok));
    }
}
