//! Noisy-channel distance bounding: bit errors and threshold acceptance.
//!
//! RF channels flip bits. Hancke–Kuhn was designed for exactly this
//! setting, and the paper's §III-A survey cites the noisy-channel
//! analyses (Singelée–Preneel; Mitrokotsa et al. on Reid-over-noise).
//! The verifier then accepts a run with up to `e` wrong response bits —
//! which buys availability at a measurable security cost:
//!
//! * honest false-reject probability: `P[Bin(n, ber) > e]`,
//! * mafia acceptance: `P[Bin(n, 3/4) ≥ n − e]` (pre-ask relay).
//!
//! This module provides the noisy run wrapper, threshold verification,
//! and both closed forms, so the trade-off can be swept experimentally.

use crate::hancke_kuhn::HkSession;
use crate::rounds::{ChannelModel, Scenario, Transcript, Verdict};
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_sim::time::SimDuration;

/// A binary-symmetric channel: each response bit flips with probability
/// `ber`.
#[derive(Clone, Copy, Debug)]
pub struct NoisyChannel {
    /// Underlying timing model.
    pub timing: ChannelModel,
    /// Bit-error rate in [0, 1).
    pub ber: f64,
}

impl NoisyChannel {
    /// Creates a noisy channel.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ ber < 1`.
    pub fn new(timing: ChannelModel, ber: f64) -> Self {
        assert!((0.0..1.0).contains(&ber), "bit-error rate out of range");
        NoisyChannel { timing, ber }
    }

    /// Runs a Hancke–Kuhn session over this channel: the underlying
    /// scenario plays out, then each response bit is flipped with
    /// probability `ber`.
    pub fn run_hk(
        &self,
        session: &HkSession,
        scenario: Scenario,
        rng: &mut ChaChaRng,
    ) -> Transcript {
        let mut t = session.run(scenario, &self.timing, rng);
        if self.ber > 0.0 {
            for round in t.rounds.iter_mut() {
                let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                if u < self.ber {
                    round.response ^= 1;
                }
            }
        }
        t
    }
}

/// Threshold verification: accept if timing holds everywhere and at most
/// `max_errors` response bits are wrong.
pub fn verify_with_threshold(
    session: &HkSession,
    transcript: &Transcript,
    max_rtt: SimDuration,
    max_errors: usize,
) -> Verdict {
    let mut wrong = 0usize;
    let mut first_wrong = 0usize;
    for (i, round) in transcript.rounds.iter().enumerate() {
        if round.rtt > max_rtt {
            return Verdict::TooSlow(i);
        }
        if round.response != session.respond(i, round.challenge) {
            if wrong == 0 {
                first_wrong = i;
            }
            wrong += 1;
        }
    }
    if wrong > max_errors {
        Verdict::WrongBit(first_wrong)
    } else {
        Verdict::Accept
    }
}

fn ln_factorial(n: u64) -> f64 {
    (1..=n).map(|i| (i as f64).ln()).sum()
}

/// `P[Bin(n, p) ≥ threshold]` in log space.
fn binomial_tail(n: u64, p: f64, threshold: u64) -> f64 {
    if threshold == 0 {
        return 1.0;
    }
    if threshold > n || p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return 1.0;
    }
    let ln_n = ln_factorial(n);
    let mut total = 0.0;
    for x in threshold..=n {
        let ln_c = ln_n - ln_factorial(x) - ln_factorial(n - x);
        total += (ln_c + x as f64 * p.ln() + (n - x) as f64 * (1.0 - p).ln()).exp();
    }
    total.min(1.0)
}

/// Honest false-reject probability: more than `max_errors` of `n` bits
/// flipped by noise.
pub fn honest_false_reject(n: u64, ber: f64, max_errors: u64) -> f64 {
    binomial_tail(n, ber, max_errors + 1)
}

/// Mafia acceptance with threshold verification: the pre-ask relay is
/// right per round with probability 3/4, and needs at least `n − e`
/// correct bits.
pub fn mafia_acceptance_with_threshold(n: u64, max_errors: u64) -> f64 {
    binomial_tail(n, 0.75, n.saturating_sub(max_errors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoproof_sim::time::Km;

    fn session(n: usize) -> HkSession {
        HkSession::initialise(b"secret", b"nv", b"np", n)
    }

    #[test]
    fn clean_channel_matches_strict_verification() {
        let s = session(64);
        let ch = NoisyChannel::new(ChannelModel::default(), 0.0);
        let mut rng = ChaChaRng::from_u64_seed(1);
        let t = ch.run_hk(&s, Scenario::Honest { distance: Km(0.05) }, &mut rng);
        let max_rtt = ch.timing.max_rtt_for(Km(0.1));
        assert_eq!(verify_with_threshold(&s, &t, max_rtt, 0), Verdict::Accept);
        assert_eq!(s.verify(&t, max_rtt), Verdict::Accept);
    }

    #[test]
    fn noise_breaks_strict_but_not_threshold_verification() {
        let s = session(128);
        let ch = NoisyChannel::new(ChannelModel::default(), 0.05);
        let mut rng = ChaChaRng::from_u64_seed(2);
        let max_rtt = ch.timing.max_rtt_for(Km(0.1));
        let mut strict_rejects = 0;
        let mut threshold_rejects = 0;
        for _ in 0..50 {
            let t = ch.run_hk(&s, Scenario::Honest { distance: Km(0.05) }, &mut rng);
            if !s.verify(&t, max_rtt).is_accept() {
                strict_rejects += 1;
            }
            // E[errors] = 6.4; allow 16 (≈ 3.8 σ above the mean).
            if !verify_with_threshold(&s, &t, max_rtt, 16).is_accept() {
                threshold_rejects += 1;
            }
        }
        assert!(
            strict_rejects > 45,
            "strict should nearly always reject: {strict_rejects}"
        );
        assert!(
            threshold_rejects < 5,
            "threshold should nearly always accept: {threshold_rejects}"
        );
    }

    #[test]
    fn threshold_weakens_security_measurably() {
        // Mafia acceptance grows with allowed errors.
        let base = mafia_acceptance_with_threshold(64, 0);
        let loose = mafia_acceptance_with_threshold(64, 8);
        assert!(loose > base * 10.0, "base {base}, loose {loose}");
        // Still far below 1 for sane thresholds.
        assert!(loose < 0.05, "loose {loose}");
    }

    #[test]
    fn honest_false_reject_shrinks_with_threshold() {
        let strict = honest_false_reject(64, 0.05, 0);
        let relaxed = honest_false_reject(64, 0.05, 8);
        assert!(strict > 0.9, "strict {strict}");
        assert!(relaxed < 0.02, "relaxed {relaxed}");
    }

    #[test]
    fn analytic_consistency_with_hk_formula() {
        // Zero threshold reduces to the strict (3/4)^n.
        let strict = mafia_acceptance_with_threshold(16, 0);
        assert!((strict - 0.75f64.powi(16)).abs() < 1e-12);
    }

    #[test]
    fn mafia_empirical_matches_threshold_formula() {
        let ch = NoisyChannel::new(ChannelModel::default(), 0.0);
        let mut rng = ChaChaRng::from_u64_seed(3);
        let n = 8usize;
        let e = 2usize;
        fn trials_u32() -> u32 {
            3000
        }
        let trials = trials_u32();
        let mut accepted = 0u32;
        for t in 0..trials_u32() {
            let s = HkSession::initialise(b"secret", &t.to_be_bytes(), b"np", n);
            let tr = ch.run_hk(
                &s,
                Scenario::MafiaFraud {
                    attacker_distance: Km(0.05),
                },
                &mut rng,
            );
            let max_rtt = ch.timing.max_rtt_for(Km(0.1));
            if verify_with_threshold(&s, &tr, max_rtt, e).is_accept() {
                accepted += 1;
            }
        }
        let rate = f64::from(accepted) / f64::from(trials);
        let analytic = mafia_acceptance_with_threshold(n as u64, e as u64);
        assert!((rate - analytic).abs() < 0.04, "rate {rate} vs {analytic}");
    }

    #[test]
    #[should_panic(expected = "bit-error rate")]
    fn invalid_ber_panics() {
        NoisyChannel::new(ChannelModel::default(), 1.0);
    }
}
