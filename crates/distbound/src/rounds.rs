//! Common machinery for timed challenge–response rounds (paper Fig. 1).
//!
//! Every distance-bounding protocol shares the same skeleton: a time-
//! critical phase of `n` single-bit challenge–response exchanges, each
//! timed, followed by verification of both the response bits and the
//! per-round RTTs against `Δt_max`. This module holds the transcript and
//! verdict types and the timing model all three protocols share.

use geoproof_sim::time::{Km, SimDuration, Speed, SPEED_OF_LIGHT};

/// One timed bit exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Round {
    /// Challenge bit α_i sent by the verifier.
    pub challenge: u8,
    /// Response bit β_i received from the prover.
    pub response: u8,
    /// Measured round-trip time Δt_i.
    pub rtt: SimDuration,
}

/// A complete distance-bounding transcript.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Transcript {
    /// The timed rounds, in order.
    pub rounds: Vec<Round>,
}

impl Transcript {
    /// Largest per-round RTT, or zero for an empty transcript.
    pub fn max_rtt(&self) -> SimDuration {
        self.rounds
            .iter()
            .map(|r| r.rtt)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

/// Verification outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// All response bits correct and every RTT within the bound.
    Accept,
    /// A response bit was wrong at this round index.
    WrongBit(usize),
    /// A round exceeded `Δt_max` at this round index.
    TooSlow(usize),
}

impl Verdict {
    /// True for [`Verdict::Accept`].
    pub fn is_accept(self) -> bool {
        matches!(self, Verdict::Accept)
    }
}

/// Timing model of the RF channel: propagation at the speed of light plus
/// a fixed processing time at the prover.
#[derive(Clone, Copy, Debug)]
pub struct ChannelModel {
    /// Propagation speed (RF ⇒ speed of light; the paper: "the travel
    /// speed of radio waves is very similar to the speed of light").
    pub speed: Speed,
    /// Prover-side processing per round.
    pub processing: SimDuration,
}

impl Default for ChannelModel {
    fn default() -> Self {
        ChannelModel {
            speed: SPEED_OF_LIGHT,
            processing: SimDuration::from_nanos(50),
        }
    }
}

impl ChannelModel {
    /// RTT for a responder at `distance`.
    pub fn rtt_at(&self, distance: Km) -> SimDuration {
        let one_way = self.speed.travel_time(distance);
        one_way + one_way + self.processing
    }

    /// The distance bound implied by an accepted RTT:
    /// `(rtt − processing)/2 × speed`. The paper's example: a 1 ms timing
    /// error at RF speed is a 150 km distance error.
    pub fn distance_bound(&self, rtt: SimDuration) -> Km {
        let net = rtt.saturating_sub(self.processing);
        Km(self.speed.0 * net.as_millis_f64() / 2.0)
    }

    /// `Δt_max` to enforce a given distance bound.
    pub fn max_rtt_for(&self, distance: Km) -> SimDuration {
        self.rtt_at(distance)
    }
}

/// Where the responder actually is — drives per-round RTT and response
/// correctness in simulations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Scenario {
    /// The legitimate prover at `distance` answers honestly.
    Honest {
        /// True verifier–prover distance.
        distance: Km,
    },
    /// Mafia fraud (relay): an attacker at `attacker_distance` relays for
    /// a genuine prover too far away to answer in time; the attacker
    /// pre-asks the prover with a guessed challenge each round.
    MafiaFraud {
        /// Attacker's distance from the verifier (small).
        attacker_distance: Km,
    },
    /// Distance fraud: the genuine but dishonest prover at
    /// `claimed_distance` transmits its response *early*, before the
    /// challenge arrives, to appear closer than it is.
    DistanceFraud {
        /// The distance the prover pretends to be at.
        claimed_distance: Km,
    },
    /// Terrorist attack: the dishonest prover helps a nearby accomplice
    /// answer, without revealing its long-term secret.
    Terrorist {
        /// Accomplice's distance from the verifier (small).
        accomplice_distance: Km,
    },
}

impl Scenario {
    /// The distance at which responses physically originate.
    pub fn responder_distance(self) -> Km {
        match self {
            Scenario::Honest { distance } => distance,
            Scenario::MafiaFraud { attacker_distance } => attacker_distance,
            Scenario::DistanceFraud { claimed_distance } => claimed_distance,
            Scenario::Terrorist {
                accomplice_distance,
            } => accomplice_distance,
        }
    }
}

/// Extracts bit `i` (MSB-first) from a byte string.
///
/// # Panics
///
/// Panics if `i >= 8 * bytes.len()`.
pub fn bit_at(bytes: &[u8], i: usize) -> u8 {
    assert!(i < 8 * bytes.len(), "bit index {i} out of range");
    (bytes[i / 8] >> (7 - (i % 8))) & 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_and_distance_roundtrip() {
        let ch = ChannelModel::default();
        let rtt = ch.rtt_at(Km(150.0));
        // 150 km at c: 0.5 ms each way + processing.
        assert!((rtt.as_millis_f64() - 1.0).abs() < 0.001);
        let bound = ch.distance_bound(rtt);
        assert!((bound.0 - 150.0).abs() < 0.01);
    }

    #[test]
    fn paper_timing_error_example() {
        // §III-A: 1 ms timing error ⇒ 150 km distance error.
        let ch = ChannelModel {
            speed: SPEED_OF_LIGHT,
            processing: SimDuration::ZERO,
        };
        let d = ch.distance_bound(SimDuration::from_millis(1));
        assert!((d.0 - 150.0).abs() < 1e-9);
    }

    #[test]
    fn transcript_max_rtt() {
        let t = Transcript {
            rounds: vec![
                Round {
                    challenge: 0,
                    response: 1,
                    rtt: SimDuration::from_micros(3),
                },
                Round {
                    challenge: 1,
                    response: 0,
                    rtt: SimDuration::from_micros(9),
                },
                Round {
                    challenge: 1,
                    response: 1,
                    rtt: SimDuration::from_micros(5),
                },
            ],
        };
        assert_eq!(t.max_rtt(), SimDuration::from_micros(9));
        assert_eq!(Transcript::default().max_rtt(), SimDuration::ZERO);
    }

    #[test]
    fn bit_extraction_msb_first() {
        let bytes = [0b1010_0000u8, 0b0000_0001];
        assert_eq!(bit_at(&bytes, 0), 1);
        assert_eq!(bit_at(&bytes, 1), 0);
        assert_eq!(bit_at(&bytes, 2), 1);
        assert_eq!(bit_at(&bytes, 15), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        bit_at(&[0u8], 8);
    }

    #[test]
    fn scenario_responder_distances() {
        assert_eq!(
            Scenario::Honest { distance: Km(5.0) }
                .responder_distance()
                .0,
            5.0
        );
        assert_eq!(
            Scenario::MafiaFraud {
                attacker_distance: Km(0.1)
            }
            .responder_distance()
            .0,
            0.1
        );
    }

    #[test]
    fn verdict_accept_helper() {
        assert!(Verdict::Accept.is_accept());
        assert!(!Verdict::WrongBit(3).is_accept());
        assert!(!Verdict::TooSlow(0).is_accept());
    }
}
