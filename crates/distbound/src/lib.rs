//! # geoproof-distbound
//!
//! Distance-bounding protocols (paper §III-A, Figs 1–3) and their attack
//! analysis:
//!
//! * [`rounds`] — the shared timed challenge–response skeleton (Fig. 1):
//!   transcripts, verdicts, the RF channel timing model and adversary
//!   scenarios;
//! * [`hancke_kuhn`] — the Hancke–Kuhn protocol (Fig. 2), relay-resistant
//!   at (3/4)^n but terrorist-vulnerable;
//! * [`reid`] — Reid et al. (Fig. 3), the first symmetric-key protocol to
//!   resist the terrorist attack (the paper's co-author lineage);
//! * [`brands_chaum`] — Brands–Chaum with bit commitments and transcript
//!   signatures, (1/2)^n against relays;
//! * [`attacks`] — analytic acceptance probabilities and Monte-Carlo
//!   estimators that exercise the real implementations;
//! * [`void_challenge`] / [`swiss_knife`] — two survey-cited refinements
//!   (Munilla–Peinado void challenges at (3/5)^n, Swiss-Knife
//!   confirmation MACs at (1/2)^n with terrorist resistance).
//!
//! GeoProof itself (see `geoproof-core`) borrows exactly one idea from this
//! family — the *timed* multi-round exchange — and replaces the exchanged
//! bits with POR segments.
//!
//! # Examples
//!
//! ```
//! use geoproof_distbound::attacks::{acceptance_probability, Attack, Protocol};
//!
//! // 64 rounds of Hancke–Kuhn leave a mafia-fraud adversary ~1e-8.
//! let p = acceptance_probability(Protocol::HanckeKuhn, Attack::Mafia, 64);
//! assert!(p < 1e-7);
//! ```

pub mod attacks;
pub mod brands_chaum;
pub mod hancke_kuhn;
pub mod noise;
pub mod reid;
pub mod rounds;
pub mod swiss_knife;
pub mod void_challenge;

pub use attacks::{acceptance_probability, empirical_acceptance, Attack, Protocol};
pub use hancke_kuhn::HkSession;
pub use noise::{verify_with_threshold, NoisyChannel};
pub use reid::ReidSession;
pub use rounds::{ChannelModel, Round, Scenario, Transcript, Verdict};
pub use swiss_knife::SwissKnifeSession;
pub use void_challenge::VoidChallengeSession;
