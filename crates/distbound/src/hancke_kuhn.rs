//! The Hancke–Kuhn RFID distance-bounding protocol (paper Fig. 2).
//!
//! Initialisation: prover and verifier share a secret `s`; they exchange
//! nonces `r_A`, `r_B` and compute `d = h(s, r_A ‖ r_B)`, split into two
//! n-bit registers `l` and `r`. Time-critical phase: per round the verifier
//! sends a random bit α_i and the prover answers with `l[i]` if α_i = 0,
//! `r[i]` if α_i = 1.
//!
//! Security (reproduced by [`crate::attacks`]): a mafia-fraud or
//! distance-fraud adversary wins each round with probability 3/4, so
//! acceptance probability is (3/4)^n. The protocol does **not** resist the
//! terrorist attack — handing the accomplice `l` and `r` reveals nothing
//! about `s`, so the accomplice answers every round correctly (the gap
//! Reid et al. close, and the reason the paper cites both).

use crate::rounds::{bit_at, ChannelModel, Round, Scenario, Transcript, Verdict};
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_crypto::hmac::HmacSha256;
use geoproof_sim::time::SimDuration;

/// Registers derived in the initialisation phase.
#[derive(Clone, Debug)]
pub struct HkSession {
    l: Vec<u8>,
    r: Vec<u8>,
    n_rounds: usize,
}

impl HkSession {
    /// Runs the (non-time-critical) initialisation phase: derives the two
    /// n-bit registers from the shared secret and both nonces.
    ///
    /// # Panics
    ///
    /// Panics if `n_rounds` is 0 or exceeds 1024.
    pub fn initialise(secret: &[u8], nonce_v: &[u8], nonce_p: &[u8], n_rounds: usize) -> Self {
        assert!(
            (1..=1024).contains(&n_rounds),
            "round count must be in 1..=1024"
        );
        let reg_bytes = n_rounds.div_ceil(8);
        // d = HMAC_s(r_A ‖ r_B), expanded to 2n bits.
        let mut material = Vec::new();
        let mut counter = 0u8;
        while material.len() < 2 * reg_bytes {
            let mut h = HmacSha256::new(secret);
            h.update(b"hk-registers");
            h.update(nonce_v);
            h.update(nonce_p);
            h.update(&[counter]);
            material.extend_from_slice(&h.finalize());
            counter += 1;
        }
        let l = material[..reg_bytes].to_vec();
        let r = material[reg_bytes..2 * reg_bytes].to_vec();
        HkSession { l, r, n_rounds }
    }

    /// Number of time-critical rounds.
    pub fn rounds(&self) -> usize {
        self.n_rounds
    }

    /// The honest prover's response to challenge bit `alpha` at round `i`.
    pub fn respond(&self, i: usize, alpha: u8) -> u8 {
        if alpha == 0 {
            bit_at(&self.l, i)
        } else {
            bit_at(&self.r, i)
        }
    }

    /// Runs the time-critical phase under `scenario`, producing a timed
    /// transcript. `rng` drives challenge bits and adversary guesses.
    pub fn run(
        &self,
        scenario: Scenario,
        channel: &ChannelModel,
        rng: &mut ChaChaRng,
    ) -> Transcript {
        let rtt = channel.rtt_at(scenario.responder_distance());
        let mut rounds = Vec::with_capacity(self.n_rounds);
        for i in 0..self.n_rounds {
            let alpha = (rng.next_u32() & 1) as u8;
            let response = match scenario {
                Scenario::Honest { .. } => self.respond(i, alpha),
                Scenario::MafiaFraud { .. } => {
                    // Pre-ask: the attacker guessed a challenge and fetched
                    // the genuine response for it in advance. If the guess
                    // matches, relay it; otherwise answer randomly.
                    let guess = (rng.next_u32() & 1) as u8;
                    if guess == alpha {
                        self.respond(i, alpha)
                    } else {
                        (rng.next_u32() & 1) as u8
                    }
                }
                Scenario::DistanceFraud { .. } => {
                    // The far prover transmits early: it knows both
                    // registers, so when l[i] == r[i] it cannot lose;
                    // otherwise it must commit to a guess.
                    let l_bit = bit_at(&self.l, i);
                    let r_bit = bit_at(&self.r, i);
                    if l_bit == r_bit {
                        l_bit
                    } else if (rng.next_u32() & 1) == 0 {
                        self.respond(i, alpha) // lucky guess
                    } else {
                        1 - self.respond(i, alpha)
                    }
                }
                Scenario::Terrorist { .. } => {
                    // HK weakness: the accomplice holds both registers and
                    // answers perfectly.
                    self.respond(i, alpha)
                }
            };
            rounds.push(Round {
                challenge: alpha,
                response,
                rtt,
            });
        }
        Transcript { rounds }
    }

    /// Verifies a transcript: every response bit and every RTT.
    pub fn verify(&self, transcript: &Transcript, max_rtt: SimDuration) -> Verdict {
        for (i, round) in transcript.rounds.iter().enumerate() {
            if round.rtt > max_rtt {
                return Verdict::TooSlow(i);
            }
            if round.response != self.respond(i, round.challenge) {
                return Verdict::WrongBit(i);
            }
        }
        Verdict::Accept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoproof_sim::time::Km;

    fn session(n: usize) -> HkSession {
        HkSession::initialise(b"shared-secret", b"nonce-v", b"nonce-p", n)
    }

    #[test]
    fn honest_run_accepts() {
        let s = session(64);
        let ch = ChannelModel::default();
        let mut rng = ChaChaRng::from_u64_seed(1);
        let t = s.run(Scenario::Honest { distance: Km(0.05) }, &ch, &mut rng);
        let verdict = s.verify(&t, ch.max_rtt_for(Km(0.1)));
        assert_eq!(verdict, Verdict::Accept);
    }

    #[test]
    fn honest_but_distant_prover_fails_timing() {
        let s = session(32);
        let ch = ChannelModel::default();
        let mut rng = ChaChaRng::from_u64_seed(2);
        let t = s.run(
            Scenario::Honest {
                distance: Km(500.0),
            },
            &ch,
            &mut rng,
        );
        let verdict = s.verify(&t, ch.max_rtt_for(Km(10.0)));
        assert_eq!(verdict, Verdict::TooSlow(0));
    }

    #[test]
    fn mafia_fraud_nearly_always_caught_at_64_rounds() {
        let s = session(64);
        let ch = ChannelModel::default();
        let mut rng = ChaChaRng::from_u64_seed(3);
        let max_rtt = ch.max_rtt_for(Km(0.1));
        let mut accepted = 0;
        for _ in 0..200 {
            let t = s.run(
                Scenario::MafiaFraud {
                    attacker_distance: Km(0.05),
                },
                &ch,
                &mut rng,
            );
            if s.verify(&t, max_rtt).is_accept() {
                accepted += 1;
            }
        }
        // (3/4)^64 ≈ 1e-8: should never accept in 200 trials.
        assert_eq!(accepted, 0);
    }

    #[test]
    fn terrorist_attack_succeeds_against_hk() {
        // The documented weakness: the accomplice answers perfectly.
        let s = session(64);
        let ch = ChannelModel::default();
        let mut rng = ChaChaRng::from_u64_seed(4);
        let t = s.run(
            Scenario::Terrorist {
                accomplice_distance: Km(0.05),
            },
            &ch,
            &mut rng,
        );
        assert_eq!(s.verify(&t, ch.max_rtt_for(Km(0.1))), Verdict::Accept);
    }

    #[test]
    fn registers_differ_between_nonces() {
        let a = session(64);
        let b = HkSession::initialise(b"shared-secret", b"nonce-v2", b"nonce-p", 64);
        let differs = (0..64).any(|i| a.respond(i, 0) != b.respond(i, 0));
        assert!(differs);
    }

    #[test]
    fn response_picks_correct_register() {
        let s = session(16);
        for i in 0..16 {
            assert_eq!(s.respond(i, 0), bit_at(&s.l, i));
            assert_eq!(s.respond(i, 1), bit_at(&s.r, i));
        }
    }

    #[test]
    fn wrong_bit_detected_with_round_index() {
        let s = session(8);
        let ch = ChannelModel::default();
        let mut rng = ChaChaRng::from_u64_seed(5);
        let mut t = s.run(Scenario::Honest { distance: Km(0.05) }, &ch, &mut rng);
        t.rounds[5].response ^= 1;
        assert_eq!(s.verify(&t, ch.max_rtt_for(Km(0.1))), Verdict::WrongBit(5));
    }

    #[test]
    #[should_panic(expected = "round count")]
    fn zero_rounds_panics() {
        session(0);
    }
}
