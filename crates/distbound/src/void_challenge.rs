//! Void-challenge distance bounding (Munilla & Peinado, cited by the
//! paper's §III-A survey, reference 30).
//!
//! A fraction of rounds, secretly pre-agreed through the shared key, are
//! *void*: the verifier sends nothing and the prover must stay silent. A
//! mafia-fraud relay that pre-asks the prover now risks probing during a
//! void round, which the prover detects and aborts on. With full-round
//! probability `p_f` the per-round adversary success becomes
//!
//! ```text
//! max( p_f · 3/4 ,            (pre-ask strategy: void probe ⇒ caught)
//!      1 − p_f/2 )            (guess strategy: voids cost nothing)
//! ```
//!
//! balanced at `p_f = 4/5`, giving (3/5)^n — better than Hancke–Kuhn's
//! (3/4)^n for the same round count.

use crate::rounds::{bit_at, ChannelModel, Round, Scenario, Transcript, Verdict};
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_crypto::hmac::HmacSha256;
use geoproof_sim::time::SimDuration;

/// The balanced full-round probability 4/5.
pub const BALANCED_FULL_PROB: f64 = 0.8;

/// A void-challenge session after initialisation.
#[derive(Clone, Debug)]
pub struct VoidChallengeSession {
    l: Vec<u8>,
    r: Vec<u8>,
    // Per-round "full" markers, derived from the shared secret: the
    // adversary cannot predict them.
    full: Vec<bool>,
    n_rounds: usize,
}

/// Outcome of a void-challenge run: a transcript plus whether the prover
/// aborted after being probed in a void round.
#[derive(Clone, Debug)]
pub struct VoidRunOutcome {
    /// Timed rounds that actually took place (full rounds only).
    pub transcript: Transcript,
    /// Round indices of the transcript entries within the session.
    pub round_indices: Vec<usize>,
    /// The prover detected a challenge during a void round and aborted.
    pub prover_aborted: bool,
}

impl VoidChallengeSession {
    /// Initialises the session: registers from HMAC like Hancke–Kuhn plus
    /// the secret void/full schedule with full-probability
    /// `full_prob` (use [`BALANCED_FULL_PROB`]).
    ///
    /// # Panics
    ///
    /// Panics if `n_rounds` is 0 or > 1024, or `full_prob` ∉ (0, 1].
    pub fn initialise(
        secret: &[u8],
        nonce_v: &[u8],
        nonce_p: &[u8],
        n_rounds: usize,
        full_prob: f64,
    ) -> Self {
        assert!((1..=1024).contains(&n_rounds), "round count out of range");
        assert!(
            full_prob > 0.0 && full_prob <= 1.0,
            "full_prob must be in (0, 1]"
        );
        let reg_bytes = n_rounds.div_ceil(8);
        let mut material = Vec::new();
        let mut counter = 0u8;
        while material.len() < 2 * reg_bytes + 4 * n_rounds.div_ceil(4) {
            let mut h = HmacSha256::new(secret);
            h.update(b"void-challenge-registers");
            h.update(nonce_v);
            h.update(nonce_p);
            h.update(&[counter]);
            material.extend_from_slice(&h.finalize());
            counter += 1;
        }
        let l = material[..reg_bytes].to_vec();
        let r = material[reg_bytes..2 * reg_bytes].to_vec();
        // Schedule: one byte of PRF output per round, full iff below the
        // threshold (granularity 1/256 is plenty).
        let threshold = (full_prob * 256.0).round().clamp(1.0, 256.0) as u16;
        let sched = &material[2 * reg_bytes..];
        let full = (0..n_rounds)
            .map(|i| u16::from(sched[i % sched.len()].wrapping_add(i as u8)) < threshold)
            .collect();
        VoidChallengeSession {
            l,
            r,
            full,
            n_rounds,
        }
    }

    /// Number of scheduled rounds (full + void).
    pub fn rounds(&self) -> usize {
        self.n_rounds
    }

    /// Number of full rounds in this session's schedule.
    pub fn full_rounds(&self) -> usize {
        self.full.iter().filter(|f| **f).count()
    }

    /// Honest response for round `i`.
    pub fn respond(&self, i: usize, alpha: u8) -> u8 {
        if alpha == 0 {
            bit_at(&self.l, i)
        } else {
            bit_at(&self.r, i)
        }
    }

    /// Runs the protocol under `scenario`.
    ///
    /// The mafia-fraud adversary pre-asks each round with a guessed
    /// challenge; any pre-ask that lands on a void round is noticed by the
    /// genuine prover, aborting the run.
    pub fn run(
        &self,
        scenario: Scenario,
        channel: &ChannelModel,
        rng: &mut ChaChaRng,
    ) -> VoidRunOutcome {
        let rtt = channel.rtt_at(scenario.responder_distance());
        let mut rounds = Vec::new();
        let mut round_indices = Vec::new();
        for i in 0..self.n_rounds {
            if !self.full[i] {
                // Void round: the verifier stays silent. A pre-asking
                // relay probes the prover anyway — and is caught.
                if matches!(scenario, Scenario::MafiaFraud { .. }) {
                    return VoidRunOutcome {
                        transcript: Transcript { rounds },
                        round_indices,
                        prover_aborted: true,
                    };
                }
                continue;
            }
            let alpha = (rng.next_u32() & 1) as u8;
            let response = match scenario {
                Scenario::Honest { .. } | Scenario::Terrorist { .. } => self.respond(i, alpha),
                Scenario::MafiaFraud { .. } => {
                    let guess = (rng.next_u32() & 1) as u8;
                    if guess == alpha {
                        self.respond(i, alpha)
                    } else {
                        (rng.next_u32() & 1) as u8
                    }
                }
                Scenario::DistanceFraud { .. } => {
                    let l_bit = bit_at(&self.l, i);
                    let r_bit = bit_at(&self.r, i);
                    if l_bit == r_bit {
                        l_bit
                    } else if (rng.next_u32() & 1) == 0 {
                        self.respond(i, alpha)
                    } else {
                        1 - self.respond(i, alpha)
                    }
                }
            };
            rounds.push(Round {
                challenge: alpha,
                response,
                rtt,
            });
            round_indices.push(i);
        }
        VoidRunOutcome {
            transcript: Transcript { rounds },
            round_indices,
            prover_aborted: false,
        }
    }

    /// Verifies an outcome: abort ⇒ reject; otherwise bits + timing over
    /// the full rounds.
    pub fn verify(&self, outcome: &VoidRunOutcome, max_rtt: SimDuration) -> Verdict {
        if outcome.prover_aborted {
            return Verdict::WrongBit(outcome.transcript.rounds.len());
        }
        for (pos, round) in outcome.transcript.rounds.iter().enumerate() {
            let i = outcome.round_indices[pos];
            if round.rtt > max_rtt {
                return Verdict::TooSlow(pos);
            }
            if round.response != self.respond(i, round.challenge) {
                return Verdict::WrongBit(pos);
            }
        }
        Verdict::Accept
    }
}

/// Analytic per-round adversary success with full-probability `p_f`
/// (best of pre-ask and guess strategies; see module docs).
pub fn per_round_mafia_success(full_prob: f64) -> f64 {
    let pre_ask = full_prob * 0.75;
    let guess = 1.0 - full_prob / 2.0;
    pre_ask.max(guess)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoproof_sim::time::Km;

    fn session(n: usize, seed: u8) -> VoidChallengeSession {
        VoidChallengeSession::initialise(
            b"shared-secret",
            &[seed; 8],
            b"nonce-p",
            n,
            BALANCED_FULL_PROB,
        )
    }

    #[test]
    fn honest_run_accepts() {
        let s = session(64, 1);
        let ch = ChannelModel::default();
        let mut rng = ChaChaRng::from_u64_seed(1);
        let out = s.run(Scenario::Honest { distance: Km(0.05) }, &ch, &mut rng);
        assert!(!out.prover_aborted);
        assert_eq!(s.verify(&out, ch.max_rtt_for(Km(0.1))), Verdict::Accept);
        assert_eq!(out.transcript.rounds.len(), s.full_rounds());
    }

    #[test]
    fn schedule_has_roughly_four_fifths_full_rounds() {
        let s = session(512, 2);
        let frac = s.full_rounds() as f64 / 512.0;
        assert!((frac - 0.8).abs() < 0.1, "full fraction {frac}");
    }

    #[test]
    fn preasking_relay_is_caught_by_void_rounds() {
        // With ~20% void rounds, a 32-round session almost surely contains
        // one, and the pre-asking relay aborts the prover.
        let ch = ChannelModel::default();
        let mut rng = ChaChaRng::from_u64_seed(3);
        let mut aborted = 0;
        for seed in 0..50u8 {
            let s = session(32, seed);
            let out = s.run(
                Scenario::MafiaFraud {
                    attacker_distance: Km(0.05),
                },
                &ch,
                &mut rng,
            );
            if out.prover_aborted {
                aborted += 1;
            }
            assert!(!s.verify(&out, ch.max_rtt_for(Km(0.1))).is_accept());
        }
        assert!(aborted > 40, "only {aborted}/50 runs aborted");
    }

    #[test]
    fn analytic_balance_point() {
        // At p_f = 4/5 the two strategies tie at 3/5.
        let p = per_round_mafia_success(BALANCED_FULL_PROB);
        assert!((p - 0.6).abs() < 1e-12);
        // Either side of the balance is worse for the defender.
        assert!(per_round_mafia_success(0.95) > 0.6);
        assert!(per_round_mafia_success(0.5) > 0.6);
    }

    #[test]
    fn improves_on_hancke_kuhn_per_round() {
        assert!(per_round_mafia_success(BALANCED_FULL_PROB) < 0.75);
    }

    #[test]
    fn schedule_differs_between_sessions() {
        let a = session(64, 1);
        let b = session(64, 9);
        assert_ne!(a.full, b.full);
    }

    #[test]
    #[should_panic(expected = "full_prob")]
    fn zero_full_prob_panics() {
        VoidChallengeSession::initialise(b"s", b"nv", b"np", 8, 0.0);
    }
}
