//! The Reid–Gonzalez Nieto–Tang–Senadji protocol (paper Fig. 3) —
//! Hancke–Kuhn hardened against the terrorist attack.
//!
//! Initialisation adds identity binding and a key-derivation step: both
//! sides derive `k = KDF(s, ID_V ‖ ID_P ‖ r_V ‖ r_P)` and compute
//! `e = E_k(s)` — the encrypted shared secret. The time-critical registers
//! are `k` and `e`: respond with `k[i]` on challenge 0, `e[i]` on 1.
//!
//! Terrorist resistance: to let an accomplice answer *every* challenge the
//! prover must hand over both registers — but `k` and `e` together reveal
//! the long-term secret `s = D_k(e)`, which the paper's threat model
//! assumes a rational prover will not disclose. An accomplice given only
//! one register (or neither) wins each round with probability 3/4 at best,
//! exactly like a mafia-fraud adversary.

use crate::rounds::{bit_at, ChannelModel, Round, Scenario, Transcript, Verdict};
use geoproof_crypto::aes::Aes128Ctr;
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_crypto::kdf::Hkdf;
use geoproof_sim::time::SimDuration;

/// A Reid et al. session after initialisation.
#[derive(Clone, Debug)]
pub struct ReidSession {
    k_register: Vec<u8>,
    e_register: Vec<u8>,
    n_rounds: usize,
}

impl ReidSession {
    /// Runs initialisation: identity exchange, nonce exchange, key
    /// derivation `k = KDF(s, IDs ‖ nonces)` and secret encryption
    /// `e = E_k(s)`.
    ///
    /// # Panics
    ///
    /// Panics if `n_rounds` is 0 or exceeds `8 × secret.len()` (the
    /// registers are as long as the encrypted secret).
    pub fn initialise(
        secret: &[u8],
        id_v: &[u8],
        id_p: &[u8],
        nonce_v: &[u8],
        nonce_p: &[u8],
        n_rounds: usize,
    ) -> Self {
        assert!(n_rounds >= 1, "round count must be positive");
        assert!(
            n_rounds <= 8 * secret.len(),
            "round count {n_rounds} exceeds secret bit-length {}",
            8 * secret.len()
        );
        // k = KDF(s; ID_V ‖ ID_P ‖ r_V ‖ r_P)
        let hk = Hkdf::extract(b"reid-db-v1", secret);
        let mut info = Vec::new();
        info.extend_from_slice(id_v);
        info.extend_from_slice(id_p);
        info.extend_from_slice(nonce_v);
        info.extend_from_slice(nonce_p);
        let k_register = hk.expand(&info, secret.len());
        // e = E_k(s): CTR encryption of the secret under a key derived
        // from the register material.
        let enc_key: [u8; 16] = hk
            .expand(&[&info[..], b"enc"].concat(), 16)
            .try_into()
            .expect("16 bytes");
        let mut e_register = secret.to_vec();
        Aes128Ctr::new(&enc_key, *b"reid-ctr").apply_keystream(&mut e_register);
        ReidSession {
            k_register,
            e_register,
            n_rounds,
        }
    }

    /// Number of time-critical rounds.
    pub fn rounds(&self) -> usize {
        self.n_rounds
    }

    /// The honest response at round `i` for challenge `alpha`.
    pub fn respond(&self, i: usize, alpha: u8) -> u8 {
        if alpha == 0 {
            bit_at(&self.k_register, i)
        } else {
            bit_at(&self.e_register, i)
        }
    }

    /// Runs the time-critical phase under `scenario`.
    ///
    /// Unlike Hancke–Kuhn, [`Scenario::Terrorist`] here models an
    /// accomplice that was given only *one* register (the prover withholds
    /// the pair to protect `s`), so it answers like a pre-ask relay:
    /// correct with probability 3/4 per round.
    pub fn run(
        &self,
        scenario: Scenario,
        channel: &ChannelModel,
        rng: &mut ChaChaRng,
    ) -> Transcript {
        let rtt = channel.rtt_at(scenario.responder_distance());
        let mut rounds = Vec::with_capacity(self.n_rounds);
        for i in 0..self.n_rounds {
            let alpha = (rng.next_u32() & 1) as u8;
            let response = match scenario {
                Scenario::Honest { .. } => self.respond(i, alpha),
                Scenario::MafiaFraud { .. } | Scenario::Terrorist { .. } => {
                    // Pre-ask / single-register accomplice: win on a
                    // correct guess, else coin-flip.
                    let guess = (rng.next_u32() & 1) as u8;
                    if guess == alpha {
                        self.respond(i, alpha)
                    } else {
                        (rng.next_u32() & 1) as u8
                    }
                }
                Scenario::DistanceFraud { .. } => {
                    let k_bit = bit_at(&self.k_register, i);
                    let e_bit = bit_at(&self.e_register, i);
                    if k_bit == e_bit {
                        k_bit
                    } else if (rng.next_u32() & 1) == 0 {
                        self.respond(i, alpha)
                    } else {
                        1 - self.respond(i, alpha)
                    }
                }
            };
            rounds.push(Round {
                challenge: alpha,
                response,
                rtt,
            });
        }
        Transcript { rounds }
    }

    /// Verifies response bits and per-round timing.
    pub fn verify(&self, transcript: &Transcript, max_rtt: SimDuration) -> Verdict {
        for (i, round) in transcript.rounds.iter().enumerate() {
            if round.rtt > max_rtt {
                return Verdict::TooSlow(i);
            }
            if round.response != self.respond(i, round.challenge) {
                return Verdict::WrongBit(i);
            }
        }
        Verdict::Accept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoproof_sim::time::Km;

    fn session(n: usize) -> ReidSession {
        ReidSession::initialise(
            &[0x42u8; 32],
            b"verifier-id",
            b"prover-id",
            b"nonce-v",
            b"nonce-p",
            n,
        )
    }

    #[test]
    fn honest_run_accepts() {
        let s = session(64);
        let ch = ChannelModel::default();
        let mut rng = ChaChaRng::from_u64_seed(1);
        let t = s.run(Scenario::Honest { distance: Km(0.05) }, &ch, &mut rng);
        assert_eq!(s.verify(&t, ch.max_rtt_for(Km(0.1))), Verdict::Accept);
    }

    #[test]
    fn terrorist_attack_fails_against_reid() {
        // The protocol's whole point: unlike HK, the terrorist accomplice
        // (without both registers) is caught with overwhelming probability.
        let s = session(64);
        let ch = ChannelModel::default();
        let mut rng = ChaChaRng::from_u64_seed(2);
        let max_rtt = ch.max_rtt_for(Km(0.1));
        let mut accepted = 0;
        for _ in 0..200 {
            let t = s.run(
                Scenario::Terrorist {
                    accomplice_distance: Km(0.05),
                },
                &ch,
                &mut rng,
            );
            if s.verify(&t, max_rtt).is_accept() {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 0, "(3/4)^64 ≈ 1e-8");
    }

    #[test]
    fn identity_binding_changes_registers() {
        let a = session(64);
        let b = ReidSession::initialise(
            &[0x42u8; 32],
            b"verifier-id",
            b"other-prover",
            b"nonce-v",
            b"nonce-p",
            64,
        );
        let differs = (0..64)
            .any(|i| a.respond(i, 0) != b.respond(i, 0) || a.respond(i, 1) != b.respond(i, 1));
        assert!(differs, "different prover identity must change registers");
    }

    #[test]
    fn registers_bound_to_nonces() {
        let a = session(64);
        let b = ReidSession::initialise(
            &[0x42u8; 32],
            b"verifier-id",
            b"prover-id",
            b"nonce-v-fresh",
            b"nonce-p",
            64,
        );
        let differs = (0..64)
            .any(|i| a.respond(i, 0) != b.respond(i, 0) || a.respond(i, 1) != b.respond(i, 1));
        assert!(differs, "fresh nonces must refresh registers");
    }

    #[test]
    fn mafia_fraud_fails_timing_or_bits() {
        let s = session(48);
        let ch = ChannelModel::default();
        let mut rng = ChaChaRng::from_u64_seed(3);
        let t = s.run(
            Scenario::MafiaFraud {
                attacker_distance: Km(0.05),
            },
            &ch,
            &mut rng,
        );
        // Some round almost surely has a wrong bit at 48 rounds.
        assert!(!s.verify(&t, ch.max_rtt_for(Km(0.1))).is_accept());
    }

    #[test]
    #[should_panic(expected = "exceeds secret bit-length")]
    fn too_many_rounds_panics() {
        session(8 * 32 + 1);
    }
}
