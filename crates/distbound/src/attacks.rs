//! Attack-success analysis: analytic formulas and Monte-Carlo estimators.
//!
//! The security level of a distance-bounding protocol is the probability
//! that an adversary survives all `n` time-critical rounds. This module
//! provides the closed forms — (3/4)^n for pre-ask relays against
//! Hancke–Kuhn/Reid, (1/2)^n against Brands–Chaum — and empirical
//! estimators that run the actual protocol implementations, so the
//! reproduction can show the two agree (DESIGN.md experiments F2/F3).

use crate::brands_chaum::{bc_verify, BcProver};
use crate::hancke_kuhn::HkSession;
use crate::reid::ReidSession;
use crate::rounds::{ChannelModel, Scenario};
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_crypto::schnorr::SigningKey;
use geoproof_sim::time::Km;

/// Which protocol to attack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// Hancke–Kuhn (paper Fig. 2).
    HanckeKuhn,
    /// Reid et al. (paper Fig. 3).
    Reid,
    /// Brands–Chaum.
    BrandsChaum,
}

/// Which adversary plays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Attack {
    /// Relay with pre-ask (mafia fraud).
    Mafia,
    /// Dishonest far prover answering early (distance fraud).
    Distance,
    /// Dishonest prover aiding a nearby accomplice (terrorist).
    Terrorist,
}

/// Analytic per-round adversary success probability.
pub fn per_round_success(protocol: Protocol, attack: Attack) -> f64 {
    match (protocol, attack) {
        // HK: pre-ask wins on a matched guess (1/2) else coin-flip (1/4).
        (Protocol::HanckeKuhn, Attack::Mafia) => 0.75,
        // HK distance fraud: registers agree w.p. 1/2, else guess.
        (Protocol::HanckeKuhn, Attack::Distance) => 0.75,
        // HK terrorist: both registers leak nothing → perfect accomplice.
        (Protocol::HanckeKuhn, Attack::Terrorist) => 1.0,
        // Reid: same relay bounds, but terrorist degraded to pre-ask.
        (Protocol::Reid, Attack::Mafia) => 0.75,
        (Protocol::Reid, Attack::Distance) => 0.75,
        (Protocol::Reid, Attack::Terrorist) => 0.75,
        // BC: response needs the live challenge — pure guess.
        (Protocol::BrandsChaum, Attack::Mafia) => 0.5,
        (Protocol::BrandsChaum, Attack::Distance) => 0.5,
        (Protocol::BrandsChaum, Attack::Terrorist) => 1.0,
    }
}

/// Analytic acceptance probability after `n` rounds.
pub fn acceptance_probability(protocol: Protocol, attack: Attack, n_rounds: u32) -> f64 {
    per_round_success(protocol, attack).powi(n_rounds as i32)
}

/// Rounds needed to push adversary acceptance below `2^-security_bits`.
pub fn rounds_for_security(protocol: Protocol, attack: Attack, security_bits: u32) -> Option<u32> {
    let p = per_round_success(protocol, attack);
    if p >= 1.0 {
        return None; // attack always succeeds; no round count helps
    }
    let needed = (security_bits as f64) * std::f64::consts::LN_2 / -p.ln();
    Some(needed.ceil() as u32)
}

/// Monte-Carlo estimate of the adversary acceptance rate over `trials`
/// protocol runs of `n_rounds` each.
pub fn empirical_acceptance(
    protocol: Protocol,
    attack: Attack,
    n_rounds: usize,
    trials: u32,
    seed: u64,
) -> f64 {
    let mut rng = ChaChaRng::from_u64_seed(seed);
    let channel = ChannelModel::default();
    let max_rtt = channel.max_rtt_for(Km(0.1));
    let scenario = match attack {
        Attack::Mafia => Scenario::MafiaFraud {
            attacker_distance: Km(0.05),
        },
        Attack::Distance => Scenario::DistanceFraud {
            claimed_distance: Km(0.05),
        },
        Attack::Terrorist => Scenario::Terrorist {
            accomplice_distance: Km(0.05),
        },
    };
    let mut accepted = 0u32;
    match protocol {
        Protocol::HanckeKuhn => {
            for trial in 0..trials {
                let mut nonce = b"nonce-v-".to_vec();
                nonce.extend_from_slice(&trial.to_be_bytes());
                let s = HkSession::initialise(b"secret", &nonce, b"nonce-p", n_rounds);
                let t = s.run(scenario, &channel, &mut rng);
                if s.verify(&t, max_rtt).is_accept() {
                    accepted += 1;
                }
            }
        }
        Protocol::Reid => {
            for trial in 0..trials {
                let mut nonce = b"nonce-v-".to_vec();
                nonce.extend_from_slice(&trial.to_be_bytes());
                let s = ReidSession::initialise(
                    &[7u8; 32], b"idv", b"idp", &nonce, b"nonce-p", n_rounds,
                );
                let t = s.run(scenario, &channel, &mut rng);
                if s.verify(&t, max_rtt).is_accept() {
                    accepted += 1;
                }
            }
        }
        Protocol::BrandsChaum => {
            let sk = SigningKey::generate(&mut rng);
            for _ in 0..trials {
                let (p, c) = BcProver::new(sk.clone(), n_rounds, &mut rng);
                let t = p.run(scenario, &channel, &mut rng);
                let open = p.open(&t, &mut rng);
                if bc_verify(&c, &t, &open, &sk.verifying_key(), max_rtt).is_accept() {
                    accepted += 1;
                }
            }
        }
    }
    f64::from(accepted) / f64::from(trials)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_formulas() {
        assert!(
            (acceptance_probability(Protocol::HanckeKuhn, Attack::Mafia, 8) - 0.75f64.powi(8))
                .abs()
                < 1e-12
        );
        assert_eq!(
            acceptance_probability(Protocol::HanckeKuhn, Attack::Terrorist, 64),
            1.0
        );
        assert!(acceptance_probability(Protocol::BrandsChaum, Attack::Mafia, 64) < 1e-19);
    }

    #[test]
    fn rounds_for_security_matches_inverse() {
        // 3/4 per round: ~2.41 rounds per security bit.
        let n = rounds_for_security(Protocol::HanckeKuhn, Attack::Mafia, 32).unwrap();
        assert!((77..=78).contains(&n), "got {n}");
        // 1/2 per round: exactly 1 round per bit.
        assert_eq!(
            rounds_for_security(Protocol::BrandsChaum, Attack::Mafia, 32),
            Some(32)
        );
        // Terrorist vs HK: unreachable.
        assert_eq!(
            rounds_for_security(Protocol::HanckeKuhn, Attack::Terrorist, 1),
            None
        );
    }

    #[test]
    fn empirical_matches_analytic_hk_mafia() {
        // 4 rounds: (3/4)^4 ≈ 0.3164.
        let rate = empirical_acceptance(Protocol::HanckeKuhn, Attack::Mafia, 4, 3000, 42);
        let expect = acceptance_probability(Protocol::HanckeKuhn, Attack::Mafia, 4);
        assert!((rate - expect).abs() < 0.03, "rate {rate}, expect {expect}");
    }

    #[test]
    fn empirical_matches_analytic_bc_mafia() {
        // 4 rounds: (1/2)^4 = 0.0625.
        let rate = empirical_acceptance(Protocol::BrandsChaum, Attack::Mafia, 4, 2000, 43);
        assert!((rate - 0.0625).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn empirical_hk_terrorist_always_wins() {
        let rate = empirical_acceptance(Protocol::HanckeKuhn, Attack::Terrorist, 16, 100, 44);
        assert_eq!(rate, 1.0);
    }

    #[test]
    fn empirical_reid_terrorist_loses() {
        let rate = empirical_acceptance(Protocol::Reid, Attack::Terrorist, 32, 300, 45);
        assert!(rate < 0.01, "rate {rate}");
    }

    #[test]
    fn empirical_distance_fraud_hk() {
        // (3/4)^6 ≈ 0.178.
        let rate = empirical_acceptance(Protocol::HanckeKuhn, Attack::Distance, 6, 2000, 46);
        assert!((rate - 0.178).abs() < 0.035, "rate {rate}");
    }
}
