//! The Brands–Chaum distance-bounding protocol — the original (paper §III-A,
//! "Brands and Chaum were the first to propose distance-bounding").
//!
//! The prover commits to n random bits `m`; in the time-critical phase the
//! verifier sends random challenge bits α_i and the prover instantly
//! replies β_i = α_i ⊕ m_i. Afterwards the prover opens the commitment and
//! signs the concatenated transcript. A mafia-fraud relay cannot pre-ask
//! (the response depends on the live challenge), so it wins each round
//! with probability only 1/2 — acceptance (1/2)^n, stronger per round than
//! Hancke–Kuhn's (3/4)^n. Like HK it does not resist the terrorist attack.

use crate::rounds::{bit_at, ChannelModel, Round, Scenario, Transcript, Verdict};
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_crypto::schnorr::{Signature, SigningKey, VerifyingKey};
use geoproof_crypto::sha256::Sha256;
use geoproof_sim::time::SimDuration;

/// The prover's committed state.
#[derive(Clone, Debug)]
pub struct BcProver {
    m: Vec<u8>,
    opening: [u8; 32],
    n_rounds: usize,
    signing: SigningKey,
}

/// The prover's first message: a binding commitment to its round bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Commitment(pub [u8; 32]);

/// The post-phase message: the opened bits plus a signature over the
/// transcript.
#[derive(Clone, Debug)]
pub struct OpeningMessage {
    /// The committed round bits `m`.
    pub m: Vec<u8>,
    /// Commitment randomness.
    pub opening: [u8; 32],
    /// Schnorr signature over the full transcript.
    pub signature: Signature,
}

fn commit(m: &[u8], opening: &[u8; 32]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"bc-commit-v1");
    h.update(m);
    h.update(opening);
    h.finalize()
}

fn transcript_digest(transcript: &Transcript) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(transcript.rounds.len() * 2 + 16);
    bytes.extend_from_slice(b"bc-transcript-v1");
    for r in &transcript.rounds {
        bytes.push(r.challenge);
        bytes.push(r.response);
    }
    bytes
}

impl BcProver {
    /// Creates a prover with fresh random round bits and returns its
    /// commitment.
    ///
    /// # Panics
    ///
    /// Panics if `n_rounds` is zero or exceeds 1024.
    pub fn new(signing: SigningKey, n_rounds: usize, rng: &mut ChaChaRng) -> (Self, Commitment) {
        assert!(
            (1..=1024).contains(&n_rounds),
            "round count must be in 1..=1024"
        );
        let mut m = vec![0u8; n_rounds.div_ceil(8)];
        rng.fill_bytes(&mut m);
        let mut opening = [0u8; 32];
        rng.fill_bytes(&mut opening);
        let c = commit(&m, &opening);
        (
            BcProver {
                m,
                opening,
                n_rounds,
                signing,
            },
            Commitment(c),
        )
    }

    /// The honest response at round `i`: `α_i ⊕ m_i`.
    pub fn respond(&self, i: usize, alpha: u8) -> u8 {
        alpha ^ bit_at(&self.m, i)
    }

    /// Runs the time-critical phase under `scenario`.
    pub fn run(
        &self,
        scenario: Scenario,
        channel: &ChannelModel,
        rng: &mut ChaChaRng,
    ) -> Transcript {
        let rtt = channel.rtt_at(scenario.responder_distance());
        let mut rounds = Vec::with_capacity(self.n_rounds);
        for i in 0..self.n_rounds {
            let alpha = (rng.next_u32() & 1) as u8;
            let response = match scenario {
                Scenario::Honest { .. } => self.respond(i, alpha),
                // No pre-ask is possible (response depends on the live
                // challenge XOR committed bit): the relay must guess m_i.
                Scenario::MafiaFraud { .. } => alpha ^ ((rng.next_u32() & 1) as u8),
                // Distance fraud: the dishonest prover answers before the
                // challenge arrives — must guess α_i.
                Scenario::DistanceFraud { .. } => {
                    let guessed_alpha = (rng.next_u32() & 1) as u8;
                    guessed_alpha ^ bit_at(&self.m, i)
                }
                // Terrorist: the prover hands m to the accomplice (reveals
                // nothing long-term) — answers perfectly. BC shares HK's
                // weakness here.
                Scenario::Terrorist { .. } => self.respond(i, alpha),
            };
            rounds.push(Round {
                challenge: alpha,
                response,
                rtt,
            });
        }
        Transcript { rounds }
    }

    /// Produces the post-phase opening + transcript signature.
    pub fn open(&self, transcript: &Transcript, rng: &mut ChaChaRng) -> OpeningMessage {
        OpeningMessage {
            m: self.m.clone(),
            opening: self.opening,
            signature: self.signing.sign(&transcript_digest(transcript), rng),
        }
    }
}

/// Verifier-side acceptance decision for a Brands–Chaum run.
///
/// Checks, in order: the commitment opens to `m`; every response equals
/// `α_i ⊕ m_i`; every RTT is within `max_rtt`; the transcript signature
/// verifies under `prover_key`.
pub fn bc_verify(
    commitment: &Commitment,
    transcript: &Transcript,
    opening: &OpeningMessage,
    prover_key: &VerifyingKey,
    max_rtt: SimDuration,
) -> Verdict {
    if commit(&opening.m, &opening.opening) != commitment.0 {
        return Verdict::WrongBit(0); // commitment mismatch
    }
    for (i, round) in transcript.rounds.iter().enumerate() {
        if round.rtt > max_rtt {
            return Verdict::TooSlow(i);
        }
        if 8 * opening.m.len() <= i || round.response != (round.challenge ^ bit_at(&opening.m, i)) {
            return Verdict::WrongBit(i);
        }
    }
    if !prover_key.verify(&transcript_digest(transcript), &opening.signature) {
        return Verdict::WrongBit(transcript.rounds.len());
    }
    Verdict::Accept
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoproof_sim::time::Km;

    fn setup(n: usize, seed: u64) -> (BcProver, Commitment, ChaChaRng, ChannelModel) {
        let mut rng = ChaChaRng::from_u64_seed(seed);
        let sk = SigningKey::generate(&mut rng);
        let (p, c) = BcProver::new(sk, n, &mut rng);
        (p, c, rng, ChannelModel::default())
    }

    #[test]
    fn honest_run_accepts() {
        let (p, c, mut rng, ch) = setup(64, 1);
        let t = p.run(Scenario::Honest { distance: Km(0.05) }, &ch, &mut rng);
        let open = p.open(&t, &mut rng);
        let v = bc_verify(
            &c,
            &t,
            &open,
            &p.signing.verifying_key(),
            ch.max_rtt_for(Km(0.1)),
        );
        assert_eq!(v, Verdict::Accept);
    }

    #[test]
    fn mafia_fraud_wins_half_per_round() {
        let (p, _c, mut rng, ch) = setup(1, 2);
        // Single round: relay wins iff it guesses m_0 — empirical ≈ 1/2.
        let mut wins = 0;
        let trials = 2000;
        for _ in 0..trials {
            let t = p.run(
                Scenario::MafiaFraud {
                    attacker_distance: Km(0.05),
                },
                &ch,
                &mut rng,
            );
            let r = &t.rounds[0];
            if r.response == p.respond(0, r.challenge) {
                wins += 1;
            }
        }
        let rate = wins as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn mafia_fraud_never_accepted_at_64_rounds() {
        let (p, c, mut rng, ch) = setup(64, 3);
        let max_rtt = ch.max_rtt_for(Km(0.1));
        for _ in 0..100 {
            let t = p.run(
                Scenario::MafiaFraud {
                    attacker_distance: Km(0.05),
                },
                &ch,
                &mut rng,
            );
            let open = p.open(&t, &mut rng);
            let v = bc_verify(&c, &t, &open, &p.signing.verifying_key(), max_rtt);
            assert!(!v.is_accept());
        }
    }

    #[test]
    fn tampered_commitment_rejected() {
        let (p, _c, mut rng, ch) = setup(16, 4);
        let t = p.run(Scenario::Honest { distance: Km(0.05) }, &ch, &mut rng);
        let open = p.open(&t, &mut rng);
        let bad_c = Commitment([0u8; 32]);
        let v = bc_verify(
            &bad_c,
            &t,
            &open,
            &p.signing.verifying_key(),
            ch.max_rtt_for(Km(0.1)),
        );
        assert!(!v.is_accept());
    }

    #[test]
    fn wrong_signer_rejected() {
        let (p, c, mut rng, ch) = setup(16, 5);
        let t = p.run(Scenario::Honest { distance: Km(0.05) }, &ch, &mut rng);
        let open = p.open(&t, &mut rng);
        let other = SigningKey::generate(&mut rng);
        let v = bc_verify(
            &c,
            &t,
            &open,
            &other.verifying_key(),
            ch.max_rtt_for(Km(0.1)),
        );
        assert!(!v.is_accept());
    }

    #[test]
    fn distant_prover_fails_timing() {
        let (p, c, mut rng, ch) = setup(16, 6);
        let t = p.run(
            Scenario::Honest {
                distance: Km(300.0),
            },
            &ch,
            &mut rng,
        );
        let open = p.open(&t, &mut rng);
        let v = bc_verify(
            &c,
            &t,
            &open,
            &p.signing.verifying_key(),
            ch.max_rtt_for(Km(1.0)),
        );
        assert_eq!(v, Verdict::TooSlow(0));
    }
}
