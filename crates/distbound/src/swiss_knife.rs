//! A Swiss-Knife-style distance-bounding protocol (Kim, Avoine, Koeune,
//! Standaert, Pereira — cited by the paper's §III-A survey, reference 25).
//!
//! Two features distinguish it from Hancke–Kuhn:
//!
//! 1. **Terrorist resistance**: the response registers are `T` and
//!    `T ⊕ K` (session register XOR long-term key), so handing an
//!    accomplice both registers reveals `K`;
//! 2. **A final confirmation MAC** over the prover's *received* challenge
//!    sequence. A pre-asking relay feeds the prover guessed challenges;
//!    whenever a guess differs from the verifier's real challenge the
//!    prover's view diverges, the confirmation MAC mismatches, and the run
//!    fails — collapsing mafia fraud from (3/4)^n to (1/2)^n.

use crate::rounds::{bit_at, ChannelModel, Round, Scenario, Transcript, Verdict};
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_crypto::hmac::HmacSha256;
use geoproof_sim::time::SimDuration;

/// A Swiss-Knife-style session after initialisation.
#[derive(Clone, Debug)]
pub struct SwissKnifeSession {
    /// Session register T = PRF(K; IDs, nonces).
    t_register: Vec<u8>,
    /// Long-term key bits used for the second register T ⊕ K.
    key_bits: Vec<u8>,
    /// Long-term key for the confirmation MAC.
    key: Vec<u8>,
    n_rounds: usize,
}

/// A completed run: timed rounds plus the prover's confirmation MAC
/// computed over the challenges *it* saw.
#[derive(Clone, Debug)]
pub struct SkRunOutcome {
    /// The verifier-side transcript (real challenges, received responses).
    pub transcript: Transcript,
    /// The prover's confirmation MAC.
    pub confirmation: [u8; 32],
}

impl SwissKnifeSession {
    /// Initialises a session from the long-term key and the handshake.
    ///
    /// # Panics
    ///
    /// Panics if `n_rounds` is 0 or exceeds 1024.
    pub fn initialise(
        key: &[u8],
        id_p: &[u8],
        nonce_v: &[u8],
        nonce_p: &[u8],
        n_rounds: usize,
    ) -> Self {
        assert!((1..=1024).contains(&n_rounds), "round count out of range");
        let reg_bytes = n_rounds.div_ceil(8);
        let mut material = Vec::new();
        let mut counter = 0u8;
        while material.len() < 2 * reg_bytes {
            let mut h = HmacSha256::new(key);
            h.update(b"swiss-knife-T");
            h.update(id_p);
            h.update(nonce_v);
            h.update(nonce_p);
            h.update(&[counter]);
            material.extend_from_slice(&h.finalize());
            counter += 1;
        }
        let t_register = material[..reg_bytes].to_vec();
        // Key bits stretched to register length (PRF of K alone so that
        // possession of both registers reveals it, as in the original).
        let key_bits = {
            let mut out = Vec::with_capacity(reg_bytes);
            let mut c = 0u8;
            while out.len() < reg_bytes {
                let mut h = HmacSha256::new(key);
                h.update(b"swiss-knife-keybits");
                h.update(&[c]);
                out.extend_from_slice(&h.finalize());
                c += 1;
            }
            out.truncate(reg_bytes);
            out
        };
        SwissKnifeSession {
            t_register,
            key_bits,
            key: key.to_vec(),
            n_rounds,
        }
    }

    /// Number of time-critical rounds.
    pub fn rounds(&self) -> usize {
        self.n_rounds
    }

    /// Honest response: `T[i]` on challenge 0, `T[i] ⊕ K[i]` on 1.
    pub fn respond(&self, i: usize, alpha: u8) -> u8 {
        let t = bit_at(&self.t_register, i);
        if alpha == 0 {
            t
        } else {
            t ^ bit_at(&self.key_bits, i)
        }
    }

    fn confirmation_mac(&self, seen_challenges: &[u8]) -> [u8; 32] {
        let mut h = HmacSha256::new(&self.key);
        h.update(b"swiss-knife-confirm");
        h.update(seen_challenges);
        h.finalize()
    }

    /// Runs the protocol under `scenario`.
    pub fn run(
        &self,
        scenario: Scenario,
        channel: &ChannelModel,
        rng: &mut ChaChaRng,
    ) -> SkRunOutcome {
        let rtt = channel.rtt_at(scenario.responder_distance());
        let mut rounds = Vec::with_capacity(self.n_rounds);
        // The challenges the *prover* believes it received (differs from
        // the verifier's under pre-ask relaying).
        let mut prover_view = Vec::with_capacity(self.n_rounds);
        for i in 0..self.n_rounds {
            let alpha = (rng.next_u32() & 1) as u8;
            let (response, seen) = match scenario {
                Scenario::Honest { .. } => (self.respond(i, alpha), alpha),
                Scenario::MafiaFraud { .. } => {
                    // Pre-ask with a guess; the prover answers (and
                    // records) the guessed challenge.
                    let guess = (rng.next_u32() & 1) as u8;
                    let relayed = self.respond(i, guess);
                    let resp = if guess == alpha {
                        relayed
                    } else {
                        // Wrong guess: the relayed bit answers the wrong
                        // register; keep it (best available).
                        relayed
                    };
                    (resp, guess)
                }
                Scenario::DistanceFraud { .. } => {
                    let b0 = self.respond(i, 0);
                    let b1 = self.respond(i, 1);
                    let resp = if b0 == b1 {
                        b0
                    } else if (rng.next_u32() & 1) == 0 {
                        self.respond(i, alpha)
                    } else {
                        1 - self.respond(i, alpha)
                    };
                    (resp, alpha) // genuine prover sees the real challenge
                }
                Scenario::Terrorist { .. } => {
                    // Accomplice got only the T register (the pair would
                    // reveal K): answers T[i] regardless; right whenever
                    // α = 0 or K[i] = 0.
                    (bit_at(&self.t_register, i), alpha)
                }
            };
            rounds.push(Round {
                challenge: alpha,
                response,
                rtt,
            });
            prover_view.push(seen);
        }
        SkRunOutcome {
            transcript: Transcript { rounds },
            confirmation: self.confirmation_mac(&prover_view),
        }
    }

    /// Verifies bits, timing, and the confirmation MAC against the
    /// verifier's own challenge sequence.
    pub fn verify(&self, outcome: &SkRunOutcome, max_rtt: SimDuration) -> Verdict {
        for (i, round) in outcome.transcript.rounds.iter().enumerate() {
            if round.rtt > max_rtt {
                return Verdict::TooSlow(i);
            }
            if round.response != self.respond(i, round.challenge) {
                return Verdict::WrongBit(i);
            }
        }
        let verifier_view: Vec<u8> = outcome
            .transcript
            .rounds
            .iter()
            .map(|r| r.challenge)
            .collect();
        if outcome.confirmation != self.confirmation_mac(&verifier_view) {
            return Verdict::WrongBit(outcome.transcript.rounds.len());
        }
        Verdict::Accept
    }
}

/// Analytic mafia-fraud acceptance: the confirmation MAC forces every
/// pre-ask guess to be correct — (1/2)^n.
pub fn mafia_acceptance(n_rounds: u32) -> f64 {
    0.5f64.powi(n_rounds as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoproof_sim::time::Km;

    fn session(n: usize) -> SwissKnifeSession {
        SwissKnifeSession::initialise(&[0x5au8; 32], b"prover-id", b"nv", b"np", n)
    }

    #[test]
    fn honest_run_accepts() {
        let s = session(64);
        let ch = ChannelModel::default();
        let mut rng = ChaChaRng::from_u64_seed(1);
        let out = s.run(Scenario::Honest { distance: Km(0.05) }, &ch, &mut rng);
        assert_eq!(s.verify(&out, ch.max_rtt_for(Km(0.1))), Verdict::Accept);
    }

    #[test]
    fn mafia_fraud_caught_by_confirmation_mac() {
        // Even when all response bits happen to check out, one wrong
        // pre-ask guess breaks the confirmation MAC.
        let ch = ChannelModel::default();
        let mut rng = ChaChaRng::from_u64_seed(2);
        let mut accepted = 0;
        for n in 0..200u64 {
            let s = SwissKnifeSession::initialise(
                &[0x5au8; 32],
                b"prover-id",
                &n.to_be_bytes(),
                b"np",
                8,
            );
            let out = s.run(
                Scenario::MafiaFraud {
                    attacker_distance: Km(0.05),
                },
                &ch,
                &mut rng,
            );
            if s.verify(&out, ch.max_rtt_for(Km(0.1))).is_accept() {
                accepted += 1;
            }
        }
        // (1/2)^8 ≈ 0.39% per run: expect ~1 acceptance in 200, allow <10.
        assert!(accepted < 10, "accepted {accepted}/200");
    }

    #[test]
    fn empirical_tracks_half_power_n() {
        let ch = ChannelModel::default();
        let mut rng = ChaChaRng::from_u64_seed(3);
        let trials = 2000u32;
        let n = 3usize; // (1/2)^3 = 0.125
        let mut accepted = 0u32;
        for t in 0..trials {
            let s = SwissKnifeSession::initialise(
                &[0x5au8; 32],
                b"prover-id",
                &t.to_be_bytes(),
                b"np",
                n,
            );
            let out = s.run(
                Scenario::MafiaFraud {
                    attacker_distance: Km(0.05),
                },
                &ch,
                &mut rng,
            );
            if s.verify(&out, ch.max_rtt_for(Km(0.1))).is_accept() {
                accepted += 1;
            }
        }
        let rate = f64::from(accepted) / f64::from(trials);
        assert!(
            (rate - mafia_acceptance(3)).abs() < 0.03,
            "rate {rate} vs analytic {}",
            mafia_acceptance(3)
        );
    }

    #[test]
    fn terrorist_with_single_register_fails() {
        let s = session(64);
        let ch = ChannelModel::default();
        let mut rng = ChaChaRng::from_u64_seed(4);
        let out = s.run(
            Scenario::Terrorist {
                accomplice_distance: Km(0.05),
            },
            &ch,
            &mut rng,
        );
        assert!(!s.verify(&out, ch.max_rtt_for(Km(0.1))).is_accept());
    }

    #[test]
    fn registers_reveal_key_bits_by_design() {
        // T ⊕ (T ⊕ K) = K: the terrorist disincentive.
        let s = session(32);
        for i in 0..32 {
            let t = s.respond(i, 0);
            let tk = s.respond(i, 1);
            assert_eq!(t ^ tk, bit_at(&s.key_bits, i));
        }
    }

    #[test]
    fn distant_prover_fails_timing() {
        let s = session(16);
        let ch = ChannelModel::default();
        let mut rng = ChaChaRng::from_u64_seed(5);
        let out = s.run(
            Scenario::Honest {
                distance: Km(400.0),
            },
            &ch,
            &mut rng,
        );
        assert_eq!(s.verify(&out, ch.max_rtt_for(Km(1.0))), Verdict::TooSlow(0));
    }
}
