//! Property-based tests for the distance-bounding protocols.

use geoproof_crypto::chacha::ChaChaRng;
use geoproof_crypto::schnorr::SigningKey;
use geoproof_distbound::brands_chaum::{bc_verify, BcProver};
use geoproof_distbound::hancke_kuhn::HkSession;
use geoproof_distbound::reid::ReidSession;
use geoproof_distbound::rounds::{ChannelModel, Scenario, Verdict};
use geoproof_distbound::swiss_knife::SwissKnifeSession;
use geoproof_distbound::void_challenge::VoidChallengeSession;
use geoproof_sim::time::Km;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hk_honest_always_accepts(
        n in 1usize..128,
        seed in any::<u64>(),
        secret in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let s = HkSession::initialise(&secret, &seed.to_be_bytes(), b"np", n);
        let ch = ChannelModel::default();
        let mut rng = ChaChaRng::from_u64_seed(seed);
        let t = s.run(Scenario::Honest { distance: Km(0.05) }, &ch, &mut rng);
        prop_assert_eq!(s.verify(&t, ch.max_rtt_for(Km(0.1))), Verdict::Accept);
    }

    #[test]
    fn hk_any_flipped_bit_rejected(
        n in 1usize..64,
        seed in any::<u64>(),
        victim_frac in 0.0f64..1.0,
    ) {
        let s = HkSession::initialise(b"sec", &seed.to_be_bytes(), b"np", n);
        let ch = ChannelModel::default();
        let mut rng = ChaChaRng::from_u64_seed(seed);
        let mut t = s.run(Scenario::Honest { distance: Km(0.05) }, &ch, &mut rng);
        let victim = ((n - 1) as f64 * victim_frac) as usize;
        t.rounds[victim].response ^= 1;
        prop_assert_eq!(
            s.verify(&t, ch.max_rtt_for(Km(0.1))),
            Verdict::WrongBit(victim)
        );
    }

    #[test]
    fn reid_honest_always_accepts(n in 1usize..128, seed in any::<u64>()) {
        let s = ReidSession::initialise(
            &[7u8; 32], b"idv", b"idp", &seed.to_be_bytes(), b"np", n,
        );
        let ch = ChannelModel::default();
        let mut rng = ChaChaRng::from_u64_seed(seed);
        let t = s.run(Scenario::Honest { distance: Km(0.05) }, &ch, &mut rng);
        prop_assert_eq!(s.verify(&t, ch.max_rtt_for(Km(0.1))), Verdict::Accept);
    }

    #[test]
    fn timing_bound_is_sharp(
        n in 1usize..32,
        seed in any::<u64>(),
        distance in 1.0f64..5000.0,
    ) {
        // A prover strictly beyond the bound distance always fails timing.
        let s = HkSession::initialise(b"sec", &seed.to_be_bytes(), b"np", n);
        let ch = ChannelModel::default();
        let mut rng = ChaChaRng::from_u64_seed(seed);
        let t = s.run(Scenario::Honest { distance: Km(distance) }, &ch, &mut rng);
        let bound = ch.max_rtt_for(Km(distance / 2.0));
        prop_assert_eq!(s.verify(&t, bound), Verdict::TooSlow(0));
    }

    #[test]
    fn bc_honest_always_accepts(n in 1usize..64, seed in any::<u64>()) {
        let mut rng = ChaChaRng::from_u64_seed(seed);
        let sk = SigningKey::generate(&mut rng);
        let (p, c) = BcProver::new(sk.clone(), n, &mut rng);
        let ch = ChannelModel::default();
        let t = p.run(Scenario::Honest { distance: Km(0.05) }, &ch, &mut rng);
        let open = p.open(&t, &mut rng);
        prop_assert_eq!(
            bc_verify(&c, &t, &open, &sk.verifying_key(), ch.max_rtt_for(Km(0.1))),
            Verdict::Accept
        );
    }

    #[test]
    fn swiss_knife_honest_accepts_and_confirmation_binds(
        n in 1usize..64,
        seed in any::<u64>(),
    ) {
        let s = SwissKnifeSession::initialise(&[1u8; 32], b"idp", &seed.to_be_bytes(), b"np", n);
        let ch = ChannelModel::default();
        let mut rng = ChaChaRng::from_u64_seed(seed);
        let out = s.run(Scenario::Honest { distance: Km(0.05) }, &ch, &mut rng);
        prop_assert_eq!(s.verify(&out, ch.max_rtt_for(Km(0.1))), Verdict::Accept);
        // Tampering with the confirmation MAC must reject.
        let mut bad = out.clone();
        bad.confirmation[0] ^= 1;
        prop_assert!(!s.verify(&bad, ch.max_rtt_for(Km(0.1))).is_accept());
    }

    #[test]
    fn void_sessions_honest_accept_for_any_full_prob(
        n in 4usize..64,
        seed in any::<u64>(),
        full_prob in 0.1f64..1.0,
    ) {
        let s = VoidChallengeSession::initialise(
            b"sec", &seed.to_be_bytes(), b"np", n, full_prob,
        );
        let ch = ChannelModel::default();
        let mut rng = ChaChaRng::from_u64_seed(seed);
        let out = s.run(Scenario::Honest { distance: Km(0.05) }, &ch, &mut rng);
        prop_assert!(!out.prover_aborted);
        prop_assert_eq!(s.verify(&out, ch.max_rtt_for(Km(0.1))), Verdict::Accept);
        prop_assert_eq!(out.transcript.rounds.len(), s.full_rounds());
    }

    #[test]
    fn channel_distance_bound_roundtrip(km in 0.0f64..20_000.0) {
        let ch = ChannelModel::default();
        let rtt = ch.rtt_at(Km(km));
        let bound = ch.distance_bound(rtt);
        prop_assert!((bound.0 - km).abs() < 0.01, "got {} for {km}", bound.0);
    }
}
