//! Adversarial framing: hostile lengths at and beyond `MAX_FRAME`, and
//! the zero-copy aliasing contract of the codec.
//!
//! A prover faces the open network, so the framing layer must treat
//! length prefixes as attacker-controlled: a frame of exactly
//! [`MAX_FRAME`] is legal, one byte more is rejected *without panic*,
//! and a rejection must never desynchronise parsing of well-formed
//! traffic (the server drops the connection; fresh connections are
//! unaffected).

use bytes::Bytes;
use geoproof_wire::codec::{read_frame, CodecError, WireMessage, MAX_FRAME};
use geoproof_wire::tcp::{ProverServer, SegmentStore, TcpChallenger};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

const TAG_RESPONSE: u8 = 2;

fn store_with(file: &str, n: usize) -> SegmentStore {
    let store: SegmentStore = Arc::new(Mutex::new(HashMap::new()));
    store.lock().insert(
        file.to_owned(),
        (0..n).map(|i| Bytes::from(vec![i as u8; 83])).collect(),
    );
    store
}

/// A raw `Response` frame whose *payload* is exactly `payload_len` bytes.
fn response_frame_with_payload_len(payload_len: usize) -> Vec<u8> {
    // Payload layout: tag(1) ‖ present(1) ‖ seg_len(4) ‖ segment.
    let seg_len = payload_len - 6;
    let mut frame = Vec::with_capacity(4 + payload_len);
    frame.extend_from_slice(&(payload_len as u32).to_be_bytes());
    frame.push(TAG_RESPONSE);
    frame.push(1);
    frame.extend_from_slice(&(seg_len as u32).to_be_bytes());
    frame.extend_from_slice(&vec![0xabu8; seg_len]);
    frame
}

#[test]
fn frame_of_exactly_max_frame_is_accepted() {
    let frame = response_frame_with_payload_len(MAX_FRAME);
    let mut cursor = std::io::Cursor::new(frame);
    let msg = read_frame(&mut cursor).expect("MAX_FRAME is within the limit");
    match msg {
        WireMessage::Response { segment: Some(s) } => assert_eq!(s.len(), MAX_FRAME - 6),
        other => panic!("unexpected decode {other:?}"),
    }
}

#[test]
fn frame_of_max_frame_plus_one_is_rejected_without_panic() {
    let mut frame = response_frame_with_payload_len(MAX_FRAME + 1);
    let err = read_frame(&mut std::io::Cursor::new(&frame)).expect_err("must reject");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    // A wildly hostile prefix (4 GiB-ish) is rejected before any
    // allocation is attempted.
    frame[..4].copy_from_slice(&u32::MAX.to_be_bytes());
    let err = read_frame(&mut std::io::Cursor::new(&frame)).expect_err("must reject");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn rejected_frame_does_not_desync_the_byte_stream() {
    // An oversized frame followed by a valid frame in one contiguous
    // stream: after the rejection the reader's cursor is at a defined
    // position (nothing consumed beyond the bad prefix), so the caller
    // can drop the connection without ever misparsing later bytes as a
    // frame boundary.
    let mut stream = Vec::new();
    stream.extend_from_slice(&((MAX_FRAME + 1) as u32).to_be_bytes());
    let good = WireMessage::Challenge {
        file_id: "f".into(),
        index: 3,
    }
    .encode();
    stream.extend_from_slice(&good);
    let mut cursor = std::io::Cursor::new(stream);
    assert!(read_frame(&mut cursor).is_err());
    assert_eq!(
        cursor.position(),
        4,
        "only the rejected prefix may be consumed"
    );
    // Resuming at the known position yields the following frame intact.
    assert_eq!(
        read_frame(&mut cursor).expect("subsequent frame"),
        WireMessage::Challenge {
            file_id: "f".into(),
            index: 3,
        }
    );
}

#[test]
fn inner_length_beyond_the_buffer_is_truncated_not_panic() {
    // Response advertising a 1000-byte segment with 5 bytes behind it.
    let mut payload = vec![TAG_RESPONSE, 1];
    payload.extend_from_slice(&1000u32.to_be_bytes());
    payload.extend_from_slice(&[1, 2, 3, 4, 5]);
    assert_eq!(WireMessage::decode(&payload), Err(CodecError::Truncated));

    // Inner length beyond MAX_FRAME is the size error even when the
    // buffer is also short.
    let mut payload = vec![TAG_RESPONSE, 1];
    payload.extend_from_slice(&((MAX_FRAME + 1) as u32).to_be_bytes());
    assert_eq!(
        WireMessage::decode(&payload),
        Err(CodecError::FrameTooLarge(MAX_FRAME + 1))
    );

    // A string length prefix larger than the buffer: same discipline.
    let mut payload = vec![1u8]; // TAG_CHALLENGE
    payload.extend_from_slice(&((MAX_FRAME + 1) as u32).to_be_bytes());
    assert_eq!(
        WireMessage::decode(&payload),
        Err(CodecError::FrameTooLarge(MAX_FRAME + 1))
    );
}

#[test]
fn live_server_survives_hostile_prefix_and_keeps_serving() {
    let server = ProverServer::spawn(store_with("f", 4), Duration::ZERO).expect("bind");

    // Hostile connection: advertise MAX_FRAME + 1 and dribble garbage.
    {
        let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
        raw.write_all(&((MAX_FRAME + 1) as u32).to_be_bytes())
            .unwrap();
        raw.write_all(&[0u8; 64]).unwrap();
        raw.flush().unwrap();
        // The server must drop us without answering.
        raw.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let reply = read_frame(&mut raw);
        assert!(reply.is_err(), "server answered a hostile frame: {reply:?}");
    }

    // A fresh, honest connection is completely unaffected.
    let mut client = TcpChallenger::connect(server.addr()).expect("connect");
    let (seg, _) = client.challenge("f", 2).expect("post-attack challenge");
    assert_eq!(seg.unwrap(), vec![2u8; 83]);
    client.bye().unwrap();
}

#[test]
fn boundary_sized_frame_round_trips_through_a_live_server() {
    // The reader's buffered path must accept a frame whose total length
    // sits exactly at 4 + MAX_FRAME without tripping the limit check.
    let server = ProverServer::spawn(store_with("f", 2), Duration::ZERO).expect("bind");
    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    // An unknown-tag frame of maximum size: the server errors the
    // connection (decode fails), but must not panic — and a new
    // connection still works.
    let mut frame = Vec::with_capacity(4 + MAX_FRAME);
    frame.extend_from_slice(&(MAX_FRAME as u32).to_be_bytes());
    frame.push(99); // unknown tag
    frame.extend_from_slice(&vec![0u8; MAX_FRAME - 1]);
    raw.write_all(&frame).unwrap();
    raw.flush().unwrap();
    drop(raw);

    let mut client = TcpChallenger::connect(server.addr()).expect("connect");
    let (seg, _) = client.challenge("f", 1).expect("challenge");
    assert!(seg.is_some());
}

#[test]
fn decode_shared_slices_the_frame_buffer() {
    // The zero-copy receive contract: a decoded segment is a view into
    // the frame allocation, not a copy of it.
    let segment = Bytes::from(vec![0x5au8; 83]);
    let msg = WireMessage::Response {
        segment: Some(segment.clone()),
    };
    let frame = msg.encode();
    let payload = frame.slice(4..);
    let decoded = WireMessage::decode_shared(&payload).expect("decode");
    let WireMessage::Response { segment: Some(got) } = decoded else {
        panic!("wrong variant");
    };
    assert_eq!(got, segment);
    let payload_start = payload.as_ptr() as usize;
    let got_start = got.as_ptr() as usize;
    assert!(
        got_start >= payload_start && got_start + got.len() <= payload_start + payload.len(),
        "decoded segment must alias the frame buffer"
    );
}

#[test]
fn encode_parts_does_not_copy_the_segment() {
    let segment = Bytes::from(vec![0x77u8; 83]);
    let msg = WireMessage::Response {
        segment: Some(segment.clone()),
    };
    let (head, tail) = msg.encode_parts();
    let tail = tail.expect("segment response has a tail");
    assert!(
        tail.aliases(&segment),
        "encode_parts must hand back the same allocation"
    );
    // head ‖ tail is exactly the contiguous encoding.
    let mut whole = head.to_vec();
    whole.extend_from_slice(&tail);
    assert_eq!(whole, msg.encode().to_vec());
}
