//! The reactor's reason to exist: connection counts far beyond
//! thread-per-connection reach, held in O(connections) memory with no
//! per-connection threads.
//!
//! This test lives in its own integration-test binary (own process) on
//! purpose: it spends nearly the whole file-descriptor budget — each
//! idle connection costs two fds here, client end and server end — and
//! must not starve unrelated tests sharing a process.

use bytes::Bytes;
use geoproof_wire::tcp::SegmentStore;
use geoproof_wire::{MuxProverServer, TcpChallenger};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Threads currently in this process (Linux `/proc`; the reactor is
/// Linux-only anyway).
fn thread_count() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

#[test]
fn ten_thousand_idle_connections_no_threads() {
    let store: SegmentStore = Arc::new(Mutex::new(HashMap::new()));
    store
        .lock()
        .insert("f".to_owned(), vec![Bytes::from(vec![7u8; 83]); 4]);
    let server = match MuxProverServer::spawn_reactor(store, Duration::ZERO) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::Unsupported => return,
        Err(e) => panic!("spawn_reactor: {e}"),
    };
    let addr = server.addr();

    // Both connection ends live in this process: budget 2 fds per
    // connection out of the (raised) descriptor limit, with headroom
    // for the runtime's own fds.
    let limit = geoproof_wire::raise_nofile_limit().unwrap_or(1024);
    let target = (10_000u64).min(limit.saturating_sub(400) / 2) as usize;
    assert!(
        target >= 2_000,
        "fd limit {limit} too low to say anything meaningful"
    );

    let threads_before = thread_count();
    let mut idle = Vec::with_capacity(target);
    for i in 0..target {
        match TcpStream::connect(addr) {
            Ok(s) => idle.push(s),
            Err(e) => panic!("connect #{i} failed: {e}"),
        }
        // Pace the flood against the accept loop: outrunning it
        // overflows the listen backlog, and the kernel's SYN
        // retransmit backoff (seconds) then dominates the test.
        if i % 128 == 127 {
            for _ in 0..1000 {
                if server.stats().connections + 64 > i as u64 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    // Let the accept loop drain the backlog fully.
    for _ in 0..500 {
        if server.stats().connections >= target as u64 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        server.stats().connections,
        target as u64,
        "reactor did not accept the whole flood"
    );

    // No per-connection threads: the thread count is what it was before
    // the flood (give or take test-harness noise), not O(connections).
    if let (Some(before), Some(after)) = (threads_before, thread_count()) {
        assert!(
            after <= before + 4,
            "thread count grew {before} -> {after} under {target} idle connections"
        );
    }

    // The loop still serves actual work promptly while holding them.
    let mut c = TcpChallenger::connect(addr).unwrap();
    let (seg, rtt) = c.challenge("f", 0).unwrap();
    assert_eq!(seg.unwrap(), vec![7u8; 83]);
    assert!(
        rtt < Duration::from_secs(2),
        "active audit starved by idle flood: {rtt:?}"
    );
    c.bye().unwrap();

    // And the idle sockets are really wired into the event loop, not
    // parked in a backlog: a sample of them can run a challenge.
    use std::io::Write;
    for s in idle.iter_mut().step_by(target / 16) {
        let frame = geoproof_wire::codec::WireMessage::Challenge {
            file_id: "f".to_owned(),
            index: 1,
        }
        .encode();
        s.write_all(&frame).unwrap();
        let reply = geoproof_wire::read_frame(s).unwrap();
        assert!(matches!(
            reply,
            geoproof_wire::WireMessage::Response { segment: Some(_) }
        ));
    }
    drop(idle);
}
