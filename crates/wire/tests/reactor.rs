//! The reactor serving path must behave exactly like the threaded path
//! it replaces: same answers, same session accounting, same shutdown
//! guarantees. These tests mirror the threaded suites in
//! `src/tcp.rs`/`src/mux.rs` against the `spawn_reactor*` constructors,
//! plus reactor-only properties (slow-loris immunity, write-backlog
//! cutoff).

use bytes::Bytes;
use geoproof_wire::codec::{read_frame, write_frame, WireMessage};
use geoproof_wire::tcp::SegmentStore;
use geoproof_wire::{MuxProverServer, ProverServer, TcpChallenger, MAX_SESSIONS_PER_CONNECTION};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn store_with(files: &[(&str, usize)]) -> SegmentStore {
    let store: SegmentStore = Arc::new(Mutex::new(HashMap::new()));
    for &(fid, n) in files {
        store.lock().insert(
            fid.to_owned(),
            (0..n).map(|i| Bytes::from(vec![i as u8; 83])).collect(),
        );
    }
    store
}

/// The whole suite is a no-op on targets without the epoll backend.
fn unsupported(e: &std::io::Error) -> bool {
    e.kind() == std::io::ErrorKind::Unsupported
}

#[test]
fn plain_reactor_serves_segments_over_tcp() {
    let server = match ProverServer::spawn_reactor(store_with(&[("f", 10)]), Duration::ZERO) {
        Ok(s) => s,
        Err(e) if unsupported(&e) => return,
        Err(e) => panic!("spawn_reactor: {e}"),
    };
    let mut client = TcpChallenger::connect(server.addr()).expect("connect");
    for idx in [0u64, 5, 9] {
        let (seg, rtt) = client.challenge("f", idx).expect("challenge");
        assert_eq!(seg.unwrap(), vec![idx as u8; 83]);
        assert!(rtt < Duration::from_secs(1));
    }
    // Unknown file/index answered with None, like the threaded path.
    assert!(client.challenge("f", 99).unwrap().0.is_none());
    assert!(client.challenge("ghost", 0).unwrap().0.is_none());
    client.bye().unwrap();
}

#[test]
fn reactor_service_delay_runs_on_timers_and_shows_in_rtt() {
    let fast = match ProverServer::spawn_reactor(store_with(&[("f", 3)]), Duration::ZERO) {
        Ok(s) => s,
        Err(e) if unsupported(&e) => return,
        Err(e) => panic!("{e}"),
    };
    let slow =
        ProverServer::spawn_reactor(store_with(&[("f", 3)]), Duration::from_millis(30)).unwrap();
    let mut cf = TcpChallenger::connect(fast.addr()).unwrap();
    let mut cs = TcpChallenger::connect(slow.addr()).unwrap();
    let (_, rf) = cf.challenge("f", 0).unwrap();
    let (_, rs) = cs.challenge("f", 0).unwrap();
    assert!(
        rs >= rf + Duration::from_millis(20),
        "fast {rf:?}, slow {rs:?}"
    );
}

#[test]
fn reactor_mux_multiplexes_sessions_across_connections_and_files() {
    let server =
        match MuxProverServer::spawn_reactor(store_with(&[("a", 8), ("b", 8)]), Duration::ZERO) {
            Ok(s) => s,
            Err(e) if unsupported(&e) => return,
            Err(e) => panic!("{e}"),
        };
    let addr = server.addr();
    let clients: Vec<TcpChallenger> = (0..4)
        .map(|_| {
            let mut c = TcpChallenger::connect(addr).unwrap();
            for i in 0..8u64 {
                let fid = if i % 2 == 0 { "a" } else { "b" };
                let (seg, _) = c.challenge(fid, i % 8).unwrap();
                assert!(seg.is_some());
            }
            c
        })
        .collect();
    let stats = server.stats();
    assert_eq!(stats.connections, 4);
    assert_eq!(stats.sessions, 8);
    assert_eq!(stats.challenges, 32);
    let per_session = server.sessions();
    assert_eq!(per_session.len(), 8);
    assert!(per_session.iter().all(|(_, s)| s.challenges == 4));
    assert!(per_session.iter().all(|(_, s)| s.hits == 4));
    drop(clients);
    // Closed connections release their per-session state, totals stay.
    for _ in 0..200 {
        if server.sessions().is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(server.sessions().is_empty());
    assert_eq!(server.stats().challenges, 32);
    assert_eq!(server.stats().sessions, 8);
}

#[test]
fn reactor_mux_stats_stay_monotone_across_reconnects() {
    let server = match MuxProverServer::spawn_reactor(store_with(&[("f", 4)]), Duration::ZERO) {
        Ok(s) => s,
        Err(e) if unsupported(&e) => return,
        Err(e) => panic!("{e}"),
    };
    let addr = server.addr();
    for round in 0..3u64 {
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        write_frame(
            &mut raw,
            &WireMessage::StartAudit {
                file_id: "f".to_owned(),
                n_segments: 4,
                k: 3,
                nonce: [0u8; 32],
            },
        )
        .unwrap();
        for i in 0..3u64 {
            write_frame(
                &mut raw,
                &WireMessage::Challenge {
                    file_id: "f".to_owned(),
                    index: i,
                },
            )
            .unwrap();
            let reply = read_frame(&mut raw).unwrap();
            assert!(matches!(reply, WireMessage::Response { segment: Some(_) }));
        }
        write_frame(&mut raw, &WireMessage::Bye).unwrap();
        drop(raw);
        for _ in 0..200 {
            if server.stats().sessions_complete == round + 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let stats = server.stats();
        assert_eq!(stats.hits, (round + 1) * 3, "hits lost at connection close");
        assert_eq!(stats.sessions_complete, round + 1);
        assert_eq!(stats.sessions_incomplete, 0);
    }
}

#[test]
fn reactor_mux_refuses_phantom_sessions_and_caps_per_connection() {
    // Hostile-input behaviour must match the threaded path: unknown
    // files are answered but never open sessions, and one connection
    // cannot hold more than MAX_SESSIONS_PER_CONNECTION.
    let files: Vec<String> = (0..MAX_SESSIONS_PER_CONNECTION + 8)
        .map(|i| format!("file-{i:03}"))
        .collect();
    let named: Vec<(&str, usize)> = files.iter().map(|f| (f.as_str(), 1)).collect();
    let server = match MuxProverServer::spawn_reactor(store_with(&named), Duration::ZERO) {
        Ok(s) => s,
        Err(e) if unsupported(&e) => return,
        Err(e) => panic!("{e}"),
    };
    let mut c = TcpChallenger::connect(server.addr()).unwrap();
    for i in 0..50u64 {
        let (seg, _) = c.challenge(&format!("phantom-{i}"), 0).unwrap();
        assert!(seg.is_none());
    }
    assert_eq!(server.stats().sessions, 0, "phantom files opened sessions");
    for f in &files {
        let (seg, _) = c.challenge(f, 0).unwrap();
        assert!(seg.is_some(), "{f} must still be served past the cap");
    }
    assert_eq!(server.stats().sessions, MAX_SESSIONS_PER_CONNECTION);
    c.bye().unwrap();
}

#[test]
fn reactor_mux_serves_dynamic_flow() {
    use geoproof_por::dynamic::{tag_segment, verify_challenge, DynamicOwner, ProvenSegment};
    use geoproof_por::keys::PorKeys;

    let keys = PorKeys::derive(b"reactor-dyn", "d");
    let tagged: Vec<Bytes> = (0..6u64)
        .map(|i| Bytes::from(tag_segment(&keys, "d", i, &[i as u8; 30])))
        .collect();
    let server = match MuxProverServer::spawn_reactor(store_with(&[]), Duration::ZERO) {
        Ok(s) => s,
        Err(e) if unsupported(&e) => return,
        Err(e) => panic!("{e}"),
    };
    let d0 = server.put_dynamic("d", tagged.clone());
    let mut owner = DynamicOwner::from_tagged("d", &tagged);
    assert_eq!(owner.digest(), d0);

    let mut c = TcpChallenger::connect(server.addr()).unwrap();
    let (served, _) = c.dyn_challenge("d", 2).unwrap();
    let (segment, proof) = served.expect("segment present");
    let proven = ProvenSegment { segment, proof };
    assert!(verify_challenge(&d0, "d", 2, &proven, &keys));
    assert!(c.dyn_challenge("ghost", 0).unwrap().0.is_none());

    let (new_tagged, expected) = owner.tag_update(2, b"fresh", &keys).unwrap();
    let ack = c
        .update("d", 2, Bytes::from(new_tagged), [0u8; 64])
        .unwrap();
    assert_eq!(ack, Some(expected));
    let (appended, expected) = owner.tag_append(b"seventh", &keys);
    let ack = c.append("d", Bytes::from(appended), [0u8; 64]).unwrap();
    assert_eq!(ack, Some(expected));
    let (served, _) = c.dyn_challenge("d", 6).unwrap();
    let (segment, proof) = served.expect("appended segment");
    let proven = ProvenSegment { segment, proof };
    assert!(verify_challenge(&expected, "d", 6, &proven, &keys));
    c.bye().unwrap();
}

#[test]
fn reactor_shutdown_is_not_held_hostage_by_a_slow_loris_client() {
    // Port of the threaded slow-loris regression: a client dribbling
    // bytes that never complete a frame must not delay shutdown. On the
    // reactor path this is structural — the waker interrupts the poll
    // and the event loop drops every connection state machine — but the
    // guarantee still deserves a pin.
    let mut server = match MuxProverServer::spawn_reactor(store_with(&[("f", 4)]), Duration::ZERO) {
        Ok(s) => s,
        Err(e) if unsupported(&e) => return,
        Err(e) => panic!("{e}"),
    };
    let addr = server.addr();
    let dribbling = Arc::new(AtomicBool::new(true));
    let keep_going = dribbling.clone();
    let loris = std::thread::spawn(move || {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        // A frame header promising far more bytes than we ever send.
        let _ = raw.write_all(&1000u32.to_be_bytes());
        while keep_going.load(Ordering::Relaxed) {
            if raw.write_all(&[0u8]).is_err() {
                break;
            }
            let _ = raw.flush();
            std::thread::sleep(Duration::from_millis(20));
        }
    });
    std::thread::sleep(Duration::from_millis(100)); // let it dribble
    let start = std::time::Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "shutdown hung on the dribbling connection"
    );
    dribbling.store(false, Ordering::Relaxed);
    loris.join().unwrap();
}

#[test]
fn reactor_shutdown_returns_promptly_with_idle_connections() {
    let mut server = match MuxProverServer::spawn_reactor(store_with(&[("f", 4)]), Duration::ZERO) {
        Ok(s) => s,
        Err(e) if unsupported(&e) => return,
        Err(e) => panic!("{e}"),
    };
    let addr = server.addr();
    let idle: Vec<_> = (0..32)
        .map(|_| TcpChallenger::connect(addr).unwrap())
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    let start = std::time::Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "reactor shutdown must not wait on idle connections"
    );
    drop(idle);
}

#[test]
fn reactor_cuts_off_a_client_that_never_reads_its_responses() {
    // A peer that pipelines challenges while never reading replies
    // grows the server-side write queue; past MAX_WRITE_BACKLOG (1 MiB)
    // the reactor drops the connection instead of buffering without
    // bound. The threaded path "handles" this by blocking the
    // connection's own thread — the reactor must not let one sink stall
    // or bloat the shared loop.
    let store: SegmentStore = Arc::new(Mutex::new(HashMap::new()));
    store.lock().insert(
        "big".to_owned(),
        (0..4)
            .map(|_| Bytes::from(vec![0xabu8; 16 * 1024]))
            .collect(),
    );
    let server = match MuxProverServer::spawn_reactor(store.clone(), Duration::ZERO) {
        Ok(s) => s,
        Err(e) if unsupported(&e) => return,
        Err(e) => panic!("{e}"),
    };
    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    raw.set_nodelay(true).unwrap();
    raw.set_write_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    // ~16 KiB per response; a few hundred unread responses blow the cap
    // even with generous kernel socket buffering.
    let challenge = WireMessage::Challenge {
        file_id: "big".to_owned(),
        index: 0,
    };
    let mut cut_off = false;
    for _ in 0..2000 {
        if write_frame(&mut raw, &challenge).is_err() {
            cut_off = true; // reset by the server mid-write
            break;
        }
    }
    if !cut_off {
        // Writes may all have landed in kernel buffers; the drop then
        // shows up as EOF/reset on read. Count what arrives: a server
        // that buffered everything would deliver all ~32 MiB of
        // responses, a capped one far less.
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut sink = [0u8; 65536];
        let mut received = 0usize;
        use std::io::Read;
        loop {
            match raw.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(n) => received += n,
            }
        }
        cut_off = received < 24 * 1024 * 1024;
    }
    assert!(cut_off, "server never cut off the non-reading client");
    // The loop itself survived: a well-behaved client is still served.
    let mut c = TcpChallenger::connect(server.addr()).unwrap();
    let (seg, _) = c.challenge("big", 1).unwrap();
    assert_eq!(seg.unwrap().len(), 16 * 1024);
    c.bye().unwrap();
}
