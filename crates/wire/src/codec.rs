//! Length-prefixed wire encoding for GeoProof protocol messages.
//!
//! Frames are `u32 length ‖ u8 tag ‖ payload`, with all integers
//! big-endian and all variable-length fields length-prefixed — the same
//! canonical-encoding discipline as the signed transcript, so nothing
//! depends on parser lenience.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use geoproof_por::dynamic::DynamicDigest;
use geoproof_por::merkle::MerkleProof;

/// Maximum accepted frame size (1 MiB) — segments are ~83 bytes, so
/// anything near this is hostile.
pub const MAX_FRAME: usize = 1 << 20;

/// A protocol message on the verifier↔prover (and TPA↔verifier) links.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireMessage {
    /// Verifier → prover: fetch segment `index` of `file_id`.
    Challenge {
        /// File identifier.
        file_id: String,
        /// Segment index.
        index: u64,
    },
    /// Prover → verifier: the segment, or `None` when missing.
    Response {
        /// Segment bytes with embedded tag — a refcounted view, so a
        /// response built from a storage arena (and a response decoded
        /// from a frame buffer) carries no payload copy.
        segment: Option<Bytes>,
    },
    /// TPA → verifier: start an audit (ñ, k, nonce as in Fig. 5).
    StartAudit {
        /// File identifier.
        file_id: String,
        /// Total segments ñ.
        n_segments: u64,
        /// Challenge count k.
        k: u32,
        /// Audit nonce N.
        nonce: [u8; 32],
    },
    /// Graceful connection close.
    Bye,
    /// Verifier → prover (dynamic flow): fetch segment `index` of
    /// `file_id` together with its Merkle membership proof.
    DynChallenge {
        /// File identifier.
        file_id: String,
        /// Segment index.
        index: u64,
    },
    /// Prover → verifier (dynamic flow): the tagged segment plus its
    /// membership proof, or `None` when the file/index is unknown.
    DynResponse {
        /// Segment bytes (a refcounted view — decoded responses alias
        /// the frame buffer) and the proof tying them to the digest.
        segment: Option<(Bytes, MerkleProof)>,
    },
    /// Owner → prover: replace segment `index` of `file_id` with the
    /// already-tagged bytes (the owner tags — the prover holds no keys).
    Update {
        /// File identifier.
        file_id: String,
        /// Segment index to replace.
        index: u64,
        /// The new tagged segment (`body ‖ τ`).
        tagged: Bytes,
        /// Owner Schnorr signature over
        /// [`geoproof_por::dynamic::owner_authorization`] — the server
        /// refuses mutations of owner-keyed files without it.
        sig: [u8; 64],
    },
    /// Owner → prover: append an already-tagged segment to `file_id`.
    Append {
        /// File identifier.
        file_id: String,
        /// The new tagged segment (`body ‖ τ`).
        tagged: Bytes,
        /// Owner Schnorr signature authorising the append (over the
        /// appended index = current length).
        sig: [u8; 64],
    },
    /// Prover → owner: the digest after an `Update`/`Append`, or `None`
    /// when the file was unknown or the index out of range. The owner
    /// compares it against its independently derived digest — a mismatch
    /// means the provider's state has diverged.
    UpdateAck {
        /// The provider's post-operation digest.
        new_digest: Option<DynamicDigest>,
    },
}

/// Decoding errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Frame advertises more than [`MAX_FRAME`] bytes.
    FrameTooLarge(usize),
    /// Payload ended before the advertised length.
    Truncated,
    /// Unknown message tag.
    BadTag(u8),
    /// A string field was not UTF-8.
    BadString,
    /// A Merkle proof field failed its strict canonical parse.
    BadProof,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            CodecError::Truncated => write!(f, "truncated frame"),
            CodecError::BadTag(t) => write!(f, "unknown message tag {t}"),
            CodecError::BadString => write!(f, "invalid UTF-8 in string field"),
            CodecError::BadProof => write!(f, "malformed Merkle proof field"),
        }
    }
}

impl std::error::Error for CodecError {}

const TAG_CHALLENGE: u8 = 1;
const TAG_RESPONSE: u8 = 2;
const TAG_START_AUDIT: u8 = 3;
const TAG_BYE: u8 = 4;
const TAG_DYN_CHALLENGE: u8 = 5;
const TAG_DYN_RESPONSE: u8 = 6;
const TAG_UPDATE: u8 = 7;
const TAG_APPEND: u8 = 8;
const TAG_UPDATE_ACK: u8 = 9;

impl WireMessage {
    /// Encodes the message as one contiguous frame (for tests and
    /// callers that want a single buffer). The hot path is
    /// [`write_frame`], which uses [`WireMessage::encode_parts`] to skip
    /// copying segment payloads into the frame.
    pub fn encode(&self) -> Bytes {
        let (mut head, tail) = self.encode_parts();
        if let Some(tail) = tail {
            head.extend_from_slice(&tail);
        }
        head.freeze()
    }

    /// Encodes into `(head, tail)`: `head` is the length prefix plus all
    /// fixed fields; `tail`, when present, is the segment payload as a
    /// refcounted view that was **not** copied. Writing `head` then
    /// `tail` emits exactly the [`WireMessage::encode`] frame.
    pub fn encode_parts(&self) -> (BytesMut, Option<Bytes>) {
        let mut payload = BytesMut::new();
        let mut tail: Option<Bytes> = None;
        match self {
            WireMessage::Challenge { file_id, index } => {
                payload.put_u8(TAG_CHALLENGE);
                put_str(&mut payload, file_id);
                payload.put_u64(*index);
            }
            WireMessage::Response { segment } => {
                payload.put_u8(TAG_RESPONSE);
                match segment {
                    Some(bytes) => {
                        payload.put_u8(1);
                        payload.put_u32(bytes.len() as u32);
                        tail = Some(bytes.clone());
                    }
                    None => payload.put_u8(0),
                }
            }
            WireMessage::StartAudit {
                file_id,
                n_segments,
                k,
                nonce,
            } => {
                payload.put_u8(TAG_START_AUDIT);
                put_str(&mut payload, file_id);
                payload.put_u64(*n_segments);
                payload.put_u32(*k);
                payload.put_slice(nonce);
            }
            WireMessage::Bye => payload.put_u8(TAG_BYE),
            WireMessage::DynChallenge { file_id, index } => {
                payload.put_u8(TAG_DYN_CHALLENGE);
                put_str(&mut payload, file_id);
                payload.put_u64(*index);
            }
            WireMessage::DynResponse { segment } => {
                payload.put_u8(TAG_DYN_RESPONSE);
                match segment {
                    Some((bytes, proof)) => {
                        payload.put_u8(1);
                        let proof_bytes = proof.to_bytes();
                        payload.put_u32(proof_bytes.len() as u32);
                        payload.put_slice(&proof_bytes);
                        payload.put_u32(bytes.len() as u32);
                        tail = Some(bytes.clone());
                    }
                    None => payload.put_u8(0),
                }
            }
            WireMessage::Update {
                file_id,
                index,
                tagged,
                sig,
            } => {
                payload.put_u8(TAG_UPDATE);
                put_str(&mut payload, file_id);
                payload.put_u64(*index);
                payload.put_slice(sig);
                payload.put_u32(tagged.len() as u32);
                tail = Some(tagged.clone());
            }
            WireMessage::Append {
                file_id,
                tagged,
                sig,
            } => {
                payload.put_u8(TAG_APPEND);
                put_str(&mut payload, file_id);
                payload.put_slice(sig);
                payload.put_u32(tagged.len() as u32);
                tail = Some(tagged.clone());
            }
            WireMessage::UpdateAck { new_digest } => {
                payload.put_u8(TAG_UPDATE_ACK);
                match new_digest {
                    Some(digest) => {
                        payload.put_u8(1);
                        payload.put_slice(&digest.root);
                        payload.put_u64(digest.segments);
                    }
                    None => payload.put_u8(0),
                }
            }
        }
        let tail_len = tail.as_ref().map_or(0, Bytes::len);
        // Head capacity deliberately excludes the tail: the tail is
        // written from its own buffer, so reserving for it here would be
        // a payload-sized allocation per frame (the bench's allocation
        // audit pins this).
        let mut frame = BytesMut::with_capacity(4 + payload.len());
        frame.put_u32((payload.len() + tail_len) as u32);
        frame.extend_from_slice(&payload);
        (frame, tail)
    }

    /// Decodes one frame's payload (after the length prefix was
    /// consumed), copying any segment payload into a fresh buffer. The
    /// zero-copy receive path is [`WireMessage::decode_shared`].
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on malformed input.
    pub fn decode(payload: &[u8]) -> Result<WireMessage, CodecError> {
        Self::decode_shared(&Bytes::copy_from_slice(payload))
    }

    /// Decodes one frame's payload held as a shared buffer; a segment in
    /// a `Response` is returned as a *slice of that buffer* (refcount
    /// bump, no payload copy).
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on malformed input.
    pub fn decode_shared(payload: &Bytes) -> Result<WireMessage, CodecError> {
        let mut buf: &[u8] = payload;
        if buf.is_empty() {
            return Err(CodecError::Truncated);
        }
        let tag = buf.get_u8();
        match tag {
            TAG_CHALLENGE => {
                let file_id = get_str(&mut buf)?;
                if buf.remaining() < 8 {
                    return Err(CodecError::Truncated);
                }
                Ok(WireMessage::Challenge {
                    file_id,
                    index: buf.get_u64(),
                })
            }
            TAG_RESPONSE => {
                if buf.remaining() < 1 {
                    return Err(CodecError::Truncated);
                }
                match buf.get_u8() {
                    0 => Ok(WireMessage::Response { segment: None }),
                    // Slice the frame buffer instead of copying out.
                    _ => Ok(WireMessage::Response {
                        segment: Some(get_shared_bytes(payload, &mut buf)?),
                    }),
                }
            }
            TAG_START_AUDIT => {
                let file_id = get_str(&mut buf)?;
                if buf.remaining() < 8 + 4 + 32 {
                    return Err(CodecError::Truncated);
                }
                let n_segments = buf.get_u64();
                let k = buf.get_u32();
                let mut nonce = [0u8; 32];
                nonce.copy_from_slice(&buf[..32]);
                Ok(WireMessage::StartAudit {
                    file_id,
                    n_segments,
                    k,
                    nonce,
                })
            }
            TAG_BYE => Ok(WireMessage::Bye),
            TAG_DYN_CHALLENGE => {
                let file_id = get_str(&mut buf)?;
                if buf.remaining() < 8 {
                    return Err(CodecError::Truncated);
                }
                Ok(WireMessage::DynChallenge {
                    file_id,
                    index: buf.get_u64(),
                })
            }
            TAG_DYN_RESPONSE => {
                if buf.remaining() < 1 {
                    return Err(CodecError::Truncated);
                }
                match buf.get_u8() {
                    0 => Ok(WireMessage::DynResponse { segment: None }),
                    _ => {
                        if buf.remaining() < 4 {
                            return Err(CodecError::Truncated);
                        }
                        let proof_len = buf.get_u32() as usize;
                        if proof_len > MAX_FRAME {
                            return Err(CodecError::FrameTooLarge(proof_len));
                        }
                        if buf.remaining() < proof_len {
                            return Err(CodecError::Truncated);
                        }
                        let proof = MerkleProof::from_bytes(&buf[..proof_len])
                            .ok_or(CodecError::BadProof)?;
                        buf.advance(proof_len);
                        let segment = get_shared_bytes(payload, &mut buf)?;
                        Ok(WireMessage::DynResponse {
                            segment: Some((segment, proof)),
                        })
                    }
                }
            }
            TAG_UPDATE => {
                let file_id = get_str(&mut buf)?;
                if buf.remaining() < 8 + 64 {
                    return Err(CodecError::Truncated);
                }
                let index = buf.get_u64();
                let mut sig = [0u8; 64];
                sig.copy_from_slice(&buf[..64]);
                buf.advance(64);
                let tagged = get_shared_bytes(payload, &mut buf)?;
                Ok(WireMessage::Update {
                    file_id,
                    index,
                    tagged,
                    sig,
                })
            }
            TAG_APPEND => {
                let file_id = get_str(&mut buf)?;
                if buf.remaining() < 64 {
                    return Err(CodecError::Truncated);
                }
                let mut sig = [0u8; 64];
                sig.copy_from_slice(&buf[..64]);
                buf.advance(64);
                let tagged = get_shared_bytes(payload, &mut buf)?;
                Ok(WireMessage::Append {
                    file_id,
                    tagged,
                    sig,
                })
            }
            TAG_UPDATE_ACK => {
                if buf.remaining() < 1 {
                    return Err(CodecError::Truncated);
                }
                match buf.get_u8() {
                    0 => Ok(WireMessage::UpdateAck { new_digest: None }),
                    _ => {
                        if buf.remaining() < 32 + 8 {
                            return Err(CodecError::Truncated);
                        }
                        let mut root = [0u8; 32];
                        root.copy_from_slice(&buf[..32]);
                        buf.advance(32);
                        Ok(WireMessage::UpdateAck {
                            new_digest: Some(DynamicDigest {
                                root,
                                segments: buf.get_u64(),
                            }),
                        })
                    }
                }
            }
            t => Err(CodecError::BadTag(t)),
        }
    }
}

/// Reads a `u32`-prefixed byte field as a zero-copy slice of the shared
/// frame buffer (the pattern `Response` uses for its segment payload).
fn get_shared_bytes(payload: &Bytes, buf: &mut &[u8]) -> Result<Bytes, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    let len = buf.get_u32() as usize;
    if len > MAX_FRAME {
        return Err(CodecError::FrameTooLarge(len));
    }
    if buf.remaining() < len {
        return Err(CodecError::Truncated);
    }
    let start = payload.len() - buf.remaining();
    buf.advance(len);
    Ok(payload.slice(start..start + len))
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    let len = buf.get_u32() as usize;
    if len > MAX_FRAME {
        return Err(CodecError::FrameTooLarge(len));
    }
    if buf.remaining() < len {
        return Err(CodecError::Truncated);
    }
    let s = String::from_utf8(buf[..len].to_vec()).map_err(|_| CodecError::BadString)?;
    buf.advance(len);
    Ok(s)
}

/// Reads one complete frame from a blocking reader.
///
/// # Errors
///
/// I/O errors pass through; malformed frames become
/// `io::ErrorKind::InvalidData`.
pub fn read_frame<R: std::io::Read>(reader: &mut R) -> std::io::Result<WireMessage> {
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            CodecError::FrameTooLarge(len),
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    WireMessage::decode_shared(&Bytes::from(payload))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Writes one frame to a blocking writer.
///
/// # Errors
///
/// I/O errors pass through.
pub fn write_frame<W: std::io::Write>(writer: &mut W, msg: &WireMessage) -> std::io::Result<()> {
    let (head, tail) = msg.encode_parts();
    writer.write_all(&head)?;
    if let Some(tail) = tail {
        writer.write_all(&tail)?;
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: WireMessage) {
        let frame = msg.encode();
        let payload = &frame[4..];
        assert_eq!(WireMessage::decode(payload), Ok(msg));
    }

    #[test]
    fn roundtrip_all_variants() {
        roundtrip(WireMessage::Challenge {
            file_id: "f".into(),
            index: 42,
        });
        roundtrip(WireMessage::Response {
            segment: Some(vec![1, 2, 3].into()),
        });
        roundtrip(WireMessage::Response { segment: None });
        roundtrip(WireMessage::StartAudit {
            file_id: "audit-file".into(),
            n_segments: 1_000_000,
            k: 1000,
            nonce: [7u8; 32],
        });
        roundtrip(WireMessage::Bye);
        roundtrip(WireMessage::DynChallenge {
            file_id: "dyn".into(),
            index: 9,
        });
        roundtrip(WireMessage::DynResponse { segment: None });
        roundtrip(WireMessage::DynResponse {
            segment: Some((vec![5u8; 40].into(), sample_proof())),
        });
        roundtrip(WireMessage::Update {
            file_id: "dyn".into(),
            index: 3,
            tagged: vec![7u8; 24].into(),
            sig: [0x17u8; 64],
        });
        roundtrip(WireMessage::Append {
            file_id: "dyn".into(),
            tagged: vec![8u8; 24].into(),
            sig: [0x18u8; 64],
        });
        roundtrip(WireMessage::UpdateAck { new_digest: None });
        roundtrip(WireMessage::UpdateAck {
            new_digest: Some(DynamicDigest {
                root: [0xabu8; 32],
                segments: 77,
            }),
        });
    }

    fn sample_proof() -> MerkleProof {
        MerkleProof {
            index: 9,
            siblings: vec![([1u8; 32], true), ([2u8; 32], false)],
        }
    }

    #[test]
    fn dyn_response_decode_is_zero_copy_and_rejects_bad_proofs() {
        let msg = WireMessage::DynResponse {
            segment: Some((vec![0x5au8; 64].into(), sample_proof())),
        };
        let frame = msg.encode();
        let payload = frame.slice(4..);
        let decoded = WireMessage::decode_shared(&payload).expect("decode");
        let WireMessage::DynResponse {
            segment: Some((segment, proof)),
        } = decoded
        else {
            panic!("wrong variant");
        };
        assert_eq!(proof, sample_proof());
        // The segment is a window into the frame buffer, not a copy.
        let off = payload.len() - 64;
        assert!(
            segment.aliases(&payload.slice(off..off + 64)),
            "decoded dyn segment must alias the frame buffer"
        );
        // A corrupted direction flag inside the proof is BadProof, not a
        // silent mis-parse.
        let mut raw = frame[4..].to_vec();
        // proof bytes start after tag(1) + present(1) + u32 len: index..
        let dir_at = 1 + 1 + 4 + 8 + 2 + 32; // first sibling's flag
        raw[dir_at] = 9;
        assert_eq!(
            WireMessage::decode(&raw),
            Err(CodecError::BadProof),
            "bad proof flag must be rejected"
        );
    }

    #[test]
    fn dyn_frames_reject_truncation_everywhere() {
        for msg in [
            WireMessage::DynChallenge {
                file_id: "f".into(),
                index: 2,
            },
            WireMessage::DynResponse {
                segment: Some((vec![1u8; 10].into(), sample_proof())),
            },
            WireMessage::Update {
                file_id: "f".into(),
                index: 1,
                tagged: vec![2u8; 10].into(),
                sig: [0x21u8; 64],
            },
            WireMessage::Append {
                file_id: "f".into(),
                tagged: vec![3u8; 10].into(),
                sig: [0x22u8; 64],
            },
            WireMessage::UpdateAck {
                new_digest: Some(DynamicDigest {
                    root: [4u8; 32],
                    segments: 5,
                }),
            },
        ] {
            let frame = msg.encode();
            let payload = &frame[4..];
            for cut in 1..payload.len() {
                let r = WireMessage::decode(&payload[..cut]);
                assert!(r.is_err(), "{msg:?} cut at {cut} decoded to {r:?}");
            }
        }
    }

    #[test]
    fn frame_length_prefix_is_exact() {
        let msg = WireMessage::Challenge {
            file_id: "abc".into(),
            index: 7,
        };
        let frame = msg.encode();
        let advertised = u32::from_be_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(advertised, frame.len() - 4);
    }

    #[test]
    fn decode_rejects_bad_tag() {
        assert_eq!(WireMessage::decode(&[99]), Err(CodecError::BadTag(99)));
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        let msg = WireMessage::StartAudit {
            file_id: "f".into(),
            n_segments: 10,
            k: 5,
            nonce: [1u8; 32],
        };
        let frame = msg.encode();
        let payload = &frame[4..];
        for cut in 1..payload.len() {
            let r = WireMessage::decode(&payload[..cut]);
            assert!(r.is_err(), "cut at {cut} decoded to {r:?}");
        }
    }

    #[test]
    fn decode_rejects_non_utf8() {
        // Challenge with an invalid UTF-8 "string".
        let mut payload = vec![TAG_CHALLENGE];
        payload.extend_from_slice(&2u32.to_be_bytes());
        payload.extend_from_slice(&[0xff, 0xfe]);
        payload.extend_from_slice(&0u64.to_be_bytes());
        assert_eq!(WireMessage::decode(&payload), Err(CodecError::BadString));
    }

    #[test]
    fn stream_read_write_roundtrip() {
        let msgs = vec![
            WireMessage::Challenge {
                file_id: "f".into(),
                index: 1,
            },
            WireMessage::Response {
                segment: Some(vec![9; 83].into()),
            },
            WireMessage::Bye,
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for m in &msgs {
            assert_eq!(&read_frame(&mut cursor).unwrap(), m);
        }
    }

    #[test]
    fn oversized_frame_rejected_by_reader() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }
}
