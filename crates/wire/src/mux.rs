//! Multi-connection prover server with session multiplexing.
//!
//! [`crate::tcp::ProverServer`] answers one stream of challenges and
//! forgets its connections at shutdown. `MuxProverServer` is the
//! production-shaped variant behind `geoproof serve --concurrent`:
//!
//! * many simultaneous connections, each able to interleave challenges
//!   for several audit sessions (a session = one `(connection, file)`
//!   pair, opened implicitly or via a `StartAudit` frame);
//! * a **sharded session table** (per-shard `parking_lot` mutexes keyed
//!   by session), so hot sessions on different shards never contend;
//! * graceful shutdown that joins every connection thread, and aggregate
//!   statistics so operators can see load.

use crate::codec::{write_frame, WireMessage};
use crate::tcp::{store_segments, IdleFrameReader, Polled, SegmentStore};
use bytes::Bytes;
use geoproof_crypto::fnv::Fnv1a;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of shards in the session table. A power of two; sized so a
/// few hundred concurrent sessions rarely share a shard lock.
const SESSION_SHARDS: usize = 16;

/// Identifies one audit session on the server: a connection and the file
/// it is challenging.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SessionKey {
    /// Server-assigned connection number (accept order).
    pub connection: u64,
    /// File under audit.
    pub file_id: String,
}

/// Per-session bookkeeping.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Challenges answered for this session.
    pub challenges: u64,
    /// Challenges that found the segment.
    pub hits: u64,
    /// Announced challenge count k, when the client sent `StartAudit`.
    pub announced_k: Option<u32>,
}

/// Aggregate server statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MuxStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Sessions ever opened (connection × file pairs).
    pub sessions: u64,
    /// Total challenges served.
    pub challenges: u64,
}

/// FNV-1a over the session key — deterministic shard choice (std's
/// `RandomState` would randomise it per process, which makes load
/// investigations unrepeatable).
fn shard_of(key: &SessionKey) -> usize {
    let mut h = Fnv1a::new();
    h.write(&key.connection.to_be_bytes())
        .write(key.file_id.as_bytes());
    (h.finish() as usize) % SESSION_SHARDS
}

/// Sharded session table shared by all connection threads.
#[derive(Debug, Default)]
struct SessionTable {
    shards: [Mutex<HashMap<SessionKey, SessionStats>>; SESSION_SHARDS],
    opened: AtomicU64,
}

impl SessionTable {
    fn with_session<R>(&self, key: &SessionKey, f: impl FnOnce(&mut SessionStats) -> R) -> R {
        let mut shard = self.shards[shard_of(key)].lock();
        let entry = shard.entry(key.clone());
        if matches!(entry, std::collections::hash_map::Entry::Vacant(_)) {
            self.opened.fetch_add(1, Ordering::Relaxed);
        }
        f(entry.or_default())
    }

    fn snapshot(&self) -> Vec<(SessionKey, SessionStats)> {
        let mut all: Vec<(SessionKey, SessionStats)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_by(|a, b| (a.0.connection, &a.0.file_id).cmp(&(b.0.connection, &b.0.file_id)));
        all
    }

    /// Drops every session belonging to a closed connection. Aggregate
    /// counters (`opened`, challenge totals) are unaffected — without
    /// this, a long-running server would grow per-session state without
    /// bound as short-lived audit connections come and go.
    fn evict_connection(&self, conn_id: u64) {
        for shard in &self.shards {
            shard.lock().retain(|k, _| k.connection != conn_id);
        }
    }
}

/// The multi-connection, session-multiplexing prover server.
pub struct MuxProverServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    sessions: Arc<SessionTable>,
    connections: Arc<AtomicU64>,
    challenges: Arc<AtomicU64>,
    store: SegmentStore,
}

impl std::fmt::Debug for MuxProverServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MuxProverServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl MuxProverServer {
    /// Binds to an ephemeral localhost port and starts accepting.
    ///
    /// `service_delay` is added per challenge, as in
    /// [`crate::tcp::ProverServer::spawn`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn spawn(store: SegmentStore, service_delay: Duration) -> std::io::Result<MuxProverServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let sessions = Arc::new(SessionTable::default());
        let connections = Arc::new(AtomicU64::new(0));
        let challenges = Arc::new(AtomicU64::new(0));
        let conn_handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));

        let accept_stop = stop.clone();
        let accept_sessions = sessions.clone();
        let accept_connections = connections.clone();
        let accept_challenges = challenges.clone();
        let accept_conns = conn_handles.clone();
        let accept_store = store.clone();
        let accept_handle = std::thread::spawn(move || {
            while !accept_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let conn_id = accept_connections.fetch_add(1, Ordering::Relaxed);
                        let store = accept_store.clone();
                        let stop = accept_stop.clone();
                        let sessions = accept_sessions.clone();
                        let challenges = accept_challenges.clone();
                        let handle = std::thread::spawn(move || {
                            let _ = serve_mux_connection(
                                stream,
                                conn_id,
                                store,
                                service_delay,
                                stop,
                                sessions.clone(),
                                challenges,
                            );
                            // Connection over: release its session state.
                            sessions.evict_connection(conn_id);
                        });
                        // Reap handles of connections that already
                        // finished, so a long-lived server doesn't hoard
                        // one JoinHandle per connection it ever served.
                        let mut handles = accept_conns.lock();
                        let mut i = 0;
                        while i < handles.len() {
                            if handles[i].is_finished() {
                                let _ = handles.swap_remove(i).join();
                            } else {
                                i += 1;
                            }
                        }
                        handles.push(handle);
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(MuxProverServer {
            addr,
            stop,
            accept_handle: Some(accept_handle),
            conn_handles,
            sessions,
            connections,
            challenges,
            store,
        })
    }

    /// The server's socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replaces a file's segments.
    pub fn put_file(&self, file_id: &str, segments: Vec<Vec<u8>>) {
        self.store
            .lock()
            .insert(file_id.to_owned(), store_segments(segments));
    }

    /// Replaces a file's segments with already-shared views (zero-copy).
    pub fn put_shared(&self, file_id: &str, segments: Vec<Bytes>) {
        self.store.lock().insert(file_id.to_owned(), segments);
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> MuxStats {
        MuxStats {
            connections: self.connections.load(Ordering::Relaxed),
            sessions: self.sessions.opened.load(Ordering::Relaxed),
            challenges: self.challenges.load(Ordering::Relaxed),
        }
    }

    /// Per-session statistics for **live** connections, sorted by
    /// `(connection, file_id)`. A connection's sessions are evicted when
    /// it closes (their totals stay in [`MuxProverServer::stats`]), so
    /// this stays bounded by current concurrency, not server lifetime.
    pub fn sessions(&self) -> Vec<(SessionKey, SessionStats)> {
        self.sessions.snapshot()
    }

    /// Stops accepting, then joins the accept loop **and every
    /// connection thread** (connections notice the stop flag at their
    /// next idle poll; in-flight responses complete first).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = std::mem::take(&mut *self.conn_handles.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for MuxProverServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_mux_connection(
    stream: TcpStream,
    conn_id: u64,
    store: SegmentStore,
    service_delay: Duration,
    stop: Arc<AtomicBool>,
    sessions: Arc<SessionTable>,
    challenges: Arc<AtomicU64>,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = stream;
    let mut frames = IdleFrameReader::new();
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        let msg = match frames.poll(&mut reader, &stop) {
            Ok(Polled::Frame(m)) => m,
            Ok(Polled::Idle) => continue,
            Ok(Polled::Closed) | Err(_) => return Ok(()),
        };
        match msg {
            WireMessage::StartAudit { file_id, k, .. } => {
                let key = SessionKey {
                    connection: conn_id,
                    file_id,
                };
                sessions.with_session(&key, |s| s.announced_k = Some(k));
            }
            WireMessage::Challenge { file_id, index } => {
                if !service_delay.is_zero() {
                    std::thread::sleep(service_delay);
                }
                let segment = store
                    .lock()
                    .get(&file_id)
                    .and_then(|segs| segs.get(index as usize))
                    .cloned();
                let key = SessionKey {
                    connection: conn_id,
                    file_id,
                };
                let hit = segment.is_some();
                sessions.with_session(&key, |s| {
                    s.challenges += 1;
                    if hit {
                        s.hits += 1;
                    }
                });
                challenges.fetch_add(1, Ordering::Relaxed);
                write_frame(&mut writer, &WireMessage::Response { segment })?;
            }
            WireMessage::Bye => return Ok(()),
            WireMessage::Response { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpChallenger;
    use std::collections::HashMap;

    fn store_with(files: &[(&str, usize)]) -> SegmentStore {
        let store: SegmentStore = Arc::new(Mutex::new(HashMap::new()));
        for &(fid, n) in files {
            store.lock().insert(
                fid.to_owned(),
                (0..n).map(|i| Bytes::from(vec![i as u8; 83])).collect(),
            );
        }
        store
    }

    #[test]
    fn multiplexes_sessions_across_connections_and_files() {
        let server =
            MuxProverServer::spawn(store_with(&[("a", 8), ("b", 8)]), Duration::ZERO).unwrap();
        let addr = server.addr();
        // Keep all four connections open while inspecting live sessions.
        let clients: Vec<TcpChallenger> = (0..4)
            .map(|_| {
                let mut c = TcpChallenger::connect(addr).unwrap();
                // Interleave two files on one connection.
                for i in 0..8u64 {
                    let fid = if i % 2 == 0 { "a" } else { "b" };
                    let (seg, _) = c.challenge(fid, i % 8).unwrap();
                    assert!(seg.is_some());
                }
                c
            })
            .collect();
        let stats = server.stats();
        assert_eq!(stats.connections, 4);
        assert_eq!(stats.sessions, 8); // 4 connections × 2 files
        assert_eq!(stats.challenges, 32);
        let per_session = server.sessions();
        assert_eq!(per_session.len(), 8);
        assert!(per_session.iter().all(|(_, s)| s.challenges == 4));
        assert!(per_session.iter().all(|(_, s)| s.hits == 4));
        drop(clients);
        // Closed connections release their per-session state (aggregate
        // totals survive) — a long-running server stays bounded.
        for _ in 0..100 {
            if server.sessions().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(server.sessions().is_empty());
        assert_eq!(server.stats().challenges, 32);
        assert_eq!(server.stats().sessions, 8);
    }

    #[test]
    fn start_audit_announces_session() {
        let server = MuxProverServer::spawn(store_with(&[("f", 4)]), Duration::ZERO).unwrap();
        let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
        write_frame(
            &mut raw,
            &WireMessage::StartAudit {
                file_id: "f".to_owned(),
                n_segments: 4,
                k: 3,
                nonce: [1u8; 32],
            },
        )
        .unwrap();
        // Wait for the (still-open) connection's session to register.
        for _ in 0..100 {
            if server.stats().sessions == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let sessions = server.sessions();
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].1.announced_k, Some(3));
        write_frame(&mut raw, &WireMessage::Bye).unwrap();
    }

    #[test]
    fn shutdown_joins_all_connection_threads() {
        let mut server = MuxProverServer::spawn(store_with(&[("f", 4)]), Duration::ZERO).unwrap();
        let addr = server.addr();
        // Leave two idle connections open — shutdown must not hang on them.
        let c1 = TcpChallenger::connect(addr).unwrap();
        let c2 = TcpChallenger::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        server.shutdown();
        assert!(server.conn_handles.lock().is_empty());
        drop((c1, c2));
        // After shutdown no new connections are served: a connect may
        // still land in the listen backlog, but nothing accepts it, so a
        // challenge never gets an answer (bounded by a read timeout) —
        // any valid Response here would mean the accept loop survived.
        if let Ok(raw) = std::net::TcpStream::connect(addr) {
            raw.set_read_timeout(Some(Duration::from_millis(300)))
                .unwrap();
            let mut raw = raw;
            use std::io::Write;
            let _ = raw.write_all(
                &WireMessage::Challenge {
                    file_id: "f".to_owned(),
                    index: 0,
                }
                .encode(),
            );
            let reply = crate::codec::read_frame(&mut raw);
            assert!(
                reply.is_err(),
                "server answered a challenge after shutdown: {reply:?}"
            );
        }
        assert_eq!(server.stats().challenges, 0);
    }

    #[test]
    fn shutdown_is_not_held_hostage_by_a_slow_loris_client() {
        // Regression: a client dribbling bytes faster than the read
        // timeout (but never completing a frame) used to keep the
        // connection thread inside the frame reader's fill loop, so
        // shutdown joined forever. The stop flag is now checked between
        // reads.
        let mut server = MuxProverServer::spawn(store_with(&[("f", 4)]), Duration::ZERO).unwrap();
        let addr = server.addr();
        let dribbling = Arc::new(AtomicBool::new(true));
        let keep_going = dribbling.clone();
        let loris = std::thread::spawn(move || {
            use std::io::Write;
            let mut raw = std::net::TcpStream::connect(addr).unwrap();
            // A frame header promising far more bytes than we ever send.
            let _ = raw.write_all(&1000u32.to_be_bytes());
            while keep_going.load(Ordering::Relaxed) {
                if raw.write_all(&[0u8]).is_err() {
                    break;
                }
                let _ = raw.flush();
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        std::thread::sleep(Duration::from_millis(100)); // let it dribble
        let start = std::time::Instant::now();
        server.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "shutdown hung on the dribbling connection"
        );
        dribbling.store(false, Ordering::Relaxed);
        loris.join().unwrap();
    }

    #[test]
    fn missing_files_are_counted_as_misses() {
        let server = MuxProverServer::spawn(store_with(&[("f", 2)]), Duration::ZERO).unwrap();
        let mut c = TcpChallenger::connect(server.addr()).unwrap();
        let (seg, _) = c.challenge("ghost", 0).unwrap();
        assert!(seg.is_none());
        let (seg, _) = c.challenge("f", 1).unwrap();
        assert!(seg.is_some());
        for _ in 0..100 {
            if server.stats().challenges == 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // Inspect while the connection is still open (sessions are live
        // per-connection state).
        let sessions = server.sessions();
        let ghost = sessions.iter().find(|(k, _)| k.file_id == "ghost").unwrap();
        assert_eq!(ghost.1.challenges, 1);
        assert_eq!(ghost.1.hits, 0);
        c.bye().unwrap();
    }
}
