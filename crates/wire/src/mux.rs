//! Multi-connection prover server with session multiplexing.
//!
//! [`crate::tcp::ProverServer`] answers one stream of challenges and
//! forgets its connections at shutdown. `MuxProverServer` is the
//! production-shaped variant behind `geoproof serve --concurrent`:
//!
//! * many simultaneous connections, each able to interleave challenges
//!   for several audit sessions (a session = one `(connection, file)`
//!   pair, opened implicitly or via a `StartAudit` frame);
//! * a **sharded session table** (per-shard `parking_lot` mutexes keyed
//!   by session), so hot sessions on different shards never contend;
//! * graceful shutdown that joins every connection thread, and aggregate
//!   statistics so operators can see load.

use crate::codec::{write_frame, WireMessage};
use crate::tcp::{store_segments, IdleFrameReader, Polled, SegmentStore};
use bytes::Bytes;
use geoproof_crypto::fnv::Fnv1a;
use geoproof_por::dynamic::DynamicDigest;
use geoproof_storage::dynamic::DynamicRegistry;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cached telemetry handles (see `geoproof_obs`). The counters shadow
/// the server's own cumulative [`MuxStats`] so a scrape endpoint sees
/// the same monotone totals; the latency histogram covers each
/// session's open-to-eviction lifetime.
struct MuxMetrics {
    connections: std::sync::Arc<geoproof_obs::Counter>,
    sessions: std::sync::Arc<geoproof_obs::Counter>,
    challenges: std::sync::Arc<geoproof_obs::Counter>,
    hits: std::sync::Arc<geoproof_obs::Counter>,
    frames: std::sync::Arc<geoproof_obs::Counter>,
    closed_complete: std::sync::Arc<geoproof_obs::Counter>,
    closed_incomplete: std::sync::Arc<geoproof_obs::Counter>,
    latency: std::sync::Arc<geoproof_obs::Histogram>,
}

fn mux_metrics() -> &'static MuxMetrics {
    static METRICS: std::sync::OnceLock<MuxMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| MuxMetrics {
        connections: geoproof_obs::counter("mux_connections_total"),
        sessions: geoproof_obs::counter("mux_sessions_opened_total"),
        challenges: geoproof_obs::counter("mux_challenges_total"),
        hits: geoproof_obs::counter("mux_hits_total"),
        frames: geoproof_obs::counter("mux_frames_total"),
        closed_complete: geoproof_obs::counter("mux_sessions_closed_total{outcome=\"complete\"}"),
        closed_incomplete: geoproof_obs::counter(
            "mux_sessions_closed_total{outcome=\"incomplete\"}",
        ),
        latency: geoproof_obs::histogram("mux_session_latency_us"),
    })
}

/// Number of shards in the session table. A power of two; sized so a
/// few hundred concurrent sessions rarely share a shard lock.
const SESSION_SHARDS: usize = 16;

/// Hard cap on live sessions a single connection can open. A session
/// entry costs heap per `(connection, file)` pair, so without a cap one
/// hostile connection spamming `StartAudit`/`Challenge` frames with
/// unique file ids grows the table without bound. Honest audits touch a
/// handful of files per connection; 64 is far above any legitimate use.
pub const MAX_SESSIONS_PER_CONNECTION: u64 = 64;

/// Identifies one audit session on the server: a connection and the file
/// it is challenging.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SessionKey {
    /// Server-assigned connection number (accept order).
    pub connection: u64,
    /// File under audit.
    pub file_id: String,
}

/// Per-session bookkeeping.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Challenges answered for this session.
    pub challenges: u64,
    /// Challenges that found the segment.
    pub hits: u64,
    /// Announced challenge count k, when the client sent `StartAudit`.
    pub announced_k: Option<u32>,
    /// When the session opened (server clock) — drives the
    /// session-lifetime histogram at eviction.
    pub started: Option<Instant>,
}

/// Aggregate server statistics. Every field is **monotone** over the
/// server's lifetime: closing a connection folds its sessions' counts
/// into retirement totals instead of discarding them, so two
/// [`MuxProverServer::stats`] snapshots always satisfy `earlier ≤ later`
/// field-wise — reconnecting clients can never make a total go
/// backwards.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MuxStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Sessions ever opened (connection × file pairs).
    pub sessions: u64,
    /// Total challenges served.
    pub challenges: u64,
    /// Challenges that found their segment, across live **and** closed
    /// sessions.
    pub hits: u64,
    /// Closed sessions that had answered at least their announced `k`
    /// challenges with hits.
    pub sessions_complete: u64,
    /// Closed sessions that ended early, or never announced a `k`.
    pub sessions_incomplete: u64,
}

/// FNV-1a over the session key — deterministic shard choice (std's
/// `RandomState` would randomise it per process, which makes load
/// investigations unrepeatable).
fn shard_of(key: &SessionKey) -> usize {
    let mut h = Fnv1a::new();
    h.write(&key.connection.to_be_bytes())
        .write(key.file_id.as_bytes());
    (h.finish() as usize) % SESSION_SHARDS
}

/// Sharded session table shared by all connection threads.
#[derive(Debug, Default)]
struct SessionTable {
    shards: [Mutex<HashMap<SessionKey, SessionStats>>; SESSION_SHARDS],
    opened: AtomicU64,
    /// Live sessions per connection, for the per-connection cap.
    per_conn: Mutex<HashMap<u64, u64>>,
    /// Hits folded out of sessions evicted at connection close — added
    /// to the live sums so [`MuxStats::hits`] is monotone.
    retired_hits: AtomicU64,
    /// Evicted sessions that served their announced `k` in hits.
    retired_complete: AtomicU64,
    /// Evicted sessions that ended short (or unannounced).
    retired_incomplete: AtomicU64,
}

impl SessionTable {
    /// Updates an existing session's stats, or opens a new session when
    /// allowed: the file must actually exist (`known_file`) and the
    /// connection must be under [`MAX_SESSIONS_PER_CONNECTION`]. A
    /// refused session simply records nothing — the challenge itself is
    /// still answered (protocol behaviour is unchanged; only the
    /// unbounded bookkeeping is). Both refusals close resource
    /// exhaustion: a hostile connection spamming frames with unique
    /// file ids used to allocate a table entry per frame.
    fn with_session(&self, key: &SessionKey, known_file: bool, f: impl FnOnce(&mut SessionStats)) {
        let mut shard = self.shards[shard_of(key)].lock();
        match shard.entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(mut e) => f(e.get_mut()),
            std::collections::hash_map::Entry::Vacant(v) => {
                if !known_file {
                    return;
                }
                {
                    let mut counts = self.per_conn.lock();
                    let count = counts.entry(key.connection).or_insert(0);
                    if *count >= MAX_SESSIONS_PER_CONNECTION {
                        return;
                    }
                    *count += 1;
                }
                self.opened.fetch_add(1, Ordering::Relaxed);
                mux_metrics().sessions.inc();
                f(v.insert(SessionStats {
                    started: Some(Instant::now()),
                    ..SessionStats::default()
                }));
            }
        }
    }

    fn snapshot(&self) -> Vec<(SessionKey, SessionStats)> {
        let mut all: Vec<(SessionKey, SessionStats)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_by(|a, b| (a.0.connection, &a.0.file_id).cmp(&(b.0.connection, &b.0.file_id)));
        all
    }

    /// Drops every session belonging to a closed connection, folding
    /// each evicted session's counters into the retirement totals first
    /// — aggregate statistics stay monotone while per-session state
    /// stays bounded by current concurrency, not server lifetime. Each
    /// close is also classified (did the session serve its announced
    /// `k`?) and its lifetime recorded.
    fn evict_connection(&self, conn_id: u64) {
        let now = Instant::now();
        let m = mux_metrics();
        for shard in &self.shards {
            shard.lock().retain(|k, s| {
                if k.connection != conn_id {
                    return true;
                }
                self.retired_hits.fetch_add(s.hits, Ordering::Relaxed);
                let complete = s.announced_k.is_some_and(|k| s.hits >= u64::from(k));
                if complete {
                    self.retired_complete.fetch_add(1, Ordering::Relaxed);
                    m.closed_complete.inc();
                } else {
                    self.retired_incomplete.fetch_add(1, Ordering::Relaxed);
                    m.closed_incomplete.inc();
                }
                if let Some(started) = s.started {
                    m.latency
                        .record_duration_us(now.saturating_duration_since(started));
                }
                false
            });
        }
        self.per_conn.lock().remove(&conn_id);
    }

    /// Hits across live sessions plus everything already retired.
    fn total_hits(&self) -> u64 {
        let live: u64 = self
            .shards
            .iter()
            .map(|s| s.lock().values().map(|v| v.hits).sum::<u64>())
            .sum();
        self.retired_hits.load(Ordering::Relaxed) + live
    }
}

/// The session-multiplexing protocol semantics, shared verbatim
/// between the threaded path ([`serve_mux_connection`]) and the
/// reactor path ([`MuxProverServer::spawn_reactor`]). Every lookup,
/// every session-table touch, every metric and every reply choice
/// happens here — which is what pins the two execution models to
/// byte-identical behaviour (the differential suite checks it).
pub(crate) struct MuxService {
    store: SegmentStore,
    dynamic: DynamicRegistry,
    sessions: Arc<SessionTable>,
    challenges: Arc<AtomicU64>,
}

impl crate::reactor_serve::FrameService for MuxService {
    fn on_open(&self, _conn_id: u64) {
        mux_metrics().connections.inc();
    }

    fn handle(&self, conn_id: u64, msg: WireMessage) -> crate::reactor_serve::FrameOutcome {
        use crate::reactor_serve::FrameOutcome;
        mux_metrics().frames.inc();
        match msg {
            WireMessage::StartAudit { file_id, k, .. } => {
                let known =
                    self.store.lock().contains_key(&file_id) || self.dynamic.contains(&file_id);
                let key = SessionKey {
                    connection: conn_id,
                    file_id,
                };
                self.sessions
                    .with_session(&key, known, |s| s.announced_k = Some(k));
                FrameOutcome::Silent
            }
            WireMessage::Challenge { file_id, index } => {
                let (known, segment) = {
                    let guard = self.store.lock();
                    let file = guard.get(&file_id);
                    (
                        file.is_some(),
                        file.and_then(|segs| segs.get(index as usize)).cloned(),
                    )
                };
                let key = SessionKey {
                    connection: conn_id,
                    file_id,
                };
                let hit = segment.is_some();
                self.sessions.with_session(&key, known, |s| {
                    s.challenges += 1;
                    if hit {
                        s.hits += 1;
                    }
                });
                self.challenges.fetch_add(1, Ordering::Relaxed);
                let m = mux_metrics();
                m.challenges.inc();
                if hit {
                    m.hits.inc();
                }
                FrameOutcome::Reply(WireMessage::Response { segment })
            }
            WireMessage::DynChallenge { file_id, index } => {
                let known = self.dynamic.contains(&file_id);
                let served = self.dynamic.challenge(&file_id, index);
                let key = SessionKey {
                    connection: conn_id,
                    file_id,
                };
                let hit = served.is_some();
                self.sessions.with_session(&key, known, |s| {
                    s.challenges += 1;
                    if hit {
                        s.hits += 1;
                    }
                });
                self.challenges.fetch_add(1, Ordering::Relaxed);
                let m = mux_metrics();
                m.challenges.inc();
                if hit {
                    m.hits.inc();
                }
                FrameOutcome::Reply(WireMessage::DynResponse {
                    segment: served.map(|p| (p.segment, p.proof)),
                })
            }
            WireMessage::Update {
                file_id,
                index,
                tagged,
                sig,
            } => {
                let new_digest = self
                    .dynamic
                    .update(&file_id, index, tagged, &sig)
                    .and_then(Result::ok);
                FrameOutcome::Reply(WireMessage::UpdateAck { new_digest })
            }
            WireMessage::Append {
                file_id,
                tagged,
                sig,
            } => {
                let new_digest = self.dynamic.append(&file_id, tagged, &sig);
                FrameOutcome::Reply(WireMessage::UpdateAck { new_digest })
            }
            WireMessage::Bye => FrameOutcome::Close,
            // Replies never originate from a client; ignore them.
            WireMessage::Response { .. }
            | WireMessage::DynResponse { .. }
            | WireMessage::UpdateAck { .. } => FrameOutcome::Silent,
        }
    }

    fn on_close(&self, conn_id: u64) {
        // Connection over: release its session state.
        self.sessions.evict_connection(conn_id);
    }
}

/// The multi-connection, session-multiplexing prover server.
pub struct MuxProverServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    sessions: Arc<SessionTable>,
    connections: Arc<AtomicU64>,
    challenges: Arc<AtomicU64>,
    store: SegmentStore,
    dynamic: DynamicRegistry,
    /// Legacy path: wakes the parked accept loop at shutdown.
    park: Option<Arc<crate::tcp::AcceptPark>>,
    /// Reactor path: interrupts the event loop's poll at shutdown.
    waker: Option<geoproof_reactor::Waker>,
}

impl std::fmt::Debug for MuxProverServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MuxProverServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl MuxProverServer {
    /// Binds to an ephemeral localhost port and starts accepting.
    ///
    /// `service_delay` is added per challenge, as in
    /// [`crate::tcp::ProverServer::spawn`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn spawn(store: SegmentStore, service_delay: Duration) -> std::io::Result<MuxProverServer> {
        Self::spawn_with_dynamic(store, DynamicRegistry::new(), service_delay)
    }

    /// Like [`MuxProverServer::spawn`], also serving the dynamic flow
    /// (`DynChallenge`/`Update`/`Append`) from `dynamic`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn spawn_with_dynamic(
        store: SegmentStore,
        dynamic: DynamicRegistry,
        service_delay: Duration,
    ) -> std::io::Result<MuxProverServer> {
        use crate::reactor_serve::FrameService;
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let park = crate::tcp::AcceptPark::new();
        let sessions = Arc::new(SessionTable::default());
        let connections = Arc::new(AtomicU64::new(0));
        let challenges = Arc::new(AtomicU64::new(0));
        let conn_handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let service = Arc::new(MuxService {
            store: store.clone(),
            dynamic: dynamic.clone(),
            sessions: sessions.clone(),
            challenges: challenges.clone(),
        });

        let accept_stop = stop.clone();
        let accept_park = park.clone();
        let accept_connections = connections.clone();
        let accept_conns = conn_handles.clone();
        let accept_service = service.clone();
        let accept_handle = std::thread::spawn(move || {
            while !accept_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let conn_id = accept_connections.fetch_add(1, Ordering::Relaxed);
                        accept_service.on_open(conn_id);
                        let stop = accept_stop.clone();
                        let service = accept_service.clone();
                        let handle = std::thread::spawn(move || {
                            let _ = serve_mux_connection(
                                stream,
                                conn_id,
                                &service,
                                service_delay,
                                stop,
                            );
                            service.on_close(conn_id);
                        });
                        // Opportunistically reap finished handles (the
                        // stat-read path reaps too, so a burst followed
                        // by silence doesn't hoard handles until the
                        // next accept).
                        reap_finished(&accept_conns);
                        accept_conns.lock().push(handle);
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        accept_park.park_unless(&accept_stop);
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(MuxProverServer {
            addr,
            stop,
            accept_handle: Some(accept_handle),
            conn_handles,
            sessions,
            connections,
            challenges,
            store,
            dynamic,
            park: Some(park),
            waker: None,
        })
    }

    /// Event-driven variant of [`MuxProverServer::spawn`]: same
    /// protocol, same session table, same statistics — the frame
    /// handling is literally the same code
    /// (`reactor_serve::FrameService`) — but connections are
    /// non-blocking state machines on one epoll reactor thread instead
    /// of a thread each, so tens of thousands of concurrent audits fit
    /// in O(connections) heap. Service delay runs on reactor timers.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; [`std::io::ErrorKind::Unsupported`] on
    /// targets without the epoll backend (use the threaded path there).
    pub fn spawn_reactor(
        store: SegmentStore,
        service_delay: Duration,
    ) -> std::io::Result<MuxProverServer> {
        Self::spawn_reactor_with_dynamic(store, DynamicRegistry::new(), service_delay)
    }

    /// Like [`MuxProverServer::spawn_reactor`], also serving the
    /// dynamic flow from `dynamic`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; [`std::io::ErrorKind::Unsupported`] on
    /// targets without the epoll backend.
    pub fn spawn_reactor_with_dynamic(
        store: SegmentStore,
        dynamic: DynamicRegistry,
        service_delay: Duration,
    ) -> std::io::Result<MuxProverServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let sessions = Arc::new(SessionTable::default());
        let connections = Arc::new(AtomicU64::new(0));
        let challenges = Arc::new(AtomicU64::new(0));
        let service = Arc::new(MuxService {
            store: store.clone(),
            dynamic: dynamic.clone(),
            sessions: sessions.clone(),
            challenges: challenges.clone(),
        });
        let (waker, handle) = crate::reactor_serve::spawn_reactor_loop(
            listener,
            service,
            service_delay,
            stop.clone(),
            connections.clone(),
        )?;
        Ok(MuxProverServer {
            addr,
            stop,
            accept_handle: Some(handle),
            conn_handles: Arc::new(Mutex::new(Vec::new())),
            sessions,
            connections,
            challenges,
            store,
            dynamic,
            park: None,
            waker: Some(waker),
        })
    }

    /// The server's socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replaces a file's segments.
    pub fn put_file(&self, file_id: &str, segments: Vec<Vec<u8>>) {
        self.store
            .lock()
            .insert(file_id.to_owned(), store_segments(segments));
    }

    /// Replaces a file's segments with already-shared views (zero-copy).
    pub fn put_shared(&self, file_id: &str, segments: Vec<Bytes>) {
        self.store.lock().insert(file_id.to_owned(), segments);
    }

    /// Registers (or replaces) a dynamic file from already-tagged
    /// segments, returning its starting digest. **Unauthenticated**:
    /// any peer may then update/append it — use
    /// [`MuxProverServer::put_dynamic_with_owner`] on a real socket.
    ///
    /// # Panics
    ///
    /// Panics on an empty segment list.
    pub fn put_dynamic(&self, file_id: &str, tagged: Vec<Bytes>) -> DynamicDigest {
        self.dynamic.insert(file_id, tagged)
    }

    /// Registers (or replaces) a dynamic file whose updates/appends must
    /// carry the owner's authorisation signature.
    ///
    /// # Panics
    ///
    /// Panics on an empty segment list.
    pub fn put_dynamic_with_owner(
        &self,
        file_id: &str,
        tagged: Vec<Bytes>,
        owner: geoproof_crypto::schnorr::VerifyingKey,
    ) -> DynamicDigest {
        self.dynamic.insert_with_owner(file_id, tagged, owner)
    }

    /// A handle on the dynamic-file registry this server serves
    /// (adversarial tests corrupt through it; the CLI preloads it).
    pub fn dynamic(&self) -> DynamicRegistry {
        self.dynamic.clone()
    }

    /// Aggregate statistics (monotone — see [`MuxStats`]).
    ///
    /// Reading stats also reaps finished connection threads on the
    /// threaded path: a burst of connections followed by silence used
    /// to hoard one `JoinHandle` per past connection until the *next*
    /// accept; any observer now releases them.
    pub fn stats(&self) -> MuxStats {
        reap_finished(&self.conn_handles);
        MuxStats {
            connections: self.connections.load(Ordering::Relaxed),
            sessions: self.sessions.opened.load(Ordering::Relaxed),
            challenges: self.challenges.load(Ordering::Relaxed),
            hits: self.sessions.total_hits(),
            sessions_complete: self.sessions.retired_complete.load(Ordering::Relaxed),
            sessions_incomplete: self.sessions.retired_incomplete.load(Ordering::Relaxed),
        }
    }

    /// Per-session statistics for **live** connections, sorted by
    /// `(connection, file_id)`. A connection's sessions are evicted when
    /// it closes (their totals stay in [`MuxProverServer::stats`]), so
    /// this stays bounded by current concurrency, not server lifetime.
    pub fn sessions(&self) -> Vec<(SessionKey, SessionStats)> {
        self.sessions.snapshot()
    }

    /// Stops accepting, then joins the accept loop **and every
    /// connection thread** (connections notice the stop flag at their
    /// next idle poll; in-flight responses complete first). On the
    /// reactor path the waker interrupts the event loop's poll
    /// immediately, which drops every connection state machine.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(park) = &self.park {
            park.wake();
        }
        if let Some(waker) = &self.waker {
            let _ = waker.wake();
        }
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = std::mem::take(&mut *self.conn_handles.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for MuxProverServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reaps (joins) connection threads that have already finished, so a
/// long-lived server holds handles only for *live* connections. Called
/// from the accept loop and from [`MuxProverServer::stats`].
fn reap_finished(handles: &Mutex<Vec<std::thread::JoinHandle<()>>>) {
    let mut handles = handles.lock();
    let mut i = 0;
    while i < handles.len() {
        if handles[i].is_finished() {
            let _ = handles.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

fn serve_mux_connection(
    stream: TcpStream,
    conn_id: u64,
    service: &MuxService,
    service_delay: Duration,
    stop: Arc<AtomicBool>,
) -> std::io::Result<()> {
    use crate::reactor_serve::{FrameOutcome, FrameService};
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = stream;
    let mut frames = IdleFrameReader::new();
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        let msg = match frames.poll(&mut reader, &stop) {
            Ok(Polled::Frame(m)) => m,
            Ok(Polled::Idle) => continue,
            Ok(Polled::Closed) | Err(_) => return Ok(()),
        };
        if !service_delay.is_zero() && service.delayed(&msg) {
            std::thread::sleep(service_delay);
        }
        match service.handle(conn_id, msg) {
            FrameOutcome::Reply(reply) => write_frame(&mut writer, &reply)?,
            FrameOutcome::Silent => {}
            FrameOutcome::Close => return Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpChallenger;
    use std::collections::HashMap;

    fn store_with(files: &[(&str, usize)]) -> SegmentStore {
        let store: SegmentStore = Arc::new(Mutex::new(HashMap::new()));
        for &(fid, n) in files {
            store.lock().insert(
                fid.to_owned(),
                (0..n).map(|i| Bytes::from(vec![i as u8; 83])).collect(),
            );
        }
        store
    }

    #[test]
    fn multiplexes_sessions_across_connections_and_files() {
        let server =
            MuxProverServer::spawn(store_with(&[("a", 8), ("b", 8)]), Duration::ZERO).unwrap();
        let addr = server.addr();
        // Keep all four connections open while inspecting live sessions.
        let clients: Vec<TcpChallenger> = (0..4)
            .map(|_| {
                let mut c = TcpChallenger::connect(addr).unwrap();
                // Interleave two files on one connection.
                for i in 0..8u64 {
                    let fid = if i % 2 == 0 { "a" } else { "b" };
                    let (seg, _) = c.challenge(fid, i % 8).unwrap();
                    assert!(seg.is_some());
                }
                c
            })
            .collect();
        let stats = server.stats();
        assert_eq!(stats.connections, 4);
        assert_eq!(stats.sessions, 8); // 4 connections × 2 files
        assert_eq!(stats.challenges, 32);
        let per_session = server.sessions();
        assert_eq!(per_session.len(), 8);
        assert!(per_session.iter().all(|(_, s)| s.challenges == 4));
        assert!(per_session.iter().all(|(_, s)| s.hits == 4));
        drop(clients);
        // Closed connections release their per-session state (aggregate
        // totals survive) — a long-running server stays bounded.
        for _ in 0..100 {
            if server.sessions().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(server.sessions().is_empty());
        assert_eq!(server.stats().challenges, 32);
        assert_eq!(server.stats().sessions, 8);
    }

    #[test]
    fn stats_stay_monotone_across_reconnects() {
        // Regression: evicting a closed connection's sessions used to
        // discard their SessionStats outright, so a fleet of short-lived
        // audit connections left `hits` (and any session classification)
        // permanently undercounted. Closes now fold into retirement
        // totals first.
        let server = MuxProverServer::spawn(store_with(&[("f", 4)]), Duration::ZERO).unwrap();
        let addr = server.addr();
        let mut last = MuxStats::default();
        for round in 0..3u64 {
            let mut raw = std::net::TcpStream::connect(addr).unwrap();
            write_frame(
                &mut raw,
                &WireMessage::StartAudit {
                    file_id: "f".to_owned(),
                    n_segments: 4,
                    k: 3,
                    nonce: [0u8; 32],
                },
            )
            .unwrap();
            for i in 0..3u64 {
                write_frame(
                    &mut raw,
                    &WireMessage::Challenge {
                        file_id: "f".to_owned(),
                        index: i,
                    },
                )
                .unwrap();
                let reply = crate::codec::read_frame(&mut raw).unwrap();
                assert!(matches!(reply, WireMessage::Response { segment: Some(_) }));
            }
            write_frame(&mut raw, &WireMessage::Bye).unwrap();
            drop(raw);
            // Wait for the closed connection's session to retire.
            for _ in 0..200 {
                if server.stats().sessions_complete == round + 1 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            let stats = server.stats();
            assert_eq!(stats.hits, (round + 1) * 3, "hits lost at connection close");
            assert_eq!(stats.sessions_complete, round + 1);
            assert_eq!(stats.sessions_incomplete, 0);
            assert!(
                stats.connections >= last.connections
                    && stats.sessions >= last.sessions
                    && stats.challenges >= last.challenges
                    && stats.hits >= last.hits
                    && stats.sessions_complete >= last.sessions_complete
                    && stats.sessions_incomplete >= last.sessions_incomplete,
                "stats went backwards across a reconnect: {last:?} -> {stats:?}"
            );
            last = stats;
        }
        // A session that ends short of its announced k retires as
        // incomplete — its hits still fold in.
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        write_frame(
            &mut raw,
            &WireMessage::StartAudit {
                file_id: "f".to_owned(),
                n_segments: 4,
                k: 4,
                nonce: [0u8; 32],
            },
        )
        .unwrap();
        write_frame(
            &mut raw,
            &WireMessage::Challenge {
                file_id: "f".to_owned(),
                index: 0,
            },
        )
        .unwrap();
        let reply = crate::codec::read_frame(&mut raw).unwrap();
        assert!(matches!(reply, WireMessage::Response { segment: Some(_) }));
        write_frame(&mut raw, &WireMessage::Bye).unwrap();
        drop(raw);
        for _ in 0..200 {
            if server.stats().sessions_incomplete == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let stats = server.stats();
        assert_eq!(stats.sessions_incomplete, 1);
        assert_eq!(stats.sessions_complete, 3);
        assert_eq!(stats.hits, 10, "incomplete session's hits still fold in");
    }

    #[test]
    fn start_audit_announces_session() {
        let server = MuxProverServer::spawn(store_with(&[("f", 4)]), Duration::ZERO).unwrap();
        let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
        write_frame(
            &mut raw,
            &WireMessage::StartAudit {
                file_id: "f".to_owned(),
                n_segments: 4,
                k: 3,
                nonce: [1u8; 32],
            },
        )
        .unwrap();
        // Wait for the (still-open) connection's session to register.
        for _ in 0..100 {
            if server.stats().sessions == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let sessions = server.sessions();
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].1.announced_k, Some(3));
        write_frame(&mut raw, &WireMessage::Bye).unwrap();
    }

    #[test]
    fn shutdown_joins_all_connection_threads() {
        let mut server = MuxProverServer::spawn(store_with(&[("f", 4)]), Duration::ZERO).unwrap();
        let addr = server.addr();
        // Leave two idle connections open — shutdown must not hang on them.
        let c1 = TcpChallenger::connect(addr).unwrap();
        let c2 = TcpChallenger::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        server.shutdown();
        assert!(server.conn_handles.lock().is_empty());
        drop((c1, c2));
        // After shutdown no new connections are served: a connect may
        // still land in the listen backlog, but nothing accepts it, so a
        // challenge never gets an answer (bounded by a read timeout) —
        // any valid Response here would mean the accept loop survived.
        if let Ok(raw) = std::net::TcpStream::connect(addr) {
            raw.set_read_timeout(Some(Duration::from_millis(300)))
                .unwrap();
            let mut raw = raw;
            use std::io::Write;
            let _ = raw.write_all(
                &WireMessage::Challenge {
                    file_id: "f".to_owned(),
                    index: 0,
                }
                .encode(),
            );
            let reply = crate::codec::read_frame(&mut raw);
            assert!(
                reply.is_err(),
                "server answered a challenge after shutdown: {reply:?}"
            );
        }
        assert_eq!(server.stats().challenges, 0);
    }

    #[test]
    fn finished_connection_threads_are_reaped_without_a_next_accept() {
        // Regression: handles of finished connection threads were only
        // reaped inside the accept arm, so a burst of connections
        // followed by silence hoarded one JoinHandle per past
        // connection indefinitely. Reading stats must release them.
        let server = MuxProverServer::spawn(store_with(&[("f", 2)]), Duration::ZERO).unwrap();
        let addr = server.addr();
        for _ in 0..8 {
            let mut c = TcpChallenger::connect(addr).unwrap();
            let (seg, _) = c.challenge("f", 0).unwrap();
            assert!(seg.is_some());
            c.bye().unwrap();
        }
        // All eight connections have said Bye; wait for their threads to
        // finish (eviction of the last session is the finish line).
        for _ in 0..300 {
            if server.stats().sessions_complete + server.stats().sessions_incomplete == 8
                && server.sessions().is_empty()
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // No further accepts happen. A stats read — the operator's
        // natural touchpoint — must reap the finished handles.
        for _ in 0..300 {
            let _ = server.stats();
            if server.conn_handles.lock().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            server.conn_handles.lock().is_empty(),
            "finished connection handles hoarded until the next accept"
        );
    }

    #[test]
    fn shutdown_is_not_held_hostage_by_a_slow_loris_client() {
        // Regression: a client dribbling bytes faster than the read
        // timeout (but never completing a frame) used to keep the
        // connection thread inside the frame reader's fill loop, so
        // shutdown joined forever. The stop flag is now checked between
        // reads.
        let mut server = MuxProverServer::spawn(store_with(&[("f", 4)]), Duration::ZERO).unwrap();
        let addr = server.addr();
        let dribbling = Arc::new(AtomicBool::new(true));
        let keep_going = dribbling.clone();
        let loris = std::thread::spawn(move || {
            use std::io::Write;
            let mut raw = std::net::TcpStream::connect(addr).unwrap();
            // A frame header promising far more bytes than we ever send.
            let _ = raw.write_all(&1000u32.to_be_bytes());
            while keep_going.load(Ordering::Relaxed) {
                if raw.write_all(&[0u8]).is_err() {
                    break;
                }
                let _ = raw.flush();
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        std::thread::sleep(Duration::from_millis(100)); // let it dribble
        let start = std::time::Instant::now();
        server.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "shutdown hung on the dribbling connection"
        );
        dribbling.store(false, Ordering::Relaxed);
        loris.join().unwrap();
    }

    #[test]
    fn missing_files_are_answered_but_never_open_sessions() {
        // Regression: an unknown file id used to allocate a session-table
        // entry per challenge — one hostile connection could grow the
        // table without bound. The challenge is still answered (None);
        // only the bookkeeping is refused.
        let server = MuxProverServer::spawn(store_with(&[("f", 2)]), Duration::ZERO).unwrap();
        let mut c = TcpChallenger::connect(server.addr()).unwrap();
        let (seg, _) = c.challenge("ghost", 0).unwrap();
        assert!(seg.is_none());
        let (seg, _) = c.challenge("f", 1).unwrap();
        assert!(seg.is_some());
        for _ in 0..100 {
            if server.stats().challenges == 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // Inspect while the connection is still open (sessions are live
        // per-connection state): only the real file has a session.
        let sessions = server.sessions();
        assert!(sessions.iter().all(|(k, _)| k.file_id != "ghost"));
        let real = sessions.iter().find(|(k, _)| k.file_id == "f").unwrap();
        assert_eq!(real.1.challenges, 1);
        assert_eq!(real.1.hits, 1);
        assert_eq!(server.stats().sessions, 1);
        assert_eq!(server.stats().challenges, 2, "misses still count globally");
        c.bye().unwrap();
    }

    #[test]
    fn hostile_unique_file_id_spam_allocates_no_sessions() {
        // One connection, thousands of StartAudit + Challenge frames for
        // files that do not exist: the session table must stay empty.
        let server = MuxProverServer::spawn(store_with(&[("f", 2)]), Duration::ZERO).unwrap();
        let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
        for i in 0..500u32 {
            write_frame(
                &mut raw,
                &WireMessage::StartAudit {
                    file_id: format!("ghost-{i}"),
                    n_segments: 1,
                    k: 1,
                    nonce: [0u8; 32],
                },
            )
            .unwrap();
        }
        for i in 0..100u64 {
            write_frame(
                &mut raw,
                &WireMessage::Challenge {
                    file_id: format!("phantom-{i}"),
                    index: 0,
                },
            )
            .unwrap();
            let reply = crate::codec::read_frame(&mut raw).unwrap();
            assert_eq!(reply, WireMessage::Response { segment: None });
        }
        // The challenges round-tripped, so all prior frames are processed.
        assert_eq!(server.stats().sessions, 0, "hostile spam opened sessions");
        assert!(server.sessions().is_empty());
        write_frame(&mut raw, &WireMessage::Bye).unwrap();
    }

    #[test]
    fn per_connection_session_count_is_capped() {
        // Even over *real* files, one connection cannot hold more than
        // MAX_SESSIONS_PER_CONNECTION live sessions; the overflow is
        // still served, just not tracked.
        let files: Vec<String> = (0..MAX_SESSIONS_PER_CONNECTION + 16)
            .map(|i| format!("file-{i:03}"))
            .collect();
        let named: Vec<(&str, usize)> = files.iter().map(|f| (f.as_str(), 1)).collect();
        let server = MuxProverServer::spawn(store_with(&named), Duration::ZERO).unwrap();
        let mut c = TcpChallenger::connect(server.addr()).unwrap();
        for f in &files {
            let (seg, _) = c.challenge(f, 0).unwrap();
            assert!(seg.is_some(), "{f} must still be served past the cap");
        }
        assert_eq!(server.stats().sessions, MAX_SESSIONS_PER_CONNECTION);
        assert_eq!(
            server.sessions().len() as u64,
            MAX_SESSIONS_PER_CONNECTION,
            "live sessions must be capped per connection"
        );
        // A second connection gets its own budget.
        let mut c2 = TcpChallenger::connect(server.addr()).unwrap();
        let (seg, _) = c2.challenge(&files[0], 0).unwrap();
        assert!(seg.is_some());
        for _ in 0..100 {
            if server.stats().sessions == MAX_SESSIONS_PER_CONNECTION + 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.stats().sessions, MAX_SESSIONS_PER_CONNECTION + 1);
        c.bye().unwrap();
        c2.bye().unwrap();
    }

    #[test]
    fn dynamic_flow_over_tcp_challenge_update_append() {
        use geoproof_por::dynamic::{tag_segment, verify_challenge, DynamicOwner, ProvenSegment};
        use geoproof_por::keys::PorKeys;

        let keys = PorKeys::derive(b"mux-dyn", "d");
        let tagged: Vec<Bytes> = (0..6u64)
            .map(|i| Bytes::from(tag_segment(&keys, "d", i, &[i as u8; 30])))
            .collect();
        let server = MuxProverServer::spawn(store_with(&[]), Duration::ZERO).unwrap();
        let d0 = server.put_dynamic("d", tagged.clone());
        let mut owner = DynamicOwner::from_tagged("d", &tagged);
        assert_eq!(owner.digest(), d0);

        let mut c = TcpChallenger::connect(server.addr()).unwrap();
        // Challenge with proof.
        let (served, _) = c.dyn_challenge("d", 2).unwrap();
        let (segment, proof) = served.expect("segment present");
        let proven = ProvenSegment { segment, proof };
        assert!(verify_challenge(&d0, "d", 2, &proven, &keys));
        // Unknown file/index come back clean.
        assert!(c.dyn_challenge("ghost", 0).unwrap().0.is_none());
        assert!(c.dyn_challenge("d", 6).unwrap().0.is_none());

        // Update over the wire: the server lands exactly on the owner's
        // independently derived digest.
        let (new_tagged, expected) = owner.tag_update(2, b"fresh", &keys).unwrap();
        let ack = c
            .update("d", 2, Bytes::from(new_tagged), [0u8; 64])
            .unwrap();
        assert_eq!(ack, Some(expected));
        // Append likewise.
        let (appended, expected) = owner.tag_append(b"seventh", &keys);
        let ack = c.append("d", Bytes::from(appended), [0u8; 64]).unwrap();
        assert_eq!(ack, Some(expected));
        assert_eq!(expected.segments, 7);
        // The new segment serves and verifies under the new digest.
        let (served, _) = c.dyn_challenge("d", 6).unwrap();
        let (segment, proof) = served.expect("appended segment");
        let proven = ProvenSegment { segment, proof };
        assert!(verify_challenge(&expected, "d", 6, &proven, &keys));
        // Updates against unknown files ack None.
        assert!(c
            .update("ghost", 0, Bytes::new(), [0u8; 64])
            .unwrap()
            .is_none());
        assert!(c
            .append("ghost", Bytes::new(), [0u8; 64])
            .unwrap()
            .is_none());
        c.bye().unwrap();
    }

    #[test]
    fn owner_keyed_dynamic_files_refuse_forged_mutations_over_tcp() {
        use geoproof_crypto::chacha::ChaChaRng;
        use geoproof_crypto::schnorr::SigningKey;
        use geoproof_por::dynamic::{owner_authorization, tag_segment, DynamicOwner};
        use geoproof_por::keys::PorKeys;

        let keys = PorKeys::derive(b"mux-auth", "d");
        let tagged: Vec<Bytes> = (0..4u64)
            .map(|i| Bytes::from(tag_segment(&keys, "d", i, &[i as u8; 30])))
            .collect();
        let owner_key = SigningKey::generate(&mut ChaChaRng::from_u64_seed(77));
        let server = MuxProverServer::spawn(store_with(&[]), Duration::ZERO).unwrap();
        let d0 = server.put_dynamic_with_owner("d", tagged.clone(), owner_key.verifying_key());
        let mut owner = DynamicOwner::from_tagged("d", &tagged);

        let mut c = TcpChallenger::connect(server.addr()).unwrap();
        let (new_tagged, expected) = owner.tag_update(1, b"v2", &keys).unwrap();
        let new_tagged = Bytes::from(new_tagged);
        // Unsigned and mallory-signed mutations are refused; the store
        // is untouched.
        assert!(c
            .update("d", 1, new_tagged.clone(), [0u8; 64])
            .unwrap()
            .is_none());
        let mallory = SigningKey::generate(&mut ChaChaRng::from_u64_seed(78));
        let forged = mallory
            .sign(
                &owner_authorization("d", false, 1, &new_tagged),
                &mut ChaChaRng::from_u64_seed(79),
            )
            .to_bytes();
        assert!(c
            .update("d", 1, new_tagged.clone(), forged)
            .unwrap()
            .is_none());
        assert_eq!(server.dynamic().digest("d"), Some(d0));
        // The owner's genuine signature lands on the expected digest.
        let good = owner_key
            .sign(
                &owner_authorization("d", false, 1, &new_tagged),
                &mut ChaChaRng::from_u64_seed(80),
            )
            .to_bytes();
        let ack = c.update("d", 1, new_tagged, good).unwrap();
        assert_eq!(ack, Some(expected));
        c.bye().unwrap();
    }
}
