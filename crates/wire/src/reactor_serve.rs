//! Event-driven serving core: connection state machines on the epoll
//! reactor.
//!
//! The threaded servers in [`crate::tcp`] and [`crate::mux`] spend one
//! OS thread per connection; this module serves the same protocol from
//! **one** event-loop thread, so concurrency is bounded by file
//! descriptors and heap, not stacks. The protocol semantics live behind
//! one seam — [`FrameService`] — implemented once per server flavour
//! and shared verbatim by both the threaded and reactor paths, which is
//! what makes the differential suite's "verdicts byte-identical"
//! guarantee hold by construction rather than by parallel maintenance.
//!
//! ## Connection state machine
//!
//! Each accepted socket becomes a [`Conn`]:
//!
//! ```text
//!             readable (edge)               complete frame
//!   Reading ────────────────▶ pump: IdleFrameReader ──────────┐
//!      ▲                                                      ▼
//!      │   timer fires                              delayed frame?
//!   Delayed ◀──────────────────────────────────────────── yes │ no
//!      │         (service-delay timer parks the frame;        ▼
//!      │          reading pauses — ordering matches the   dispatch →
//!      │          threaded path's blocking sleep)         write queue
//!      ▼                                                      │
//!   Writing ◀─────────────────────────────────────────────────┘
//!      │  queue drained → back to read-only interest
//!      ▼
//!   Closing (Bye / EOF / error / backlog overflow) → evict sessions
//! ```
//!
//! Reads are edge-triggered: the pump drains the socket until a short
//! read proves the kernel buffer is empty (skipping the final `EAGAIN`
//! syscall a drain-to-`WouldBlock` loop would pay) or parks on a delay
//! timer, in which case the buffered bytes wait with it. Writes queue
//! refcounted frame parts ([`bytes::Bytes`] from
//! `encode_parts`, so segment payloads are never copied) and register
//! write interest only while the queue is non-empty. A connection whose
//! backlog exceeds [`MAX_WRITE_BACKLOG`] is dropped — that peer is not
//! reading its responses, which is either a stall or a hostile sink.

use crate::codec::WireMessage;
use crate::tcp::{IdleFrameReader, Polled};
use bytes::Bytes;
use geoproof_reactor::{Events, Interest, Reactor, Token, Waker};
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-connection cap on queued-but-unsent response bytes. An honest
/// auditor reads every response before sending many more challenges, so
/// its backlog stays near one frame; a peer that pipelines challenges
/// while never reading grows the queue without bound and gets cut off.
pub(crate) const MAX_WRITE_BACKLOG: usize = 1 << 20;

/// Cached reactor telemetry (`geoproof_obs` idiom: register once, cache
/// the `Arc` handles, record lock-free).
struct ReactorMetrics {
    polls: Arc<geoproof_obs::Counter>,
    io_events: Arc<geoproof_obs::Counter>,
    timers: Arc<geoproof_obs::Counter>,
    connections: Arc<geoproof_obs::Gauge>,
    backlog_drops: Arc<geoproof_obs::Counter>,
}

fn reactor_metrics() -> &'static ReactorMetrics {
    static METRICS: std::sync::OnceLock<ReactorMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| ReactorMetrics {
        polls: geoproof_obs::counter("reactor_polls_total"),
        io_events: geoproof_obs::counter("reactor_io_events_total"),
        timers: geoproof_obs::counter("reactor_timers_fired_total"),
        connections: geoproof_obs::gauge("reactor_connections"),
        backlog_drops: geoproof_obs::counter("reactor_conns_dropped_total{reason=\"backlog\"}"),
    })
}

/// What one frame's handling asks of the connection.
pub(crate) enum FrameOutcome {
    /// Send this reply.
    Reply(WireMessage),
    /// Frame consumed, nothing to send (StartAudit, ignored replies).
    Silent,
    /// Polite end of connection (Bye).
    Close,
}

/// The protocol seam shared by the threaded and reactor paths: one
/// implementation per server flavour ([`crate::mux`]'s session-tracking
/// service, [`crate::tcp`]'s plain store service). Everything a frame
/// does — lookups, session bookkeeping, metrics, reply choice — happens
/// in [`FrameService::handle`], so the two execution models cannot
/// drift apart semantically.
pub(crate) trait FrameService: Send + Sync + 'static {
    /// Whether `msg` incurs the per-request service delay before being
    /// handled (the simulated storage look-up: challenges do, control
    /// frames don't). The threaded path sleeps; the reactor parks the
    /// frame on a timer.
    fn delayed(&self, msg: &WireMessage) -> bool {
        matches!(
            msg,
            WireMessage::Challenge { .. } | WireMessage::DynChallenge { .. }
        )
    }

    /// A connection was accepted (metrics hook).
    fn on_open(&self, _conn_id: u64) {}

    /// Handles one inbound frame.
    fn handle(&self, conn_id: u64, msg: WireMessage) -> FrameOutcome;

    /// A connection ended (for whatever reason); release its state.
    fn on_close(&self, _conn_id: u64) {}
}

const LISTENER: Token = Token(0);

/// Connection ids map to tokens with a +1 offset so the listener keeps
/// token 0.
fn conn_token(conn_id: u64) -> Token {
    Token(conn_id + 1)
}

/// One connection's entire server-side state — heap-bounded and
/// threadless, which is what lets the reactor hold tens of thousands of
/// them (the threaded path pays a stack each).
struct Conn {
    stream: TcpStream,
    reader: IdleFrameReader,
    /// Queued response parts (refcounted; segment payloads alias the
    /// store) with the send offset into the front part.
    out: VecDeque<Bytes>,
    out_pos: usize,
    out_bytes: usize,
    /// A frame parked while its service-delay timer runs. Reading stays
    /// paused until it fires, so frame ordering matches the threaded
    /// path's blocking sleep exactly.
    parked: Option<WireMessage>,
    /// Write interest currently registered.
    want_write: bool,
    /// Bye seen: flush what's queued, then drop.
    closing: bool,
}

impl Conn {
    fn enqueue(&mut self, msg: &WireMessage) {
        let (head, tail) = msg.encode_parts();
        self.out_bytes += head.len();
        self.out.push_back(head.freeze());
        if let Some(tail) = tail {
            self.out_bytes += tail.len();
            self.out.push_back(tail);
        }
    }

    /// Writes as much of the queue as the socket will take.
    /// `Ok(true)` = fully drained, `Ok(false)` = blocked with leftovers.
    fn flush(&mut self) -> std::io::Result<bool> {
        while let Some(front) = self.out.front() {
            match self.stream.write(&front[self.out_pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "peer stopped accepting bytes",
                    ))
                }
                Ok(n) => {
                    self.out_pos += n;
                    self.out_bytes -= n;
                    if self.out_pos == front.len() {
                        self.out.pop_front();
                        self.out_pos = 0;
                    }
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

/// Why a connection left the loop.
enum Fate {
    /// Still alive.
    Alive,
    /// Finished (EOF, Bye with empty queue, error, overflow) — remove.
    Gone,
}

/// Runs accept + serve for `listener` on a dedicated reactor thread.
///
/// Returns the waker (stored by the server handle: `shutdown` sets
/// `stop` then wakes, and the loop exits at its next dispatch point)
/// and the join handle. `connections` is the shared accept counter the
/// server's stats read — ids double as epoll tokens.
pub(crate) fn spawn_reactor_loop<S: FrameService>(
    listener: TcpListener,
    service: Arc<S>,
    service_delay: Duration,
    stop: Arc<AtomicBool>,
    connections: Arc<AtomicU64>,
) -> std::io::Result<(Waker, std::thread::JoinHandle<()>)> {
    listener.set_nonblocking(true)?;
    let mut reactor = Reactor::new()?;
    reactor.register(&listener, LISTENER, Interest::READABLE.edge_triggered())?;
    let waker = reactor.waker();

    let handle = std::thread::Builder::new()
        .name("geoproof-reactor".into())
        .spawn(move || {
            let mut conns: HashMap<u64, Conn> = HashMap::new();
            let mut events = Events::with_capacity(256);
            while !stop.load(Ordering::Relaxed) {
                // The 500 ms cap is a liveness backstop only — shutdown
                // wakes the poll immediately via the waker.
                if reactor.poll(&mut events, Some(500)).is_err() {
                    break;
                }
                if geoproof_obs::enabled() {
                    let m = reactor_metrics();
                    m.polls.inc();
                    m.io_events.add(events.io().len() as u64);
                    m.timers.add(events.timers().len() as u64);
                }
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                for i in 0..events.io().len() {
                    let ev = events.io()[i];
                    if ev.token == LISTENER {
                        accept_all(&listener, &mut reactor, &mut conns, &*service, &connections);
                        continue;
                    }
                    let id = ev.token.0 - 1;
                    let Some(conn) = conns.get_mut(&id) else {
                        continue;
                    };
                    let mut fate = Fate::Alive;
                    if ev.error {
                        fate = Fate::Gone;
                    }
                    if matches!(fate, Fate::Alive) && ev.writable {
                        fate = on_writable(conn, &mut reactor, id);
                    }
                    if matches!(fate, Fate::Alive) && ev.readable && !conn.closing {
                        fate = pump(conn, id, &mut reactor, &*service, service_delay, &stop);
                    }
                    if matches!(fate, Fate::Gone) {
                        drop_conn(&mut conns, id, &mut reactor, &*service);
                    }
                }
                for i in 0..events.timers().len() {
                    let token = events.timers()[i];
                    let id = token.0 - 1;
                    let Some(conn) = conns.get_mut(&id) else {
                        continue;
                    };
                    // The parked frame's service delay has elapsed:
                    // dispatch it, then resume pumping buffered frames.
                    let mut fate = Fate::Alive;
                    if let Some(msg) = conn.parked.take() {
                        fate = dispatch(conn, id, msg, &*service, &mut reactor);
                    }
                    if matches!(fate, Fate::Alive) && !conn.closing {
                        fate = pump(conn, id, &mut reactor, &*service, service_delay, &stop);
                    }
                    if matches!(fate, Fate::Gone) {
                        drop_conn(&mut conns, id, &mut reactor, &*service);
                    }
                }
            }
            // Shutdown: every remaining connection releases its state.
            let ids: Vec<u64> = conns.keys().copied().collect();
            for id in ids {
                drop_conn(&mut conns, id, &mut reactor, &*service);
            }
        })?;
    Ok((waker, handle))
}

fn accept_all<S: FrameService>(
    listener: &TcpListener,
    reactor: &mut Reactor,
    conns: &mut HashMap<u64, Conn>,
    service: &S,
    connections: &Arc<AtomicU64>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                let conn_id = connections.fetch_add(1, Ordering::Relaxed);
                if reactor
                    .register(
                        &stream,
                        conn_token(conn_id),
                        Interest::READABLE.edge_triggered(),
                    )
                    .is_err()
                {
                    continue;
                }
                service.on_open(conn_id);
                if geoproof_obs::enabled() {
                    reactor_metrics().connections.inc();
                }
                conns.insert(
                    conn_id,
                    Conn {
                        stream,
                        reader: IdleFrameReader::new(),
                        out: VecDeque::new(),
                        out_pos: 0,
                        out_bytes: 0,
                        parked: None,
                        want_write: false,
                        closing: false,
                    },
                );
            }
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                return
            }
            // Transient per-socket accept failures (ECONNABORTED and
            // friends) skip that socket; the listener stays armed.
            Err(_) => return,
        }
    }
}

/// Drains inbound frames until `WouldBlock`, a parked delay, or death.
fn pump<S: FrameService>(
    conn: &mut Conn,
    id: u64,
    reactor: &mut Reactor,
    service: &S,
    service_delay: Duration,
    stop: &AtomicBool,
) -> Fate {
    // One readiness edge = one pump. A short socket read proves the
    // kernel buffer is drained *right now*, so the reader skips the
    // final EAGAIN read; data landing afterwards raises a fresh edge.
    let mut sock_drained = false;
    loop {
        if conn.parked.is_some() || stop.load(Ordering::Relaxed) {
            return Fate::Alive;
        }
        match conn
            .reader
            .poll_et(&mut conn.stream, stop, &mut sock_drained)
        {
            Ok(Polled::Frame(msg)) => {
                if !service_delay.is_zero() && service.delayed(&msg) {
                    // Park the frame and pause reading; the timer reuses
                    // the connection token (timers and I/O events travel
                    // in separate lanes, so there is no collision).
                    reactor.set_timer(
                        conn_token(id),
                        reactor.now_ns() + service_delay.as_nanos() as u64,
                    );
                    conn.parked = Some(msg);
                    return Fate::Alive;
                }
                match dispatch(conn, id, msg, service, reactor) {
                    Fate::Alive => {}
                    Fate::Gone => return Fate::Gone,
                }
            }
            Ok(Polled::Idle) => return Fate::Alive,
            Ok(Polled::Closed) | Err(_) => return Fate::Gone,
        }
    }
}

/// Hands one frame to the service and routes its outcome.
fn dispatch<S: FrameService>(
    conn: &mut Conn,
    id: u64,
    msg: WireMessage,
    service: &S,
    reactor: &mut Reactor,
) -> Fate {
    match service.handle(id, msg) {
        FrameOutcome::Reply(reply) => {
            conn.enqueue(&reply);
            if conn.out_bytes > MAX_WRITE_BACKLOG {
                if geoproof_obs::enabled() {
                    reactor_metrics().backlog_drops.inc();
                }
                return Fate::Gone;
            }
            match conn.flush() {
                Ok(true) => {
                    set_write_interest(conn, reactor, id, false);
                    Fate::Alive
                }
                Ok(false) => {
                    set_write_interest(conn, reactor, id, true);
                    Fate::Alive
                }
                Err(_) => Fate::Gone,
            }
        }
        FrameOutcome::Silent => Fate::Alive,
        FrameOutcome::Close => {
            conn.closing = true;
            // Bye after the queue drained: drop now; otherwise linger
            // write-only until the flush completes.
            match conn.flush() {
                Ok(true) => Fate::Gone,
                Ok(false) => {
                    set_write_interest(conn, reactor, id, true);
                    Fate::Alive
                }
                Err(_) => Fate::Gone,
            }
        }
    }
}

fn on_writable(conn: &mut Conn, reactor: &mut Reactor, id: u64) -> Fate {
    match conn.flush() {
        Ok(true) => {
            if conn.closing {
                return Fate::Gone;
            }
            set_write_interest(conn, reactor, id, false);
            Fate::Alive
        }
        Ok(false) => Fate::Alive,
        Err(_) => Fate::Gone,
    }
}

fn set_write_interest(conn: &mut Conn, reactor: &mut Reactor, id: u64, on: bool) {
    if conn.want_write == on {
        return;
    }
    let interest = if on {
        Interest::BOTH.edge_triggered()
    } else {
        Interest::READABLE.edge_triggered()
    };
    if reactor
        .reregister(&conn.stream, conn_token(id), interest)
        .is_ok()
    {
        conn.want_write = on;
    }
}

fn drop_conn<S: FrameService>(
    conns: &mut HashMap<u64, Conn>,
    id: u64,
    reactor: &mut Reactor,
    service: &S,
) {
    if let Some(conn) = conns.remove(&id) {
        reactor.cancel_timer(conn_token(id));
        let _ = reactor.deregister(&conn.stream);
        service.on_close(id);
        if geoproof_obs::enabled() {
            reactor_metrics().connections.dec();
        }
    }
}
