//! Real TCP challenge–response: a prover server and a timing client.
//!
//! Everything else in the workspace runs on simulated time; this module
//! runs the verifier↔prover link over an actual socket with wall-clock
//! timing, demonstrating the protocol outside the simulator (the role the
//! repro hint assigns to a "challenge-response server"). Threads plus
//! blocking I/O keep it dependency-free.

use crate::codec::{read_frame, write_frame, CodecError, WireMessage, MAX_FRAME};
use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared segment store served by a [`ProverServer`]: per file, a list
/// of refcounted segment views (typically all slices of one storage
/// arena). Serving a challenge clones a `Bytes` — a refcount bump, not
/// a payload copy.
pub type SegmentStore = Arc<Mutex<HashMap<String, Vec<Bytes>>>>;

/// Packs owned segment vectors into store form (each `Vec` is wrapped,
/// not copied).
pub fn store_segments(segments: Vec<Vec<u8>>) -> Vec<Bytes> {
    segments.into_iter().map(Bytes::from).collect()
}

/// How long a legacy accept loop parks between accept attempts. Short,
/// because nothing signals the condvar when a connection arrives — only
/// shutdown does.
const ACCEPT_PARK: Duration = Duration::from_millis(2);

/// Shutdown-interruptible park for the legacy (threaded) accept loops.
///
/// A non-blocking listener has to retry `accept`; the loops used to
/// plain-`sleep(2ms)` between attempts, which a shutdown could not
/// interrupt — worst case it waited out the whole sleep, and the pattern
/// read as a busy-wait. Parking on a condvar keeps the identical retry
/// cadence but lets [`AcceptPark::wake`] (called with the stop flag set)
/// end the wait immediately.
pub(crate) struct AcceptPark {
    lock: std::sync::Mutex<()>,
    cv: std::sync::Condvar,
}

impl AcceptPark {
    pub(crate) fn new() -> Arc<AcceptPark> {
        Arc::new(AcceptPark {
            lock: std::sync::Mutex::new(()),
            cv: std::sync::Condvar::new(),
        })
    }

    /// Parks for [`ACCEPT_PARK`] unless `stop` is already set; a
    /// concurrent [`AcceptPark::wake`] ends the park early. Checking
    /// `stop` under the lock closes the set-flag/park race.
    pub(crate) fn park_unless(&self, stop: &AtomicBool) {
        let guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        if stop.load(Ordering::Relaxed) {
            return;
        }
        drop(
            self.cv
                .wait_timeout(guard, ACCEPT_PARK)
                .unwrap_or_else(|e| e.into_inner()),
        );
    }

    /// Wakes a parked accept loop (the caller has set its stop flag).
    pub(crate) fn wake(&self) {
        drop(self.lock.lock().unwrap_or_else(|e| e.into_inner()));
        self.cv.notify_all();
    }
}

/// A TCP prover: answers `Challenge` frames with `Response` frames.
pub struct ProverServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    store: SegmentStore,
    /// Artificial per-request service delay (simulates disk look-up).
    service_delay: Duration,
    /// Legacy path: wakes the parked accept loop at shutdown.
    park: Option<Arc<AcceptPark>>,
    /// Reactor path: interrupts the event loop's poll at shutdown.
    waker: Option<geoproof_reactor::Waker>,
}

impl std::fmt::Debug for ProverServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProverServer")
            .field("addr", &self.addr)
            .field("service_delay", &self.service_delay)
            .finish_non_exhaustive()
    }
}

impl ProverServer {
    /// Binds to an ephemeral localhost port and starts serving.
    ///
    /// `service_delay` is added per request, emulating storage latency so
    /// wall-clock experiments can contrast disk classes.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn spawn(store: SegmentStore, service_delay: Duration) -> std::io::Result<ProverServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let park = AcceptPark::new();
        let stop_flag = stop.clone();
        let accept_park = park.clone();
        let store_ref = store.clone();
        listener.set_nonblocking(true)?;
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let store = store_ref.clone();
                        let stop = stop_flag.clone();
                        std::thread::spawn(move || {
                            let _ = serve_connection(stream, store, service_delay, stop);
                        });
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        accept_park.park_unless(&stop_flag);
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(ProverServer {
            addr,
            stop,
            handle: Some(handle),
            store,
            service_delay,
            park: Some(park),
            waker: None,
        })
    }

    /// Event-driven variant of [`ProverServer::spawn`]: identical
    /// protocol behaviour (the frame handling is literally shared —
    /// see `reactor_serve::FrameService`), but every
    /// connection is a state machine on one epoll reactor thread
    /// instead of a thread of its own, so concurrency is bounded by
    /// file descriptors, not stacks. The service delay runs on reactor
    /// timers rather than `thread::sleep`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; [`std::io::ErrorKind::Unsupported`]
    /// on targets without the epoll backend (use the threaded path
    /// there).
    pub fn spawn_reactor(
        store: SegmentStore,
        service_delay: Duration,
    ) -> std::io::Result<ProverServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let service = Arc::new(PlainService {
            store: store.clone(),
        });
        let (waker, handle) = crate::reactor_serve::spawn_reactor_loop(
            listener,
            service,
            service_delay,
            stop.clone(),
            Arc::new(std::sync::atomic::AtomicU64::new(0)),
        )?;
        Ok(ProverServer {
            addr,
            stop,
            handle: Some(handle),
            store,
            service_delay,
            park: None,
            waker: Some(waker),
        })
    }

    /// The server's socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replaces a file's segments.
    pub fn put_file(&self, file_id: &str, segments: Vec<Vec<u8>>) {
        self.store
            .lock()
            .insert(file_id.to_owned(), store_segments(segments));
    }

    /// Replaces a file's segments with already-shared views (zero-copy).
    pub fn put_shared(&self, file_id: &str, segments: Vec<Bytes>) {
        self.store.lock().insert(file_id.to_owned(), segments);
    }

    /// Stops the accept loop (open connections close as clients hang
    /// up; on the reactor path the event loop drops them at exit). The
    /// parked/blocked loop is woken immediately rather than waiting out
    /// a poll interval.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(park) = &self.park {
            park.wake();
        }
        if let Some(waker) = &self.waker {
            let _ = waker.wake();
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ProverServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bytes appended to the frame buffer per socket read.
const READ_CHUNK: usize = 4096;

/// Result of one poll on an idle-tolerant frame reader.
#[derive(Debug)]
pub(crate) enum Polled {
    /// A complete frame arrived.
    Frame(WireMessage),
    /// The read timed out with no complete frame; buffered partial bytes
    /// are retained for the next poll.
    Idle,
    /// The peer closed the connection.
    Closed,
}

/// Reads frames from a stream with a read timeout *without losing
/// partially-read bytes across timeouts.
///
/// The previous implementation called [`read_frame`] directly on the
/// socket; `read_exact` under a read timeout can consume part of a frame
/// and then fail with `WouldBlock`/`TimedOut`, and treating that as "no
/// frame yet" silently discarded the consumed bytes — desynchronising the
/// stream for every later frame on that connection. This reader buffers
/// partial frames so an idle timeout is always restartable.
#[derive(Debug)]
pub(crate) struct IdleFrameReader {
    buf: BytesMut,
}

impl IdleFrameReader {
    pub(crate) fn new() -> Self {
        IdleFrameReader {
            buf: BytesMut::new(),
        }
    }

    /// Polls for one frame; `Idle` on timeout, `Closed` on EOF.
    ///
    /// `stop` is checked between reads so a server shutting down is never
    /// held hostage by a client dribbling bytes faster than the read
    /// timeout but slower than a frame (slow loris).
    pub(crate) fn poll<R: Read>(
        &mut self,
        reader: &mut R,
        stop: &AtomicBool,
    ) -> std::io::Result<Polled> {
        loop {
            // A complete frame already buffered?
            if self.buf.len() >= 4 {
                let len = u32::from_be_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
                if len > MAX_FRAME {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        CodecError::FrameTooLarge(len),
                    ));
                }
                if self.buf.len() >= 4 + len {
                    // Split the frame off and decode against the shared
                    // buffer: a segment payload in the frame is sliced,
                    // not copied.
                    let frame = self.buf.split_to(4 + len).freeze();
                    let msg = WireMessage::decode_shared(&frame.slice(4..))
                        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
                    return Ok(Polled::Frame(msg));
                }
            }
            if stop.load(Ordering::Relaxed) {
                return Ok(Polled::Idle);
            }
            // Need more bytes: read straight into the buffer's spare
            // capacity (resize up, read into the tail, truncate back to
            // what arrived) — no stack staging buffer, no second copy.
            let old = self.buf.len();
            self.buf.resize(old + READ_CHUNK, 0);
            let read = reader.read(&mut self.buf[old..]);
            self.buf.truncate(old + read.as_ref().map_or(0, |&n| n));
            match read {
                Ok(0) => return Ok(Polled::Closed),
                Ok(_) => {}
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(ref e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(Polled::Idle);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Edge-triggered variant of [`poll`][Self::poll] for the reactor.
    ///
    /// Identical framing, but a short read (`n < READ_CHUNK`) proves the
    /// socket buffer was empty at that instant, so once the buffered
    /// bytes hold no complete frame it returns `Idle` without issuing
    /// another read — saving the `EAGAIN` syscall that drain-to-
    /// `WouldBlock` pays on every wakeup. Correct only under
    /// edge-triggered epoll, where bytes arriving after the short read
    /// raise a fresh readiness edge; `*sock_drained` must live for one
    /// readiness edge (one pump) and start `false`.
    pub(crate) fn poll_et<R: Read>(
        &mut self,
        reader: &mut R,
        stop: &AtomicBool,
        sock_drained: &mut bool,
    ) -> std::io::Result<Polled> {
        loop {
            if self.buf.len() >= 4 {
                let len = u32::from_be_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
                if len > MAX_FRAME {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        CodecError::FrameTooLarge(len),
                    ));
                }
                if self.buf.len() >= 4 + len {
                    let frame = self.buf.split_to(4 + len).freeze();
                    let msg = WireMessage::decode_shared(&frame.slice(4..))
                        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
                    return Ok(Polled::Frame(msg));
                }
            }
            if *sock_drained || stop.load(Ordering::Relaxed) {
                return Ok(Polled::Idle);
            }
            let old = self.buf.len();
            self.buf.resize(old + READ_CHUNK, 0);
            let read = reader.read(&mut self.buf[old..]);
            self.buf.truncate(old + read.as_ref().map_or(0, |&n| n));
            match read {
                Ok(0) => return Ok(Polled::Closed),
                Ok(n) => {
                    if n < READ_CHUNK {
                        *sock_drained = true;
                    }
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(ref e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(Polled::Idle);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// The plain prover's protocol semantics, shared verbatim between the
/// threaded path ([`serve_connection`]) and the reactor path
/// ([`ProverServer::spawn_reactor`]): answer challenges from the store,
/// close on `Bye`, ignore audit-control frames.
pub(crate) struct PlainService {
    pub(crate) store: SegmentStore,
}

impl crate::reactor_serve::FrameService for PlainService {
    fn handle(&self, _conn_id: u64, msg: WireMessage) -> crate::reactor_serve::FrameOutcome {
        use crate::reactor_serve::FrameOutcome;
        match msg {
            WireMessage::Challenge { file_id, index } => {
                let segment = self
                    .store
                    .lock()
                    .get(&file_id)
                    .and_then(|segs| segs.get(index as usize))
                    .cloned();
                FrameOutcome::Reply(WireMessage::Response { segment })
            }
            WireMessage::Bye => FrameOutcome::Close,
            // A prover ignores audit-control frames.
            _ => FrameOutcome::Silent,
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    store: SegmentStore,
    service_delay: Duration,
    stop: Arc<AtomicBool>,
) -> std::io::Result<()> {
    use crate::reactor_serve::{FrameOutcome, FrameService};
    let service = PlainService { store };
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = stream;
    let mut frames = IdleFrameReader::new();
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        let msg = match frames.poll(&mut reader, &stop) {
            Ok(Polled::Frame(m)) => m,
            Ok(Polled::Idle) => continue,
            Ok(Polled::Closed) | Err(_) => return Ok(()), // disconnect
        };
        if !service_delay.is_zero() && service.delayed(&msg) {
            std::thread::sleep(service_delay);
        }
        match service.handle(0, msg) {
            FrameOutcome::Reply(reply) => write_frame(&mut writer, &reply)?,
            FrameOutcome::Silent => {}
            FrameOutcome::Close => return Ok(()),
        }
    }
}

/// A timing client: sends challenges over TCP and measures wall-clock RTT.
#[derive(Debug)]
pub struct TcpChallenger {
    stream: TcpStream,
}

impl TcpChallenger {
    /// Connects to a prover server.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: SocketAddr) -> std::io::Result<TcpChallenger> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpChallenger { stream })
    }

    /// Sends one challenge and returns `(segment, wall-clock RTT)`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; a non-`Response` reply is
    /// `InvalidData`.
    pub fn challenge(
        &mut self,
        file_id: &str,
        index: u64,
    ) -> std::io::Result<(Option<Bytes>, Duration)> {
        let start = Instant::now();
        write_frame(
            &mut self.stream,
            &WireMessage::Challenge {
                file_id: file_id.to_owned(),
                index,
            },
        )?;
        let reply = read_frame(&mut self.stream)?;
        let rtt = start.elapsed();
        match reply {
            WireMessage::Response { segment } => Ok((segment, rtt)),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected reply {other:?}"),
            )),
        }
    }

    /// Sends one dynamic challenge and returns `(proven segment,
    /// wall-clock RTT)` — the segment plus its Merkle membership proof,
    /// or `None` when the file/index is unknown.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; a non-`DynResponse` reply is
    /// `InvalidData`.
    pub fn dyn_challenge(
        &mut self,
        file_id: &str,
        index: u64,
    ) -> std::io::Result<(Option<(Bytes, geoproof_por::merkle::MerkleProof)>, Duration)> {
        let start = Instant::now();
        write_frame(
            &mut self.stream,
            &WireMessage::DynChallenge {
                file_id: file_id.to_owned(),
                index,
            },
        )?;
        let reply = read_frame(&mut self.stream)?;
        let rtt = start.elapsed();
        match reply {
            WireMessage::DynResponse { segment } => Ok((segment, rtt)),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected reply {other:?}"),
            )),
        }
    }

    /// Ships an owner-tagged replacement for segment `index`, with the
    /// owner's authorisation signature; returns the provider's
    /// post-update digest (`None`: unknown file, bad index, or a
    /// signature the server's registered owner key rejects).
    ///
    /// # Errors
    ///
    /// Propagates socket errors; a non-`UpdateAck` reply is
    /// `InvalidData`.
    pub fn update(
        &mut self,
        file_id: &str,
        index: u64,
        tagged: Bytes,
        sig: [u8; 64],
    ) -> std::io::Result<Option<geoproof_por::dynamic::DynamicDigest>> {
        write_frame(
            &mut self.stream,
            &WireMessage::Update {
                file_id: file_id.to_owned(),
                index,
                tagged,
                sig,
            },
        )?;
        self.read_ack()
    }

    /// Ships an owner-tagged appended segment with its authorisation
    /// signature; returns the provider's post-append digest (`None`:
    /// unknown file or rejected signature).
    ///
    /// # Errors
    ///
    /// Propagates socket errors; a non-`UpdateAck` reply is
    /// `InvalidData`.
    pub fn append(
        &mut self,
        file_id: &str,
        tagged: Bytes,
        sig: [u8; 64],
    ) -> std::io::Result<Option<geoproof_por::dynamic::DynamicDigest>> {
        write_frame(
            &mut self.stream,
            &WireMessage::Append {
                file_id: file_id.to_owned(),
                tagged,
                sig,
            },
        )?;
        self.read_ack()
    }

    fn read_ack(&mut self) -> std::io::Result<Option<geoproof_por::dynamic::DynamicDigest>> {
        match read_frame(&mut self.stream)? {
            WireMessage::UpdateAck { new_digest } => Ok(new_digest),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected reply {other:?}"),
            )),
        }
    }

    /// Ends the session politely.
    pub fn bye(&mut self) -> std::io::Result<()> {
        write_frame(&mut self.stream, &WireMessage::Bye)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(file: &str, n: usize) -> SegmentStore {
        let store: SegmentStore = Arc::new(Mutex::new(HashMap::new()));
        store.lock().insert(
            file.to_owned(),
            (0..n).map(|i| Bytes::from(vec![i as u8; 83])).collect(),
        );
        store
    }

    #[test]
    fn serves_segments_over_tcp() {
        let server = ProverServer::spawn(store_with("f", 10), Duration::ZERO).expect("bind");
        let mut client = TcpChallenger::connect(server.addr()).expect("connect");
        for idx in [0u64, 5, 9] {
            let (seg, rtt) = client.challenge("f", idx).expect("challenge");
            assert_eq!(seg.unwrap(), vec![idx as u8; 83]);
            assert!(rtt < Duration::from_secs(1));
        }
        client.bye().unwrap();
    }

    #[test]
    fn missing_segment_returns_none() {
        let server = ProverServer::spawn(store_with("f", 3), Duration::ZERO).expect("bind");
        let mut client = TcpChallenger::connect(server.addr()).expect("connect");
        let (seg, _) = client.challenge("f", 99).unwrap();
        assert!(seg.is_none());
        let (seg, _) = client.challenge("ghost", 0).unwrap();
        assert!(seg.is_none());
    }

    #[test]
    fn service_delay_shows_up_in_rtt() {
        let fast = ProverServer::spawn(store_with("f", 3), Duration::ZERO).expect("bind");
        let slow =
            ProverServer::spawn(store_with("f", 3), Duration::from_millis(30)).expect("bind");
        let mut cf = TcpChallenger::connect(fast.addr()).unwrap();
        let mut cs = TcpChallenger::connect(slow.addr()).unwrap();
        let (_, rf) = cf.challenge("f", 0).unwrap();
        let (_, rs) = cs.challenge("f", 0).unwrap();
        assert!(
            rs >= rf + Duration::from_millis(20),
            "fast {rf:?}, slow {rs:?}"
        );
    }

    #[test]
    fn multiple_clients_share_one_server() {
        let server = ProverServer::spawn(store_with("f", 5), Duration::ZERO).expect("bind");
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = TcpChallenger::connect(addr).unwrap();
                    for i in 0..5 {
                        let (seg, _) = c.challenge("f", i).unwrap();
                        assert!(seg.is_some());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn slow_dribbled_frame_does_not_desync_the_stream() {
        // Regression: a frame split across the server's 200 ms read
        // timeout used to lose its already-consumed bytes, desynchronising
        // every later frame on the connection.
        let server = ProverServer::spawn(store_with("f", 4), Duration::ZERO).expect("bind");
        let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
        raw.set_nodelay(true).unwrap();
        let frame = WireMessage::Challenge {
            file_id: "f".to_owned(),
            index: 2,
        }
        .encode();
        // Send the length prefix plus one payload byte, stall past the
        // server's read timeout, then send the rest.
        use std::io::Write;
        raw.write_all(&frame[..5]).unwrap();
        raw.flush().unwrap();
        std::thread::sleep(Duration::from_millis(350));
        raw.write_all(&frame[5..]).unwrap();
        raw.flush().unwrap();
        let reply = read_frame(&mut raw).expect("reply after dribble");
        assert_eq!(
            reply,
            WireMessage::Response {
                segment: Some(vec![2u8; 83].into())
            }
        );
        // The stream is still in sync: a second, normally-sent challenge
        // round-trips too.
        let frame2 = WireMessage::Challenge {
            file_id: "f".to_owned(),
            index: 0,
        }
        .encode();
        raw.write_all(&frame2).unwrap();
        let reply2 = read_frame(&mut raw).expect("second reply");
        assert_eq!(
            reply2,
            WireMessage::Response {
                segment: Some(vec![0u8; 83].into())
            }
        );
    }

    #[test]
    fn put_file_updates_store() {
        let server = ProverServer::spawn(store_with("f", 1), Duration::ZERO).expect("bind");
        server.put_file("g", vec![vec![0xaa; 10]]);
        let mut client = TcpChallenger::connect(server.addr()).unwrap();
        let (seg, _) = client.challenge("g", 0).unwrap();
        assert_eq!(seg.unwrap(), vec![0xaa; 10]);
    }
}
