//! # geoproof-wire
//!
//! Wire-level transport for GeoProof:
//!
//! * [`codec`] — length-prefixed frames for challenge/response and audit
//!   control messages, with strict parsing (size caps, UTF-8 checks,
//!   truncation detection);
//! * [`tcp`] — a TCP prover server plus a wall-clock timing client, so
//!   the timed challenge–response phase can run over a real socket
//!   rather than the simulator;
//! * [`mux`] — the multi-connection, session-multiplexing server behind
//!   `geoproof serve --concurrent`: sharded session table, per-session
//!   statistics, graceful shutdown that joins every connection.
//!
//! Both servers run in one of two execution models sharing one
//! protocol implementation: the classic **threaded** path (one thread
//! per connection, blocking I/O) and the **reactor** path
//! (`spawn_reactor*` constructors — every connection a non-blocking
//! state machine on a single `geoproof_reactor` epoll thread, so
//! concurrency is bounded by file descriptors rather than stacks).
//! See `crates/wire/docs/serving.md` for the architecture.
//!
//! # Examples
//!
//! ```
//! use geoproof_wire::codec::WireMessage;
//!
//! let msg = WireMessage::Challenge { file_id: "f".into(), index: 7 };
//! let frame = msg.encode();
//! assert_eq!(WireMessage::decode(&frame[4..]), Ok(msg));
//! ```

pub mod codec;
pub mod mux;
mod reactor_serve;
pub mod tcp;

pub use codec::{read_frame, write_frame, CodecError, WireMessage, MAX_FRAME};
pub use geoproof_reactor::raise_nofile_limit;
pub use mux::{MuxProverServer, MuxStats, SessionKey, SessionStats, MAX_SESSIONS_PER_CONNECTION};
pub use tcp::{ProverServer, SegmentStore, TcpChallenger};
