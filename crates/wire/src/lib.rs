//! # geoproof-wire
//!
//! Wire-level transport for GeoProof:
//!
//! * [`codec`] — length-prefixed frames for challenge/response and audit
//!   control messages, with strict parsing (size caps, UTF-8 checks,
//!   truncation detection);
//! * [`tcp`] — a threaded TCP prover server plus a wall-clock timing
//!   client, so the timed challenge–response phase can run over a real
//!   socket rather than the simulator;
//! * [`mux`] — the multi-connection, session-multiplexing server behind
//!   `geoproof serve --concurrent`: sharded session table, per-session
//!   statistics, graceful shutdown that joins every connection.
//!
//! # Examples
//!
//! ```
//! use geoproof_wire::codec::WireMessage;
//!
//! let msg = WireMessage::Challenge { file_id: "f".into(), index: 7 };
//! let frame = msg.encode();
//! assert_eq!(WireMessage::decode(&frame[4..]), Ok(msg));
//! ```

pub mod codec;
pub mod mux;
pub mod tcp;

pub use codec::{read_frame, write_frame, CodecError, WireMessage, MAX_FRAME};
pub use mux::{MuxProverServer, MuxStats, SessionKey, SessionStats, MAX_SESSIONS_PER_CONNECTION};
pub use tcp::{ProverServer, SegmentStore, TcpChallenger};
