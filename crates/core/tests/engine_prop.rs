//! Property tests for the concurrent engine's session table: no session
//! is ever lost or duplicated under interleaved insert/complete, whether
//! the interleaving comes from a generated op sequence or from real
//! threads hammering the shards.

use geoproof_core::engine::{AuditSession, ProverId, SessionTable};
use geoproof_core::messages::AuditRequest;
use proptest::prelude::*;
use std::collections::HashSet;

fn session(id: &str) -> AuditSession {
    AuditSession {
        prover: ProverId::from(id),
        request: AuditRequest {
            file_id: "f".into(),
            n_segments: 16,
            k: 4,
            nonce: [0u8; 32],
        },
        transcript: None,
        report: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// An arbitrary interleaving of inserts and completes over a small id
    /// space must leave the table exactly matching a sequential model
    /// set: inserts succeed iff the id is absent, completes succeed iff
    /// present, and the live set is conserved.
    #[test]
    fn table_matches_model_under_arbitrary_interleavings(
        ops in proptest::collection::vec((any::<bool>(), 0u8..12), 1..120),
        shards in 1usize..9,
    ) {
        let table = SessionTable::new(shards);
        let mut model: HashSet<String> = HashSet::new();
        for (is_insert, id_byte) in ops {
            let id = format!("prover-{id_byte}");
            if is_insert {
                let inserted = table.insert(session(&id));
                prop_assert_eq!(inserted, model.insert(id.clone()), "insert {}", id);
            } else {
                let removed = table.complete(&ProverId::from(id.as_str()));
                prop_assert_eq!(removed.is_some(), model.remove(&id), "complete {}", id);
            }
            prop_assert_eq!(table.len(), model.len());
        }
        let live: Vec<String> = table.ids().into_iter().map(|p| p.0).collect();
        let mut expected: Vec<String> = model.into_iter().collect();
        expected.sort();
        prop_assert_eq!(live, expected);
    }

    /// Sessions parked in the table keep their request contents intact —
    /// shard routing must never mix sessions up.
    #[test]
    fn sessions_keep_their_identity_across_shards(
        ids in proptest::collection::btree_set("[a-z]{1,8}", 1..20),
        shards in 1usize..17,
    ) {
        let table = SessionTable::new(shards);
        for id in &ids {
            let mut s = session(id);
            s.request.n_segments = id.len() as u64; // marker tied to the id
            prop_assert!(table.insert(s));
        }
        for id in &ids {
            let n = table
                .with_mut(&ProverId::from(id.as_str()), |s| s.request.n_segments)
                .expect("session present");
            prop_assert_eq!(n, id.len() as u64, "session for {} corrupted", id);
        }
        prop_assert_eq!(table.len(), ids.len());
    }
}

/// Real threads, one shared table: each thread owns a disjoint id space
/// and loops insert→complete; a final sweep checks conservation (total
/// successful inserts − completes == live sessions, and every live
/// session belongs to exactly one owner).
#[test]
fn threads_never_lose_or_duplicate_sessions() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let table = SessionTable::new(8);
    let inserts = AtomicUsize::new(0);
    let completes = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..8 {
            let table = &table;
            let inserts = &inserts;
            let completes = &completes;
            scope.spawn(move || {
                for round in 0..200 {
                    let id = format!("t{}-{}", t, round % 10);
                    if table.insert(session(&id)) {
                        inserts.fetch_add(1, Ordering::Relaxed);
                    }
                    // Complete every other round, so some sessions stay live.
                    if round % 2 == 0 && table.complete(&ProverId::from(id.as_str())).is_some() {
                        completes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let live = table.len();
    assert_eq!(
        inserts.load(Ordering::Relaxed) - completes.load(Ordering::Relaxed),
        live,
        "sessions lost or duplicated across shards"
    );
    // No id appears twice in the live listing.
    let ids = table.ids();
    let set: HashSet<_> = ids.iter().collect();
    assert_eq!(set.len(), ids.len());
}

/// Concurrent inserts of the *same* ids from many threads: exactly one
/// winner per id, everyone else refused.
#[test]
fn contended_inserts_have_exactly_one_winner() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let table = SessionTable::new(4);
    let wins = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let table = &table;
            let wins = &wins;
            scope.spawn(move || {
                for id in 0..50 {
                    if table.insert(session(&format!("shared-{id}"))) {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(wins.load(Ordering::Relaxed), 50);
    assert_eq!(table.len(), 50);
}
