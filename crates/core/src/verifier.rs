//! The tamper-proof verifier device V (paper Fig. 4/5).
//!
//! A GPS-enabled box on the provider's LAN, trusted to follow the protocol
//! and holding a signing key the provider cannot extract. On a TPA
//! trigger it: draws k distinct random challenge indices, runs the timed
//! challenge–response loop against the prover, reads its GPS fix, and
//! signs the whole transcript.

use crate::dynamic_audit::{
    DynAuditRequest, DynSegmentProvider, DynSignedTranscript, DynTimedRound,
};
use crate::messages::{AuditRequest, SignedTranscript, TimedRound};
use crate::provider::SegmentProvider;
use bytes::Bytes;
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_crypto::schnorr::{SigningKey, VerifyingKey};
use geoproof_geo::gps::GpsReceiver;
use geoproof_por::dynamic::ProvenSegment;
use geoproof_sim::clock::SimClock;
use geoproof_sim::time::SimDuration;
use geoproof_storage::server::FileId;

/// The verifier device.
pub struct VerifierDevice {
    signing: SigningKey,
    gps: GpsReceiver,
    clock: SimClock,
    rng: ChaChaRng,
}

impl std::fmt::Debug for VerifierDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifierDevice")
            .field("gps", &self.gps)
            .finish_non_exhaustive()
    }
}

impl VerifierDevice {
    /// Builds a device with its signing key, GPS receiver, and the clock
    /// all latencies are charged to.
    pub fn new(signing: SigningKey, gps: GpsReceiver, clock: SimClock, seed: u64) -> Self {
        VerifierDevice {
            signing,
            gps,
            clock,
            rng: ChaChaRng::from_u64_seed(seed),
        }
    }

    /// The device's public key (registered with the TPA at install time).
    pub fn verifying_key(&self) -> VerifyingKey {
        self.signing.verifying_key()
    }

    /// Mutable access to the GPS receiver (attack experiments spoof it).
    pub fn gps_mut(&mut self) -> &mut GpsReceiver {
        &mut self.gps
    }

    /// The clock this device charges round times to. The fleet simulator
    /// re-anchors it to the event scheduler's timeline.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Starts the Fig. 5 protocol, returning the per-session state
    /// machine. The device draws the k distinct challenge indices up
    /// front; the caller (a blocking loop, a worker thread, or a
    /// discrete-event simulation) then feeds responses round by round and
    /// calls [`VerifierDevice::finish_audit`] for the signed transcript.
    ///
    /// # Panics
    ///
    /// Panics if the request asks for more distinct challenges than there
    /// are segments.
    pub fn begin_audit(&mut self, request: &AuditRequest) -> AuditRun {
        let indices = self
            .rng
            .sample_distinct(request.n_segments, request.k as usize);
        let capacity = indices.len();
        AuditRun {
            request: request.clone(),
            indices,
            rounds: Vec::with_capacity(capacity),
        }
    }

    /// Signs a completed run into the transcript the TPA verifies.
    ///
    /// # Panics
    ///
    /// Panics if rounds are still outstanding — a device never signs a
    /// partial transcript.
    pub fn finish_audit(&mut self, run: AuditRun) -> SignedTranscript {
        assert!(
            run.is_complete(),
            "cannot sign a transcript with {} rounds outstanding",
            run.remaining()
        );
        let position = self.gps.read_fix().position;
        let bytes = SignedTranscript::signing_bytes(
            &run.request.file_id,
            &run.request.nonce,
            &position,
            &run.rounds,
        );
        let signature = self.signing.sign(&bytes, &mut self.rng);
        SignedTranscript {
            file_id: run.request.file_id,
            nonce: run.request.nonce,
            position,
            rounds: run.rounds,
            signature,
        }
    }

    /// Runs the Fig. 5 protocol against `provider` and returns the signed
    /// transcript.
    ///
    /// Per round j: pick c_j, start the clock, request segment c_j, stop
    /// the clock on response; afterwards sign
    /// `(Δt*, c, {S_cj}, N, Pos_v)`. This is [`VerifierDevice::begin_audit`]
    /// driven to completion in a blocking loop.
    ///
    /// # Panics
    ///
    /// Panics if the request asks for more distinct challenges than there
    /// are segments.
    pub fn run_audit(
        &mut self,
        request: &AuditRequest,
        provider: &mut dyn SegmentProvider,
    ) -> SignedTranscript {
        let fid = FileId(request.file_id.clone());
        let mut run = self.begin_audit(request);
        while let Some(index) = run.next_index() {
            let timer = self.clock.start_timer();
            let (data, service_time) = provider.serve(&fid, index);
            self.clock.advance(service_time);
            run.record_round(data, timer.elapsed());
        }
        self.finish_audit(run)
    }
}

impl VerifierDevice {
    /// Starts the dynamic Fig. 5 protocol: draws k distinct challenge
    /// indices out of the digest's segment count up front; the caller
    /// feeds proven responses round by round and calls
    /// [`VerifierDevice::finish_dyn_audit`] for the signed transcript.
    ///
    /// # Panics
    ///
    /// Panics if the request asks for more distinct challenges than the
    /// digest has segments.
    pub fn begin_dyn_audit(&mut self, request: &DynAuditRequest) -> DynAuditRun {
        let indices = self
            .rng
            .sample_distinct(request.digest.segments, request.k as usize);
        let capacity = indices.len();
        DynAuditRun {
            request: request.clone(),
            indices,
            rounds: Vec::with_capacity(capacity),
        }
    }

    /// Signs a completed dynamic run. The audited digest is echoed into
    /// the transcript and covered by the signature, binding the verdict
    /// to the exact file state it judged.
    ///
    /// # Panics
    ///
    /// Panics if rounds are still outstanding.
    pub fn finish_dyn_audit(&mut self, run: DynAuditRun) -> DynSignedTranscript {
        assert!(
            run.is_complete(),
            "cannot sign a transcript with {} rounds outstanding",
            run.remaining()
        );
        let position = self.gps.read_fix().position;
        let bytes = DynSignedTranscript::signing_bytes(
            &run.request.file_id,
            &run.request.nonce,
            &run.request.digest,
            &position,
            &run.rounds,
        );
        let signature = self.signing.sign(&bytes, &mut self.rng);
        DynSignedTranscript {
            file_id: run.request.file_id,
            nonce: run.request.nonce,
            digest: run.request.digest,
            position,
            rounds: run.rounds,
            signature,
        }
    }

    /// Runs the dynamic protocol against `provider` in a blocking loop:
    /// per round, the clock starts, the proven segment is fetched, the
    /// clock stops — the *same* Δt discipline as static audits, with the
    /// membership proof fetched inside the timed window (a provider
    /// cannot buy time by deferring proof construction).
    ///
    /// # Panics
    ///
    /// As [`VerifierDevice::begin_dyn_audit`].
    pub fn run_dyn_audit(
        &mut self,
        request: &DynAuditRequest,
        provider: &mut dyn DynSegmentProvider,
    ) -> DynSignedTranscript {
        let mut run = self.begin_dyn_audit(request);
        while let Some(index) = run.next_index() {
            let timer = self.clock.start_timer();
            let (served, service_time) = provider.serve_dyn(&request.file_id, index);
            self.clock.advance(service_time);
            run.record_round(served, timer.elapsed());
        }
        self.finish_dyn_audit(run)
    }
}

/// One dynamic audit in progress: the dynamic twin of [`AuditRun`],
/// carrying proven segments instead of bare ones.
#[derive(Debug)]
pub struct DynAuditRun {
    request: DynAuditRequest,
    indices: Vec<u64>,
    rounds: Vec<DynTimedRound>,
}

impl DynAuditRun {
    /// The request that started this run.
    pub fn request(&self) -> &DynAuditRequest {
        &self.request
    }

    /// The next index to challenge, or `None` when all rounds are done.
    pub fn next_index(&self) -> Option<u64> {
        self.indices.get(self.rounds.len()).copied()
    }

    /// Records the response to the current round with its measured RTT.
    /// `None` (prover had nothing) becomes an empty segment with an
    /// empty-sibling proof — signed as-is, and unable to verify.
    ///
    /// # Panics
    ///
    /// Panics if the run is already complete.
    pub fn record_round(&mut self, served: Option<ProvenSegment>, rtt: SimDuration) {
        let index = self
            .next_index()
            .expect("record_round called on a completed run");
        let (segment, proof) = match served {
            Some(p) => (p.segment, p.proof),
            None => (
                Bytes::new(),
                geoproof_por::merkle::MerkleProof {
                    index,
                    siblings: Vec::new(),
                },
            ),
        };
        self.rounds.push(DynTimedRound {
            index,
            segment,
            proof,
            rtt,
        });
    }

    /// Rounds still outstanding.
    pub fn remaining(&self) -> usize {
        self.indices.len() - self.rounds.len()
    }

    /// True when every challenge has been answered.
    pub fn is_complete(&self) -> bool {
        self.rounds.len() == self.indices.len()
    }
}

/// One audit in progress on a verifier device: the challenge/response
/// state machine the concurrent engine drives.
///
/// Rounds must be answered in challenge order (the protocol is strictly
/// sequential per session — that is what makes the timing meaningful);
/// concurrency comes from interleaving many `AuditRun`s, not from
/// reordering rounds within one.
#[derive(Debug)]
pub struct AuditRun {
    request: AuditRequest,
    indices: Vec<u64>,
    rounds: Vec<TimedRound>,
}

impl AuditRun {
    /// The request that started this run.
    pub fn request(&self) -> &AuditRequest {
        &self.request
    }

    /// The next index to challenge, or `None` when all rounds are done.
    pub fn next_index(&self) -> Option<u64> {
        self.indices.get(self.rounds.len()).copied()
    }

    /// Records the response to the current round with its measured RTT.
    ///
    /// # Panics
    ///
    /// Panics if the run is already complete.
    pub fn record_round(&mut self, segment: Option<Bytes>, rtt: SimDuration) {
        let index = self
            .next_index()
            .expect("record_round called on a completed run");
        self.rounds.push(TimedRound {
            index,
            segment: segment.unwrap_or_default(),
            rtt,
        });
    }

    /// Rounds still outstanding.
    pub fn remaining(&self) -> usize {
        self.indices.len() - self.rounds.len()
    }

    /// True when every challenge has been answered.
    pub fn is_complete(&self) -> bool {
        self.rounds.len() == self.indices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::LocalProvider;
    use geoproof_geo::coords::places::BRISBANE;
    use geoproof_net::lan::LanPath;
    use geoproof_storage::hdd::{HddModel, WD_2500JD};
    use geoproof_storage::server::StorageServer;

    fn device(seed: u64) -> VerifierDevice {
        let mut rng = ChaChaRng::from_u64_seed(seed);
        let sk = SigningKey::generate(&mut rng);
        VerifierDevice::new(sk, GpsReceiver::new(BRISBANE), SimClock::new(), seed)
    }

    fn provider() -> LocalProvider {
        let mut s = StorageServer::new(HddModel::deterministic(WD_2500JD), 1);
        s.put_file(FileId::from("f"), vec![vec![0x5au8; 83]; 50]);
        LocalProvider::new(s, LanPath::adjacent(), 2)
    }

    fn request(k: u32) -> AuditRequest {
        AuditRequest {
            file_id: "f".into(),
            n_segments: 50,
            k,
            nonce: [9u8; 32],
        }
    }

    #[test]
    fn transcript_has_k_distinct_rounds() {
        let mut v = device(1);
        let mut p = provider();
        let t = v.run_audit(&request(10), &mut p);
        assert_eq!(t.rounds.len(), 10);
        let set: std::collections::HashSet<u64> = t.rounds.iter().map(|r| r.index).collect();
        assert_eq!(set.len(), 10, "challenge indices must be distinct");
        assert!(t.rounds.iter().all(|r| r.index < 50));
    }

    #[test]
    fn rounds_measure_service_time() {
        let mut v = device(2);
        let mut p = provider();
        let t = v.run_audit(&request(5), &mut p);
        for r in &t.rounds {
            // Deterministic WD lookup ≈ 13.1 ms + adjacent LAN.
            let ms = r.rtt.as_millis_f64();
            assert!(ms > 13.0 && ms < 14.0, "round rtt {ms}");
        }
    }

    #[test]
    fn signature_verifies_under_device_key() {
        let mut v = device(3);
        let mut p = provider();
        let t = v.run_audit(&request(5), &mut p);
        let bytes = SignedTranscript::signing_bytes(&t.file_id, &t.nonce, &t.position, &t.rounds);
        assert!(v.verifying_key().verify(&bytes, &t.signature));
    }

    #[test]
    fn transcript_records_gps_fix() {
        let mut v = device(4);
        let mut p = provider();
        let t = v.run_audit(&request(3), &mut p);
        assert_eq!(t.position, BRISBANE);
    }

    #[test]
    fn missing_segments_become_empty_rounds() {
        let mut v = device(5);
        let mut p = provider();
        let req = AuditRequest {
            file_id: "nope".into(),
            n_segments: 50,
            k: 4,
            nonce: [0u8; 32],
        };
        let t = v.run_audit(&req, &mut p);
        assert!(t.rounds.iter().all(|r| r.segment.is_empty()));
    }

    #[test]
    fn stepwise_run_equals_blocking_run() {
        // Driving the state machine by hand must produce byte-identical
        // transcripts to run_audit under the same device state.
        let mut v1 = device(7);
        let mut v2 = device(7);
        let mut p1 = provider();
        let mut p2 = provider();
        let req = request(6);
        let blocking = v1.run_audit(&req, &mut p1);

        let mut run = v2.begin_audit(&req);
        let fid = FileId::from("f");
        while let Some(index) = run.next_index() {
            let timer = v2.clock().start_timer();
            let (data, t) = p2.serve(&fid, index);
            v2.clock().advance(t);
            run.record_round(data, timer.elapsed());
        }
        let stepwise = v2.finish_audit(run);
        assert_eq!(blocking, stepwise);
    }

    #[test]
    #[should_panic(expected = "rounds outstanding")]
    fn partial_transcript_is_never_signed() {
        let mut v = device(8);
        let req = request(5);
        let run = v.begin_audit(&req);
        let _ = v.finish_audit(run); // zero of five rounds recorded
    }

    #[test]
    fn run_tracks_progress() {
        let mut v = device(9);
        let mut run = v.begin_audit(&request(3));
        assert_eq!(run.remaining(), 3);
        assert!(!run.is_complete());
        while let Some(_idx) = run.next_index() {
            run.record_round(Some(vec![1].into()), SimDuration::from_millis(1));
        }
        assert!(run.is_complete());
        assert_eq!(run.remaining(), 0);
        assert_eq!(run.next_index(), None);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversized_challenge_panics() {
        let mut v = device(6);
        let mut p = provider();
        let req = AuditRequest {
            file_id: "f".into(),
            n_segments: 5,
            k: 6,
            nonce: [0u8; 32],
        };
        v.run_audit(&req, &mut p);
    }
}
