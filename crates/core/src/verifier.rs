//! The tamper-proof verifier device V (paper Fig. 4/5).
//!
//! A GPS-enabled box on the provider's LAN, trusted to follow the protocol
//! and holding a signing key the provider cannot extract. On a TPA
//! trigger it: draws k distinct random challenge indices, runs the timed
//! challenge–response loop against the prover, reads its GPS fix, and
//! signs the whole transcript.

use crate::messages::{AuditRequest, SignedTranscript, TimedRound};
use crate::provider::SegmentProvider;
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_crypto::schnorr::{SigningKey, VerifyingKey};
use geoproof_geo::gps::GpsReceiver;
use geoproof_sim::clock::SimClock;
use geoproof_storage::server::FileId;

/// The verifier device.
pub struct VerifierDevice {
    signing: SigningKey,
    gps: GpsReceiver,
    clock: SimClock,
    rng: ChaChaRng,
}

impl std::fmt::Debug for VerifierDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifierDevice")
            .field("gps", &self.gps)
            .finish_non_exhaustive()
    }
}

impl VerifierDevice {
    /// Builds a device with its signing key, GPS receiver, and the clock
    /// all latencies are charged to.
    pub fn new(signing: SigningKey, gps: GpsReceiver, clock: SimClock, seed: u64) -> Self {
        VerifierDevice {
            signing,
            gps,
            clock,
            rng: ChaChaRng::from_u64_seed(seed),
        }
    }

    /// The device's public key (registered with the TPA at install time).
    pub fn verifying_key(&self) -> VerifyingKey {
        self.signing.verifying_key()
    }

    /// Mutable access to the GPS receiver (attack experiments spoof it).
    pub fn gps_mut(&mut self) -> &mut GpsReceiver {
        &mut self.gps
    }

    /// Runs the Fig. 5 protocol against `provider` and returns the signed
    /// transcript.
    ///
    /// Per round j: pick c_j, start the clock, request segment c_j, stop
    /// the clock on response; afterwards sign
    /// `(Δt*, c, {S_cj}, N, Pos_v)`.
    ///
    /// # Panics
    ///
    /// Panics if the request asks for more distinct challenges than there
    /// are segments.
    pub fn run_audit(
        &mut self,
        request: &AuditRequest,
        provider: &mut dyn SegmentProvider,
    ) -> SignedTranscript {
        let fid = FileId(request.file_id.clone());
        let indices = self
            .rng
            .sample_distinct(request.n_segments, request.k as usize);
        let mut rounds = Vec::with_capacity(indices.len());
        for &index in &indices {
            let timer = self.clock.start_timer();
            let (data, service_time) = provider.serve(&fid, index);
            self.clock.advance(service_time);
            let rtt = timer.elapsed();
            rounds.push(TimedRound {
                index,
                segment: data.unwrap_or_default(),
                rtt,
            });
        }
        let position = self.gps.read_fix().position;
        let bytes =
            SignedTranscript::signing_bytes(&request.file_id, &request.nonce, &position, &rounds);
        let signature = self.signing.sign(&bytes, &mut self.rng);
        SignedTranscript {
            file_id: request.file_id.clone(),
            nonce: request.nonce,
            position,
            rounds,
            signature,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::LocalProvider;
    use geoproof_geo::coords::places::BRISBANE;
    use geoproof_net::lan::LanPath;
    use geoproof_storage::hdd::{HddModel, WD_2500JD};
    use geoproof_storage::server::StorageServer;

    fn device(seed: u64) -> VerifierDevice {
        let mut rng = ChaChaRng::from_u64_seed(seed);
        let sk = SigningKey::generate(&mut rng);
        VerifierDevice::new(sk, GpsReceiver::new(BRISBANE), SimClock::new(), seed)
    }

    fn provider() -> LocalProvider {
        let mut s = StorageServer::new(HddModel::deterministic(WD_2500JD), 1);
        s.put_file(FileId::from("f"), vec![vec![0x5au8; 83]; 50]);
        LocalProvider::new(s, LanPath::adjacent(), 2)
    }

    fn request(k: u32) -> AuditRequest {
        AuditRequest {
            file_id: "f".into(),
            n_segments: 50,
            k,
            nonce: [9u8; 32],
        }
    }

    #[test]
    fn transcript_has_k_distinct_rounds() {
        let mut v = device(1);
        let mut p = provider();
        let t = v.run_audit(&request(10), &mut p);
        assert_eq!(t.rounds.len(), 10);
        let set: std::collections::HashSet<u64> = t.rounds.iter().map(|r| r.index).collect();
        assert_eq!(set.len(), 10, "challenge indices must be distinct");
        assert!(t.rounds.iter().all(|r| r.index < 50));
    }

    #[test]
    fn rounds_measure_service_time() {
        let mut v = device(2);
        let mut p = provider();
        let t = v.run_audit(&request(5), &mut p);
        for r in &t.rounds {
            // Deterministic WD lookup ≈ 13.1 ms + adjacent LAN.
            let ms = r.rtt.as_millis_f64();
            assert!(ms > 13.0 && ms < 14.0, "round rtt {ms}");
        }
    }

    #[test]
    fn signature_verifies_under_device_key() {
        let mut v = device(3);
        let mut p = provider();
        let t = v.run_audit(&request(5), &mut p);
        let bytes = SignedTranscript::signing_bytes(&t.file_id, &t.nonce, &t.position, &t.rounds);
        assert!(v.verifying_key().verify(&bytes, &t.signature));
    }

    #[test]
    fn transcript_records_gps_fix() {
        let mut v = device(4);
        let mut p = provider();
        let t = v.run_audit(&request(3), &mut p);
        assert_eq!(t.position, BRISBANE);
    }

    #[test]
    fn missing_segments_become_empty_rounds() {
        let mut v = device(5);
        let mut p = provider();
        let req = AuditRequest {
            file_id: "nope".into(),
            n_segments: 50,
            k: 4,
            nonce: [0u8; 32],
        };
        let t = v.run_audit(&req, &mut p);
        assert!(t.rounds.iter().all(|r| r.segment.is_empty()));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversized_challenge_panics() {
        let mut v = device(6);
        let mut p = provider();
        let req = AuditRequest {
            file_id: "f".into(),
            n_segments: 5,
            k: 6,
            nonce: [0u8; 32],
        };
        v.run_audit(&req, &mut p);
    }
}
