//! Protocol messages of Fig. 5 and their canonical byte encodings.
//!
//! The verifier signs `R = (Δt*, c, {S_cj ‖ τ_cj}, N, Pos_v)` with its
//! private key; the TPA re-encodes the received transcript and verifies
//! the signature over exactly those bytes, so every field is
//! length-delimited and order-fixed here.

use bytes::Bytes;
use geoproof_crypto::schnorr::Signature;
use geoproof_geo::coords::GeoPoint;
use geoproof_sim::time::SimDuration;

/// The TPA's audit trigger: "the TPA sends the total number of segments ñ
/// of F̃, the number of segments to be checked k, and a random nonce N to
/// the verifier".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditRequest {
    /// File under audit.
    pub file_id: String,
    /// Total number of stored segments ñ.
    pub n_segments: u64,
    /// Number of segments to challenge, k.
    pub k: u32,
    /// Fresh nonce N binding the transcript to this audit.
    pub nonce: [u8; 32],
}

/// One timed round: challenged index, returned segment, measured Δt_j.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimedRound {
    /// Challenged segment index c_j.
    pub index: u64,
    /// Returned segment bytes S_cj ‖ τ_cj (empty when the prover had
    /// nothing — still signed, still damning). A refcounted view: on the
    /// honest path these bytes alias the prover-side arena (local audits)
    /// or the received frame buffer (TCP audits), never a copy.
    pub segment: Bytes,
    /// Measured round-trip time Δt_j.
    pub rtt: SimDuration,
}

/// The signed audit transcript the verifier returns to the TPA.
#[derive(Clone, Debug, PartialEq)]
pub struct SignedTranscript {
    /// File under audit.
    pub file_id: String,
    /// Echo of the TPA's nonce.
    pub nonce: [u8; 32],
    /// The verifier's GPS fix Pos_v.
    pub position: GeoPoint,
    /// The k timed rounds.
    pub rounds: Vec<TimedRound>,
    /// Schnorr signature over the canonical encoding of all of the above.
    pub signature: Signature,
}

impl SignedTranscript {
    /// The canonical byte string that is signed and verified.
    pub fn signing_bytes(
        file_id: &str,
        nonce: &[u8; 32],
        position: &GeoPoint,
        rounds: &[TimedRound],
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + rounds.len() * 128);
        out.extend_from_slice(b"geoproof-transcript-v1");
        out.extend_from_slice(&(file_id.len() as u32).to_be_bytes());
        out.extend_from_slice(file_id.as_bytes());
        out.extend_from_slice(nonce);
        out.extend_from_slice(&position.lat.to_bits().to_be_bytes());
        out.extend_from_slice(&position.lon.to_bits().to_be_bytes());
        out.extend_from_slice(&(rounds.len() as u32).to_be_bytes());
        for r in rounds {
            out.extend_from_slice(&r.index.to_be_bytes());
            out.extend_from_slice(&r.rtt.as_nanos().to_be_bytes());
            out.extend_from_slice(&(r.segment.len() as u32).to_be_bytes());
            out.extend_from_slice(&r.segment);
        }
        out
    }

    /// Largest per-round RTT (the paper verifies
    /// `Δt′ = max(Δt_1 … Δt_k) ≤ Δt_max`).
    pub fn max_rtt(&self) -> SimDuration {
        self.rounds
            .iter()
            .map(|r| r.rtt)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rounds() -> Vec<TimedRound> {
        vec![
            TimedRound {
                index: 5,
                segment: vec![1, 2, 3].into(),
                rtt: SimDuration::from_millis(14),
            },
            TimedRound {
                index: 99,
                segment: Bytes::new(),
                rtt: SimDuration::from_millis(15),
            },
        ]
    }

    #[test]
    fn signing_bytes_are_deterministic() {
        let pos = GeoPoint::new(-27.5, 153.0);
        let a = SignedTranscript::signing_bytes("f", &[7u8; 32], &pos, &rounds());
        let b = SignedTranscript::signing_bytes("f", &[7u8; 32], &pos, &rounds());
        assert_eq!(a, b);
    }

    #[test]
    fn signing_bytes_bind_every_field() {
        let pos = GeoPoint::new(-27.5, 153.0);
        let base = SignedTranscript::signing_bytes("f", &[7u8; 32], &pos, &rounds());

        let other_fid = SignedTranscript::signing_bytes("g", &[7u8; 32], &pos, &rounds());
        assert_ne!(base, other_fid);

        let other_nonce = SignedTranscript::signing_bytes("f", &[8u8; 32], &pos, &rounds());
        assert_ne!(base, other_nonce);

        let other_pos = SignedTranscript::signing_bytes(
            "f",
            &[7u8; 32],
            &GeoPoint::new(-27.5, 153.1),
            &rounds(),
        );
        assert_ne!(base, other_pos);

        let mut r = rounds();
        r[0].rtt = SimDuration::from_millis(13);
        let other_rtt = SignedTranscript::signing_bytes("f", &[7u8; 32], &pos, &r);
        assert_ne!(base, other_rtt);

        let mut r = rounds();
        r[1].segment = vec![0].into();
        let other_seg = SignedTranscript::signing_bytes("f", &[7u8; 32], &pos, &r);
        assert_ne!(base, other_seg);
    }

    #[test]
    fn length_prefixing_prevents_field_bleed() {
        // ("ab", rounds with segment "c") vs ("a", segment "bc") must
        // encode differently even though the concatenated bytes agree.
        let pos = GeoPoint::new(0.0, 0.0);
        let r1 = vec![TimedRound {
            index: 0,
            segment: Bytes::from(b"c".to_vec()),
            rtt: SimDuration::ZERO,
        }];
        let r2 = vec![TimedRound {
            index: 0,
            segment: Bytes::from(b"bc".to_vec()),
            rtt: SimDuration::ZERO,
        }];
        let a = SignedTranscript::signing_bytes("ab", &[0u8; 32], &pos, &r1);
        let b = SignedTranscript::signing_bytes("a", &[0u8; 32], &pos, &r2);
        assert_ne!(a, b);
    }

    #[test]
    fn max_rtt_of_transcript() {
        let pos = GeoPoint::new(0.0, 0.0);
        let sig_bytes = [0u8; 64];
        let t = SignedTranscript {
            file_id: "f".into(),
            nonce: [0u8; 32],
            position: pos,
            rounds: rounds(),
            signature: geoproof_crypto::schnorr::Signature::from_bytes(&sig_bytes),
        };
        assert_eq!(t.max_rtt(), SimDuration::from_millis(15));
    }
}
