//! Protocol messages of Fig. 5 and their canonical byte encodings.
//!
//! The verifier signs `R = (Δt*, c, {S_cj ‖ τ_cj}, N, Pos_v)` with its
//! private key; the TPA re-encodes the received transcript and verifies
//! the signature over exactly those bytes, so every field is
//! length-delimited and order-fixed here.

use bytes::Bytes;
use geoproof_crypto::schnorr::Signature;
use geoproof_geo::coords::GeoPoint;
use geoproof_sim::time::SimDuration;

/// The TPA's audit trigger: "the TPA sends the total number of segments ñ
/// of F̃, the number of segments to be checked k, and a random nonce N to
/// the verifier".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditRequest {
    /// File under audit.
    pub file_id: String,
    /// Total number of stored segments ñ.
    pub n_segments: u64,
    /// Number of segments to challenge, k.
    pub k: u32,
    /// Fresh nonce N binding the transcript to this audit.
    pub nonce: [u8; 32],
}

/// One timed round: challenged index, returned segment, measured Δt_j.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimedRound {
    /// Challenged segment index c_j.
    pub index: u64,
    /// Returned segment bytes S_cj ‖ τ_cj (empty when the prover had
    /// nothing — still signed, still damning). A refcounted view: on the
    /// honest path these bytes alias the prover-side arena (local audits)
    /// or the received frame buffer (TCP audits), never a copy.
    pub segment: Bytes,
    /// Measured round-trip time Δt_j.
    pub rtt: SimDuration,
}

/// The signed audit transcript the verifier returns to the TPA.
#[derive(Clone, Debug, PartialEq)]
pub struct SignedTranscript {
    /// File under audit.
    pub file_id: String,
    /// Echo of the TPA's nonce.
    pub nonce: [u8; 32],
    /// The verifier's GPS fix Pos_v.
    pub position: GeoPoint,
    /// The k timed rounds.
    pub rounds: Vec<TimedRound>,
    /// Schnorr signature over the canonical encoding of all of the above.
    pub signature: Signature,
}

impl SignedTranscript {
    /// The canonical byte string that is signed and verified.
    pub fn signing_bytes(
        file_id: &str,
        nonce: &[u8; 32],
        position: &GeoPoint,
        rounds: &[TimedRound],
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + rounds.len() * 128);
        out.extend_from_slice(TRANSCRIPT_MAGIC);
        out.extend_from_slice(&(file_id.len() as u32).to_be_bytes());
        out.extend_from_slice(file_id.as_bytes());
        out.extend_from_slice(nonce);
        out.extend_from_slice(&position.lat.to_bits().to_be_bytes());
        out.extend_from_slice(&position.lon.to_bits().to_be_bytes());
        out.extend_from_slice(&(rounds.len() as u32).to_be_bytes());
        for r in rounds {
            out.extend_from_slice(&r.index.to_be_bytes());
            out.extend_from_slice(&r.rtt.as_nanos().to_be_bytes());
            out.extend_from_slice(&(r.segment.len() as u32).to_be_bytes());
            out.extend_from_slice(&r.segment);
        }
        out
    }

    /// Largest per-round RTT (the paper verifies
    /// `Δt′ = max(Δt_1 … Δt_k) ≤ Δt_max`).
    pub fn max_rtt(&self) -> SimDuration {
        self.rounds
            .iter()
            .map(|r| r.rtt)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// The transcript's full canonical encoding: the signed bytes
    /// ([`SignedTranscript::signing_bytes`]) followed by the 64-byte
    /// signature. This is the durable form — what the evidence ledger
    /// stores and what [`SignedTranscript::from_canonical`] parses back —
    /// so re-encoding a parsed transcript is always byte-identical.
    pub fn canonical_bytes(&self) -> Bytes {
        let mut out = SignedTranscript::signing_bytes(
            &self.file_id,
            &self.nonce,
            &self.position,
            &self.rounds,
        );
        out.extend_from_slice(&self.signature.to_bytes());
        Bytes::from(out)
    }

    /// Parses a canonical encoding back into a transcript.
    ///
    /// Round segments are zero-copy [`Bytes::slice`] views of `bytes` —
    /// parsing a transcript out of a larger buffer (a ledger record, a
    /// file read) never copies payload. Every field is bounds-checked;
    /// malformed input returns an error, never panics. Trailing bytes
    /// are rejected so `from_canonical ∘ canonical_bytes` is the
    /// identity and nothing can hide after the signature.
    ///
    /// # Errors
    ///
    /// Returns [`TranscriptDecodeError`] describing the first malformed
    /// field encountered.
    pub fn from_canonical(bytes: &Bytes) -> Result<SignedTranscript, TranscriptDecodeError> {
        use TranscriptDecodeError as E;
        let mut c = crate::cursor::ByteCursor::new(bytes);
        let trunc = |_| E::Truncated;

        if c.take(TRANSCRIPT_MAGIC.len()).map_err(trunc)?.as_ref() != TRANSCRIPT_MAGIC {
            return Err(E::BadMagic);
        }
        let fid_len = c.take_u32().map_err(trunc)? as usize;
        let fid = c.take(fid_len).map_err(trunc)?;
        let file_id = std::str::from_utf8(&fid)
            .map_err(|_| E::BadFileId)?
            .to_owned();
        let nonce = c.take_array::<32>().map_err(trunc)?;
        let lat = c.take_f64_bits().map_err(trunc)?;
        let lon = c.take_f64_bits().map_err(trunc)?;
        if !lat.is_finite()
            || !lon.is_finite()
            || !(-90.0..=90.0).contains(&lat)
            || !(-180.0..=180.0).contains(&lon)
        {
            return Err(E::BadPosition);
        }
        let position = GeoPoint { lat, lon };
        let n_rounds = c.take_u32().map_err(trunc)?;
        let mut rounds = Vec::new();
        for _ in 0..n_rounds {
            let index = c.take_u64().map_err(trunc)?;
            let rtt = SimDuration::from_nanos(c.take_u64().map_err(trunc)?);
            let seg_len = c.take_u32().map_err(trunc)? as usize;
            let segment = c.take(seg_len).map_err(trunc)?;
            rounds.push(TimedRound {
                index,
                segment,
                rtt,
            });
        }
        let signature = Signature::from_bytes(&c.take_array::<64>().map_err(trunc)?);
        if !c.at_end() {
            return Err(E::TrailingBytes);
        }
        Ok(SignedTranscript {
            file_id,
            nonce,
            position,
            rounds,
            signature,
        })
    }
}

/// Domain-separation prefix of the canonical transcript encoding.
const TRANSCRIPT_MAGIC: &[u8] = b"geoproof-transcript-v1";

/// Why a canonical transcript encoding failed to parse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TranscriptDecodeError {
    /// Input ended before a field completed.
    Truncated,
    /// The `geoproof-transcript-v1` prefix is missing.
    BadMagic,
    /// File id is not valid UTF-8.
    BadFileId,
    /// GPS position is non-finite or out of range.
    BadPosition,
    /// A Merkle proof field failed its strict canonical parse (dynamic
    /// transcripts only).
    BadProof,
    /// Bytes remain after the signature.
    TrailingBytes,
}

impl std::fmt::Display for TranscriptDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranscriptDecodeError::Truncated => write!(f, "transcript truncated mid-field"),
            TranscriptDecodeError::BadMagic => write!(f, "missing transcript version prefix"),
            TranscriptDecodeError::BadFileId => write!(f, "file id is not UTF-8"),
            TranscriptDecodeError::BadPosition => write!(f, "GPS position out of range"),
            TranscriptDecodeError::BadProof => write!(f, "malformed Merkle proof field"),
            TranscriptDecodeError::TrailingBytes => write!(f, "trailing bytes after signature"),
        }
    }
}

impl std::error::Error for TranscriptDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn rounds() -> Vec<TimedRound> {
        vec![
            TimedRound {
                index: 5,
                segment: vec![1, 2, 3].into(),
                rtt: SimDuration::from_millis(14),
            },
            TimedRound {
                index: 99,
                segment: Bytes::new(),
                rtt: SimDuration::from_millis(15),
            },
        ]
    }

    #[test]
    fn signing_bytes_are_deterministic() {
        let pos = GeoPoint::new(-27.5, 153.0);
        let a = SignedTranscript::signing_bytes("f", &[7u8; 32], &pos, &rounds());
        let b = SignedTranscript::signing_bytes("f", &[7u8; 32], &pos, &rounds());
        assert_eq!(a, b);
    }

    #[test]
    fn signing_bytes_bind_every_field() {
        let pos = GeoPoint::new(-27.5, 153.0);
        let base = SignedTranscript::signing_bytes("f", &[7u8; 32], &pos, &rounds());

        let other_fid = SignedTranscript::signing_bytes("g", &[7u8; 32], &pos, &rounds());
        assert_ne!(base, other_fid);

        let other_nonce = SignedTranscript::signing_bytes("f", &[8u8; 32], &pos, &rounds());
        assert_ne!(base, other_nonce);

        let other_pos = SignedTranscript::signing_bytes(
            "f",
            &[7u8; 32],
            &GeoPoint::new(-27.5, 153.1),
            &rounds(),
        );
        assert_ne!(base, other_pos);

        let mut r = rounds();
        r[0].rtt = SimDuration::from_millis(13);
        let other_rtt = SignedTranscript::signing_bytes("f", &[7u8; 32], &pos, &r);
        assert_ne!(base, other_rtt);

        let mut r = rounds();
        r[1].segment = vec![0].into();
        let other_seg = SignedTranscript::signing_bytes("f", &[7u8; 32], &pos, &r);
        assert_ne!(base, other_seg);
    }

    #[test]
    fn length_prefixing_prevents_field_bleed() {
        // ("ab", rounds with segment "c") vs ("a", segment "bc") must
        // encode differently even though the concatenated bytes agree.
        let pos = GeoPoint::new(0.0, 0.0);
        let r1 = vec![TimedRound {
            index: 0,
            segment: Bytes::from(b"c".to_vec()),
            rtt: SimDuration::ZERO,
        }];
        let r2 = vec![TimedRound {
            index: 0,
            segment: Bytes::from(b"bc".to_vec()),
            rtt: SimDuration::ZERO,
        }];
        let a = SignedTranscript::signing_bytes("ab", &[0u8; 32], &pos, &r1);
        let b = SignedTranscript::signing_bytes("a", &[0u8; 32], &pos, &r2);
        assert_ne!(a, b);
    }

    fn transcript() -> SignedTranscript {
        SignedTranscript {
            file_id: "f".into(),
            nonce: [7u8; 32],
            position: GeoPoint::new(-27.5, 153.0),
            rounds: rounds(),
            signature: Signature::from_bytes(&[0x42u8; 64]),
        }
    }

    #[test]
    fn canonical_roundtrip_is_identity() {
        let t = transcript();
        let bytes = t.canonical_bytes();
        let parsed = SignedTranscript::from_canonical(&bytes).expect("parse");
        assert_eq!(parsed, t);
        assert_eq!(parsed.canonical_bytes(), bytes, "re-encode must match");
    }

    #[test]
    fn canonical_parse_is_zero_copy_for_segments() {
        let t = transcript();
        let bytes = t.canonical_bytes();
        let parsed = SignedTranscript::from_canonical(&bytes).expect("parse");
        // A round's segment must be a window into the input buffer, not a
        // copy: slicing the input at the same offset yields an alias.
        let seg = &parsed.rounds[0].segment;
        let hay = bytes.as_ref();
        let needle = seg.as_ref();
        let off = hay
            .windows(needle.len().max(1))
            .position(|w| w == needle)
            .expect("segment bytes present");
        assert!(
            seg.aliases(&bytes.slice(off..off + needle.len())),
            "parsed segment must alias the canonical buffer"
        );
    }

    #[test]
    fn canonical_parse_rejects_malformed_input_without_panicking() {
        let t = transcript();
        let good = t.canonical_bytes();
        // Empty, truncated at every boundary, and trailing garbage.
        assert!(SignedTranscript::from_canonical(&Bytes::new()).is_err());
        for cut in 0..good.len() {
            assert!(
                SignedTranscript::from_canonical(&good.slice(..cut)).is_err(),
                "truncation at {cut} must fail"
            );
        }
        let mut extra = good.to_vec();
        extra.push(0);
        assert_eq!(
            SignedTranscript::from_canonical(&Bytes::from(extra)),
            Err(TranscriptDecodeError::TrailingBytes)
        );
        // Wrong magic.
        let mut wrong = good.to_vec();
        wrong[0] ^= 1;
        assert_eq!(
            SignedTranscript::from_canonical(&Bytes::from(wrong)),
            Err(TranscriptDecodeError::BadMagic)
        );
        // Non-finite latitude: flip its bits to an NaN pattern.
        let lat_off = TRANSCRIPT_MAGIC.len() + 4 + 1 + 32;
        let mut nan = good.to_vec();
        nan[lat_off..lat_off + 8].copy_from_slice(&f64::NAN.to_bits().to_be_bytes());
        assert_eq!(
            SignedTranscript::from_canonical(&Bytes::from(nan)),
            Err(TranscriptDecodeError::BadPosition)
        );
    }

    #[test]
    fn max_rtt_of_transcript() {
        let pos = GeoPoint::new(0.0, 0.0);
        let sig_bytes = [0u8; 64];
        let t = SignedTranscript {
            file_id: "f".into(),
            nonce: [0u8; 32],
            position: pos,
            rounds: rounds(),
            signature: geoproof_crypto::schnorr::Signature::from_bytes(&sig_bytes),
        };
        assert_eq!(t.max_rtt(), SimDuration::from_millis(15));
    }
}
