//! Durable audit evidence: what a TPA verdict must carry to outlive the
//! process that produced it.
//!
//! GeoProof's output is *evidence* — a signed timing transcript a
//! customer can take to an SLA dispute. This module defines the bundle
//! every verification path can emit ([`EvidenceBundle`]), the sink trait
//! the [`crate::engine::AuditEngine`], [`crate::fleet`] and
//! [`crate::deployment::Deployment`] hand bundles to ([`EvidenceSink`]),
//! and the canonical byte encoding of an [`AuditReport`] that offline
//! re-verification byte-compares against
//! ([`encode_report`]/[`decode_report`]).
//!
//! The durable, hash-chained log itself lives in the `geoproof-ledger`
//! crate; keeping the trait here means the hot audit path carries no
//! ledger dependency and stays allocation-clean when no sink is
//! installed — a bundle is only materialised once a sink asks for it.

use crate::auditor::{AuditReport, Violation};
use crate::messages::AuditRequest;
use crate::policy::TimingPolicy;
use crate::vantage::MultiVantageEstimate;
use bytes::Bytes;
use geoproof_geo::coords::GeoPoint;
use geoproof_geo::triangulation::RangeMeasurement;
use geoproof_sim::time::{Km, SimDuration};

/// Everything needed to re-verify one audit verdict offline: the
/// identity under audit, the TPA's acceptance parameters, the request,
/// the canonical signed-transcript bytes, the per-round MAC verdicts
/// (the only part an offline verifier must take on trust — checking
/// them needs the owner's secret MAC key), and the verdict itself.
#[derive(Clone, Debug, PartialEq)]
pub struct EvidenceBundle {
    /// The prover (cloud site) this verdict speaks about.
    pub prover: String,
    /// 0-based ordinal of this audit of this prover (re-audits count up).
    pub epoch: u64,
    /// The verifier device's registered public key (compressed).
    pub device_key: [u8; 32],
    /// Where the SLA says the data lives.
    pub sla_location: GeoPoint,
    /// Accepted GPS offset from the SLA location.
    pub location_tolerance: Km,
    /// The Δt_max policy the verdict was derived under.
    pub policy: TimingPolicy,
    /// The audit request that triggered the transcript.
    pub request: AuditRequest,
    /// Per-round segment-MAC verdicts, transcript order.
    pub mac_ok: Vec<bool>,
    /// The TPA's verdict.
    pub report: AuditReport,
    /// The canonical signed-transcript bytes
    /// ([`crate::messages::SignedTranscript::canonical_bytes`]). Shared,
    /// refcounted — sinks append these bytes without copying them.
    pub transcript: Bytes,
}

/// The dynamic-audit twin of [`EvidenceBundle`]: everything needed to
/// re-verify one dynamic verdict offline. The Merkle membership proofs
/// travel inside the canonical transcript and are recomputed by the
/// replay (unkeyed); only the per-round *tag* bits are taken on trust
/// without the owner's secret.
#[derive(Clone, Debug, PartialEq)]
pub struct DynEvidenceBundle {
    /// The prover (cloud site) this verdict speaks about.
    pub prover: String,
    /// 0-based ordinal of this audit of this prover (re-audits count up).
    pub epoch: u64,
    /// The verifier device's registered public key (compressed).
    pub device_key: [u8; 32],
    /// Where the SLA says the data lives.
    pub sla_location: GeoPoint,
    /// Accepted GPS offset from the SLA location.
    pub location_tolerance: Km,
    /// The Δt_max policy the verdict was derived under.
    pub policy: TimingPolicy,
    /// The dynamic audit request (carries the audited digest).
    pub request: crate::dynamic_audit::DynAuditRequest,
    /// Per-round keyed-tag verdicts, transcript order.
    pub tag_ok: Vec<bool>,
    /// The TPA's verdict.
    pub report: AuditReport,
    /// The canonical signed dynamic-transcript bytes
    /// ([`crate::dynamic_audit::DynSignedTranscript::canonical_bytes`]).
    pub transcript: Bytes,
}

/// Receives evidence bundles as verdicts are reached.
///
/// Implementations must be cheap to call from verification loops and
/// thread-safe — the engine records from whichever thread runs the
/// verification pass. An I/O error is returned to the producer, which
/// surfaces it out-of-band (evidence failures never change verdicts).
pub trait EvidenceSink: Send + Sync {
    /// Records one verdict's evidence.
    ///
    /// # Errors
    ///
    /// Propagates the sink's storage failure.
    fn record(&self, bundle: &EvidenceBundle) -> std::io::Result<()>;

    /// Records one *dynamic* verdict's evidence. Default: refused — a
    /// sink predating the dynamic flow fails loudly rather than dropping
    /// evidence on the floor.
    ///
    /// # Errors
    ///
    /// Propagates the sink's storage failure.
    fn record_dynamic(&self, bundle: &DynEvidenceBundle) -> std::io::Result<()> {
        let _ = bundle;
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "this evidence sink does not record dynamic audits",
        ))
    }

    /// Records one multi-vantage position estimate. Default: refused — a
    /// sink predating the multi-vantage flow fails loudly rather than
    /// dropping evidence on the floor.
    ///
    /// # Errors
    ///
    /// Propagates the sink's storage failure.
    fn record_position(&self, bundle: &PositionBundle) -> std::io::Result<()> {
        let _ = bundle;
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "this evidence sink does not record position estimates",
        ))
    }
}

/// Everything needed to re-derive one multi-vantage position verdict
/// offline: the SLA claim, the acceptance thresholds, and every vantage's
/// coordinates and reported range. The aggregate `estimate` is recorded
/// too, but it is *derived* state — replay recomputes it from the inputs
/// (seeded at the SLA coordinates, so the fit is deterministic) and
/// byte-compares, exactly as audit reports are byte-compared.
#[derive(Clone, Debug, PartialEq)]
pub struct PositionBundle {
    /// The prover (cloud site) this estimate speaks about.
    pub prover: String,
    /// Epoch of the first constituent vantage audit; the vantage audits
    /// occupy `first_epoch .. first_epoch + vantages.len()` evidence
    /// records for this batch's vantage identities.
    pub first_epoch: u64,
    /// Where the SLA says the data lives.
    pub sla_location: GeoPoint,
    /// Accepted distance between the estimate and the SLA coordinates.
    pub position_tolerance: Km,
    /// Accepted RMS range residual over the inlier vantages.
    pub residual_budget: Km,
    /// Every vantage's coordinates and RTT-derived range, fleet order.
    pub vantages: Vec<RangeMeasurement>,
    /// The aggregate verdict — `None` when the geometry was degenerate
    /// or under-determined (fewer than three usable vantages).
    pub estimate: Option<MultiVantageEstimate>,
}

/// Domain-separation prefix of the canonical report encoding.
const REPORT_MAGIC: &[u8] = b"geoproof-report-v1";

/// Encodes an [`AuditReport`] canonically: same report, same bytes, on
/// every build — the offline re-verifier re-derives a report and
/// byte-compares it against the recorded encoding.
pub fn encode_report(report: &AuditReport) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + report.violations.len() * 24);
    out.extend_from_slice(REPORT_MAGIC);
    out.extend_from_slice(&(report.violations.len() as u32).to_be_bytes());
    for v in &report.violations {
        match v {
            Violation::BadSignature => out.push(0),
            Violation::StaleNonce => out.push(1),
            Violation::WrongLocation { offset } => {
                out.push(2);
                out.extend_from_slice(&offset.0.to_bits().to_be_bytes());
            }
            Violation::BadSegment { round, segment } => {
                out.push(3);
                out.extend_from_slice(&(*round as u64).to_be_bytes());
                out.extend_from_slice(&segment.to_be_bytes());
            }
            Violation::TooSlow { round, rtt } => {
                out.push(4);
                out.extend_from_slice(&(*round as u64).to_be_bytes());
                out.extend_from_slice(&rtt.as_nanos().to_be_bytes());
            }
            Violation::WrongRoundCount { expected, actual } => {
                out.push(5);
                out.extend_from_slice(&expected.to_be_bytes());
                out.extend_from_slice(&(*actual as u64).to_be_bytes());
            }
            Violation::MalformedChallenge { round } => {
                out.push(6);
                out.extend_from_slice(&(*round as u64).to_be_bytes());
            }
            Violation::BadProof { round, segment } => {
                out.push(7);
                out.extend_from_slice(&(*round as u64).to_be_bytes());
                out.extend_from_slice(&segment.to_be_bytes());
            }
            Violation::StaleDigest => out.push(8),
        }
    }
    out.extend_from_slice(&report.max_rtt.as_nanos().to_be_bytes());
    out.extend_from_slice(&(report.segments_ok as u64).to_be_bytes());
    out
}

/// Why a canonical report encoding failed to parse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReportDecodeError {
    /// Input ended before a field completed.
    Truncated,
    /// The `geoproof-report-v1` prefix is missing.
    BadMagic,
    /// Unknown violation tag.
    BadViolationTag(u8),
    /// Bytes remain after the last field.
    TrailingBytes,
}

impl std::fmt::Display for ReportDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportDecodeError::Truncated => write!(f, "report truncated mid-field"),
            ReportDecodeError::BadMagic => write!(f, "missing report version prefix"),
            ReportDecodeError::BadViolationTag(t) => write!(f, "unknown violation tag {t}"),
            ReportDecodeError::TrailingBytes => write!(f, "trailing bytes after report"),
        }
    }
}

impl std::error::Error for ReportDecodeError {}

/// Parses a canonical report encoding. Bounds-checked throughout; never
/// panics on malformed input.
///
/// # Errors
///
/// Returns [`ReportDecodeError`] describing the first malformed field.
pub fn decode_report(bytes: &Bytes) -> Result<AuditReport, ReportDecodeError> {
    use ReportDecodeError as E;
    let mut c = crate::cursor::ByteCursor::new(bytes);
    let trunc = |_| E::Truncated;

    if c.take(REPORT_MAGIC.len()).map_err(trunc)?.as_ref() != REPORT_MAGIC {
        return Err(E::BadMagic);
    }
    let n_violations = c.take_u32().map_err(trunc)?;
    let mut violations = Vec::new();
    for _ in 0..n_violations {
        let tag = c.take_array::<1>().map_err(trunc)?[0];
        violations.push(match tag {
            0 => Violation::BadSignature,
            1 => Violation::StaleNonce,
            2 => Violation::WrongLocation {
                offset: Km(c.take_f64_bits().map_err(trunc)?),
            },
            3 => Violation::BadSegment {
                round: c.take_u64().map_err(trunc)? as usize,
                segment: c.take_u64().map_err(trunc)?,
            },
            4 => Violation::TooSlow {
                round: c.take_u64().map_err(trunc)? as usize,
                rtt: SimDuration::from_nanos(c.take_u64().map_err(trunc)?),
            },
            5 => Violation::WrongRoundCount {
                expected: c.take_u32().map_err(trunc)?,
                actual: c.take_u64().map_err(trunc)? as usize,
            },
            6 => Violation::MalformedChallenge {
                round: c.take_u64().map_err(trunc)? as usize,
            },
            7 => Violation::BadProof {
                round: c.take_u64().map_err(trunc)? as usize,
                segment: c.take_u64().map_err(trunc)?,
            },
            8 => Violation::StaleDigest,
            t => return Err(E::BadViolationTag(t)),
        });
    }
    let max_rtt = SimDuration::from_nanos(c.take_u64().map_err(trunc)?);
    let segments_ok = c.take_u64().map_err(trunc)? as usize;
    if !c.at_end() {
        return Err(E::TrailingBytes);
    }
    Ok(AuditReport {
        violations,
        max_rtt,
        segments_ok,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_everything() -> AuditReport {
        AuditReport {
            violations: vec![
                Violation::BadSignature,
                Violation::StaleNonce,
                Violation::WrongLocation { offset: Km(1234.5) },
                Violation::BadSegment {
                    round: 3,
                    segment: 99,
                },
                Violation::TooSlow {
                    round: 4,
                    rtt: SimDuration::from_millis(21),
                },
                Violation::WrongRoundCount {
                    expected: 10,
                    actual: 9,
                },
                Violation::MalformedChallenge { round: 7 },
                Violation::BadProof {
                    round: 8,
                    segment: 41,
                },
                Violation::StaleDigest,
            ],
            max_rtt: SimDuration::from_millis(21),
            segments_ok: 6,
        }
    }

    #[test]
    fn report_roundtrip_covers_every_violation_variant() {
        let r = report_with_everything();
        let bytes = Bytes::from(encode_report(&r));
        assert_eq!(decode_report(&bytes).expect("parse"), r);
        assert_eq!(encode_report(&decode_report(&bytes).unwrap()), bytes);
    }

    #[test]
    fn report_encoding_is_deterministic_and_field_sensitive() {
        let clean = AuditReport {
            violations: vec![],
            max_rtt: SimDuration::from_millis(3),
            segments_ok: 10,
        };
        assert_eq!(encode_report(&clean), encode_report(&clean.clone()));
        let mut slower = clean.clone();
        slower.max_rtt = SimDuration::from_millis(4);
        assert_ne!(encode_report(&clean), encode_report(&slower));
        let mut fewer = clean.clone();
        fewer.segments_ok = 9;
        assert_ne!(encode_report(&clean), encode_report(&fewer));
    }

    #[test]
    fn report_decode_rejects_malformed_input_without_panicking() {
        let good = Bytes::from(encode_report(&report_with_everything()));
        assert!(decode_report(&Bytes::new()).is_err());
        for cut in 0..good.len() {
            assert!(decode_report(&good.slice(..cut)).is_err(), "cut {cut}");
        }
        let mut extra = good.to_vec();
        extra.push(0);
        assert_eq!(
            decode_report(&Bytes::from(extra)),
            Err(ReportDecodeError::TrailingBytes)
        );
        let mut bad_tag = good.to_vec();
        bad_tag[REPORT_MAGIC.len() + 4] = 200; // first violation tag
        assert_eq!(
            decode_report(&Bytes::from(bad_tag)),
            Err(ReportDecodeError::BadViolationTag(200))
        );
    }

    #[test]
    fn wrong_location_offset_roundtrips_bit_exactly() {
        // The offset is a computed f64 — the encoding must preserve every
        // bit so replay byte-comparison can succeed.
        for bits in [0x3ff0_0000_0000_0001u64, 0x7fef_ffff_ffff_ffff, 1] {
            let r = AuditReport {
                violations: vec![Violation::WrongLocation {
                    offset: Km(f64::from_bits(bits)),
                }],
                max_rtt: SimDuration::ZERO,
                segments_ok: 0,
            };
            let decoded = decode_report(&Bytes::from(encode_report(&r))).unwrap();
            match decoded.violations[0] {
                Violation::WrongLocation { offset } => {
                    assert_eq!(offset.0.to_bits(), bits);
                }
                _ => panic!("variant lost"),
            }
        }
    }
}
