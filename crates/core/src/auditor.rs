//! The third-party auditor (TPA) — the paper's verification process
//! (§V-B(b)).
//!
//! The TPA holds: the MAC key K′ for the audited file, the verifier
//! device's public key, the SLA location, and the timing policy. On
//! receiving a signed transcript it checks, in the paper's order:
//!
//! 1. the signature `Sign_SK(R)`,
//! 2. the verifier's GPS position Pos_v against the SLA location,
//! 3. `τ_cj = MAC_K′(S_cj, c_j, fid)` for every challenged segment,
//! 4. `Δt′ = max(Δt_1 … Δt_k) ≤ Δt_max`.

use crate::messages::{AuditRequest, SignedTranscript};
use crate::policy::TimingPolicy;
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_crypto::schnorr::VerifyingKey;
use geoproof_geo::coords::GeoPoint;
use geoproof_por::encode::PorEncoder;
use geoproof_por::keys::AuditorKey;
use geoproof_sim::time::{Km, SimDuration};

/// Everything that can go wrong with an audit.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// Transcript signature failed.
    BadSignature,
    /// Nonce mismatch (replayed transcript).
    StaleNonce,
    /// GPS fix too far from the SLA location.
    WrongLocation {
        /// Distance between claimed fix and SLA location.
        offset: Km,
    },
    /// A challenged segment's MAC failed.
    BadSegment {
        /// Round index within the transcript.
        round: usize,
        /// Challenged segment index.
        segment: u64,
    },
    /// A round exceeded the timing budget.
    TooSlow {
        /// Round index within the transcript.
        round: usize,
        /// Measured RTT.
        rtt: SimDuration,
    },
    /// Transcript round count differs from the requested k.
    WrongRoundCount {
        /// Requested challenges.
        expected: u32,
        /// Rounds present.
        actual: usize,
    },
    /// A challenged index repeats or exceeds ñ.
    MalformedChallenge {
        /// Round index within the transcript.
        round: usize,
    },
    /// A dynamic round's Merkle membership proof failed against the
    /// audited digest (stale pre-update segment, grafted proof, or a
    /// provider whose tree diverged).
    BadProof {
        /// Round index within the transcript.
        round: usize,
        /// Challenged segment index.
        segment: u64,
    },
    /// A dynamic transcript echoes a digest other than the one the audit
    /// was issued against (replay across updates).
    StaleDigest,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::BadSignature => write!(f, "transcript signature invalid"),
            Violation::StaleNonce => write!(f, "nonce mismatch (replay?)"),
            Violation::WrongLocation { offset } => {
                write!(f, "verifier {offset} from SLA location")
            }
            Violation::BadSegment { round, segment } => {
                write!(f, "round {round}: segment {segment} failed MAC")
            }
            Violation::TooSlow { round, rtt } => {
                write!(f, "round {round}: {rtt} over budget")
            }
            Violation::WrongRoundCount { expected, actual } => {
                write!(f, "expected {expected} rounds, got {actual}")
            }
            Violation::MalformedChallenge { round } => {
                write!(f, "round {round}: malformed challenge index")
            }
            Violation::BadProof { round, segment } => {
                write!(f, "round {round}: segment {segment} failed Merkle proof")
            }
            Violation::StaleDigest => write!(f, "digest mismatch (stale state replay?)"),
        }
    }
}

/// The auditor's decision with full diagnostics.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditReport {
    /// Empty means the audit passed.
    pub violations: Vec<Violation>,
    /// Largest observed round time Δt′.
    pub max_rtt: SimDuration,
    /// Number of MAC-verified segments.
    pub segments_ok: usize,
}

impl AuditReport {
    /// True when no violations were recorded.
    pub fn accepted(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The third-party auditor for one file.
pub struct Auditor {
    file_id: String,
    n_segments: u64,
    auditor_key: AuditorKey,
    device_key: VerifyingKey,
    sla_location: GeoPoint,
    location_tolerance: Km,
    policy: TimingPolicy,
    encoder: PorEncoder,
    rng: ChaChaRng,
}

impl std::fmt::Debug for Auditor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Auditor")
            .field("file_id", &self.file_id)
            .field("n_segments", &self.n_segments)
            .field("sla_location", &self.sla_location)
            .finish_non_exhaustive()
    }
}

impl Auditor {
    /// Creates an auditor.
    ///
    /// `encoder` carries the POR parameters (segment layout, tag width);
    /// `auditor_key` is the MAC key the owner shared; `device_key` is the
    /// verifier's registered public key; `sla_location` is where the SLA
    /// says the data lives.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        file_id: String,
        n_segments: u64,
        encoder: PorEncoder,
        auditor_key: AuditorKey,
        device_key: VerifyingKey,
        sla_location: GeoPoint,
        location_tolerance: Km,
        policy: TimingPolicy,
        seed: u64,
    ) -> Self {
        Auditor {
            file_id,
            n_segments,
            auditor_key,
            device_key,
            sla_location,
            location_tolerance,
            policy,
            encoder,
            rng: ChaChaRng::from_u64_seed(seed),
        }
    }

    /// The active timing policy.
    pub fn policy(&self) -> &TimingPolicy {
        &self.policy
    }

    /// Issues a fresh audit request with `k` challenges and a random nonce.
    pub fn issue_request(&mut self, k: u32) -> AuditRequest {
        let mut nonce = [0u8; 32];
        self.rng.fill_bytes(&mut nonce);
        AuditRequest {
            file_id: self.file_id.clone(),
            n_segments: self.n_segments,
            k,
            nonce,
        }
    }

    /// Runs the §V-B(b) verification of a transcript against the request
    /// that triggered it.
    pub fn verify(&self, request: &AuditRequest, transcript: &SignedTranscript) -> AuditReport {
        let checks = VerifyChecks {
            file_id: &self.file_id,
            n_segments: self.n_segments,
            device_key: &self.device_key,
            sla_location: self.sla_location,
            location_tolerance: self.location_tolerance,
            policy: &self.policy,
        };
        checks.verify_transcript(request, transcript, |_, round| {
            self.encoder.verify_segment(
                self.auditor_key.mac_key(),
                &self.file_id,
                round.index,
                &round.segment,
            )
        })
    }

    /// Like [`Auditor::verify`], but also materialises the durable
    /// [`crate::evidence::EvidenceBundle`] for this verdict: canonical
    /// transcript bytes,
    /// per-round MAC verdicts, and the acceptance parameters the verdict
    /// was derived under. The report inside the bundle is byte-identical
    /// (under [`crate::evidence::encode_report`]) to the returned one.
    pub fn verify_evidence(
        &self,
        request: &AuditRequest,
        transcript: &SignedTranscript,
        prover: impl Into<String>,
        epoch: u64,
    ) -> (AuditReport, crate::evidence::EvidenceBundle) {
        let mac_ok: Vec<bool> = transcript
            .rounds
            .iter()
            .map(|round| {
                self.encoder.verify_segment(
                    self.auditor_key.mac_key(),
                    &self.file_id,
                    round.index,
                    &round.segment,
                )
            })
            .collect();
        let checks = VerifyChecks {
            file_id: &self.file_id,
            n_segments: self.n_segments,
            device_key: &self.device_key,
            sla_location: self.sla_location,
            location_tolerance: self.location_tolerance,
            policy: &self.policy,
        };
        let report = checks.verify_transcript(request, transcript, |i, _round| {
            mac_ok.get(i).copied().unwrap_or(false)
        });
        let bundle = crate::evidence::EvidenceBundle {
            prover: prover.into(),
            epoch,
            device_key: self.device_key.to_bytes(),
            sla_location: self.sla_location,
            location_tolerance: self.location_tolerance,
            policy: self.policy,
            request: request.clone(),
            mac_ok,
            report: report.clone(),
            transcript: transcript.canonical_bytes(),
        };
        (report, bundle)
    }
}

/// The transcript checks every audit path applies — signature, nonce,
/// GPS, round sanity, timing — with the per-segment MAC check pluggable
/// so the sequential path ([`Auditor::verify`]) and the engine's batched
/// path run *exactly the same* verification logic and differ only in how
/// MACs are evaluated.
#[derive(Clone, Debug)]
pub struct VerifyChecks<'a> {
    /// File under audit.
    pub file_id: &'a str,
    /// Total segments ñ.
    pub n_segments: u64,
    /// The verifier device's registered public key.
    pub device_key: &'a VerifyingKey,
    /// Where the SLA says the data lives.
    pub sla_location: GeoPoint,
    /// Accepted GPS offset from the SLA location.
    pub location_tolerance: Km,
    /// The Δt_max policy.
    pub policy: &'a TimingPolicy,
}

/// The outcome of judging one returned segment — the pluggable step of
/// the shared check sequence. The static scheme only distinguishes
/// tag success/failure; the dynamic scheme also has a Merkle membership
/// proof that can fail independently of (and is checked before) the tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentVerdict {
    /// Segment authentic (proof, where applicable, and tag both hold).
    Ok,
    /// The keyed MAC tag failed.
    BadTag,
    /// The Merkle membership proof failed (dynamic audits only).
    BadProof,
}

/// Inputs to the shared check core that differ between the static and
/// dynamic transcript shapes; everything downstream (GPS, round sanity,
/// per-segment judgement, Δt_max policy, verdict assembly) is identical.
struct TranscriptView<'b> {
    /// Signature over the canonical bytes verified under the device key.
    sig_ok: bool,
    /// Nonce and file id match the triggering request.
    fresh: bool,
    /// Dynamic only: the echoed digest differs from the audited one.
    stale_digest: bool,
    /// The verifier's GPS fix.
    position: &'b GeoPoint,
    /// `(challenged index, measured Δt)` per round, transcript order.
    rounds: Vec<(u64, SimDuration)>,
}

impl VerifyChecks<'_> {
    /// Runs the full §V-B(b) check sequence; `segment_ok(round_index,
    /// round)` judges each returned segment's MAC.
    pub fn verify_transcript(
        &self,
        request: &AuditRequest,
        transcript: &SignedTranscript,
        segment_ok: impl FnMut(usize, &crate::messages::TimedRound) -> bool,
    ) -> AuditReport {
        let bytes = SignedTranscript::signing_bytes(
            &transcript.file_id,
            &transcript.nonce,
            &transcript.position,
            &transcript.rounds,
        );
        let sig_ok = self.device_key.verify(&bytes, &transcript.signature);
        self.verify_transcript_presigned(request, transcript, sig_ok, segment_ok)
    }

    /// [`VerifyChecks::verify_transcript`] with the signature verdict
    /// supplied by the caller — the hook batched replay uses to check
    /// hundreds of transcript signatures in one multi-scalar equation
    /// and then re-derive each verdict with the precomputed bit. The
    /// verdict is identical to the sequential path whenever `sig_ok`
    /// equals what `device_key.verify` returns over the transcript's
    /// canonical signing bytes.
    pub fn verify_transcript_presigned(
        &self,
        request: &AuditRequest,
        transcript: &SignedTranscript,
        sig_ok: bool,
        mut segment_ok: impl FnMut(usize, &crate::messages::TimedRound) -> bool,
    ) -> AuditReport {
        let view = TranscriptView {
            sig_ok,
            fresh: transcript.nonce == request.nonce && transcript.file_id == request.file_id,
            stale_digest: false,
            position: &transcript.position,
            rounds: transcript.rounds.iter().map(|r| (r.index, r.rtt)).collect(),
        };
        self.verify_core(view, request.k, |i| {
            if segment_ok(i, &transcript.rounds[i]) {
                SegmentVerdict::Ok
            } else {
                SegmentVerdict::BadTag
            }
        })
    }

    /// The dynamic-flow twin of [`VerifyChecks::verify_transcript`]:
    /// same signature/nonce/GPS/round-sanity/timing discipline over a
    /// [`crate::dynamic_audit::DynSignedTranscript`], with the
    /// per-segment judgement pluggable so the live TPA (recomputing
    /// proofs and keyed tags) and the offline replay (recomputing proofs,
    /// trusting recorded tag bits) run *exactly the same* logic.
    ///
    /// Construct `self` with `n_segments = request.digest.segments` —
    /// the dynamic file's length lives in the digest.
    pub fn verify_dyn_transcript(
        &self,
        request: &crate::dynamic_audit::DynAuditRequest,
        transcript: &crate::dynamic_audit::DynSignedTranscript,
        judge: impl FnMut(usize, &crate::dynamic_audit::DynTimedRound) -> SegmentVerdict,
    ) -> AuditReport {
        let bytes = transcript.signing_bytes_of();
        let sig_ok = self.device_key.verify(&bytes, &transcript.signature);
        self.verify_dyn_transcript_presigned(request, transcript, sig_ok, judge)
    }

    /// [`VerifyChecks::verify_dyn_transcript`] with the signature verdict
    /// supplied by the caller (see
    /// [`VerifyChecks::verify_transcript_presigned`]).
    pub fn verify_dyn_transcript_presigned(
        &self,
        request: &crate::dynamic_audit::DynAuditRequest,
        transcript: &crate::dynamic_audit::DynSignedTranscript,
        sig_ok: bool,
        mut judge: impl FnMut(usize, &crate::dynamic_audit::DynTimedRound) -> SegmentVerdict,
    ) -> AuditReport {
        let view = TranscriptView {
            sig_ok,
            fresh: transcript.nonce == request.nonce && transcript.file_id == request.file_id,
            stale_digest: transcript.digest != request.digest,
            position: &transcript.position,
            rounds: transcript.rounds.iter().map(|r| (r.index, r.rtt)).collect(),
        };
        self.verify_core(view, request.k, |i| judge(i, &transcript.rounds[i]))
    }

    /// The shared §V-B(b) sequence over an abstracted transcript view.
    fn verify_core(
        &self,
        view: TranscriptView<'_>,
        expected_k: u32,
        mut judge: impl FnMut(usize) -> SegmentVerdict,
    ) -> AuditReport {
        let mut violations = Vec::new();

        // 1. Signature over the canonical transcript bytes.
        if !view.sig_ok {
            violations.push(Violation::BadSignature);
        }

        // Nonce freshness (binds transcript to this request), and — for
        // dynamic audits — digest freshness (binds it to this state).
        if !view.fresh {
            violations.push(Violation::StaleNonce);
        }
        if view.stale_digest {
            violations.push(Violation::StaleDigest);
        }

        // 2. GPS position against the SLA location.
        let offset = view.position.distance(&self.sla_location);
        if offset.0 > self.location_tolerance.0 {
            violations.push(Violation::WrongLocation { offset });
        }

        // Round count and challenge sanity.
        if view.rounds.len() != expected_k as usize {
            violations.push(Violation::WrongRoundCount {
                expected: expected_k,
                actual: view.rounds.len(),
            });
        }
        let mut seen = std::collections::HashSet::new();
        for (i, &(index, _)) in view.rounds.iter().enumerate() {
            if index >= self.n_segments || !seen.insert(index) {
                violations.push(Violation::MalformedChallenge { round: i });
            }
        }

        // 3. Authenticity of every returned segment (membership proof
        // first where there is one, then the keyed tag).
        let mut segments_ok = 0;
        for (i, &(index, _)) in view.rounds.iter().enumerate() {
            match judge(i) {
                SegmentVerdict::Ok => segments_ok += 1,
                SegmentVerdict::BadTag => violations.push(Violation::BadSegment {
                    round: i,
                    segment: index,
                }),
                SegmentVerdict::BadProof => violations.push(Violation::BadProof {
                    round: i,
                    segment: index,
                }),
            }
        }

        // 4. Timing: max Δt_j ≤ Δt_max.
        let max_rtt = view
            .rounds
            .iter()
            .map(|&(_, rtt)| rtt)
            .max()
            .unwrap_or(SimDuration::ZERO);
        for (i, &(_, rtt)) in view.rounds.iter().enumerate() {
            if rtt > self.policy.max_rtt() {
                violations.push(Violation::TooSlow { round: i, rtt });
            }
        }

        AuditReport {
            violations,
            max_rtt,
            segments_ok,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::LocalProvider;
    use crate::verifier::VerifierDevice;
    use geoproof_geo::coords::places::{BRISBANE, PERTH};
    use geoproof_geo::gps::GpsReceiver;
    use geoproof_net::lan::LanPath;
    use geoproof_por::keys::PorKeys;
    use geoproof_por::params::PorParams;
    use geoproof_sim::clock::SimClock;
    use geoproof_storage::hdd::{HddModel, WD_2500JD};
    use geoproof_storage::server::{FileId, StorageServer};

    struct Rig {
        auditor: Auditor,
        verifier: VerifierDevice,
        provider: LocalProvider,
    }

    fn rig() -> Rig {
        let params = PorParams::test_small();
        let encoder = PorEncoder::new(params);
        let keys = PorKeys::derive(b"master", "f");
        let data: Vec<u8> = (0..4000u32).map(|i| i as u8).collect();
        let tagged = encoder.encode(&data, &keys, "f");
        let n = tagged.metadata.segments;

        let mut storage = StorageServer::new(HddModel::deterministic(WD_2500JD), 1);
        storage.put_file(FileId::from("f"), tagged.segments.clone());
        let provider = LocalProvider::new(storage, LanPath::adjacent(), 2);

        let mut rng = ChaChaRng::from_u64_seed(10);
        let sk = geoproof_crypto::schnorr::SigningKey::generate(&mut rng);
        let verifier =
            VerifierDevice::new(sk.clone(), GpsReceiver::new(BRISBANE), SimClock::new(), 3);

        let auditor = Auditor::new(
            "f".into(),
            n,
            PorEncoder::new(params),
            keys.auditor_view(),
            sk.verifying_key(),
            BRISBANE,
            Km(10.0),
            TimingPolicy::paper(),
            4,
        );
        Rig {
            auditor,
            verifier,
            provider,
        }
    }

    #[test]
    fn honest_audit_accepts() {
        let mut r = rig();
        let req = r.auditor.issue_request(20);
        let t = r.verifier.run_audit(&req, &mut r.provider);
        let report = r.auditor.verify(&req, &t);
        assert!(report.accepted(), "violations: {:?}", report.violations);
        assert_eq!(report.segments_ok, 20);
        assert!(report.max_rtt <= TimingPolicy::paper().max_rtt());
    }

    #[test]
    fn corrupted_segment_is_flagged() {
        let mut r = rig();
        // Corrupt everything so any challenge set hits corruption.
        let n = r
            .provider
            .storage_mut()
            .segment_count(&FileId::from("f"))
            .unwrap();
        r.provider
            .storage_mut()
            .corrupt_segments(&FileId::from("f"), 0..n, 0x80);
        let req = r.auditor.issue_request(10);
        let t = r.verifier.run_audit(&req, &mut r.provider);
        let report = r.auditor.verify(&req, &t);
        assert!(!report.accepted());
        assert!(report
            .violations
            .iter()
            .all(|v| matches!(v, Violation::BadSegment { .. })));
        assert_eq!(report.violations.len(), 10);
    }

    #[test]
    fn spoofed_gps_is_flagged() {
        let mut r = rig();
        r.verifier.gps_mut().spoof(PERTH);
        let req = r.auditor.issue_request(5);
        let t = r.verifier.run_audit(&req, &mut r.provider);
        let report = r.auditor.verify(&req, &t);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::WrongLocation { .. })));
    }

    #[test]
    fn replayed_transcript_is_flagged() {
        let mut r = rig();
        let req1 = r.auditor.issue_request(5);
        let t1 = r.verifier.run_audit(&req1, &mut r.provider);
        // Fresh request, old transcript.
        let req2 = r.auditor.issue_request(5);
        let report = r.auditor.verify(&req2, &t1);
        assert!(report.violations.contains(&Violation::StaleNonce));
    }

    #[test]
    fn tampered_transcript_breaks_signature() {
        let mut r = rig();
        let req = r.auditor.issue_request(5);
        let mut t = r.verifier.run_audit(&req, &mut r.provider);
        t.rounds[0].rtt = SimDuration::from_millis(1); // forge a faster time
        let report = r.auditor.verify(&req, &t);
        assert!(report.violations.contains(&Violation::BadSignature));
    }

    #[test]
    fn slow_rounds_are_flagged() {
        let mut r = rig();
        let req = r.auditor.issue_request(5);
        let mut t = r.verifier.run_audit(&req, &mut r.provider);
        // Rebuild a transcript with inflated times, signed by the device
        // key? The auditor must reject on timing even if signed: simulate a
        // genuinely slow provider by editing before signing is impossible
        // here, so check the policy path directly with a forged-but-signed
        // transcript: signature check will also fire, timing check must
        // fire regardless.
        for round in t.rounds.iter_mut() {
            round.rtt = SimDuration::from_millis(50);
        }
        let report = r.auditor.verify(&req, &t);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::TooSlow { .. })));
    }

    #[test]
    fn wrong_round_count_is_flagged() {
        let mut r = rig();
        let req = r.auditor.issue_request(5);
        let mut t = r.verifier.run_audit(&req, &mut r.provider);
        t.rounds.pop();
        let report = r.auditor.verify(&req, &t);
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::WrongRoundCount {
                expected: 5,
                actual: 4
            }
        )));
    }

    #[test]
    fn verify_evidence_matches_verify_and_bundles_canonical_bytes() {
        let mut r = rig();
        let req = r.auditor.issue_request(8);
        let t = r.verifier.run_audit(&req, &mut r.provider);
        let plain = r.auditor.verify(&req, &t);
        let (report, bundle) = r.auditor.verify_evidence(&req, &t, "acme-cloud", 3);
        assert_eq!(report, plain, "evidence path must not change verdicts");
        assert_eq!(bundle.report, plain);
        assert_eq!(bundle.prover, "acme-cloud");
        assert_eq!(bundle.epoch, 3);
        assert_eq!(bundle.mac_ok.len(), 8);
        assert!(bundle.mac_ok.iter().all(|&ok| ok));
        let parsed = crate::messages::SignedTranscript::from_canonical(&bundle.transcript)
            .expect("canonical bytes parse");
        assert_eq!(parsed, t);
    }

    #[test]
    fn report_display_is_readable() {
        let v = Violation::TooSlow {
            round: 3,
            rtt: SimDuration::from_millis(20),
        };
        let s = format!("{v}");
        assert!(s.contains("round 3"));
    }
}
