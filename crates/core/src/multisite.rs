//! Multi-site replication audits — the Benson–Dowsley–Shacham question
//! ("do you know where your cloud files are?", reviewed in paper §III)
//! answered with GeoProof machinery: one verifier device per contracted
//! site, each running the timed protocol against its local replica, and a
//! TPA that requires *every* SLA site to prove possession locally.
//!
//! The composition catches the replication cheat the single-site protocol
//! cannot express: a provider that keeps one genuine copy and serves the
//! other sites' audits by relaying to it fails the distant sites' timing
//! checks.

use crate::auditor::AuditReport;
use crate::deployment::{Deployment, DeploymentBuilder, ProviderBehaviour};
use crate::policy::TimingPolicy;
use geoproof_geo::coords::GeoPoint;
use geoproof_net::wan::AccessKind;
use geoproof_por::params::PorParams;
use geoproof_sim::time::Km;
use geoproof_storage::hdd::{HddSpec, IBM_36Z15};

/// One contracted replica site.
#[derive(Clone, Debug)]
pub struct ReplicaSite {
    /// Human-readable site name.
    pub name: String,
    /// SLA location of this replica.
    pub location: GeoPoint,
    /// Whether the provider actually stores a replica here, or relays to
    /// the primary `relay_distance` away.
    pub genuine: bool,
    /// Relay distance when not genuine.
    pub relay_distance: Km,
}

/// Per-site outcome of a replication audit.
#[derive(Debug)]
pub struct SiteOutcome {
    /// Site name.
    pub site: String,
    /// The TPA's report for this site.
    pub report: AuditReport,
}

/// Result of auditing every contracted site.
#[derive(Debug)]
pub struct ReplicationReport {
    /// Per-site outcomes.
    pub sites: Vec<SiteOutcome>,
}

impl ReplicationReport {
    /// True only if *every* site's audit accepted — the replication SLA.
    pub fn all_replicas_proven(&self) -> bool {
        self.sites.iter().all(|s| s.report.accepted())
    }

    /// Names of sites that failed.
    pub fn failed_sites(&self) -> Vec<&str> {
        self.sites
            .iter()
            .filter(|s| !s.report.accepted())
            .map(|s| s.site.as_str())
            .collect()
    }
}

/// A multi-site replication audit rig.
pub struct ReplicationAudit {
    deployments: Vec<(String, Deployment)>,
}

impl ReplicationAudit {
    /// Builds one GeoProof deployment per site. Non-genuine sites are
    /// modelled as relays (to the primary copy) with the best Table I
    /// disk, i.e. the strongest cheating configuration.
    pub fn new(sites: &[ReplicaSite], params: PorParams, policy: TimingPolicy, seed: u64) -> Self {
        Self::with_disk(sites, params, policy, seed, IBM_36Z15)
    }

    /// Like [`ReplicationAudit::new`] with an explicit disk for the
    /// cheating relay's remote end.
    pub fn with_disk(
        sites: &[ReplicaSite],
        params: PorParams,
        policy: TimingPolicy,
        seed: u64,
        relay_disk: HddSpec,
    ) -> Self {
        let deployments = sites
            .iter()
            .enumerate()
            .map(|(i, site)| {
                let behaviour = if site.genuine {
                    ProviderBehaviour::Honest {
                        disk: geoproof_storage::hdd::WD_2500JD,
                    }
                } else {
                    ProviderBehaviour::Relay {
                        remote_disk: relay_disk.clone(),
                        distance: site.relay_distance,
                        access: AccessKind::DataCentre,
                    }
                };
                let d = DeploymentBuilder::new(site.location)
                    .params(params)
                    .behaviour(behaviour)
                    .policy(policy)
                    .seed(seed + i as u64 * 17)
                    .build();
                (site.name.clone(), d)
            })
            .collect();
        ReplicationAudit { deployments }
    }

    /// Audits every site with `k` challenges each.
    pub fn audit_all(&mut self, k: u32) -> ReplicationReport {
        let sites = self
            .deployments
            .iter_mut()
            .map(|(name, d)| SiteOutcome {
                site: name.clone(),
                report: d.run_audit(k),
            })
            .collect();
        ReplicationReport { sites }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoproof_geo::coords::places::{BRISBANE, MELBOURNE, SYDNEY};

    fn sites(all_genuine: bool) -> Vec<ReplicaSite> {
        vec![
            ReplicaSite {
                name: "bne-1".into(),
                location: BRISBANE,
                genuine: true,
                relay_distance: Km(0.0),
            },
            ReplicaSite {
                name: "syd-1".into(),
                location: SYDNEY,
                genuine: all_genuine,
                relay_distance: Km(730.0), // relays to Brisbane
            },
            ReplicaSite {
                name: "mel-1".into(),
                location: MELBOURNE,
                genuine: true,
                relay_distance: Km(0.0),
            },
        ]
    }

    #[test]
    fn all_genuine_replicas_pass() {
        let mut audit = ReplicationAudit::new(
            &sites(true),
            PorParams::test_small(),
            TimingPolicy::paper(),
            1,
        );
        let report = audit.audit_all(10);
        assert!(report.all_replicas_proven(), "{:?}", report.failed_sites());
    }

    #[test]
    fn fake_replica_is_exposed_by_its_site_audit() {
        let mut audit = ReplicationAudit::new(
            &sites(false),
            PorParams::test_small(),
            TimingPolicy::paper(),
            2,
        );
        let report = audit.audit_all(10);
        assert!(!report.all_replicas_proven());
        assert_eq!(report.failed_sites(), vec!["syd-1"]);
        // The genuine sites still pass: failure is attributable.
        assert!(report
            .sites
            .iter()
            .filter(|s| s.site != "syd-1")
            .all(|s| s.report.accepted()));
    }

    #[test]
    fn nearby_fake_replica_is_the_residual_risk() {
        // A "replica" relayed from only 100 km away hides inside the
        // timing budget — the same ≤360 km exposure as single-site.
        let near_fake = vec![ReplicaSite {
            name: "syd-ghost".into(),
            location: SYDNEY,
            genuine: false,
            relay_distance: Km(100.0),
        }];
        let mut audit = ReplicationAudit::new(
            &near_fake,
            PorParams::test_small(),
            TimingPolicy::paper(),
            3,
        );
        let report = audit.audit_all(10);
        assert!(report.all_replicas_proven(), "paper's documented bound");
    }
}
