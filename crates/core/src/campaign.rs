//! Longitudinal audit campaigns: time-to-detection measurement.
//!
//! The paper notes detection "is a cumulative process" (§V-C(a)): a single
//! audit catches corruption with probability 1-(1-ε)^k, repeated audits
//! push it towards one. A campaign schedules audits over simulated days
//! and measures *when* a behaviour change (data moved, corruption begins)
//! is first caught — the operational quantity an SLA owner cares about.

use crate::auditor::AuditReport;
use crate::deployment::{Deployment, DeploymentBuilder, ProviderBehaviour};
use geoproof_geo::coords::GeoPoint;
use geoproof_por::params::PorParams;

/// When the provider turns dishonest, in audit periods.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MisbehaviourOnset(pub u32);

/// One audit period's outcome.
#[derive(Debug)]
pub struct PeriodOutcome {
    /// Period index (0-based).
    pub period: u32,
    /// Whether the provider misbehaved during this period.
    pub misbehaving: bool,
    /// The audit report.
    pub report: AuditReport,
}

/// Result of a full campaign.
#[derive(Debug)]
pub struct CampaignResult {
    /// All period outcomes in order.
    pub periods: Vec<PeriodOutcome>,
    /// First period whose audit rejected, if any.
    pub first_detection: Option<u32>,
    /// The onset period of misbehaviour.
    pub onset: u32,
}

impl CampaignResult {
    /// Periods between misbehaviour onset and first detection
    /// (`None` if never detected; 0 = caught in the onset period).
    pub fn detection_lag(&self) -> Option<u32> {
        self.first_detection.map(|d| d.saturating_sub(self.onset))
    }

    /// False alarms: rejections strictly before the onset.
    pub fn false_alarms(&self) -> usize {
        self.periods
            .iter()
            .filter(|p| !p.misbehaving && !p.report.accepted())
            .count()
    }
}

/// Runs a campaign: `total_periods` audits of `k` challenges, with the
/// provider honest until `onset` and `misbehaviour` afterwards.
///
/// Each period rebuilds the deployment so provider state (storage,
/// caches) matches the active behaviour; seeds vary per period so audits
/// draw fresh challenges.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign(
    sla_location: GeoPoint,
    params: PorParams,
    honest: ProviderBehaviour,
    misbehaviour: ProviderBehaviour,
    onset: MisbehaviourOnset,
    total_periods: u32,
    k: u32,
    seed: u64,
) -> CampaignResult {
    let mut periods = Vec::with_capacity(total_periods as usize);
    let mut first_detection = None;
    for period in 0..total_periods {
        let misbehaving = period >= onset.0;
        let behaviour = if misbehaving {
            misbehaviour.clone()
        } else {
            honest.clone()
        };
        let mut deployment: Deployment = DeploymentBuilder::new(sla_location)
            .params(params)
            .behaviour(behaviour)
            .seed(seed.wrapping_add(u64::from(period) * 7919))
            .build();
        let report = deployment.run_audit(k);
        if !report.accepted() && misbehaving && first_detection.is_none() {
            first_detection = Some(period);
        }
        periods.push(PeriodOutcome {
            period,
            misbehaving,
            report,
        });
    }
    CampaignResult {
        periods,
        first_detection,
        onset: onset.0,
    }
}

/// Expected detection lag (in periods) for per-audit detection
/// probability `p`: geometric mean `1/p − 1` failures before success.
pub fn expected_detection_lag(p: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
    1.0 / p - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoproof_geo::coords::places::BRISBANE;
    use geoproof_net::wan::AccessKind;
    use geoproof_sim::time::Km;
    use geoproof_storage::hdd::{IBM_36Z15, WD_2500JD};

    fn honest() -> ProviderBehaviour {
        ProviderBehaviour::Honest { disk: WD_2500JD }
    }

    #[test]
    fn relay_onset_detected_immediately() {
        let result = run_campaign(
            BRISBANE,
            PorParams::test_small(),
            honest(),
            ProviderBehaviour::Relay {
                remote_disk: IBM_36Z15,
                distance: Km(720.0),
                access: AccessKind::DataCentre,
            },
            MisbehaviourOnset(4),
            8,
            10,
            1,
        );
        // Timing violations are deterministic: caught in the onset period.
        assert_eq!(result.first_detection, Some(4));
        assert_eq!(result.detection_lag(), Some(0));
        assert_eq!(result.false_alarms(), 0);
    }

    #[test]
    fn corruption_onset_detected_with_geometric_lag() {
        let result = run_campaign(
            BRISBANE,
            PorParams::test_small(),
            honest(),
            ProviderBehaviour::Corrupting {
                disk: WD_2500JD,
                fraction: 0.30,
            },
            MisbehaviourOnset(2),
            30,
            10,
            2,
        );
        // Per-audit detection 1-(0.7)^10 ≈ 97%: lag almost surely tiny.
        let lag = result
            .detection_lag()
            .expect("must be detected in 28 tries");
        assert!(lag <= 3, "lag {lag}");
        assert_eq!(result.false_alarms(), 0);
    }

    #[test]
    fn honest_forever_never_detects() {
        let result = run_campaign(
            BRISBANE,
            PorParams::test_small(),
            honest(),
            honest(), // "misbehaviour" is also honest
            MisbehaviourOnset(3),
            10,
            10,
            3,
        );
        assert_eq!(result.first_detection, None);
        assert_eq!(result.detection_lag(), None);
        assert_eq!(result.false_alarms(), 0);
    }

    #[test]
    fn expected_lag_formula() {
        assert_eq!(expected_detection_lag(1.0), 0.0);
        assert!((expected_detection_lag(0.5) - 1.0).abs() < 1e-12);
        assert!((expected_detection_lag(0.25) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "p must be")]
    fn zero_probability_panics() {
        expected_detection_lag(0.0);
    }
}
