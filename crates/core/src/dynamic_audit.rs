//! The timed dynamic audit session: GeoProof's Δt_max discipline over a
//! file that *changes* between audit epochs (the paper's §IV DPOR
//! extension taken online).
//!
//! A dynamic audit is issued against a [`DynamicDigest`] — the Merkle
//! root plus segment count the owner derived after its last
//! update/append. Each round challenges one segment and must come back
//! with a membership proof; the TPA verifies, **inside the same timing
//! loop as static audits**, that
//!
//! 1. the proof ties the returned bytes to the audited digest (unkeyed —
//!    offline replay recomputes this from the ledger alone), and
//! 2. the embedded MAC tag is genuine for `(file_id, index)` (keyed —
//!    replay trusts the recorded bit unless given the owner's secret),
//!
//! with the identical signature/nonce/GPS/round-sanity/Δt_max checks of
//! [`crate::auditor::VerifyChecks`] — dynamic verdicts are produced by
//! the same `verify_core` as static ones, so they are replayable from
//! the evidence ledger byte-for-byte.
//!
//! A provider that keeps serving the pre-update segment (with its
//! then-valid proof) fails the Merkle check against the fresh digest:
//! that is the stale-copy cheat the digest chain in the ledger makes
//! provable.

use crate::auditor::{AuditReport, SegmentVerdict, VerifyChecks};
use crate::messages::TranscriptDecodeError;
use crate::policy::TimingPolicy;
use bytes::Bytes;
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_crypto::schnorr::{Signature, VerifyingKey};
use geoproof_geo::coords::GeoPoint;
use geoproof_por::dynamic::{verify_tagged, DynamicDigest, ProvenSegment};
use geoproof_por::keys::AuditorKey;
use geoproof_por::merkle::{verify_proof, MerkleProof};
use geoproof_sim::time::{Km, SimDuration};

/// The TPA's dynamic audit trigger: digest under audit, challenge count,
/// fresh nonce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DynAuditRequest {
    /// File under audit.
    pub file_id: String,
    /// The digest (root + segment count) this audit verifies against.
    pub digest: DynamicDigest,
    /// Number of segments to challenge, k.
    pub k: u32,
    /// Fresh nonce N binding the transcript to this audit.
    pub nonce: [u8; 32],
}

/// One timed dynamic round: challenged index, returned tagged segment,
/// its membership proof, and the measured Δt_j.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DynTimedRound {
    /// Challenged segment index c_j.
    pub index: u64,
    /// Returned tagged segment bytes (empty when the prover had nothing —
    /// still signed, still damning). A refcounted view of the received
    /// frame buffer on the TCP path.
    pub segment: Bytes,
    /// Merkle membership proof for the segment (an empty-sibling proof
    /// when the prover had nothing; it can never verify).
    pub proof: MerkleProof,
    /// Measured round-trip time Δt_j.
    pub rtt: SimDuration,
}

/// The signed dynamic audit transcript. The digest is echoed and signed,
/// so a transcript cannot be replayed against a later (or earlier) state
/// without tripping [`crate::auditor::Violation::StaleDigest`] or the
/// signature check.
#[derive(Clone, Debug, PartialEq)]
pub struct DynSignedTranscript {
    /// File under audit.
    pub file_id: String,
    /// Echo of the TPA's nonce.
    pub nonce: [u8; 32],
    /// Echo of the digest the verifier audited against.
    pub digest: DynamicDigest,
    /// The verifier's GPS fix Pos_v.
    pub position: GeoPoint,
    /// The k timed rounds.
    pub rounds: Vec<DynTimedRound>,
    /// Schnorr signature over the canonical encoding of all of the above.
    pub signature: Signature,
}

/// Domain-separation prefix of the canonical dynamic-transcript encoding.
const DYN_TRANSCRIPT_MAGIC: &[u8] = b"geoproof-dyn-transcript-v1";

impl DynSignedTranscript {
    /// The canonical byte string that is signed and verified.
    pub fn signing_bytes(
        file_id: &str,
        nonce: &[u8; 32],
        digest: &DynamicDigest,
        position: &GeoPoint,
        rounds: &[DynTimedRound],
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + rounds.len() * 192);
        out.extend_from_slice(DYN_TRANSCRIPT_MAGIC);
        out.extend_from_slice(&(file_id.len() as u32).to_be_bytes());
        out.extend_from_slice(file_id.as_bytes());
        out.extend_from_slice(nonce);
        out.extend_from_slice(&digest.root);
        out.extend_from_slice(&digest.segments.to_be_bytes());
        out.extend_from_slice(&position.lat.to_bits().to_be_bytes());
        out.extend_from_slice(&position.lon.to_bits().to_be_bytes());
        out.extend_from_slice(&(rounds.len() as u32).to_be_bytes());
        for r in rounds {
            out.extend_from_slice(&r.index.to_be_bytes());
            out.extend_from_slice(&r.rtt.as_nanos().to_be_bytes());
            let proof = r.proof.to_bytes();
            out.extend_from_slice(&(proof.len() as u32).to_be_bytes());
            out.extend_from_slice(&proof);
            out.extend_from_slice(&(r.segment.len() as u32).to_be_bytes());
            out.extend_from_slice(&r.segment);
        }
        out
    }

    /// [`DynSignedTranscript::signing_bytes`] of this transcript's own
    /// fields.
    pub fn signing_bytes_of(&self) -> Vec<u8> {
        DynSignedTranscript::signing_bytes(
            &self.file_id,
            &self.nonce,
            &self.digest,
            &self.position,
            &self.rounds,
        )
    }

    /// Largest per-round RTT (`Δt′ = max(Δt_1 … Δt_k)`).
    pub fn max_rtt(&self) -> SimDuration {
        self.rounds
            .iter()
            .map(|r| r.rtt)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// The transcript's full canonical encoding: the signed bytes
    /// followed by the 64-byte signature — the durable form the evidence
    /// ledger stores; re-encoding a parsed transcript is byte-identical.
    pub fn canonical_bytes(&self) -> Bytes {
        let mut out = self.signing_bytes_of();
        out.extend_from_slice(&self.signature.to_bytes());
        Bytes::from(out)
    }

    /// Parses a canonical encoding back into a transcript. Round
    /// segments are zero-copy slices of `bytes`; every field is
    /// bounds-checked; trailing bytes are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`TranscriptDecodeError`] describing the first malformed
    /// field.
    pub fn from_canonical(bytes: &Bytes) -> Result<DynSignedTranscript, TranscriptDecodeError> {
        use TranscriptDecodeError as E;
        let mut c = crate::cursor::ByteCursor::new(bytes);
        let trunc = |_| E::Truncated;

        if c.take(DYN_TRANSCRIPT_MAGIC.len()).map_err(trunc)?.as_ref() != DYN_TRANSCRIPT_MAGIC {
            return Err(E::BadMagic);
        }
        let fid_len = c.take_u32().map_err(trunc)? as usize;
        let fid = c.take(fid_len).map_err(trunc)?;
        let file_id = std::str::from_utf8(&fid)
            .map_err(|_| E::BadFileId)?
            .to_owned();
        let nonce = c.take_array::<32>().map_err(trunc)?;
        let digest = DynamicDigest {
            root: c.take_array::<32>().map_err(trunc)?,
            segments: c.take_u64().map_err(trunc)?,
        };
        let lat = c.take_f64_bits().map_err(trunc)?;
        let lon = c.take_f64_bits().map_err(trunc)?;
        if !lat.is_finite()
            || !lon.is_finite()
            || !(-90.0..=90.0).contains(&lat)
            || !(-180.0..=180.0).contains(&lon)
        {
            return Err(E::BadPosition);
        }
        let position = GeoPoint { lat, lon };
        let n_rounds = c.take_u32().map_err(trunc)?;
        let mut rounds = Vec::new();
        for _ in 0..n_rounds {
            let index = c.take_u64().map_err(trunc)?;
            let rtt = SimDuration::from_nanos(c.take_u64().map_err(trunc)?);
            let proof_len = c.take_u32().map_err(trunc)? as usize;
            let proof_bytes = c.take(proof_len).map_err(trunc)?;
            let proof = MerkleProof::from_bytes(&proof_bytes).ok_or(E::BadProof)?;
            let seg_len = c.take_u32().map_err(trunc)? as usize;
            let segment = c.take(seg_len).map_err(trunc)?;
            rounds.push(DynTimedRound {
                index,
                segment,
                proof,
                rtt,
            });
        }
        let signature = Signature::from_bytes(&c.take_array::<64>().map_err(trunc)?);
        if !c.at_end() {
            return Err(E::TrailingBytes);
        }
        Ok(DynSignedTranscript {
            file_id,
            nonce,
            digest,
            position,
            rounds,
            signature,
        })
    }
}

/// Whether a round's membership proof ties its bytes to `root` at the
/// claimed index. Unkeyed and deterministic — the offline replay runs
/// exactly this function against the recorded digest.
pub fn round_proof_ok(root: &geoproof_por::merkle::Digest, round: &DynTimedRound) -> bool {
    round.proof.index == round.index && verify_proof(root, &round.segment, &round.proof)
}

/// Serves timed dynamic challenges — the provider side of the dynamic
/// Fig. 5 loop (simulated time; the TCP path lives in the facade's
/// `tcp_audit`).
pub trait DynSegmentProvider {
    /// Returns the proven segment (or `None` when missing) and the
    /// service time to charge to the verifier's clock.
    fn serve_dyn(&mut self, file_id: &str, index: u64) -> (Option<ProvenSegment>, SimDuration);
}

/// A [`DynSegmentProvider`] over an in-process
/// [`geoproof_por::dynamic::DynamicStore`] with a fixed service latency —
/// the simulation/test rig.
#[derive(Debug)]
pub struct LocalDynProvider {
    /// The provider-side store (tests mutate it to play adversary).
    pub store: geoproof_por::dynamic::DynamicStore,
    /// The file id the store answers for.
    pub file_id: String,
    /// Fixed per-round service time.
    pub latency: SimDuration,
}

impl DynSegmentProvider for LocalDynProvider {
    fn serve_dyn(&mut self, file_id: &str, index: u64) -> (Option<ProvenSegment>, SimDuration) {
        let served = if file_id == self.file_id {
            self.store.challenge(index).ok()
        } else {
            None
        };
        (served, self.latency)
    }
}

/// The third-party auditor for dynamic files. Unlike the static
/// [`crate::auditor::Auditor`], it is not pinned to one segment count —
/// the audited length travels in each request's digest.
pub struct DynAuditor {
    file_id: String,
    auditor_key: AuditorKey,
    device_key: VerifyingKey,
    sla_location: GeoPoint,
    location_tolerance: Km,
    policy: TimingPolicy,
    rng: ChaChaRng,
}

impl std::fmt::Debug for DynAuditor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynAuditor")
            .field("file_id", &self.file_id)
            .field("sla_location", &self.sla_location)
            .finish_non_exhaustive()
    }
}

impl DynAuditor {
    /// Creates a dynamic auditor (same provisioning as the static one:
    /// the owner's MAC key view, the registered device key, the SLA
    /// location and the Δt_max policy).
    pub fn new(
        file_id: String,
        auditor_key: AuditorKey,
        device_key: VerifyingKey,
        sla_location: GeoPoint,
        location_tolerance: Km,
        policy: TimingPolicy,
        seed: u64,
    ) -> Self {
        DynAuditor {
            file_id,
            auditor_key,
            device_key,
            sla_location,
            location_tolerance,
            policy,
            rng: ChaChaRng::from_u64_seed(seed),
        }
    }

    /// The active timing policy.
    pub fn policy(&self) -> &TimingPolicy {
        &self.policy
    }

    /// Issues a fresh audit of `k` challenges against `digest` (the
    /// owner's current one — the digest evolves with every update).
    pub fn issue_request(&mut self, digest: DynamicDigest, k: u32) -> DynAuditRequest {
        let mut nonce = [0u8; 32];
        self.rng.fill_bytes(&mut nonce);
        DynAuditRequest {
            file_id: self.file_id.clone(),
            digest,
            k,
            nonce,
        }
    }

    fn checks<'a>(&'a self, request: &DynAuditRequest) -> VerifyChecks<'a> {
        VerifyChecks {
            file_id: &self.file_id,
            n_segments: request.digest.segments,
            device_key: &self.device_key,
            sla_location: self.sla_location,
            location_tolerance: self.location_tolerance,
            policy: &self.policy,
        }
    }

    /// Pre-computes the keyed tag verdict for every round (evaluated for
    /// all rounds, not short-circuited, so live verification and replay
    /// record/consume identical bits).
    fn tag_bits(&self, transcript: &DynSignedTranscript) -> Vec<bool> {
        transcript
            .rounds
            .iter()
            .map(|round| {
                verify_tagged(
                    self.auditor_key.mac_key(),
                    &self.file_id,
                    round.index,
                    &round.segment,
                )
            })
            .collect()
    }

    /// Verifies a dynamic transcript against the request that triggered
    /// it: Merkle membership *and* keyed tag per round, inside the same
    /// check sequence as static audits.
    pub fn verify(
        &self,
        request: &DynAuditRequest,
        transcript: &DynSignedTranscript,
    ) -> AuditReport {
        let tag_ok = self.tag_bits(transcript);
        self.checks(request)
            .verify_dyn_transcript(request, transcript, |i, round| {
                judge_round(&request.digest.root, round, tag_ok.get(i).copied())
            })
    }

    /// Like [`DynAuditor::verify`], but also materialises the durable
    /// [`crate::evidence::DynEvidenceBundle`]. The report inside the
    /// bundle is byte-identical (under
    /// [`crate::evidence::encode_report`]) to the returned one.
    pub fn verify_evidence(
        &self,
        request: &DynAuditRequest,
        transcript: &DynSignedTranscript,
        prover: impl Into<String>,
        epoch: u64,
    ) -> (AuditReport, crate::evidence::DynEvidenceBundle) {
        let tag_ok = self.tag_bits(transcript);
        let report = self
            .checks(request)
            .verify_dyn_transcript(request, transcript, |i, round| {
                judge_round(&request.digest.root, round, tag_ok.get(i).copied())
            });
        let bundle = crate::evidence::DynEvidenceBundle {
            prover: prover.into(),
            epoch,
            device_key: self.device_key.to_bytes(),
            sla_location: self.sla_location,
            location_tolerance: self.location_tolerance,
            policy: self.policy,
            request: request.clone(),
            tag_ok,
            report: report.clone(),
            transcript: transcript.canonical_bytes(),
        };
        (report, bundle)
    }
}

/// The one judgement both live TPA and offline replay apply per round:
/// membership proof first (unkeyed, always recomputable), then the keyed
/// tag bit. A missing bit reads as failed, as in the static replay path.
pub fn judge_round(
    root: &geoproof_por::merkle::Digest,
    round: &DynTimedRound,
    tag_ok: Option<bool>,
) -> SegmentVerdict {
    if !round_proof_ok(root, round) {
        SegmentVerdict::BadProof
    } else if !tag_ok.unwrap_or(false) {
        SegmentVerdict::BadTag
    } else {
        SegmentVerdict::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::Violation;
    use crate::verifier::VerifierDevice;
    use geoproof_crypto::schnorr::SigningKey;
    use geoproof_geo::coords::places::{BRISBANE, PERTH};
    use geoproof_geo::gps::GpsReceiver;
    use geoproof_por::dynamic::{DynamicOwner, DynamicStore};
    use geoproof_por::keys::PorKeys;
    use geoproof_sim::clock::SimClock;

    struct Rig {
        auditor: DynAuditor,
        verifier: VerifierDevice,
        provider: LocalDynProvider,
        owner: DynamicOwner,
        keys: PorKeys,
    }

    fn rig(latency: SimDuration) -> Rig {
        let keys = PorKeys::derive(b"dyn-core", "df");
        let bodies: Vec<Vec<u8>> = (0..24).map(|i| vec![i as u8; 40]).collect();
        let (store, _d0) = DynamicStore::initialise("df", &bodies, &keys);
        let tagged: Vec<Bytes> = (0..24u64).map(|i| store.segment(i).unwrap()).collect();
        let owner = DynamicOwner::from_tagged("df", &tagged);

        let mut rng = ChaChaRng::from_u64_seed(5);
        let sk = SigningKey::generate(&mut rng);
        let verifier =
            VerifierDevice::new(sk.clone(), GpsReceiver::new(BRISBANE), SimClock::new(), 7);
        let auditor = DynAuditor::new(
            "df".into(),
            keys.auditor_view(),
            sk.verifying_key(),
            BRISBANE,
            Km(10.0),
            TimingPolicy::paper(),
            11,
        );
        Rig {
            auditor,
            verifier,
            provider: LocalDynProvider {
                store,
                file_id: "df".into(),
                latency,
            },
            owner,
            keys,
        }
    }

    #[test]
    fn honest_dynamic_audit_accepts() {
        let mut r = rig(SimDuration::from_millis(5));
        let req = r.auditor.issue_request(r.owner.digest(), 8);
        let t = r.verifier.run_dyn_audit(&req, &mut r.provider);
        let report = r.auditor.verify(&req, &t);
        assert!(report.accepted(), "violations: {:?}", report.violations);
        assert_eq!(report.segments_ok, 8);
    }

    #[test]
    fn audit_follows_updates_and_appends() {
        let mut r = rig(SimDuration::from_millis(5));
        // Update and append, advancing both sides.
        let (tagged, d1) = r.owner.tag_update(3, b"v2", &r.keys).unwrap();
        r.provider
            .store
            .apply_update(3, Bytes::from(tagged))
            .unwrap();
        let (tagged, d2) = r.owner.tag_append(b"25th", &r.keys);
        r.provider.store.apply_append(Bytes::from(tagged));
        assert_eq!(d2.segments, 25);
        assert_ne!(d1.root, d2.root);
        let req = r.auditor.issue_request(d2, 10);
        let t = r.verifier.run_dyn_audit(&req, &mut r.provider);
        let report = r.auditor.verify(&req, &t);
        assert!(report.accepted(), "violations: {:?}", report.violations);
    }

    #[test]
    fn stale_provider_fails_merkle_proofs() {
        let mut r = rig(SimDuration::from_millis(5));
        // Owner updates; provider silently drops the update (stale copy).
        let (_tagged, fresh) = r.owner.tag_update(3, b"v2", &r.keys).unwrap();
        let req = r.auditor.issue_request(fresh, 24); // all segments
        let t = r.verifier.run_dyn_audit(&req, &mut r.provider);
        let report = r.auditor.verify(&req, &t);
        assert!(!report.accepted());
        assert!(
            report
                .violations
                .iter()
                .all(|v| matches!(v, Violation::BadProof { .. })),
            "stale tree must fail proofs: {:?}",
            report.violations
        );
    }

    #[test]
    fn silently_corrupted_segment_is_caught() {
        let mut r = rig(SimDuration::from_millis(5));
        for i in 0..24 {
            assert!(r.provider.store.corrupt_silently(i, 0x11));
        }
        let req = r.auditor.issue_request(r.owner.digest(), 6);
        let t = r.verifier.run_dyn_audit(&req, &mut r.provider);
        let report = r.auditor.verify(&req, &t);
        assert!(!report.accepted());
        assert_eq!(report.violations.len(), 6);
    }

    #[test]
    fn slow_provider_fails_timing() {
        let mut r = rig(SimDuration::from_millis(40));
        let req = r.auditor.issue_request(r.owner.digest(), 5);
        let t = r.verifier.run_dyn_audit(&req, &mut r.provider);
        let report = r.auditor.verify(&req, &t);
        assert!(!report.accepted());
        assert!(report
            .violations
            .iter()
            .all(|v| matches!(v, Violation::TooSlow { .. })));
    }

    #[test]
    fn replayed_transcript_is_stale_on_nonce_and_digest() {
        let mut r = rig(SimDuration::from_millis(5));
        let req1 = r.auditor.issue_request(r.owner.digest(), 5);
        let t1 = r.verifier.run_dyn_audit(&req1, &mut r.provider);
        // Fresh request (new nonce, same digest): old transcript is stale.
        let req2 = r.auditor.issue_request(r.owner.digest(), 5);
        let report = r.auditor.verify(&req2, &t1);
        assert!(report.violations.contains(&Violation::StaleNonce));
        // Request against an evolved digest additionally trips
        // StaleDigest.
        let (tagged, fresh) = r.owner.tag_update(0, b"v2", &r.keys).unwrap();
        r.provider
            .store
            .apply_update(0, Bytes::from(tagged))
            .unwrap();
        let req3 = r.auditor.issue_request(fresh, 5);
        let report = r.auditor.verify(&req3, &t1);
        assert!(report.violations.contains(&Violation::StaleDigest));
    }

    #[test]
    fn spoofed_gps_is_flagged() {
        let mut r = rig(SimDuration::from_millis(5));
        r.verifier.gps_mut().spoof(PERTH);
        let req = r.auditor.issue_request(r.owner.digest(), 4);
        let t = r.verifier.run_dyn_audit(&req, &mut r.provider);
        let report = r.auditor.verify(&req, &t);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::WrongLocation { .. })));
    }

    #[test]
    fn tampered_transcript_breaks_signature() {
        let mut r = rig(SimDuration::from_millis(5));
        let req = r.auditor.issue_request(r.owner.digest(), 4);
        let mut t = r.verifier.run_dyn_audit(&req, &mut r.provider);
        t.rounds[0].rtt = SimDuration::from_nanos(1);
        let report = r.auditor.verify(&req, &t);
        assert!(report.violations.contains(&Violation::BadSignature));
    }

    #[test]
    fn canonical_roundtrip_is_identity_and_rejects_malformed() {
        let mut r = rig(SimDuration::from_millis(5));
        let req = r.auditor.issue_request(r.owner.digest(), 3);
        let t = r.verifier.run_dyn_audit(&req, &mut r.provider);
        let bytes = t.canonical_bytes();
        let parsed = DynSignedTranscript::from_canonical(&bytes).expect("parse");
        assert_eq!(parsed, t);
        assert_eq!(parsed.canonical_bytes(), bytes, "re-encode must match");
        // Zero-copy: a parsed round segment aliases the canonical buffer.
        let seg = &parsed.rounds[0].segment;
        let hay = bytes.as_ref();
        let off = hay
            .windows(seg.len().max(1))
            .position(|w| w == seg.as_ref())
            .expect("present");
        assert!(seg.aliases(&bytes.slice(off..off + seg.len())));
        // Every truncation fails; trailing bytes fail.
        for cut in 0..bytes.len() {
            assert!(
                DynSignedTranscript::from_canonical(&bytes.slice(..cut)).is_err(),
                "cut {cut}"
            );
        }
        let mut extra = bytes.to_vec();
        extra.push(0);
        assert_eq!(
            DynSignedTranscript::from_canonical(&Bytes::from(extra)),
            Err(TranscriptDecodeError::TrailingBytes)
        );
    }

    #[test]
    fn verify_evidence_matches_verify() {
        let mut r = rig(SimDuration::from_millis(5));
        let req = r.auditor.issue_request(r.owner.digest(), 6);
        let t = r.verifier.run_dyn_audit(&req, &mut r.provider);
        let plain = r.auditor.verify(&req, &t);
        let (report, bundle) = r.auditor.verify_evidence(&req, &t, "dyn-prover", 2);
        assert_eq!(report, plain, "evidence path must not change verdicts");
        assert_eq!(bundle.report, plain);
        assert_eq!(bundle.tag_ok.len(), 6);
        assert!(bundle.tag_ok.iter().all(|&ok| ok));
        let parsed = DynSignedTranscript::from_canonical(&bundle.transcript).expect("parse");
        assert_eq!(parsed, t);
    }
}
