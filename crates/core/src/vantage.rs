//! Multi-vantage audits: N verifier devices at known coordinates run
//! concurrent timed sessions against one prover, each vantage's Δt becomes
//! a range, and an outlier-robust triangulation aggregates the ranges into
//! a *position estimate* — not just a pass/fail — that survives f lying or
//! laggy vantages out of N as long as f < N/2.
//!
//! This closes the §V-C(b) residual: a single verifier cannot tell a
//! ~60 km relay from LAN jitter, but N vantages ranging the same prover
//! from different directions pin it down — a relay detour inflates *every*
//! vantage's range, which either breaks the ranges' mutual consistency
//! (no point on Earth fits them; high inlier residual) or displaces the
//! estimate away from the SLA coordinates (high discrepancy). Either way
//! the verdict flips, and the detectable detour shrinks as N grows.
//!
//! The engine half reuses [`AuditEngine`]'s sharded session table and
//! work-stealing pool: each vantage registers as its own engine prover
//! (its device key, its own coordinates as the GPS pin) and runs a
//! standard timed session; the aggregation half is pure geometry and is
//! replayed offline from the ledger's recorded inputs alone.

use crate::auditor::AuditReport;
use crate::engine::{AuditEngine, ProverId, ProverSpec};
use crate::provider::SegmentProvider;
use crate::verifier::VerifierDevice;
use geoproof_geo::coords::GeoPoint;
use geoproof_geo::schemes::rtt_to_distance;
use geoproof_geo::triangulation::{robust_multilaterate_seeded, RangeMeasurement};
use geoproof_sim::time::{Km, SimDuration, Speed};

/// Ranging calibration plus the two acceptance thresholds of a
/// multi-vantage audit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VantagePolicy {
    /// Effective round-trip ranging speed (see
    /// [`geoproof_net::wan::WanModel::ranging_calibration`] for the
    /// calibrated value under the paper's WAN model).
    pub ranging_speed: Speed,
    /// Fixed per-RTT overhead subtracted before converting to distance.
    pub ranging_overhead: SimDuration,
    /// Maximum accepted distance between the aggregate estimate and the
    /// SLA coordinates.
    pub position_tolerance: Km,
    /// Maximum accepted RMS range residual over the inlier set — the
    /// consistency budget a colluding relay's uniform inflation breaks.
    pub residual_budget: Km,
}

impl VantagePolicy {
    /// Residual budget calibrated to a per-range noise floor and the
    /// vantage count: an honest fleet's RMS residual concentrates around
    /// the noise floor with spread ∝ 1/√N, so the budget — and with it
    /// the evasion radius — tightens as vantages are added.
    pub fn residual_budget_for(noise_floor: Km, n: usize) -> Km {
        Km(noise_floor.0 * (1.0 + 3.0 / (n.max(1) as f64).sqrt()))
    }
}

/// One vantage's raw timing contribution: where it stands and the fastest
/// round it measured (the fastest round carries the least queueing noise,
/// so it is the cleanest range estimate).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VantageObservation {
    /// The vantage device's known coordinates.
    pub vantage: GeoPoint,
    /// Fastest round-trip the vantage measured.
    pub min_rtt: SimDuration,
}

/// Converts one vantage's fastest Δt into a range measurement under the
/// policy's calibration.
pub fn observation_range(obs: &VantageObservation, policy: &VantagePolicy) -> RangeMeasurement {
    RangeMeasurement {
        landmark: obs.vantage,
        distance: rtt_to_distance(obs.min_rtt, policy.ranging_overhead, policy.ranging_speed),
    }
}

/// The geometric half of a multi-vantage verdict: the robust estimate and
/// how it compares against the SLA claim.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiVantageEstimate {
    /// Trimmed-consensus position estimate of the prover.
    pub position: GeoPoint,
    /// Distance between the estimate and the SLA coordinates.
    pub discrepancy: Km,
    /// RMS range residual over the inlier vantages.
    pub rms_inlier_residual: Km,
    /// Which vantages survived trimming, input order.
    pub inliers: Vec<bool>,
    /// `true` iff discrepancy and residual are both within budget.
    pub consistent: bool,
}

/// Aggregates per-vantage ranges into a Byzantine-tolerant estimate,
/// seeded at the SLA coordinates (the claim under test — the seed both
/// anchors two-inlier refits and makes offline replay deterministic).
///
/// Returns `None` when fewer than three valid ranges are supplied or the
/// vantage geometry is rank-deficient — the caller falls back to
/// per-vantage timing verdicts alone.
pub fn aggregate_vantages(
    sla: GeoPoint,
    ranges: &[RangeMeasurement],
    position_tolerance: Km,
    residual_budget: Km,
) -> Option<MultiVantageEstimate> {
    let fit = robust_multilaterate_seeded(ranges, Some(sla))?;
    let discrepancy = sla.distance(&fit.position);
    let consistent =
        discrepancy.0 <= position_tolerance.0 && fit.rms_inlier_residual.0 <= residual_budget.0;
    Some(MultiVantageEstimate {
        position: fit.position,
        discrepancy,
        rms_inlier_residual: fit.rms_inlier_residual,
        inliers: fit.inliers,
        consistent,
    })
}

/// One vantage in an engine-driven multi-vantage run.
pub struct VantageSession {
    /// The vantage's engine identity (each vantage is its own session-table
    /// entry, so N sessions shard and interleave like any fleet).
    pub id: ProverId,
    /// The vantage device's known coordinates.
    pub position: GeoPoint,
    /// The vantage's verifier device.
    pub device: VerifierDevice,
    /// The channel answering this vantage's challenges.
    pub provider: Box<dyn SegmentProvider + Send>,
}

/// Outcome of a multi-vantage engine run.
#[derive(Clone, Debug)]
pub struct MultiVantageOutcome {
    /// Per-vantage timed-audit verdicts (sorted by vantage id).
    pub reports: Vec<(ProverId, AuditReport)>,
    /// Per-vantage RTT-derived ranges, in the fleet's order.
    pub ranges: Vec<RangeMeasurement>,
    /// The aggregate estimate, when the geometry supports one.
    pub estimate: Option<MultiVantageEstimate>,
    /// The multi-vantage verdict: a majority of vantages' timed audits
    /// accepted, and the aggregate estimate (when one exists) is
    /// consistent with the SLA claim. A single Byzantine vantage can
    /// neither flip an honest verdict nor rescue a cheating prover.
    pub accepted: bool,
}

/// Runs N concurrent vantage sessions against one prover's data on the
/// engine's work-stealing pool, then aggregates the vantages' fastest
/// rounds into a position estimate.
///
/// Each vantage is registered as its own engine prover — its device key,
/// with its own coordinates as the GPS pin, so a vantage standing
/// anywhere on the map passes its *own* location check while the SLA
/// claim is judged by the aggregate.
pub fn run_vantage_sessions(
    engine: &AuditEngine,
    sla: GeoPoint,
    policy: &VantagePolicy,
    vantages: Vec<VantageSession>,
) -> MultiVantageOutcome {
    let order: Vec<(ProverId, GeoPoint)> = vantages
        .iter()
        .map(|v| (v.id.clone(), v.position))
        .collect();
    let mut fleet: Vec<(ProverId, VerifierDevice, Box<dyn SegmentProvider + Send>)> =
        Vec::with_capacity(vantages.len());
    for v in vantages {
        engine.register_prover(
            v.id.clone(),
            ProverSpec {
                device_key: v.device.verifying_key(),
                sla_location: v.position,
            },
        );
        fleet.push((v.id, v.device, v.provider));
    }
    let (reports, _stats) = engine.run_sessions(fleet);
    let mut ranges = Vec::with_capacity(order.len());
    for (id, position) in &order {
        let Some(session) = engine.take_finished(id) else {
            continue; // session never opened or still in flight
        };
        let Some(min_rtt) = session
            .transcript
            .as_ref()
            .and_then(|t| t.rounds.iter().map(|r| r.rtt).min())
        else {
            continue;
        };
        ranges.push(observation_range(
            &VantageObservation {
                vantage: *position,
                min_rtt,
            },
            policy,
        ));
    }
    let estimate = aggregate_vantages(
        sla,
        &ranges,
        policy.position_tolerance,
        policy.residual_budget,
    );
    let majority = order.len() / 2 + 1;
    let timing_ok = reports.iter().filter(|(_, r)| r.accepted()).count() >= majority;
    let geometry_ok = estimate.as_ref().map_or(ranges.len() < 3, |e| e.consistent);
    MultiVantageOutcome {
        reports,
        ranges,
        estimate,
        accepted: timing_ok && geometry_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoproof_geo::coords::places::*;

    fn exact_ranges(target: GeoPoint, landmarks: &[GeoPoint]) -> Vec<RangeMeasurement> {
        landmarks
            .iter()
            .map(|lm| RangeMeasurement {
                landmark: *lm,
                distance: lm.distance(&target),
            })
            .collect()
    }

    #[test]
    fn aggregate_accepts_truthful_fleet() {
        let ranges = exact_ranges(BRISBANE, &[SYDNEY, MELBOURNE, PERTH, TOWNSVILLE, ADELAIDE]);
        let est = aggregate_vantages(BRISBANE, &ranges, Km(50.0), Km(50.0)).expect("geometry");
        assert!(est.consistent, "discrepancy {}", est.discrepancy.0);
        assert!(est.discrepancy.0 < 20.0);
        assert!(est.inliers.iter().all(|i| *i));
    }

    #[test]
    fn aggregate_survives_byzantine_minority() {
        // f = 2 of N = 5 vantages lie wildly; the estimate must hold.
        let mut ranges = exact_ranges(BRISBANE, &[SYDNEY, MELBOURNE, PERTH, TOWNSVILLE, ADELAIDE]);
        ranges[1].distance = Km(ranges[1].distance.0 + 3_000.0);
        ranges[3].distance = Km(ranges[3].distance.0 + 4_500.0);
        let est = aggregate_vantages(BRISBANE, &ranges, Km(50.0), Km(50.0)).expect("geometry");
        assert!(est.consistent, "discrepancy {}", est.discrepancy.0);
        assert!(!est.inliers[1] && !est.inliers[3]);
        assert!(est.discrepancy.0 < 40.0);
    }

    #[test]
    fn aggregate_rejects_uniform_inflation() {
        // A colluding relay inflates every range by the detour: the
        // ranges stop fitting any point near the claim.
        let mut ranges = exact_ranges(BRISBANE, &[SYDNEY, MELBOURNE, PERTH, TOWNSVILLE, ADELAIDE]);
        for r in &mut ranges {
            r.distance = Km(r.distance.0 + 400.0);
        }
        let est = aggregate_vantages(BRISBANE, &ranges, Km(60.0), Km(60.0)).expect("geometry");
        assert!(!est.consistent);
    }

    #[test]
    fn aggregate_needs_three_vantages() {
        let ranges = exact_ranges(BRISBANE, &[SYDNEY, MELBOURNE]);
        assert!(aggregate_vantages(BRISBANE, &ranges, Km(50.0), Km(50.0)).is_none());
    }

    #[test]
    fn residual_budget_tightens_with_vantage_count() {
        let floor = Km(10.0);
        let budgets: Vec<f64> = [1usize, 3, 5, 7]
            .iter()
            .map(|&n| VantagePolicy::residual_budget_for(floor, n).0)
            .collect();
        for w in budgets.windows(2) {
            assert!(w[1] < w[0], "budget must shrink as N grows: {budgets:?}");
        }
        assert!(
            budgets[3] > floor.0,
            "budget never collapses below the noise floor"
        );
    }
}
