//! Cloud-provider models: honest and adversarial provers.
//!
//! The prover P of Fig. 5 is whatever machine answers the verifier's
//! segment requests. [`SegmentProvider`] abstracts it; implementations
//! cover the honest local deployment and the paper's attack scenarios —
//! most importantly the Fig. 6 relay attack, where a front node on the
//! provider's LAN forwards every request over the Internet to a remote
//! data centre with faster disks.

use bytes::Bytes;
use geoproof_net::lan::LanPath;
use geoproof_net::wan::WanModel;
use geoproof_por::stream::TaggedArena;
use geoproof_sim::time::{Km, SimDuration};
use geoproof_storage::arena::SegmentArena;
use geoproof_storage::server::{FileId, StorageServer};

/// Anything that can answer a challenge for segment `idx` of file `fid`.
///
/// Returns the segment bytes (or `None` when missing) plus the *total*
/// simulated service time the verifier will observe for the round —
/// network transit plus storage look-up. The bytes are a refcounted
/// view ([`Bytes`]); honest providers serve slices of their storage
/// arena without copying.
pub trait SegmentProvider {
    /// Serves one segment request.
    fn serve(&mut self, fid: &FileId, idx: u64) -> (Option<Bytes>, SimDuration);

    /// Human-readable description for reports.
    fn describe(&self) -> String;
}

/// Wraps an encoded [`TaggedArena`] as storage-layer [`SegmentArena`]
/// without copying: both index the *same* refcounted buffer, so one
/// encode can back any number of provider storages (replicas, fleet
/// rigs) at zero marginal payload cost.
pub fn shared_store(arena: &TaggedArena) -> SegmentArena {
    SegmentArena::from_contiguous(
        arena.bytes().clone(),
        arena.stride(),
        arena.segment_count() as usize,
    )
}

/// The honest deployment: the verifier device and the storage node share
/// the provider's LAN (paper Fig. 4).
#[derive(Debug)]
pub struct LocalProvider {
    storage: StorageServer,
    lan: LanPath,
    rng: geoproof_crypto::chacha::ChaChaRng,
    request_bytes: usize,
}

impl LocalProvider {
    /// Creates an honest provider: `storage` reachable over `lan`.
    pub fn new(storage: StorageServer, lan: LanPath, seed: u64) -> Self {
        LocalProvider {
            storage,
            lan,
            rng: geoproof_crypto::chacha::ChaChaRng::from_u64_seed(seed),
            request_bytes: 64,
        }
    }

    /// Mutable access to the underlying storage (tests inject corruption).
    pub fn storage_mut(&mut self) -> &mut StorageServer {
        &mut self.storage
    }
}

impl SegmentProvider for LocalProvider {
    fn serve(&mut self, fid: &FileId, idx: u64) -> (Option<Bytes>, SimDuration) {
        let read = self.storage.read_segment(fid, idx as usize);
        let resp_bytes = read.data.as_ref().map_or(64, Bytes::len);
        let net = self.lan.rtt(self.request_bytes, resp_bytes, &mut self.rng);
        (read.data, net + read.latency)
    }

    fn describe(&self) -> String {
        format!("local provider ({})", self.storage.disk().spec().name)
    }
}

/// The Fig. 6 relay attack: P keeps no data; it forwards requests to a
/// remote data centre P̃ at `distance`, which runs faster disks to claw
/// back time.
#[derive(Debug)]
pub struct RelayProvider {
    remote_storage: StorageServer,
    local_lan: LanPath,
    wan: WanModel,
    distance: Km,
    rng: geoproof_crypto::chacha::ChaChaRng,
    request_bytes: usize,
}

impl RelayProvider {
    /// Creates a relaying provider with the remote store `distance` away.
    pub fn new(
        remote_storage: StorageServer,
        local_lan: LanPath,
        wan: WanModel,
        distance: Km,
        seed: u64,
    ) -> Self {
        RelayProvider {
            remote_storage,
            local_lan,
            wan,
            distance,
            rng: geoproof_crypto::chacha::ChaChaRng::from_u64_seed(seed),
            request_bytes: 64,
        }
    }

    /// Mutable access to the remote storage.
    pub fn storage_mut(&mut self) -> &mut StorageServer {
        &mut self.remote_storage
    }

    /// The relay distance.
    pub fn distance(&self) -> Km {
        self.distance
    }
}

impl SegmentProvider for RelayProvider {
    fn serve(&mut self, fid: &FileId, idx: u64) -> (Option<Bytes>, SimDuration) {
        let read = self.remote_storage.read_segment(fid, idx as usize);
        let resp_bytes = read.data.as_ref().map_or(64, Bytes::len);
        // V → P over the LAN, P → P̃ over the Internet, look-up at P̃.
        let lan = self
            .local_lan
            .rtt(self.request_bytes, resp_bytes, &mut self.rng);
        let wan = self.wan.rtt(self.distance, &mut self.rng);
        (read.data, lan + wan + read.latency)
    }

    fn describe(&self) -> String {
        format!(
            "relay attack via {} at {:.0} km ({})",
            "front node",
            self.distance.0,
            self.remote_storage.disk().spec().name
        )
    }
}

/// A decorator that adds fixed extra delay to another provider — models
/// overloaded storage or deliberate stalling.
pub struct DelayedProvider<P> {
    inner: P,
    extra: SimDuration,
}

impl<P: SegmentProvider> DelayedProvider<P> {
    /// Wraps `inner`, adding `extra` to every response.
    pub fn new(inner: P, extra: SimDuration) -> Self {
        DelayedProvider { inner, extra }
    }
}

impl<P: SegmentProvider> SegmentProvider for DelayedProvider<P> {
    fn serve(&mut self, fid: &FileId, idx: u64) -> (Option<Bytes>, SimDuration) {
        let (data, t) = self.inner.serve(fid, idx);
        (data, t + self.extra)
    }

    fn describe(&self) -> String {
        format!("{} (+{} delay)", self.inner.describe(), self.extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoproof_net::wan::AccessKind;
    use geoproof_storage::hdd::{HddModel, IBM_36Z15, WD_2500JD};

    fn storage(spec: geoproof_storage::hdd::HddSpec) -> StorageServer {
        let mut s = StorageServer::new(HddModel::deterministic(spec), 1);
        s.put_file(FileId::from("f"), vec![vec![0xabu8; 83]; 100]);
        s
    }

    #[test]
    fn local_provider_serves_within_budget() {
        let mut p = LocalProvider::new(storage(WD_2500JD), LanPath::adjacent(), 2);
        let (data, t) = p.serve(&FileId::from("f"), 7);
        assert_eq!(data.unwrap().len(), 83);
        // LAN (~0.1 ms) + WD lookup (~13.1 ms) < 16 ms paper budget.
        assert!(t.as_millis_f64() < 16.0, "served in {t}");
        assert!(t.as_millis_f64() > 13.0);
    }

    #[test]
    fn relay_provider_is_slower_despite_fast_disk() {
        let wan = WanModel::calibrated(AccessKind::DataCentre);
        let mut p = RelayProvider::new(storage(IBM_36Z15), LanPath::adjacent(), wan, Km(720.0), 3);
        let (data, t) = p.serve(&FileId::from("f"), 7);
        assert!(data.is_some());
        // 720 km at 4/9 c is ~10.8 ms RTT + hops + fast lookup 5.4 ms:
        // comfortably above the paper's 16 ms budget.
        assert!(t.as_millis_f64() > 16.0, "served in {t}");
    }

    #[test]
    fn short_relay_with_fast_disk_can_beat_budget() {
        // The flip side of the 360 km bound: a *near* relay with the best
        // disk fits inside Δt_max — exactly the paper's residual risk.
        let wan = WanModel::calibrated(AccessKind::DataCentre);
        let mut p = RelayProvider::new(storage(IBM_36Z15), LanPath::adjacent(), wan, Km(100.0), 4);
        let (_, t) = p.serve(&FileId::from("f"), 7);
        assert!(t.as_millis_f64() < 16.0, "served in {t}");
    }

    #[test]
    fn missing_segment_still_times() {
        let mut p = LocalProvider::new(storage(WD_2500JD), LanPath::adjacent(), 5);
        let (data, t) = p.serve(&FileId::from("f"), 10_000);
        assert!(data.is_none());
        assert!(t > SimDuration::ZERO);
    }

    #[test]
    fn delayed_provider_adds_exactly_extra() {
        let base = LocalProvider::new(storage(WD_2500JD), LanPath::adjacent(), 6);
        let mut fast = LocalProvider::new(storage(WD_2500JD), LanPath::adjacent(), 6);
        let mut slow = DelayedProvider::new(base, SimDuration::from_millis(5));
        let (_, t_fast) = fast.serve(&FileId::from("f"), 1);
        let (_, t_slow) = slow.serve(&FileId::from("f"), 1);
        let diff = t_slow.as_millis_f64() - t_fast.as_millis_f64();
        assert!((diff - 5.0).abs() < 0.2, "diff {diff}");
    }

    #[test]
    fn descriptions_are_informative() {
        let p = LocalProvider::new(storage(WD_2500JD), LanPath::adjacent(), 7);
        assert!(p.describe().contains("WD 2500JD"));
        let wan = WanModel::calibrated(AccessKind::DataCentre);
        let r = RelayProvider::new(storage(IBM_36Z15), LanPath::adjacent(), wan, Km(360.0), 8);
        assert!(r.describe().contains("360"));
        assert!(r.describe().contains("IBM 36Z15"));
    }
}
