//! Continuous audit scheduling: which prover to audit next, and when.
//!
//! A one-shot audit answers "is the file *there, now*?"; the paper's
//! deployment story is continuous assurance — every contracted prover
//! re-proved on a cadence, with misbehaving provers re-checked more
//! aggressively. [`AuditScheduler`] is that loop's brain:
//!
//! * **Cadence + deterministic jitter** — each prover is re-audited
//!   every [`SchedulePolicy::cadence`], offset by a jitter derived from
//!   a hash of `(prover, epoch)` so the fleet's audits spread out in
//!   time instead of thundering in lockstep, yet two schedulers given
//!   the same provers produce the *same* schedule (replayable tests,
//!   diffable incidents).
//! * **REJECT priority** — a prover whose audit just failed is
//!   re-audited after the much shorter
//!   [`SchedulePolicy::reject_cadence`], and stays on that fast track
//!   for [`SchedulePolicy::reject_rounds`] consecutive clean audits.
//! * **Admission and rate control** — at most
//!   [`SchedulePolicy::max_in_flight`] audits outstanding at once, and
//!   a token bucket caps dispatches per second, so a huge due-backlog
//!   (say, after a long pause) drains smoothly instead of stampeding
//!   the network.
//!
//! Time is a plain `u64` of nanoseconds supplied by the caller on every
//! call: the serving binary feeds it wall-clock nanoseconds, tests feed
//! it `geoproof_sim` virtual time, and the scheduler cannot tell the
//! difference. Internally the prover set is sharded by FNV-1a of the
//! prover id — the same discipline as the engine's
//! [`SessionTable`](crate::engine::SessionTable) — so a serving loop
//! and a stats scraper contend on different locks.

use crate::engine::ProverId;
use geoproof_crypto::fnv::fnv1a_64;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

const NANOS_PER_SEC: u64 = 1_000_000_000;

/// Shard count; matches the engine session table's default.
const SHARDS: usize = 16;

struct SchedulerMetrics {
    scheduled: std::sync::Arc<geoproof_obs::Counter>,
    dispatched: std::sync::Arc<geoproof_obs::Counter>,
    reject_fast_track: std::sync::Arc<geoproof_obs::Counter>,
    throttled_rate: std::sync::Arc<geoproof_obs::Counter>,
    throttled_in_flight: std::sync::Arc<geoproof_obs::Counter>,
    in_flight: std::sync::Arc<geoproof_obs::Gauge>,
}

fn metrics() -> &'static SchedulerMetrics {
    static METRICS: OnceLock<SchedulerMetrics> = OnceLock::new();
    METRICS.get_or_init(|| SchedulerMetrics {
        scheduled: geoproof_obs::counter("scheduler_audits_scheduled_total"),
        dispatched: geoproof_obs::counter("scheduler_audits_dispatched_total"),
        reject_fast_track: geoproof_obs::counter("scheduler_reaudits_total{reason=\"reject\"}"),
        throttled_rate: geoproof_obs::counter("scheduler_throttled_total{reason=\"rate\"}"),
        throttled_in_flight: geoproof_obs::counter(
            "scheduler_throttled_total{reason=\"in-flight\"}",
        ),
        in_flight: geoproof_obs::gauge("scheduler_in_flight"),
    })
}

/// Knobs for the continuous audit loop.
///
/// Parsed from the `--schedule` CLI flag via [`SchedulePolicy::parse`]:
/// a comma-separated `key=value` list, e.g.
/// `cadence=30s,jitter=0.2,reject-cadence=5s,reject-rounds=3,max-in-flight=64,rate=200`.
#[derive(Clone, Debug, PartialEq)]
pub struct SchedulePolicy {
    /// Steady-state interval between audits of one prover.
    pub cadence: Duration,
    /// Jitter as a fraction of the cadence in `[0, 1)`: each epoch's
    /// due time is offset by up to `±jitter × cadence`, deterministically
    /// per `(prover, epoch)`.
    pub jitter: f64,
    /// Interval between audits while a prover is on the REJECT fast
    /// track.
    pub reject_cadence: Duration,
    /// How many consecutive clean audits it takes to leave the fast
    /// track after a REJECT.
    pub reject_rounds: u32,
    /// Maximum audits outstanding (popped but not completed) at once;
    /// `0` means unlimited.
    pub max_in_flight: usize,
    /// Maximum dispatches per second (token bucket with one second of
    /// burst); `0` means unlimited.
    pub rate_per_sec: u64,
}

impl Default for SchedulePolicy {
    fn default() -> Self {
        SchedulePolicy {
            cadence: Duration::from_secs(30),
            jitter: 0.2,
            reject_cadence: Duration::from_secs(5),
            reject_rounds: 3,
            max_in_flight: 256,
            rate_per_sec: 0,
        }
    }
}

/// `"1500ms"` / `"30s"` / `"2m"` / `"1h"` → [`Duration`].
fn parse_duration(v: &str) -> Result<Duration, String> {
    let (digits, unit): (&str, &str) = match v.find(|c: char| !c.is_ascii_digit()) {
        Some(i) => v.split_at(i),
        None => (v, "s"),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("{v:?}: expected <integer><ms|s|m|h>"))?;
    match unit {
        "ms" => Ok(Duration::from_millis(n)),
        "s" => Ok(Duration::from_secs(n)),
        "m" => Ok(Duration::from_secs(n * 60)),
        "h" => Ok(Duration::from_secs(n * 3600)),
        _ => Err(format!("{v:?}: unknown time unit {unit:?}")),
    }
}

impl SchedulePolicy {
    /// Parse a `--schedule` argument. Unspecified keys keep their
    /// defaults; unknown keys and malformed values are errors (a typo'd
    /// policy silently running defaults would be an audit-coverage
    /// hole).
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut p = SchedulePolicy::default();
        for item in s.split(',').map(str::trim).filter(|i| !i.is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("{item:?}: expected key=value"))?;
            match key.trim() {
                "cadence" => p.cadence = parse_duration(value.trim())?,
                "reject-cadence" => p.reject_cadence = parse_duration(value.trim())?,
                "jitter" => {
                    let j: f64 = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("jitter {value:?}: expected a number"))?;
                    if !(0.0..1.0).contains(&j) {
                        return Err(format!("jitter {j} out of range [0, 1)"));
                    }
                    p.jitter = j;
                }
                "reject-rounds" => {
                    p.reject_rounds = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("reject-rounds {value:?}: expected an integer"))?;
                }
                "max-in-flight" => {
                    p.max_in_flight = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("max-in-flight {value:?}: expected an integer"))?;
                }
                "rate" => {
                    p.rate_per_sec = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("rate {value:?}: expected an integer"))?;
                }
                other => return Err(format!("unknown schedule key {other:?}")),
            }
        }
        if p.cadence.is_zero() || p.reject_cadence.is_zero() {
            return Err("cadence and reject-cadence must be non-zero".into());
        }
        Ok(p)
    }
}

/// A pending audit in a shard's heap, min-ordered by `(at, seq)` — the
/// `seq` tie-break makes cross-shard merge order total and repeatable.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct Due {
    at: u64,
    seq: u64,
    epoch: u64,
    prover: ProverId,
}

struct ProverState {
    /// Bumped on every completion; heap entries from older epochs are
    /// stale and dropped lazily when popped.
    epoch: u64,
    /// Clean audits still owed at `reject_cadence` after a REJECT.
    reject_streak: u32,
    in_flight: bool,
}

#[derive(Default)]
struct Shard {
    heap: BinaryHeap<Reverse<Due>>,
    provers: HashMap<ProverId, ProverState>,
}

/// Token bucket for [`SchedulePolicy::rate_per_sec`]; integer
/// arithmetic only, so virtual and wall clocks behave identically.
struct TokenBucket {
    tokens: u64,
    last_refill_ns: u64,
}

/// The continuous audit scheduler. See the [module docs](self).
///
/// All methods take `now_ns`, the caller's clock in nanoseconds;
/// callers must pass a non-decreasing sequence (the serving loop's
/// monotonic clock, or a [`geoproof_sim`] virtual clock in tests).
pub struct AuditScheduler {
    policy: SchedulePolicy,
    shards: Vec<Mutex<Shard>>,
    seq: AtomicU64,
    in_flight: AtomicU64,
    bucket: Mutex<TokenBucket>,
}

impl AuditScheduler {
    pub fn new(policy: SchedulePolicy) -> Self {
        let shards = (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect();
        AuditScheduler {
            shards,
            seq: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            bucket: Mutex::new(TokenBucket {
                tokens: policy.rate_per_sec,
                last_refill_ns: 0,
            }),
            policy,
        }
    }

    pub fn policy(&self) -> &SchedulePolicy {
        &self.policy
    }

    fn shard_of(&self, prover: &ProverId) -> &Mutex<Shard> {
        &self.shards[(fnv1a_64(prover.0.as_bytes()) as usize) % self.shards.len()]
    }

    /// Deterministic per-`(prover, epoch)` offset in `[-jitter, +jitter]
    /// × base` nanoseconds, clamped so the due time never lands in the
    /// past or at zero delay.
    fn jittered(&self, prover: &ProverId, epoch: u64, base_ns: u64) -> u64 {
        if self.policy.jitter <= 0.0 {
            return base_ns;
        }
        let mut key = prover.0.as_bytes().to_vec();
        key.extend_from_slice(&epoch.to_le_bytes());
        // Top 53 bits of the hash → uniform fraction in [0, 1).
        let frac = (fnv1a_64(&key) >> 11) as f64 / (1u64 << 53) as f64;
        let signed = (frac * 2.0 - 1.0) * self.policy.jitter;
        let offset = (base_ns as f64 * signed) as i64;
        (base_ns as i64 + offset).max(1) as u64
    }

    fn push(&self, shard: &mut Shard, prover: ProverId, epoch: u64, at: u64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        shard.heap.push(Reverse(Due {
            at,
            seq,
            epoch,
            prover,
        }));
        metrics().scheduled.inc();
    }

    /// Enrol a prover. Its first audit lands within one cadence of
    /// `now_ns`, at a deterministic per-prover phase, so enrolling a
    /// whole fleet at once does not schedule the whole fleet at once.
    /// Returns `false` (and changes nothing) if already enrolled.
    pub fn register(&self, prover: &ProverId, now_ns: u64) -> bool {
        let cadence = self.policy.cadence.as_nanos() as u64;
        let shard = &mut *self.shard_of(prover).lock();
        if shard.provers.contains_key(prover) {
            return false;
        }
        shard.provers.insert(
            prover.clone(),
            ProverState {
                epoch: 0,
                reject_streak: 0,
                in_flight: false,
            },
        );
        let phase = fnv1a_64(prover.0.as_bytes()) % cadence.max(1);
        self.push(shard, prover.clone(), 0, now_ns + phase);
        true
    }

    /// Remove a prover (contract ended). Any pending heap entry is
    /// dropped lazily on its next pop. Returns `false` if unknown.
    pub fn deregister(&self, prover: &ProverId) -> bool {
        let shard = &mut *self.shard_of(prover).lock();
        match shard.provers.remove(prover) {
            Some(state) => {
                if state.in_flight {
                    self.in_flight.fetch_sub(1, Ordering::Relaxed);
                    metrics().in_flight.dec();
                }
                true
            }
            None => false,
        }
    }

    /// Enrolled provers.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().provers.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Audits currently outstanding (popped, not yet completed).
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed) as usize
    }

    /// How many dispatches the admission and rate limits allow right
    /// now, and whether the rate limit is the binding one. Does **not**
    /// consume tokens.
    fn budget(&self, now_ns: u64) -> (usize, bool) {
        let mut budget = usize::MAX;
        if self.policy.max_in_flight > 0 {
            budget = self.policy.max_in_flight.saturating_sub(self.in_flight());
        }
        let mut rate_bound = false;
        if self.policy.rate_per_sec > 0 {
            let mut bucket = self.bucket.lock();
            let elapsed = now_ns.saturating_sub(bucket.last_refill_ns);
            let refill =
                (elapsed as u128 * self.policy.rate_per_sec as u128 / NANOS_PER_SEC as u128) as u64;
            if refill > 0 {
                bucket.tokens = (bucket.tokens + refill).min(self.policy.rate_per_sec);
                // Advance by whole tokens only, so fractional progress
                // is not discarded between calls.
                bucket.last_refill_ns += (refill as u128 * NANOS_PER_SEC as u128
                    / self.policy.rate_per_sec as u128)
                    as u64;
                bucket.last_refill_ns = bucket.last_refill_ns.min(now_ns);
            }
            if (bucket.tokens as usize) < budget {
                budget = bucket.tokens as usize;
                rate_bound = true;
            }
        }
        (budget, rate_bound)
    }

    /// Pop every prover whose audit is due at `now_ns`, in deterministic
    /// `(due-time, enqueue-order)` order across all shards, up to the
    /// admission and rate limits. Each returned prover is marked
    /// in-flight until [`complete`](Self::complete) is called for it.
    pub fn pop_due(&self, now_ns: u64) -> Vec<ProverId> {
        let (budget, rate_bound) = self.budget(now_ns);
        // Collect all currently-due live entries, dropping stale ones
        // (deregistered provers, superseded epochs) as they surface.
        let mut due: Vec<Due> = Vec::new();
        for shard in &self.shards {
            let shard = &mut *shard.lock();
            while let Some(Reverse(head)) = shard.heap.peek() {
                if head.at > now_ns {
                    break;
                }
                let entry = shard.heap.pop().expect("peeked").0;
                match shard.provers.get(&entry.prover) {
                    Some(s) if s.epoch == entry.epoch && !s.in_flight => due.push(entry),
                    _ => {} // stale: deregistered or re-scheduled
                }
            }
        }
        due.sort_unstable_by_key(|e| (e.at, e.seq));

        let take = due.len().min(budget);
        if take < due.len() {
            // Over budget: re-park the remainder (they keep their due
            // time and seq, so their turn comes in the same order).
            let throttled = if rate_bound {
                &metrics().throttled_rate
            } else {
                &metrics().throttled_in_flight
            };
            for entry in due.drain(take..) {
                throttled.inc();
                self.shard_of(&entry.prover)
                    .lock()
                    .heap
                    .push(Reverse(entry));
            }
        }

        if self.policy.rate_per_sec > 0 && take > 0 {
            self.bucket.lock().tokens -= take as u64;
        }
        let mut out = Vec::with_capacity(take);
        for entry in due {
            let shard = &mut *self.shard_of(&entry.prover).lock();
            // A concurrent deregister between the two shard locks makes
            // the entry stale after all; skip it rather than tracking a
            // phantom in-flight audit.
            let Some(state) = shard.provers.get_mut(&entry.prover) else {
                continue;
            };
            state.in_flight = true;
            self.in_flight.fetch_add(1, Ordering::Relaxed);
            metrics().in_flight.inc();
            metrics().dispatched.inc();
            out.push(entry.prover);
        }
        out
    }

    /// Report an audit verdict and schedule the prover's next audit: at
    /// `reject_cadence` while on the REJECT fast track, else at
    /// `cadence`, both jittered. A `false` verdict (REJECT) puts the
    /// prover on the fast track for the next
    /// [`SchedulePolicy::reject_rounds`] audits; each accepted audit
    /// works one round off. Unknown or not-in-flight provers are
    /// ignored (e.g. deregistered while the audit ran).
    pub fn complete(&self, prover: &ProverId, accepted: bool, now_ns: u64) {
        let shard = &mut *self.shard_of(prover).lock();
        let Some(state) = shard.provers.get_mut(prover) else {
            return;
        };
        if !state.in_flight {
            return;
        }
        state.in_flight = false;
        state.epoch += 1;
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        metrics().in_flight.dec();

        if accepted {
            state.reject_streak = state.reject_streak.saturating_sub(1);
        } else {
            state.reject_streak = self.policy.reject_rounds;
        }
        let base = if state.reject_streak > 0 {
            metrics().reject_fast_track.inc();
            self.policy.reject_cadence.as_nanos() as u64
        } else {
            self.policy.cadence.as_nanos() as u64
        };
        let (epoch, at) = (
            state.epoch,
            now_ns + self.jittered(prover, state.epoch, base),
        );
        self.push(shard, prover.clone(), epoch, at);
    }

    /// Earliest pending due time, if any — what a serving loop should
    /// sleep until. Stale entries may make this conservative (early),
    /// never late.
    pub fn next_wakeup_ns(&self) -> Option<u64> {
        self.shards
            .iter()
            .filter_map(|s| s.lock().heap.peek().map(|Reverse(d)| d.at))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoproof_sim::clock::SimClock;
    use geoproof_sim::time::{SimDuration, SimInstant};

    fn policy(s: &str) -> SchedulePolicy {
        SchedulePolicy::parse(s).expect("test policy parses")
    }

    /// Drive the scheduler from SimNet virtual time.
    fn sim_now(clock: &SimClock) -> u64 {
        clock.now().duration_since(SimInstant::EPOCH).as_nanos()
    }

    #[test]
    fn policy_parses_every_knob_and_rejects_typos() {
        let p = policy(
            "cadence=2m,jitter=0.5,reject-cadence=1500ms,reject-rounds=7,max-in-flight=9,rate=42",
        );
        assert_eq!(p.cadence, Duration::from_secs(120));
        assert_eq!(p.jitter, 0.5);
        assert_eq!(p.reject_cadence, Duration::from_millis(1500));
        assert_eq!(p.reject_rounds, 7);
        assert_eq!(p.max_in_flight, 9);
        assert_eq!(p.rate_per_sec, 42);
        assert_eq!(SchedulePolicy::parse(""), Ok(SchedulePolicy::default()));

        for bad in [
            "cadnce=30s",
            "cadence=30x",
            "cadence",
            "jitter=1.5",
            "jitter=x",
            "cadence=0s",
            "rate=many",
        ] {
            assert!(SchedulePolicy::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn registration_staggers_first_audits_across_the_cadence() {
        let s = AuditScheduler::new(policy("cadence=10s,jitter=0"));
        for i in 0..64 {
            s.register(&ProverId(format!("site-{i}")), 0);
        }
        // Nothing due immediately...
        assert!(s.pop_due(0).is_empty());
        // ...everything due within one cadence, and not all at once.
        let horizon = Duration::from_secs(10).as_nanos() as u64;
        let early = s.pop_due(horizon / 4).len();
        let rest = s.pop_due(horizon).len();
        assert_eq!(early + rest, 64);
        assert!(early > 0 && early < 64, "no phase spread: {early}/64 early");
    }

    #[test]
    fn steady_state_cadence_is_exact_without_jitter() {
        let clock = SimClock::new();
        let s = AuditScheduler::new(policy("cadence=30s,jitter=0"));
        let p = ProverId::from("site-a");
        s.register(&p, sim_now(&clock));

        // Burn the staggered first audit.
        clock.advance(SimDuration::from_millis(30 * 1000));
        assert_eq!(s.pop_due(sim_now(&clock)), vec![p.clone()]);
        s.complete(&p, true, sim_now(&clock));

        for _ in 0..5 {
            let just_before = sim_now(&clock) + Duration::from_secs(30).as_nanos() as u64 - 1;
            assert!(s.pop_due(just_before).is_empty(), "audited early");
            clock.advance(SimDuration::from_millis(30 * 1000));
            assert_eq!(s.pop_due(sim_now(&clock)), vec![p.clone()]);
            s.complete(&p, true, sim_now(&clock));
        }
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let run = || {
            let s = AuditScheduler::new(policy("cadence=100s,jitter=0.2"));
            let clock = SimClock::new();
            let mut order = Vec::new();
            for i in 0..32 {
                s.register(&ProverId(format!("site-{i}")), sim_now(&clock));
            }
            for _ in 0..200 {
                clock.advance(SimDuration::from_millis(5 * 1000));
                for p in s.pop_due(sim_now(&clock)) {
                    s.complete(&p, true, sim_now(&clock));
                    order.push((sim_now(&clock), p));
                }
            }
            order
        };
        let (a, b) = (run(), run());
        assert!(!a.is_empty());
        assert_eq!(a, b, "same fleet, same clock ⇒ same schedule");
    }

    #[test]
    fn jittered_gaps_stay_within_the_jitter_band() {
        let s = AuditScheduler::new(policy("cadence=100s,jitter=0.25"));
        let p = ProverId::from("site-a");
        let cadence = Duration::from_secs(100).as_nanos() as u64;
        s.register(&p, 0);
        let mut now = cadence; // past the staggered start
        let mut saw_offset = false;
        for _ in 0..50 {
            assert_eq!(s.pop_due(now).len(), 1);
            let completed_at = now;
            s.complete(&p, true, completed_at);
            let next = s.next_wakeup_ns().expect("rescheduled");
            let gap = next - completed_at;
            let (lo, hi) = (cadence * 3 / 4, cadence * 5 / 4);
            assert!((lo..=hi).contains(&gap), "gap {gap} outside ±25% band");
            saw_offset |= gap != cadence;
            now = next;
        }
        assert!(saw_offset, "jitter never moved a due time");
    }

    #[test]
    fn rejected_provers_jump_the_queue_until_their_streak_clears() {
        let clock = SimClock::new();
        let s = AuditScheduler::new(policy(
            "cadence=60s,reject-cadence=5s,reject-rounds=2,jitter=0",
        ));
        let bad = ProverId::from("bad-site");
        let good = ProverId::from("good-site");
        s.register(&bad, sim_now(&clock));
        s.register(&good, sim_now(&clock));
        clock.advance(SimDuration::from_millis(60 * 1000));
        for p in s.pop_due(sim_now(&clock)) {
            let accepted = p == good;
            s.complete(&p, accepted, sim_now(&clock));
        }

        // The rejected prover is re-audited on the 5s fast track: two
        // clean rounds before it returns to the 60s cadence.
        for round in 0..2 {
            clock.advance(SimDuration::from_millis(5 * 1000));
            assert_eq!(
                s.pop_due(sim_now(&clock)),
                vec![bad.clone()],
                "round {round}: fast-track re-audit missing"
            );
            s.complete(&bad, true, sim_now(&clock));
        }
        clock.advance(SimDuration::from_millis(5 * 1000));
        assert!(
            s.pop_due(sim_now(&clock)).is_empty(),
            "streak cleared but still fast-tracked"
        );
        clock.advance(SimDuration::from_millis(55 * 1000));
        let due = s.pop_due(sim_now(&clock));
        assert!(due.contains(&bad) && due.contains(&good));
    }

    #[test]
    fn a_reject_while_fast_tracked_restarts_the_streak() {
        let s = AuditScheduler::new(policy(
            "cadence=60s,reject-cadence=5s,reject-rounds=3,jitter=0",
        ));
        let p = ProverId::from("site-a");
        let sec = NANOS_PER_SEC;
        s.register(&p, 0);
        let mut now = 60 * sec;
        assert_eq!(s.pop_due(now).len(), 1);
        s.complete(&p, false, now); // streak = 3
        for _ in 0..2 {
            now += 5 * sec;
            assert_eq!(s.pop_due(now).len(), 1);
            s.complete(&p, true, now); // streak 3→2→1
        }
        now += 5 * sec;
        assert_eq!(s.pop_due(now).len(), 1);
        s.complete(&p, false, now); // reject again: streak back to 3
        for _ in 0..3 {
            now += 5 * sec;
            assert_eq!(s.pop_due(now).len(), 1, "restarted streak too short");
            s.complete(&p, true, now);
        }
        now += 5 * sec;
        assert!(s.pop_due(now).is_empty(), "left fast track late");
    }

    #[test]
    fn max_in_flight_caps_outstanding_audits() {
        let s = AuditScheduler::new(policy("cadence=1s,jitter=0,max-in-flight=4"));
        let provers: Vec<ProverId> = (0..16).map(|i| ProverId(format!("site-{i}"))).collect();
        for p in &provers {
            s.register(p, 0);
        }
        let now = 2 * NANOS_PER_SEC;
        let first = s.pop_due(now);
        assert_eq!(first.len(), 4);
        assert_eq!(s.in_flight(), 4);
        assert!(s.pop_due(now).is_empty(), "cap not enforced");
        // Completing two frees two slots; the queue drains in order.
        s.complete(&first[0], true, now);
        s.complete(&first[1], true, now);
        assert_eq!(s.pop_due(now).len(), 2);
        assert_eq!(s.in_flight(), 4);
    }

    #[test]
    fn rate_limit_meters_a_backlog_across_seconds() {
        let clock = SimClock::new();
        let s = AuditScheduler::new(policy("cadence=1s,jitter=0,rate=10"));
        for i in 0..30 {
            s.register(&ProverId(format!("site-{i}")), sim_now(&clock));
        }
        // All 30 due after a long pause; the bucket (burst = rate)
        // allows 10, then 10 more per elapsed second.
        clock.advance(SimDuration::from_millis(100 * 1000));
        let mut popped = s.pop_due(sim_now(&clock)).len();
        assert_eq!(popped, 10);
        assert!(s.pop_due(sim_now(&clock)).is_empty(), "bucket not drained");
        for _ in 0..2 {
            clock.advance(SimDuration::from_millis(1000));
            popped += s.pop_due(sim_now(&clock)).len();
        }
        assert_eq!(popped, 30);
    }

    #[test]
    fn pop_order_is_deterministic_across_shards() {
        let s = AuditScheduler::new(policy("cadence=10s,jitter=0"));
        for i in 0..100 {
            s.register(&ProverId(format!("site-{i}")), 0);
        }
        let horizon = 10 * NANOS_PER_SEC;
        let order = s.pop_due(horizon);
        assert_eq!(order.len(), 100);
        // Due times are the FNV phase offsets: the pop must come back
        // sorted by them (ties broken by registration order).
        let mut expected: Vec<(u64, ProverId)> = (0..100)
            .map(|i| {
                let p = ProverId(format!("site-{i}"));
                (fnv1a_64(p.0.as_bytes()) % horizon, p)
            })
            .collect();
        expected.sort();
        let expected: Vec<ProverId> = expected.into_iter().map(|(_, p)| p).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn deregistered_provers_never_come_due_and_double_calls_are_safe() {
        let s = AuditScheduler::new(policy("cadence=1s,jitter=0"));
        let (a, b) = (ProverId::from("a"), ProverId::from("b"));
        assert!(s.register(&a, 0));
        assert!(!s.register(&a, 0), "double register must be a no-op");
        s.register(&b, 0);
        assert!(s.deregister(&a));
        assert!(!s.deregister(&a));
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop_due(10 * NANOS_PER_SEC), vec![b.clone()]);
        // Completing a prover that is not in flight must not panic or
        // schedule anything.
        s.complete(&a, true, 0);
        let before = s.next_wakeup_ns();
        s.complete(&b, true, 10 * NANOS_PER_SEC);
        s.complete(&b, true, 10 * NANOS_PER_SEC); // double complete
        assert!(s.next_wakeup_ns().is_some());
        let _ = before;
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn next_wakeup_tracks_the_earliest_pending_audit() {
        let s = AuditScheduler::new(policy("cadence=10s,jitter=0"));
        assert_eq!(s.next_wakeup_ns(), None);
        s.register(&ProverId::from("a"), 0);
        let first = s.next_wakeup_ns().expect("scheduled");
        assert!(first <= 10 * NANOS_PER_SEC);
        assert!(s.pop_due(first).len() == 1);
    }

    #[test]
    fn a_hundred_thousand_provers_schedule_and_drain() {
        // The bench drives ≥100k provers through this; keep a scaled
        // sanity version in the unit suite. Jitter off and exactly one
        // cadence of virtual time: every prover's staggered first audit
        // comes due exactly once, and every reschedule (pop time +
        // cadence) lands beyond the horizon.
        let s = AuditScheduler::new(policy("cadence=10s,jitter=0,max-in-flight=0"));
        let clock = SimClock::new();
        for i in 0..20_000 {
            s.register(&ProverId(format!("site-{i}")), sim_now(&clock));
        }
        let mut audited = 0usize;
        for _ in 0..20 {
            clock.advance(SimDuration::from_millis(500));
            for p in s.pop_due(sim_now(&clock)) {
                s.complete(&p, true, sim_now(&clock));
                audited += 1;
            }
        }
        assert_eq!(audited, 20_000, "a prover was skipped or double-run");
        assert_eq!(s.in_flight(), 0);
    }
}
