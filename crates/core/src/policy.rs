//! The Δt_max timing policy (paper §V-C(b), §V-D–§V-F).
//!
//! The TPA accepts a round only if Δt_j ≤ Δt_max, where Δt_max budgets the
//! LAN round trip plus the disk look-up. The paper's figures: Δt_VP ≤ 3 ms
//! (generous LAN allowance), Δt_L ≤ 13 ms (average disk, WD 2500JD), so
//! Δt_max ≈ 16 ms. The same section derives the relay-attack bound: with
//! the best disk (5.406 ms look-up differential) and Internet speed 4/9 c,
//! relocated data sits at most ≈ 360 km away before audits fail.

use geoproof_sim::time::{Km, SimDuration, Speed, INTERNET_SPEED};
use geoproof_storage::hdd::HddSpec;

/// Per-round acceptance policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimingPolicy {
    /// Allowance for the network round trip Δt_VP.
    pub max_network: SimDuration,
    /// Allowance for the storage look-up Δt_L.
    pub max_lookup: SimDuration,
}

impl Default for TimingPolicy {
    fn default() -> Self {
        Self::paper()
    }
}

impl TimingPolicy {
    /// The paper's §V-C(b) budget: 3 ms network + 13 ms look-up ≈ 16 ms.
    pub fn paper() -> Self {
        TimingPolicy {
            max_network: SimDuration::from_millis(3),
            max_lookup: SimDuration::from_millis(13),
        }
    }

    /// Policy calibrated at contract time against the provider's actual
    /// disk (the paper: "these measurements could be made at the contract
    /// time at the place where the data centre is located"), with a
    /// `headroom` multiplier ≥ 1 for jitter.
    ///
    /// # Panics
    ///
    /// Panics if `headroom < 1.0`.
    pub fn calibrated(disk: &HddSpec, segment_bytes: usize, headroom: f64) -> Self {
        assert!(headroom >= 1.0, "headroom must be >= 1");
        let lookup = disk.avg_lookup(segment_bytes);
        TimingPolicy {
            max_network: SimDuration::from_millis(3),
            max_lookup: SimDuration::from_millis_f64(lookup.as_millis_f64() * headroom),
        }
    }

    /// The combined per-round bound Δt_max.
    pub fn max_rtt(&self) -> SimDuration {
        self.max_network + self.max_lookup
    }
}

/// The paper's relay-attack geometry (§V-C(b), Fig. 6): if a cheating
/// provider relays to a remote data centre with disks faster by
/// `lookup_differential`, the WAN round trip can hide inside that slack,
/// bounding the relay distance by `speed × differential / 2`.
pub fn relay_distance_bound(lookup_differential: SimDuration, internet_speed: Speed) -> Km {
    Km(internet_speed.0 * lookup_differential.as_millis_f64() / 2.0)
}

/// The paper's headline number: best-disk differential (IBM 36Z15,
/// 5.406 ms) at 4/9 c → ≈ 360 km.
pub fn paper_relay_bound() -> Km {
    relay_distance_bound(SimDuration::from_millis_f64(5.406), INTERNET_SPEED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoproof_storage::hdd::{IBM_36Z15, WD_2500JD};

    #[test]
    fn paper_budget_is_16ms() {
        let p = TimingPolicy::paper();
        assert_eq!(p.max_rtt(), SimDuration::from_millis(16));
    }

    #[test]
    fn paper_relay_bound_is_360km() {
        let d = paper_relay_bound();
        assert!((d.0 - 360.4).abs() < 0.5, "got {}", d.0);
    }

    #[test]
    fn calibrated_policy_tracks_disk() {
        let p = TimingPolicy::calibrated(&WD_2500JD, 512, 1.0);
        assert!((p.max_lookup.as_millis_f64() - 13.1055).abs() < 0.01);
        let tight = TimingPolicy::calibrated(&IBM_36Z15, 512, 1.0);
        assert!(tight.max_rtt() < p.max_rtt());
    }

    #[test]
    fn headroom_loosens_policy() {
        let tight = TimingPolicy::calibrated(&WD_2500JD, 512, 1.0);
        let loose = TimingPolicy::calibrated(&WD_2500JD, 512, 1.5);
        assert!(loose.max_lookup > tight.max_lookup);
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn sub_unity_headroom_panics() {
        TimingPolicy::calibrated(&WD_2500JD, 512, 0.9);
    }

    #[test]
    fn relay_bound_scales_with_differential() {
        let slow = relay_distance_bound(SimDuration::from_millis(2), INTERNET_SPEED);
        let fast = relay_distance_bound(SimDuration::from_millis(8), INTERNET_SPEED);
        assert!((fast.0 - 4.0 * slow.0).abs() < 1e-9);
    }
}
