//! Audit communication- and time-cost accounting.
//!
//! A key POS property the paper leans on (§IV): "the size of the
//! information exchanged between client and server is very small and may
//! even be independent of the size of stored data". This module computes
//! exact per-audit byte and time costs so experiments can show the audit
//! cost is flat in the file size while naive verification (download
//! everything) is linear.

use geoproof_por::params::PorParams;
use geoproof_sim::time::SimDuration;

/// Byte costs of one audit with `k` challenges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuditCost {
    /// TPA → verifier trigger (fid ‖ ñ ‖ k ‖ nonce).
    pub trigger_bytes: u64,
    /// Verifier → prover challenge traffic (k indices).
    pub challenge_bytes: u64,
    /// Prover → verifier response traffic (k tagged segments).
    pub response_bytes: u64,
    /// Verifier → TPA signed transcript.
    pub transcript_bytes: u64,
}

impl AuditCost {
    /// Total bytes moved end to end.
    pub fn total_bytes(&self) -> u64 {
        self.trigger_bytes + self.challenge_bytes + self.response_bytes + self.transcript_bytes
    }
}

/// Computes the exact audit cost for the given parameters.
///
/// Uses the canonical transcript encoding sizes from
/// [`crate::messages::SignedTranscript::signing_bytes`] plus the 64-byte
/// signature.
pub fn audit_cost(params: &PorParams, file_id_len: usize, k: u32) -> AuditCost {
    let seg = params.segment_bytes() as u64;
    let k64 = u64::from(k);
    AuditCost {
        trigger_bytes: 4 + file_id_len as u64 + 8 + 4 + 32,
        challenge_bytes: 8 * k64,
        response_bytes: seg * k64,
        // domain tag(22) + fid len(4+len) + nonce(32) + position(16)
        // + round count(4) + per round: index(8) + rtt(8) + len(4) + segment
        transcript_bytes: 22 + 4 + file_id_len as u64 + 32 + 16 + 4 + k64 * (8 + 8 + 4 + seg) + 64,
    }
}

/// Bytes required to verify by downloading the entire encoded file —
/// the baseline GeoProof's audits replace.
pub fn naive_download_bytes(params: &PorParams, file_bytes: u64) -> u64 {
    let ex = geoproof_por::params::overhead_example(params, file_bytes);
    ex.stored_bytes
}

/// Wall time of one sequential audit: k rounds of (LAN RTT + disk
/// look-up), the simulated-time cost the verifier device occupies.
pub fn audit_duration(k: u32, per_round: SimDuration) -> SimDuration {
    per_round * u64::from(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_cost_is_independent_of_file_size() {
        let p = PorParams::paper();
        let c = audit_cost(&p, 8, 1000);
        // Identical for a 1 MiB and a 1 TiB file: nothing in AuditCost
        // depends on file size. Spot-check magnitude: ~83 B/segment ×
        // 1000 ≈ 83 KB responses + ~103 KB transcript.
        assert_eq!(c.response_bytes, 83 * 1000);
        assert!(c.total_bytes() < 300_000, "total {}", c.total_bytes());
    }

    #[test]
    fn naive_download_is_linear_audit_is_flat() {
        let p = PorParams::paper();
        let audit = audit_cost(&p, 8, 1000).total_bytes();
        let small = naive_download_bytes(&p, 1 << 20);
        let large = naive_download_bytes(&p, 1 << 40);
        assert!(large > small * 500_000, "download scales linearly");
        assert!(audit < small, "even a 1 MiB download beats no audit");
        assert!(
            (large as f64) / (audit as f64) > 4e6,
            "audit is ~7 orders cheaper at 1 TiB"
        );
    }

    #[test]
    fn paper_audit_size_example() {
        // The paper's example audit: k = 1000 of 1M segments. Total
        // traffic ≈ 186 KB for a file of any size (2 GiB in the example:
        // a 12,000x saving vs downloading).
        let p = PorParams::paper();
        let c = audit_cost(&p, 8, 1000);
        let download = naive_download_bytes(&p, 2 << 30);
        assert!(c.total_bytes() < 200_000);
        assert!(download / c.total_bytes() > 10_000);
    }

    #[test]
    fn duration_scales_with_k() {
        let per_round = SimDuration::from_millis_f64(13.2);
        assert_eq!(audit_duration(10, per_round).as_millis_f64(), 132.0);
        assert!(audit_duration(1000, per_round).as_millis_f64() < 14_000.0);
    }

    #[test]
    fn components_sum_to_total() {
        let c = audit_cost(&PorParams::test_small(), 4, 20);
        assert_eq!(
            c.total_bytes(),
            c.trigger_bytes + c.challenge_bytes + c.response_bytes + c.transcript_bytes
        );
    }
}
