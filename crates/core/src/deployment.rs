//! End-to-end deployment rigs: owner → cloud → TPA, honest or adversarial.
//!
//! Wires together every substrate into the paper's Fig. 4 architecture so
//! examples, experiments and integration tests can stand up a full
//! GeoProof deployment in a few lines, swap the provider for an attack
//! variant, and measure detection rates.

use crate::auditor::{AuditReport, Auditor};
use crate::policy::TimingPolicy;
use crate::provider::{DelayedProvider, LocalProvider, RelayProvider, SegmentProvider};
use crate::verifier::VerifierDevice;
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_crypto::schnorr::SigningKey;
use geoproof_geo::coords::GeoPoint;
use geoproof_geo::gps::GpsReceiver;
use geoproof_net::lan::LanPath;
use geoproof_net::wan::{AccessKind, WanModel};
use geoproof_por::encode::{PorEncoder, TaggedFile};
use geoproof_por::keys::PorKeys;
use geoproof_por::params::PorParams;
use geoproof_por::stream::TaggedArena;
use geoproof_sim::clock::SimClock;
use geoproof_sim::time::{Km, SimDuration};
use geoproof_storage::hdd::{HddModel, HddSpec, WD_2500JD};
use geoproof_storage::server::{FileId, StorageServer};

/// The data owner: holds the master secret, prepares files, provisions
/// the TPA.
pub struct DataOwner {
    master: Vec<u8>,
    encoder: PorEncoder,
}

impl std::fmt::Debug for DataOwner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataOwner").finish_non_exhaustive()
    }
}

impl DataOwner {
    /// Creates an owner with a master secret and POR parameters.
    pub fn new(master: &[u8], params: PorParams) -> Self {
        DataOwner {
            master: master.to_vec(),
            encoder: PorEncoder::new(params),
        }
    }

    /// Runs the setup phase on `data`, returning the upload and the keys.
    pub fn prepare(&self, data: &[u8], file_id: &str) -> (TaggedFile, PorKeys) {
        let keys = PorKeys::derive(&self.master, file_id);
        (self.encoder.encode(data, &keys, file_id), keys)
    }

    /// Like [`DataOwner::prepare`], but produces the contiguous arena
    /// form — the zero-copy upload every storage node can share.
    pub fn prepare_arena(&self, data: &[u8], file_id: &str) -> (TaggedArena, PorKeys) {
        let keys = PorKeys::derive(&self.master, file_id);
        (self.encoder.encode_arena(data, &keys, file_id), keys)
    }

    /// The owner's encoder (parameters).
    pub fn encoder(&self) -> &PorEncoder {
        &self.encoder
    }
}

/// What the cloud provider actually does with the data.
#[derive(Clone, Debug)]
pub enum ProviderBehaviour {
    /// Stores honestly on `disk` at the SLA site.
    Honest {
        /// Disk model at the contracted data centre.
        disk: HddSpec,
    },
    /// Relays to a remote data centre (Fig. 6).
    Relay {
        /// Disk model at the *remote* site (attackers buy fast disks).
        remote_disk: HddSpec,
        /// Distance from the SLA site to the remote site.
        distance: Km,
        /// Access class of the inter-site link.
        access: AccessKind,
    },
    /// Stores locally but corrupts a fraction of segments.
    Corrupting {
        /// Disk model.
        disk: HddSpec,
        /// Fraction of segments corrupted (0–1).
        fraction: f64,
    },
    /// Honest but overloaded: adds fixed delay per request.
    Slow {
        /// Disk model.
        disk: HddSpec,
        /// Added delay per request.
        extra: SimDuration,
    },
}

/// A fully wired deployment.
pub struct Deployment {
    /// The TPA.
    pub auditor: Auditor,
    /// The tamper-proof device on the provider's LAN.
    pub verifier: VerifierDevice,
    /// The prover.
    pub provider: Box<dyn SegmentProvider>,
    /// Segment count of the audited file.
    pub n_segments: u64,
    prover_label: String,
    audits: u64,
    sink: Option<std::sync::Arc<dyn crate::evidence::EvidenceSink>>,
    sink_error: Option<String>,
}

/// Builder for [`Deployment`].
pub struct DeploymentBuilder {
    params: PorParams,
    file_bytes: usize,
    behaviour: ProviderBehaviour,
    sla_location: GeoPoint,
    location_tolerance: Km,
    policy: TimingPolicy,
    seed: u64,
    prover_label: String,
    first_epoch: u64,
    sink: Option<std::sync::Arc<dyn crate::evidence::EvidenceSink>>,
}

impl DeploymentBuilder {
    /// Starts a builder with paper-like defaults on a test-sized file.
    pub fn new(sla_location: GeoPoint) -> Self {
        DeploymentBuilder {
            params: PorParams::test_small(),
            file_bytes: 20_000,
            behaviour: ProviderBehaviour::Honest { disk: WD_2500JD },
            sla_location,
            location_tolerance: Km(25.0),
            policy: TimingPolicy::paper(),
            seed: DEFAULT_SEED,
            prover_label: "sla-provider".to_owned(),
            first_epoch: 0,
            sink: None,
        }
    }

    /// Sets POR parameters.
    pub fn params(mut self, params: PorParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the plaintext size.
    pub fn file_bytes(mut self, bytes: usize) -> Self {
        self.file_bytes = bytes;
        self
    }

    /// Sets the provider behaviour.
    pub fn behaviour(mut self, behaviour: ProviderBehaviour) -> Self {
        self.behaviour = behaviour;
        self
    }

    /// Sets the timing policy.
    pub fn policy(mut self, policy: TimingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the RNG seed for the whole rig.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Names the prover in recorded evidence (default `sla-provider`).
    pub fn prover_label(mut self, label: impl Into<String>) -> Self {
        self.prover_label = label.into();
        self
    }

    /// Epoch of this deployment's first audit (default 0). When several
    /// deployments stand in for the *same* prover over time (behaviour
    /// changes month to month) and share one evidence sink, staggering
    /// their first epochs keeps `(prover, epoch)` unique in the ledger —
    /// the `LedgerWriter::next_epoch` of the previous deployment's sink
    /// is the natural value.
    pub fn first_epoch(mut self, epoch: u64) -> Self {
        self.first_epoch = epoch;
        self
    }

    /// Installs a durable-evidence sink: every audit run through
    /// [`Deployment::run_audit`] records its verdict as an
    /// [`crate::evidence::EvidenceBundle`], with the epoch counting
    /// audits on this deployment.
    pub fn evidence_sink(
        mut self,
        sink: std::sync::Arc<dyn crate::evidence::EvidenceSink>,
    ) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Builds the deployment: encodes a synthetic file, stores it per the
    /// behaviour, registers device and TPA keys.
    pub fn build(self) -> Deployment {
        let mut rng = ChaChaRng::from_u64_seed(self.seed);
        let owner = DataOwner::new(b"deployment-master-secret", self.params);
        let mut data = vec![0u8; self.file_bytes];
        rng.fill_bytes(&mut data);
        let fid = "sla-file";
        let (tagged, keys) = owner.prepare_arena(&data, fid);
        let n_segments = tagged.metadata().segments;

        // Every behaviour stores views of the *same* encoded arena —
        // the upload is never copied per provider.
        let make_storage = |disk: HddSpec, seed: u64| {
            let mut s = StorageServer::new(HddModel::deterministic(disk), seed);
            s.put_arena(FileId::from(fid), crate::provider::shared_store(&tagged));
            s
        };

        let provider: Box<dyn SegmentProvider> = match self.behaviour {
            ProviderBehaviour::Honest { disk } => Box::new(LocalProvider::new(
                make_storage(disk, self.seed + 1),
                LanPath::adjacent(),
                self.seed + 2,
            )),
            ProviderBehaviour::Relay {
                remote_disk,
                distance,
                access,
            } => Box::new(RelayProvider::new(
                make_storage(remote_disk, self.seed + 1),
                LanPath::adjacent(),
                WanModel::calibrated(access),
                distance,
                self.seed + 2,
            )),
            ProviderBehaviour::Corrupting { disk, fraction } => {
                let mut storage = make_storage(disk, self.seed + 1);
                let n_corrupt = ((n_segments as f64) * fraction).round() as usize;
                let victims = rng.sample_distinct(n_segments, n_corrupt);
                // One copy-on-write rebuild for the whole victim set —
                // per-victim corrupt calls would re-copy the arena each
                // time.
                storage.corrupt_segments(
                    &FileId::from(fid),
                    victims.iter().map(|&v| v as usize),
                    0x55,
                );
                Box::new(LocalProvider::new(
                    storage,
                    LanPath::adjacent(),
                    self.seed + 2,
                ))
            }
            ProviderBehaviour::Slow { disk, extra } => Box::new(DelayedProvider::new(
                LocalProvider::new(
                    make_storage(disk, self.seed + 1),
                    LanPath::adjacent(),
                    self.seed + 2,
                ),
                extra,
            )),
        };

        let device_key = SigningKey::generate(&mut rng);
        let verifier = VerifierDevice::new(
            device_key.clone(),
            GpsReceiver::new(self.sla_location),
            SimClock::new(),
            self.seed + 3,
        );
        let auditor = Auditor::new(
            fid.to_owned(),
            n_segments,
            PorEncoder::new(self.params),
            keys.auditor_view(),
            device_key.verifying_key(),
            self.sla_location,
            self.location_tolerance,
            self.policy,
            self.seed + 4,
        );
        Deployment {
            auditor,
            verifier,
            provider,
            n_segments,
            prover_label: self.prover_label,
            audits: self.first_epoch,
            sink: self.sink,
            sink_error: None,
        }
    }
}

/// Default deterministic seed ("geoproof" in ASCII).
const DEFAULT_SEED: u64 = 0x6765_6f70_726f_6f66;

impl Deployment {
    /// Runs one audit round trip and returns the TPA's report. With an
    /// evidence sink installed the verdict is also recorded (epoch =
    /// number of prior audits on this deployment); recording failures
    /// never change the report — check
    /// [`Deployment::evidence_error`] for durability.
    pub fn run_audit(&mut self, k: u32) -> AuditReport {
        let req = self.auditor.issue_request(k);
        let transcript = self.verifier.run_audit(&req, self.provider.as_mut());
        let epoch = self.audits;
        self.audits += 1;
        match &self.sink {
            None => self.auditor.verify(&req, &transcript),
            Some(sink) => {
                let (report, bundle) = self.auditor.verify_evidence(
                    &req,
                    &transcript,
                    self.prover_label.clone(),
                    epoch,
                );
                if let Err(e) = sink.record(&bundle) {
                    if self.sink_error.is_none() {
                        self.sink_error = Some(e.to_string());
                    }
                }
                report
            }
        }
    }

    /// The first evidence-recording error, if any.
    pub fn evidence_error(&self) -> Option<String> {
        self.sink_error.clone()
    }

    /// Runs `n` audits of `k` challenges each; returns the fraction that
    /// *failed* (the detection rate for adversarial behaviours, the
    /// false-alarm rate for honest ones).
    pub fn detection_rate(&mut self, n: u32, k: u32) -> f64 {
        let mut rejected = 0u32;
        for _ in 0..n {
            if !self.run_audit(k).accepted() {
                rejected += 1;
            }
        }
        f64::from(rejected) / f64::from(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoproof_geo::coords::places::BRISBANE;
    use geoproof_storage::hdd::IBM_36Z15;

    #[test]
    fn honest_deployment_always_accepts() {
        let mut d = DeploymentBuilder::new(BRISBANE).seed(1).build();
        assert_eq!(d.detection_rate(10, 15), 0.0);
    }

    #[test]
    fn far_relay_always_detected() {
        let mut d = DeploymentBuilder::new(BRISBANE)
            .behaviour(ProviderBehaviour::Relay {
                remote_disk: IBM_36Z15,
                distance: Km(720.0),
                access: AccessKind::DataCentre,
            })
            .seed(2)
            .build();
        assert_eq!(d.detection_rate(10, 15), 1.0);
    }

    #[test]
    fn near_relay_with_fast_disk_evades_timing() {
        // The paper's residual exposure: under ~360 km the differential
        // hides the WAN hop.
        let mut d = DeploymentBuilder::new(BRISBANE)
            .behaviour(ProviderBehaviour::Relay {
                remote_disk: IBM_36Z15,
                distance: Km(60.0),
                access: AccessKind::DataCentre,
            })
            .seed(3)
            .build();
        assert_eq!(d.detection_rate(5, 10), 0.0);
    }

    #[test]
    fn heavy_corruption_detected_with_enough_challenges() {
        let mut d = DeploymentBuilder::new(BRISBANE)
            .behaviour(ProviderBehaviour::Corrupting {
                disk: WD_2500JD,
                fraction: 0.10,
            })
            .seed(4)
            .build();
        // 10% corruption, k = 30: detection ≈ 1-(0.9)^30 ≈ 95.8%.
        let rate = d.detection_rate(20, 30);
        assert!(rate > 0.8, "rate {rate}");
    }

    #[test]
    fn slow_provider_detected() {
        let mut d = DeploymentBuilder::new(BRISBANE)
            .behaviour(ProviderBehaviour::Slow {
                disk: WD_2500JD,
                extra: SimDuration::from_millis(10),
            })
            .seed(5)
            .build();
        assert_eq!(d.detection_rate(5, 10), 1.0);
    }

    #[test]
    fn owner_prepare_roundtrip() {
        let owner = DataOwner::new(b"m", PorParams::test_small());
        let (tagged, keys) = owner.prepare(b"hello world", "f");
        let out = owner
            .encoder()
            .extract(&tagged.segments, &keys, &tagged.metadata)
            .unwrap();
        assert_eq!(out, b"hello world");
    }
}
