//! Deterministic fleet simulation: hundreds of concurrent provers —
//! honest, slow, relaying, proof-forging — driving the
//! [`crate::engine::AuditEngine`] on one seeded
//! [`geoproof_sim::simnet::SimNet`] timeline.
//!
//! Every prover runs its own challenge/response state machine
//! ([`crate::verifier::AuditRun`]); rounds from all sessions interleave on
//! the event queue exactly as they would on a busy TPA, yet the whole run
//! is a pure function of the seed. Adversary behaviour is a per-prover
//! [`AdversaryProfile`]; adding a new adversary means adding a variant
//! and a provider construction — see `crates/sim/docs/simnet.md` for the
//! recipe.

use crate::engine::{AuditEngine, EngineConfig, ProverId, ProverSpec};
use crate::provider::{DelayedProvider, LocalProvider, RelayProvider, SegmentProvider};
use crate::verifier::{AuditRun, VerifierDevice};
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_crypto::schnorr::SigningKey;
use geoproof_crypto::sha256::Sha256;
use geoproof_geo::coords::places::BRISBANE;
use geoproof_geo::gps::GpsReceiver;
use geoproof_net::lan::LanPath;
use geoproof_net::load::ContentionModel;
use geoproof_net::wan::{AccessKind, WanModel};
use geoproof_por::encode::PorEncoder;
use geoproof_por::keys::PorKeys;
use geoproof_por::params::PorParams;
use geoproof_sim::clock::Stopwatch;
use geoproof_sim::simnet::SimNet;
use geoproof_sim::time::{Km, SimDuration};
use geoproof_storage::hdd::{HddModel, HddSpec, IBM_36Z15, WD_2500JD};
use geoproof_storage::server::{FileId, StorageServer};

use crate::auditor::AuditReport;

/// How a simulated prover behaves.
#[derive(Clone, Debug, PartialEq)]
pub enum AdversaryProfile {
    /// Stores honestly at the SLA site on the paper's reference disk.
    Honest,
    /// Honest data, overloaded service: fixed extra delay per round.
    Slow {
        /// Added delay per request.
        extra: SimDuration,
    },
    /// Fig. 6 relay: data actually lives `distance` away behind `access`,
    /// on the fastest catalogued disk (attackers buy good hardware).
    Relay {
        /// Distance to the remote data centre.
        distance: Km,
        /// Access class of the inter-site link.
        access: AccessKind,
    },
    /// Keeps timing honest but forges segment contents (every stored
    /// segment corrupted) — the POR layer must catch it.
    ForgeSegments,
}

impl AdversaryProfile {
    /// Short label for tallies.
    pub fn label(&self) -> &'static str {
        match self {
            AdversaryProfile::Honest => "honest",
            AdversaryProfile::Slow { .. } => "slow",
            AdversaryProfile::Relay { .. } => "relay",
            AdversaryProfile::ForgeSegments => "forge",
        }
    }
}

/// Fleet simulation parameters.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// One profile per prover; prover i is named `prover-{i:04}`.
    pub provers: Vec<AdversaryProfile>,
    /// Challenges per session.
    pub k: u32,
    /// Master seed: drives file content, keys, device RNGs, schedule.
    pub seed: u64,
    /// POR parameters for the shared audited file.
    pub params: PorParams,
    /// Plaintext size of the audited file.
    pub file_bytes: usize,
    /// Queueing model for concurrent load on the audit path.
    pub contention: ContentionModel,
    /// Session starts are staggered uniformly across this window.
    pub start_spread: SimDuration,
}

impl FleetConfig {
    /// A mixed fleet with paper-derived adversary defaults: relays at
    /// 720 km over a data-centre link (twice the paper's ≈ 360 km
    /// evasion bound, so detection is certain), 10 ms overload for slow
    /// provers.
    pub fn mixed(honest: usize, slow: usize, relay: usize, forging: usize, seed: u64) -> Self {
        let mut provers = Vec::with_capacity(honest + slow + relay + forging);
        provers.extend(std::iter::repeat(AdversaryProfile::Honest).take(honest));
        provers.extend(
            std::iter::repeat(AdversaryProfile::Slow {
                extra: SimDuration::from_millis(10),
            })
            .take(slow),
        );
        provers.extend(
            std::iter::repeat(AdversaryProfile::Relay {
                distance: Km(720.0),
                access: AccessKind::DataCentre,
            })
            .take(relay),
        );
        provers.extend(std::iter::repeat(AdversaryProfile::ForgeSegments).take(forging));
        FleetConfig {
            provers,
            k: 8,
            seed,
            params: PorParams::test_small(),
            file_bytes: 6000,
            contention: ContentionModel::none(),
            start_spread: SimDuration::from_millis(50),
        }
    }
}

/// The outcome of one fleet run.
#[derive(Clone, Debug)]
pub struct FleetOutcome {
    /// Per-prover verdicts from the **batched** verification pass, sorted
    /// by prover id.
    pub reports: Vec<(ProverId, AuditReport)>,
    /// The same sessions verified **sequentially** (the reference path).
    pub sequential_reports: Vec<(ProverId, AuditReport)>,
    /// Each prover's profile, sorted by prover id.
    pub profiles: Vec<(ProverId, AdversaryProfile)>,
    /// Events the scheduler processed.
    pub events: u64,
    /// Simulated time at which the last session finished.
    pub sim_time: SimDuration,
    /// Most sessions simultaneously in flight.
    pub peak_in_flight: usize,
    /// First evidence-recording failure, when a sink was installed —
    /// verdicts are never affected, but a caller persisting evidence
    /// must check this (and its sink's own `finish`) before trusting
    /// the ledger to be complete.
    pub evidence_error: Option<String>,
}

impl FleetOutcome {
    /// Accepted session count (batched verdicts).
    pub fn accepted(&self) -> usize {
        self.reports.iter().filter(|(_, r)| r.accepted()).count()
    }

    /// Rejected session count.
    pub fn rejected(&self) -> usize {
        self.reports.len() - self.accepted()
    }

    /// True when the batched pass agreed with the sequential pass on
    /// every session — the engine's core equivalence claim.
    pub fn batched_matches_sequential(&self) -> bool {
        self.reports == self.sequential_reports
    }

    /// `(label, accepted, total)` per profile, sorted by label.
    pub fn tally(&self) -> Vec<(&'static str, usize, usize)> {
        let mut map: std::collections::BTreeMap<&'static str, (usize, usize)> =
            std::collections::BTreeMap::new();
        for ((id, report), (pid, profile)) in self.reports.iter().zip(&self.profiles) {
            debug_assert_eq!(id, pid);
            let entry = map.entry(profile.label()).or_default();
            entry.1 += 1;
            if report.accepted() {
                entry.0 += 1;
            }
        }
        map.into_iter()
            .map(|(label, (acc, total))| (label, acc, total))
            .collect()
    }

    /// A snapshot of the global telemetry registry, taken now — the
    /// hook benches and the fleet dashboard use to fold run counters
    /// (`fleet_*`, `audit_*`, pool and encode totals) into their JSON
    /// artifacts. Only meaningful when recording was enabled
    /// ([`geoproof_obs::set_enabled`]) before the run.
    pub fn registry_snapshot(&self) -> geoproof_obs::Snapshot {
        geoproof_obs::global().snapshot()
    }

    /// A digest of the entire outcome (verdicts, violations, timings,
    /// event count) — two runs are behaviourally identical iff their
    /// fingerprints match.
    pub fn fingerprint(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(b"geoproof-fleet-v1");
        h.update(format!("{:?}", self.reports).as_bytes());
        h.update(format!("{:?}", self.sequential_reports).as_bytes());
        h.update(&self.events.to_be_bytes());
        h.update(&self.sim_time.as_nanos().to_be_bytes());
        h.finalize()
    }
}

/// Per-prover state while its session runs.
struct Driver {
    id: ProverId,
    device: VerifierDevice,
    provider: Box<dyn SegmentProvider>,
    run: Option<AuditRun>,
    timer: Option<Stopwatch>,
    pending: Option<Option<bytes::Bytes>>,
    started: Option<geoproof_sim::time::SimInstant>,
}

/// Scheduler events: a session starting, or a round's response arriving.
#[derive(Clone, Copy, Debug)]
enum FleetEvent {
    Start(usize),
    Response(usize),
}

/// Runs the whole fleet to completion; a pure function of `config`.
///
/// # Panics
///
/// Panics if `config.provers` is empty or `k` exceeds the encoded
/// file's segment count.
pub fn run_fleet(config: &FleetConfig) -> FleetOutcome {
    run_fleet_inner(config, None)
}

/// Like [`run_fleet`], but records every prover's verdict into `sink` as
/// durable evidence. The simulation itself is unchanged — outcomes (and
/// fingerprints) are identical to [`run_fleet`] with the same config;
/// records are emitted by the first (sequential) verification pass in
/// sorted prover order, so the ledger contents are as deterministic as
/// the fleet itself.
///
/// # Panics
///
/// Panics as [`run_fleet`] does.
pub fn run_fleet_with_evidence(
    config: &FleetConfig,
    sink: std::sync::Arc<dyn crate::evidence::EvidenceSink>,
) -> FleetOutcome {
    run_fleet_inner(config, Some(sink))
}

fn run_fleet_inner(
    config: &FleetConfig,
    sink: Option<std::sync::Arc<dyn crate::evidence::EvidenceSink>>,
) -> FleetOutcome {
    assert!(
        !config.provers.is_empty(),
        "fleet needs at least one prover"
    );
    let file_id = "fleet-file";
    let encoder = PorEncoder::new(config.params);
    let keys = PorKeys::derive(&config.seed.to_be_bytes(), file_id);
    let mut content_rng = ChaChaRng::from_u64_seed(config.seed ^ 0xf1ee7);
    let mut data = vec![0u8; config.file_bytes];
    content_rng.fill_bytes(&mut data);
    let tagged = encoder.encode_arena(&data, &keys, file_id);
    let n_segments = tagged.metadata().segments;

    let engine = AuditEngine::new(
        file_id,
        n_segments,
        PorEncoder::new(config.params),
        keys.auditor_view(),
        EngineConfig {
            seed: config.seed,
            k: config.k,
            ..EngineConfig::default()
        },
    );
    if let Some(sink) = sink {
        engine.set_evidence_sink(sink);
    }

    let mut net: SimNet<FleetEvent> = SimNet::new(config.seed);
    let fid = FileId::from(file_id);

    // Build one driver per prover, all sharing the scheduler's timeline.
    let mut drivers: Vec<Driver> = Vec::with_capacity(config.provers.len());
    for (i, profile) in config.provers.iter().enumerate() {
        let id = ProverId(format!("prover-{i:04}"));
        let mut key_rng = ChaChaRng::from_seed(Sha256::digest(
            format!("fleet-device:{}:{}", config.seed, id.0).as_bytes(),
        ));
        let sk = SigningKey::generate(&mut key_rng);
        engine.register_prover(
            id.clone(),
            ProverSpec {
                device_key: sk.verifying_key(),
                sla_location: BRISBANE,
            },
        );
        let device = VerifierDevice::new(
            sk,
            GpsReceiver::new(BRISBANE),
            net.clock(),
            config.seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9),
        );

        let storage = |disk: HddSpec, seed: u64, corrupt: bool| {
            let mut s = StorageServer::new(HddModel::deterministic(disk), seed);
            if corrupt {
                // The forger rewrites the data, so it genuinely owns a
                // mutated copy.
                let segments: Vec<Vec<u8>> = tagged
                    .iter()
                    .map(|seg| seg.iter().map(|b| b ^ 0x5a).collect())
                    .collect();
                s.put_file(fid.clone(), segments);
            } else {
                // Honest provers all share views of the one upload.
                s.put_arena(fid.clone(), crate::provider::shared_store(&tagged));
            }
            s
        };
        let prover_seed = config.seed ^ ((i as u64 + 1) << 16);
        let provider: Box<dyn SegmentProvider> = match profile {
            AdversaryProfile::Honest => Box::new(LocalProvider::new(
                storage(WD_2500JD, prover_seed, false),
                LanPath::adjacent(),
                prover_seed + 1,
            )),
            AdversaryProfile::Slow { extra } => Box::new(DelayedProvider::new(
                LocalProvider::new(
                    storage(WD_2500JD, prover_seed, false),
                    LanPath::adjacent(),
                    prover_seed + 1,
                ),
                *extra,
            )),
            AdversaryProfile::Relay { distance, access } => Box::new(RelayProvider::new(
                storage(IBM_36Z15, prover_seed, false),
                LanPath::adjacent(),
                WanModel::calibrated(*access),
                *distance,
                prover_seed + 1,
            )),
            AdversaryProfile::ForgeSegments => Box::new(LocalProvider::new(
                storage(WD_2500JD, prover_seed, true),
                LanPath::adjacent(),
                prover_seed + 1,
            )),
        };
        drivers.push(Driver {
            id,
            device,
            provider,
            run: None,
            timer: None,
            pending: None,
            started: None,
        });
    }

    // Stagger session starts across the spread window.
    let n = drivers.len() as u64;
    for i in 0..drivers.len() {
        let offset = SimDuration::from_nanos(config.start_spread.as_nanos() * i as u64 / n.max(1));
        net.schedule_at(
            geoproof_sim::time::SimInstant::EPOCH.advance(offset),
            FleetEvent::Start(i),
        );
    }

    let mut active: usize = 0;
    let mut peak: usize = 0;
    // Simulated-time session durations (µs), folded into the registry
    // after the run so handle lookups stay out of the event loop.
    let mut session_latencies_us: Vec<u64> = Vec::new();
    let contention = config.contention.clone();

    // Issues the next challenge of driver `i`'s session.
    fn issue(
        net: &mut SimNet<FleetEvent>,
        driver: &mut Driver,
        i: usize,
        active: usize,
        contention: &ContentionModel,
        fid: &FileId,
    ) {
        let run = driver.run.as_ref().expect("session running");
        let index = run.next_index().expect("rounds remaining");
        driver.timer = Some(driver.device.clock().start_timer());
        let (data, service_time) = driver.provider.serve(fid, index);
        driver.pending = Some(data);
        let delay = service_time + contention.queueing_delay(active);
        net.schedule(delay, FleetEvent::Response(i));
    }

    net.run(|net, event| match event {
        FleetEvent::Start(i) => {
            let driver = &mut drivers[i];
            let request = engine
                .open_session(&driver.id)
                .expect("registered prover, fresh session");
            driver.run = Some(driver.device.begin_audit(&request));
            driver.started = Some(net.now());
            active += 1;
            peak = peak.max(active);
            issue(net, driver, i, active, &contention, &fid);
        }
        FleetEvent::Response(i) => {
            let driver = &mut drivers[i];
            let rtt = driver.timer.take().expect("round timed").elapsed();
            let payload = driver.pending.take().expect("response in flight");
            let run = driver.run.as_mut().expect("session running");
            run.record_round(payload, rtt);
            if run.is_complete() {
                let run = driver.run.take().expect("session running");
                let transcript = driver.device.finish_audit(run);
                engine.submit_transcript(&driver.id, transcript);
                let started = driver.started.take().expect("session started");
                session_latencies_us.push(net.now().duration_since(started).as_nanos() / 1_000);
                active -= 1;
            } else {
                issue(net, driver, i, active, &contention, &fid);
            }
        }
    });

    // Judge the fleet: reference sequential pass, then the batched pass.
    let sequential_reports = engine.verify_collected_sequential();
    let reports = engine.verify_collected_batched();

    let profiles = {
        let mut p: Vec<(ProverId, AdversaryProfile)> = config
            .provers
            .iter()
            .enumerate()
            .map(|(i, profile)| (ProverId(format!("prover-{i:04}")), profile.clone()))
            .collect();
        p.sort_by(|a, b| a.0.cmp(&b.0));
        p
    };

    // Fold the run into the global registry: one run, one audit verdict
    // per prover. (Per-session accept/reject counters moved inside the
    // engine's verification pass; these are the fleet-level rollups.)
    {
        struct FleetMetrics {
            runs: std::sync::Arc<geoproof_obs::Counter>,
            accept: std::sync::Arc<geoproof_obs::Counter>,
            reject: std::sync::Arc<geoproof_obs::Counter>,
            session_latency: std::sync::Arc<geoproof_obs::Histogram>,
        }
        static METRICS: std::sync::OnceLock<FleetMetrics> = std::sync::OnceLock::new();
        let m = METRICS.get_or_init(|| FleetMetrics {
            runs: geoproof_obs::counter("fleet_runs_total"),
            accept: geoproof_obs::counter("fleet_audits_total{outcome=\"accept\"}"),
            reject: geoproof_obs::counter("fleet_audits_total{outcome=\"reject\"}"),
            // Simulated time, unlike `audit_session_latency_us` (wall
            // clock on the live engine) — separate series on purpose.
            session_latency: geoproof_obs::histogram("fleet_session_latency_us"),
        });
        m.runs.inc();
        let accepted = reports.iter().filter(|(_, r)| r.accepted()).count() as u64;
        m.accept.add(accepted);
        m.reject.add(reports.len() as u64 - accepted);
        for us in &session_latencies_us {
            m.session_latency.record(*us);
        }
    }

    FleetOutcome {
        reports,
        sequential_reports,
        profiles,
        events: net.events_processed(),
        sim_time: net
            .now()
            .duration_since(geoproof_sim::time::SimInstant::EPOCH),
        peak_in_flight: peak,
        evidence_error: engine.evidence_error(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_mixed_fleet_detects_every_adversary() {
        let outcome = run_fleet(&FleetConfig::mixed(6, 2, 2, 2, 33));
        assert_eq!(outcome.reports.len(), 12);
        assert!(outcome.batched_matches_sequential());
        let tally = outcome.tally();
        assert_eq!(
            tally,
            vec![
                ("forge", 0, 2),
                ("honest", 6, 6),
                ("relay", 0, 2),
                ("slow", 0, 2)
            ]
        );
    }

    #[test]
    fn fleet_surfaces_evidence_recording_failures() {
        struct FailingSink;
        impl crate::evidence::EvidenceSink for FailingSink {
            fn record(&self, _: &crate::evidence::EvidenceBundle) -> std::io::Result<()> {
                Err(std::io::Error::other("disk full"))
            }
        }
        let outcome = run_fleet_with_evidence(
            &FleetConfig::mixed(2, 0, 0, 0, 3),
            std::sync::Arc::new(FailingSink),
        );
        assert_eq!(outcome.accepted(), 2, "verdicts are unaffected");
        let err = outcome.evidence_error.expect("failure must surface");
        assert!(err.contains("disk full"), "{err}");
        // And a healthy run reports none.
        assert!(run_fleet(&FleetConfig::mixed(2, 0, 0, 0, 3))
            .evidence_error
            .is_none());
    }

    #[test]
    fn fleet_is_deterministic_per_seed() {
        let a = run_fleet(&FleetConfig::mixed(4, 1, 1, 1, 7));
        let b = run_fleet(&FleetConfig::mixed(4, 1, 1, 1, 7));
        let c = run_fleet(&FleetConfig::mixed(4, 1, 1, 1, 8));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn sessions_overlap_in_time() {
        let outcome = run_fleet(&FleetConfig::mixed(8, 0, 0, 0, 21));
        assert!(
            outcome.peak_in_flight > 1,
            "staggered starts within the spread must overlap, peak {}",
            outcome.peak_in_flight
        );
        // Every session contributes k responses plus one start event.
        assert_eq!(outcome.events, 8 * (8 + 1));
    }

    #[test]
    fn contention_pushes_honest_provers_over_budget() {
        // Paper headroom is ≈ 2.9 ms (16 − 13.1); with 1 ms of queueing
        // per concurrent session, a tightly-packed fleet busts it.
        let mut config = FleetConfig::mixed(10, 0, 0, 0, 5);
        config.contention = geoproof_net::load::ContentionModel::linear(
            SimDuration::from_millis(1),
            SimDuration::from_millis(100),
        );
        config.start_spread = SimDuration::from_micros(100); // all at once
        let loaded = run_fleet(&config);
        assert!(
            loaded.accepted() < 10,
            "queueing should reject some honest provers, accepted {}",
            loaded.accepted()
        );
        // The same fleet without contention is all-accept.
        let mut free = FleetConfig::mixed(10, 0, 0, 0, 5);
        free.start_spread = SimDuration::from_micros(100);
        assert_eq!(run_fleet(&free).accepted(), 10);
    }
}
