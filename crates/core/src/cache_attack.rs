//! The cache-assisted relay attack and why random challenges defeat it.
//!
//! Fig. 6's relay attacker pays a WAN round trip per challenge. A smarter
//! cheat keeps a *partial* local cache at the front node P and relays only
//! misses to the remote store P̃. Because the TPA checks `max Δt_j`, the
//! audit fails unless **every** challenged segment is cached — probability
//! `Π (c-i)/(ñ-i)` (hypergeometric), which collapses geometrically in k.
//! This module implements that adversary so experiments can measure it.

use crate::provider::SegmentProvider;
use bytes::Bytes;
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_net::lan::LanPath;
use geoproof_net::wan::WanModel;
use geoproof_sim::time::{Km, SimDuration};
use geoproof_storage::server::{FileId, StorageServer};
use std::collections::HashSet;

/// A relay provider with a partial front-node cache.
pub struct CachingRelayProvider {
    remote: StorageServer,
    cached_segments: HashSet<u64>,
    cache_hit_latency: SimDuration,
    lan: LanPath,
    wan: WanModel,
    distance: Km,
    rng: ChaChaRng,
    /// Front-node views of the cached segments (alias the remote arena).
    front_copies: std::collections::HashMap<u64, Bytes>,
}

impl CachingRelayProvider {
    /// Builds the adversary: `cache_fraction` of the file is pinned at the
    /// front node; everything else relays to `remote` at `distance`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        mut remote: StorageServer,
        fid: &FileId,
        cache_fraction: f64,
        lan: LanPath,
        wan: WanModel,
        distance: Km,
        seed: u64,
    ) -> Self {
        let mut rng = ChaChaRng::from_u64_seed(seed);
        let n = remote.segment_count(fid).unwrap_or(0) as u64;
        let n_cached = ((n as f64) * cache_fraction).round() as usize;
        let cached: HashSet<u64> = rng
            .sample_distinct(n.max(1), n_cached.min(n as usize))
            .into_iter()
            .collect();
        let mut front_copies = std::collections::HashMap::new();
        for &idx in &cached {
            if let Some(data) = remote.read_segment(fid, idx as usize).data {
                front_copies.insert(idx, data);
            }
        }
        CachingRelayProvider {
            remote,
            cached_segments: cached,
            cache_hit_latency: SimDuration::from_micros(100),
            lan,
            wan,
            distance,
            rng,
            front_copies,
        }
    }

    /// Number of segments pinned at the front node.
    pub fn cached_count(&self) -> usize {
        self.cached_segments.len()
    }
}

impl SegmentProvider for CachingRelayProvider {
    fn serve(&mut self, fid: &FileId, idx: u64) -> (Option<Bytes>, SimDuration) {
        let lan = self.lan.rtt(64, 96, &mut self.rng);
        if self.cached_segments.contains(&idx) {
            // Front-node hit: LAN + RAM only. Looks exactly like an
            // honest fast disk.
            let data = self.front_copies.get(&idx).cloned();
            (data, lan + self.cache_hit_latency)
        } else {
            // Miss: the WAN trip is unavoidable and shows in Δt_j.
            let read = self.remote.read_segment(fid, idx as usize);
            let wan = self.wan.rtt(self.distance, &mut self.rng);
            (read.data, lan + wan + read.latency)
        }
    }

    fn describe(&self) -> String {
        format!(
            "caching relay ({} segments pinned, store at {:.0} km)",
            self.cached_segments.len(),
            self.distance.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoproof_net::wan::AccessKind;
    use geoproof_storage::hdd::{HddModel, IBM_36Z15};

    fn remote(n: usize) -> StorageServer {
        let mut s = StorageServer::new(HddModel::deterministic(IBM_36Z15), 1);
        s.put_file(FileId::from("f"), vec![vec![0x77u8; 83]; n]);
        s
    }

    fn provider(cache_fraction: f64) -> CachingRelayProvider {
        CachingRelayProvider::new(
            remote(200),
            &FileId::from("f"),
            cache_fraction,
            LanPath::adjacent(),
            WanModel::calibrated(AccessKind::DataCentre),
            Km(1000.0),
            7,
        )
    }

    #[test]
    fn cached_segments_answer_fast() {
        let mut p = provider(0.5);
        let cached: Vec<u64> = p.cached_segments.iter().copied().take(3).collect();
        for idx in cached {
            let (data, t) = p.serve(&FileId::from("f"), idx);
            assert!(data.is_some());
            assert!(t.as_millis_f64() < 1.0, "hit took {t}");
        }
    }

    #[test]
    fn misses_pay_the_wan_trip() {
        let mut p = provider(0.5);
        let miss = (0..200u64)
            .find(|i| !p.cached_segments.contains(i))
            .unwrap();
        let (data, t) = p.serve(&FileId::from("f"), miss);
        assert!(data.is_some());
        assert!(t.as_millis_f64() > 16.0, "miss took only {t}");
    }

    #[test]
    fn cache_fraction_controls_pinned_count() {
        assert_eq!(provider(0.25).cached_count(), 50);
        assert_eq!(provider(1.0).cached_count(), 200);
        assert_eq!(provider(0.0).cached_count(), 0);
    }

    #[test]
    fn full_cache_defeats_timing_but_is_no_longer_a_relay() {
        // cache_fraction = 1.0 means the data *is* at the front node —
        // the provider is simply honest about location. The attack only
        // "works" by not being an attack.
        let mut p = provider(1.0);
        for idx in [0u64, 50, 199] {
            let (_, t) = p.serve(&FileId::from("f"), idx);
            assert!(t.as_millis_f64() < 1.0);
        }
    }

    #[test]
    fn describe_reports_cache_size() {
        let p = provider(0.1);
        assert!(p.describe().contains("20 segments"));
    }
}
