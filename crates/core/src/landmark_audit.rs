//! Landmark-hardened audits: §V-C's GPS-spoofing countermeasure wired
//! into the TPA's decision.
//!
//! The paper: "for extra assurance we may want to verify the position of
//! V … we could consider the triangulation of V from multiple landmarks."
//! The plain SLA check compares the *claimed* GPS fix to the contracted
//! location — useless if the provider spoofs the fix to exactly the SLA
//! site. Here the TPA additionally collects independent network-ranging
//! measurements to the verifier device and cross-checks them against the
//! claimed fix, catching the spoof-to-SLA attack.

use crate::auditor::{AuditReport, Violation};
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_geo::coords::GeoPoint;
use geoproof_geo::gps::{verify_position_with_landmarks, GpsFix, PositionCheck};
use geoproof_geo::schemes::rtt_to_distance;
use geoproof_geo::triangulation::{robust_multilaterate, RangeMeasurement};
use geoproof_net::wan::WanModel;
use geoproof_sim::time::{Km, SimDuration};

/// One landmark's ping measurement of the verifier device.
#[derive(Clone, Copy, Debug)]
pub struct LandmarkPing {
    /// Landmark position (trusted infrastructure).
    pub landmark: GeoPoint,
    /// Measured RTT to the verifier device.
    pub rtt: SimDuration,
    /// Access overhead to subtract (the landmark's own last mile).
    pub access_overhead: SimDuration,
}

/// Simulates landmark pings against a device whose *true* position is
/// known to the simulation (the provider cannot influence these paths —
/// the paper notes the attacker may try to delay them; added delay only
/// *inflates* ranges, pushing the estimate further from a spoofed fix,
/// never closer).
pub fn simulate_landmark_pings(
    landmarks: &[GeoPoint],
    true_position: GeoPoint,
    wan: &WanModel,
    access_overhead: SimDuration,
    rng: &mut ChaChaRng,
) -> Vec<LandmarkPing> {
    landmarks
        .iter()
        .map(|lm| LandmarkPing {
            landmark: *lm,
            rtt: wan.rtt(lm.distance(&true_position), rng),
            access_overhead,
        })
        .collect()
}

/// Cross-checks a claimed GPS fix against landmark pings; returns the
/// position check, or `None` with fewer than three landmarks.
pub fn landmark_position_check(
    claimed: GeoPoint,
    pings: &[LandmarkPing],
    speed: geoproof_sim::time::Speed,
    tolerance: Km,
) -> Option<PositionCheck> {
    let ranges: Vec<RangeMeasurement> = pings
        .iter()
        .map(|p| RangeMeasurement {
            landmark: p.landmark,
            distance: rtt_to_distance(p.rtt, p.access_overhead, speed),
        })
        .collect();
    let fix = GpsFix {
        position: claimed,
        accuracy: Km(0.015),
    };
    verify_position_with_landmarks(&fix, &ranges, tolerance)
}

/// [`landmark_position_check`] through the outlier-robust estimator: up
/// to f < N/2 landmarks may be compromised (lying about their RTTs, or
/// selectively delayed by the provider) without corrupting the estimate.
/// Returns `None` with fewer than three landmarks or degenerate geometry.
pub fn robust_landmark_position_check(
    claimed: GeoPoint,
    pings: &[LandmarkPing],
    speed: geoproof_sim::time::Speed,
    tolerance: Km,
) -> Option<PositionCheck> {
    let ranges: Vec<RangeMeasurement> = pings
        .iter()
        .map(|p| RangeMeasurement {
            landmark: p.landmark,
            distance: rtt_to_distance(p.rtt, p.access_overhead, speed),
        })
        .collect();
    let fit = robust_multilaterate(&ranges)?;
    let discrepancy = claimed.distance(&fit.position);
    Some(PositionCheck {
        estimated: fit.position,
        consistent: discrepancy.0 <= tolerance.0,
        discrepancy,
    })
}

/// Folds a landmark check into an existing audit report: an inconsistent
/// fix appends a [`Violation::WrongLocation`] carrying the discrepancy.
pub fn harden_report(report: AuditReport, check: &PositionCheck) -> AuditReport {
    let mut report = report;
    if !check.consistent {
        report.violations.push(Violation::WrongLocation {
            offset: check.discrepancy,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoproof_geo::coords::places::{ADELAIDE, BRISBANE, MELBOURNE, PERTH, SYDNEY, TOWNSVILLE};
    use geoproof_net::wan::AccessKind;

    const LANDMARKS: [GeoPoint; 5] = [SYDNEY, MELBOURNE, PERTH, TOWNSVILLE, ADELAIDE];

    fn pings(true_pos: GeoPoint) -> Vec<LandmarkPing> {
        let wan = WanModel::calibrated(AccessKind::Fibre);
        let (_speed, overhead) = wan.ranging_calibration();
        let mut rng = ChaChaRng::from_u64_seed(5);
        simulate_landmark_pings(&LANDMARKS, true_pos, &wan, overhead, &mut rng)
    }

    fn ranging_speed() -> geoproof_sim::time::Speed {
        WanModel::calibrated(AccessKind::Fibre)
            .ranging_calibration()
            .0
    }

    #[test]
    fn honest_fix_passes_landmark_check() {
        // Device really in Brisbane, claims Brisbane.
        let check = landmark_position_check(
            BRISBANE,
            &pings(BRISBANE),
            ranging_speed(),
            Km(400.0), // network ranging is coarse; hundreds of km tolerance
        )
        .expect("enough landmarks");
        assert!(check.consistent, "discrepancy {}", check.discrepancy);
    }

    #[test]
    fn spoof_to_sla_location_is_caught() {
        // Device actually in Perth (data moved!), GPS spoofed to claim
        // Brisbane — the SLA site. The plain SLA check would pass; the
        // landmark ranging sees Perth.
        let check = landmark_position_check(
            BRISBANE,      // claimed (spoofed)
            &pings(PERTH), // physical truth drives the pings
            ranging_speed(),
            Km(400.0),
        )
        .expect("enough landmarks");
        assert!(!check.consistent);
        assert!(check.discrepancy.0 > 1500.0, "got {}", check.discrepancy.0);
    }

    #[test]
    fn hardened_report_carries_the_violation() {
        let base = AuditReport {
            violations: vec![],
            max_rtt: SimDuration::from_millis(13),
            segments_ok: 10,
        };
        let check =
            landmark_position_check(BRISBANE, &pings(PERTH), ranging_speed(), Km(400.0)).unwrap();
        let hardened = harden_report(base, &check);
        assert!(!hardened.accepted());
        assert!(hardened
            .violations
            .iter()
            .any(|v| matches!(v, Violation::WrongLocation { .. })));
    }

    #[test]
    fn too_few_landmarks_yields_none() {
        let p = pings(BRISBANE);
        assert!(landmark_position_check(BRISBANE, &p[..2], ranging_speed(), Km(400.0)).is_none());
    }

    #[test]
    fn same_landmark_pinged_thrice_yields_none() {
        // Degenerate geometry: one landmark repeated is rank-deficient and
        // must be rejected, not turned into a confident position check.
        let p = pings(BRISBANE);
        let thrice = vec![p[0]; 3];
        assert!(landmark_position_check(BRISBANE, &thrice, ranging_speed(), Km(400.0)).is_none());
        assert!(
            robust_landmark_position_check(BRISBANE, &thrice, ranging_speed(), Km(400.0)).is_none()
        );
    }

    #[test]
    fn robust_check_survives_one_lying_landmark() {
        // One compromised landmark reports a wildly inflated RTT; the
        // robust path trims it and the honest fix still passes, while the
        // plain least-squares check is dragged beyond tolerance.
        let mut p = pings(BRISBANE);
        p[2].rtt += SimDuration::from_millis(40);
        let robust = robust_landmark_position_check(BRISBANE, &p, ranging_speed(), Km(400.0))
            .expect("enough landmarks");
        assert!(robust.consistent, "discrepancy {}", robust.discrepancy);
        let plain = landmark_position_check(BRISBANE, &p, ranging_speed(), Km(400.0))
            .expect("enough landmarks");
        assert!(
            robust.discrepancy.0 < plain.discrepancy.0,
            "robust {} should beat plain {}",
            robust.discrepancy.0,
            plain.discrepancy.0
        );
    }

    #[test]
    fn provider_delaying_pings_cannot_fake_proximity() {
        // Added delay inflates every range; the spoofed-to-Brisbane fix
        // looks *less* consistent, never more.
        let mut delayed = pings(PERTH);
        for p in delayed.iter_mut() {
            p.rtt += SimDuration::from_millis(30);
        }
        let check = landmark_position_check(BRISBANE, &delayed, ranging_speed(), Km(400.0))
            .expect("enough landmarks");
        assert!(!check.consistent);
    }
}
