//! The concurrent multi-prover audit engine.
//!
//! The paper audits one prover at a time; the engine audits a fleet. It
//! owns:
//!
//! * a **sharded session table** — per-shard `parking_lot` mutexes keyed
//!   by prover id, so hundreds of sessions progress without a global lock;
//! * **order-independent challenge planning** — each session's nonce
//!   comes from `(engine seed, prover id)` via [`geoproof_por::batch`],
//!   never from shared RNG state, so opening sessions in any order (or
//!   from any thread) yields identical audits;
//! * **batched verification** — all collected transcripts are judged in
//!   one pass sharing the MAC parameterisation
//!   ([`SegmentBatchVerifier`]), with verdicts *byte-identical* to the
//!   sequential [`crate::auditor::Auditor`] path;
//! * a **work-stealing driver** ([`AuditEngine::run_sessions`]) that runs
//!   many blocking sessions on a [`crate::pool`] worker pool — the mode
//!   `geoproof serve --concurrent` clients exercise.
//!
//! The deterministic fleet simulation on top of this engine lives in
//! [`crate::fleet`].

use crate::auditor::{AuditReport, VerifyChecks};
use crate::evidence::{EvidenceBundle, EvidenceSink};
use crate::messages::{AuditRequest, SignedTranscript};
use crate::policy::TimingPolicy;
use crate::pool::{run_jobs, Job, PoolStats};
use crate::provider::SegmentProvider;
use crate::verifier::VerifierDevice;
use geoproof_crypto::schnorr::VerifyingKey;
use geoproof_geo::coords::GeoPoint;
use geoproof_por::batch::{session_nonce, SegmentBatchVerifier};
use geoproof_por::encode::PorEncoder;
use geoproof_por::keys::AuditorKey;
use geoproof_sim::time::Km;
use geoproof_storage::server::FileId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Cached telemetry handles (see `geoproof_obs`): verdict counters move
/// only on a session's *first* verdict, so they count audits — never
/// re-verification passes; the latency histogram covers the full
/// challenge/response/sign session as run on the pool.
struct EngineMetrics {
    accept: std::sync::Arc<geoproof_obs::Counter>,
    reject: std::sync::Arc<geoproof_obs::Counter>,
    latency: std::sync::Arc<geoproof_obs::Histogram>,
}

fn metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| EngineMetrics {
        accept: geoproof_obs::counter("audit_verdicts_total{outcome=\"accept\"}"),
        reject: geoproof_obs::counter("audit_verdicts_total{outcome=\"reject\"}"),
        latency: geoproof_obs::histogram("audit_session_latency_us"),
    })
}

/// Identifies a prover (a cloud site under audit).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProverId(pub String);

impl std::fmt::Display for ProverId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for ProverId {
    fn from(s: &str) -> Self {
        ProverId(s.to_owned())
    }
}

/// Where a session is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionState {
    /// Challenges issued; rounds in flight.
    InFlight,
    /// Transcript received; awaiting verification.
    Collected,
    /// Verified; report available.
    Done,
}

/// One prover's audit session.
#[derive(Clone, Debug)]
pub struct AuditSession {
    /// The prover under audit.
    pub prover: ProverId,
    /// The request issued for this session.
    pub request: AuditRequest,
    /// The signed transcript, once the device returned it.
    pub transcript: Option<SignedTranscript>,
    /// The verdict, once verified.
    pub report: Option<AuditReport>,
}

impl AuditSession {
    /// Current lifecycle state.
    pub fn state(&self) -> SessionState {
        match (&self.transcript, &self.report) {
            (_, Some(_)) => SessionState::Done,
            (Some(_), None) => SessionState::Collected,
            (None, None) => SessionState::InFlight,
        }
    }
}

/// FNV-1a over the prover id — deterministic shard selection (no
/// per-process hasher randomness, so load patterns reproduce).
fn shard_of(id: &ProverId, shards: usize) -> usize {
    (geoproof_crypto::fnv::fnv1a_64(id.0.as_bytes()) as usize) % shards
}

/// A sharded, thread-safe session table keyed by prover id.
///
/// Invariants (pinned by property tests): a session is in exactly one
/// shard; interleaved `insert`/`complete` across threads never lose or
/// duplicate a session; `len` equals the number of live sessions.
#[derive(Debug)]
pub struct SessionTable {
    shards: Vec<Mutex<HashMap<ProverId, AuditSession>>>,
}

impl SessionTable {
    /// Creates a table with `shards` shards (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        SessionTable {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Inserts a session. Returns `false` (and leaves the table
    /// unchanged) if the prover already has a live session — sessions are
    /// never silently replaced.
    pub fn insert(&self, session: AuditSession) -> bool {
        let mut shard = self.shards[shard_of(&session.prover, self.shards.len())].lock();
        match shard.entry(session.prover.clone()) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(session);
                true
            }
        }
    }

    /// Runs `f` on the prover's live session, if any.
    pub fn with_mut<R>(&self, id: &ProverId, f: impl FnOnce(&mut AuditSession) -> R) -> Option<R> {
        let mut shard = self.shards[shard_of(id, self.shards.len())].lock();
        shard.get_mut(id).map(f)
    }

    /// Removes and returns the prover's session.
    pub fn complete(&self, id: &ProverId) -> Option<AuditSession> {
        let mut shard = self.shards[shard_of(id, self.shards.len())].lock();
        shard.remove(id)
    }

    /// Atomically removes the prover's session iff `pred` holds for it —
    /// check and removal happen under one shard lock, so no concurrent
    /// insert can slip in between.
    pub fn complete_if(
        &self,
        id: &ProverId,
        pred: impl FnOnce(&AuditSession) -> bool,
    ) -> Option<AuditSession> {
        let mut shard = self.shards[shard_of(id, self.shards.len())].lock();
        if shard.get(id).is_some_and(pred) {
            shard.remove(id)
        } else {
            None
        }
    }

    /// Atomically inserts `session`, replacing an existing one only when
    /// `allow_replace(existing)` holds. Returns whether the insert
    /// happened. The whole decision runs under one shard lock.
    pub fn insert_if(
        &self,
        session: AuditSession,
        allow_replace: impl FnOnce(&AuditSession) -> bool,
    ) -> bool {
        let mut shard = self.shards[shard_of(&session.prover, self.shards.len())].lock();
        match shard.get(&session.prover) {
            Some(existing) if !allow_replace(existing) => false,
            _ => {
                shard.insert(session.prover.clone(), session);
                true
            }
        }
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All live prover ids, sorted (deterministic iteration order).
    pub fn ids(&self) -> Vec<ProverId> {
        let mut ids: Vec<ProverId> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().keys().cloned().collect::<Vec<_>>())
            .collect();
        ids.sort();
        ids
    }
}

/// A registered prover: the key its verifier device signs with and the
/// location its SLA promises.
#[derive(Clone, Debug)]
pub struct ProverSpec {
    /// The device's registered public key.
    pub device_key: VerifyingKey,
    /// The SLA location.
    pub sla_location: GeoPoint,
}

/// Engine-wide configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Session-table shards.
    pub shards: usize,
    /// Worker threads for [`AuditEngine::run_sessions`].
    pub workers: usize,
    /// Seed for order-independent challenge planning.
    pub seed: u64,
    /// Challenges per session.
    pub k: u32,
    /// Accepted GPS offset from each prover's SLA location.
    pub location_tolerance: Km,
    /// The Δt_max policy.
    pub policy: TimingPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 16,
            workers: 4,
            seed: 0x6765_6f70_726f_6f66, // "geoproof"
            k: 10,
            location_tolerance: Km(25.0),
            policy: TimingPolicy::paper(),
        }
    }
}

/// The concurrent multi-prover audit engine for one file.
pub struct AuditEngine {
    config: EngineConfig,
    file_id: String,
    n_segments: u64,
    encoder: PorEncoder,
    auditor_key: AuditorKey,
    provers: Mutex<HashMap<ProverId, ProverSpec>>,
    /// Audits opened per prover — folded into the nonce derivation so a
    /// re-audit gets a fresh nonce (an old transcript cannot replay into
    /// a new session), while staying a pure function of the engine's
    /// history with that prover.
    epochs: Mutex<HashMap<ProverId, u64>>,
    table: SessionTable,
    /// Optional durable-evidence sink: every *first* verdict for a
    /// session is recorded. `None` keeps the hot path free of evidence
    /// work (no canonical-bytes build, no allocation).
    sink: Mutex<Option<std::sync::Arc<dyn EvidenceSink>>>,
    /// First evidence-recording failure, surfaced out-of-band — verdicts
    /// never change because a sink failed.
    sink_error: Mutex<Option<String>>,
}

impl std::fmt::Debug for AuditEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditEngine")
            .field("file_id", &self.file_id)
            .field("n_segments", &self.n_segments)
            .field("live_sessions", &self.table.len())
            .finish_non_exhaustive()
    }
}

impl AuditEngine {
    /// Creates an engine for one audited file.
    pub fn new(
        file_id: impl Into<String>,
        n_segments: u64,
        encoder: PorEncoder,
        auditor_key: AuditorKey,
        config: EngineConfig,
    ) -> Self {
        let shards = config.shards;
        AuditEngine {
            config,
            file_id: file_id.into(),
            n_segments,
            encoder,
            auditor_key,
            provers: Mutex::new(HashMap::new()),
            epochs: Mutex::new(HashMap::new()),
            table: SessionTable::new(shards),
            sink: Mutex::new(None),
            sink_error: Mutex::new(None),
        }
    }

    /// Installs a durable-evidence sink. Each session's first verdict
    /// (the transition to [`SessionState::Done`]) is recorded as an
    /// [`EvidenceBundle`]; re-verifying an already-`Done` session emits
    /// nothing, so the sequential/batched equivalence passes don't
    /// duplicate records.
    pub fn set_evidence_sink(&self, sink: std::sync::Arc<dyn EvidenceSink>) {
        *self.sink.lock() = Some(sink);
    }

    /// The first evidence-recording error, if any. Recording failures
    /// never alter verdicts; callers that care about durability check
    /// this (and their sink's own close/flush result) after a run.
    pub fn evidence_error(&self) -> Option<String> {
        self.sink_error.lock().clone()
    }

    /// Seeds per-prover audit epochs — use when this engine appends to a
    /// ledger that earlier runs already wrote to (e.g. from
    /// `LedgerWriter::prover_epochs`), so nonces keep rotating and
    /// `(prover, epoch)` stays unique across process restarts. Seeding
    /// after sessions have opened would replay nonces; call before any
    /// [`AuditEngine::open_session`].
    pub fn seed_epochs(&self, seeds: impl IntoIterator<Item = (ProverId, u64)>) {
        let mut epochs = self.epochs.lock();
        for (prover, epoch) in seeds {
            epochs.insert(prover, epoch);
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The session table (exposed for inspection and tests).
    pub fn table(&self) -> &SessionTable {
        &self.table
    }

    /// Registers a prover's device key and SLA location. Re-registering
    /// replaces the spec (device rotation).
    pub fn register_prover(&self, id: ProverId, spec: ProverSpec) {
        self.provers.lock().insert(id, spec);
    }

    /// Registered prover count.
    pub fn prover_count(&self) -> usize {
        self.provers.lock().len()
    }

    /// Opens a session for `prover`: derives its order-independent nonce
    /// and parks the session in the table. (Challenge *indices* are drawn
    /// by the prover's verifier device, as in the paper's protocol; the
    /// engine-side derivation covers the nonce binding the transcript.)
    ///
    /// A finished (`Done`) session from an earlier audit round is evicted
    /// and superseded — re-auditing a prover is routine. Returns `None`
    /// if the prover is unregistered or still has an unfinished session.
    pub fn open_session(&self, prover: &ProverId) -> Option<AuditRequest> {
        if !self.provers.lock().contains_key(prover) {
            return None;
        }
        // The epochs lock is held across the epoch read, the nonce
        // derivation *and* the table insert: two racing opens would
        // otherwise both read the same epoch and commit the same nonce
        // in successive rounds, re-enabling cross-round replay.
        let mut epochs = self.epochs.lock();
        let epoch = epochs.get(prover).copied().unwrap_or(0);
        let nonce = session_nonce(self.config.seed, &format!("{}#{epoch}", prover.0));
        let request = AuditRequest {
            file_id: self.file_id.clone(),
            n_segments: self.n_segments,
            k: self.config.k,
            nonce,
        };
        let session = AuditSession {
            prover: prover.clone(),
            request: request.clone(),
            transcript: None,
            report: None,
        };
        // Atomic insert-or-supersede: only a *finished* session may be
        // replaced, and the decision happens under the shard lock, so
        // racing opens can never evict each other's live session.
        if self
            .table
            .insert_if(session, |existing| existing.state() == SessionState::Done)
        {
            *epochs.entry(prover.clone()).or_insert(0) += 1;
            Some(request)
        } else {
            None // audit still running, or lost a race to a concurrent open
        }
    }

    /// Removes a finished session, returning it (report included). Live
    /// sessions are left untouched — eviction never cancels an audit
    /// (check and removal are atomic under the shard lock).
    pub fn take_finished(&self, prover: &ProverId) -> Option<AuditSession> {
        self.table
            .complete_if(prover, |s| s.state() == SessionState::Done)
    }

    /// Attaches a device's signed transcript to its session. Returns
    /// `false` when no live session exists or one was already submitted.
    pub fn submit_transcript(&self, prover: &ProverId, transcript: SignedTranscript) -> bool {
        self.table
            .with_mut(prover, |s| {
                if s.transcript.is_some() {
                    false
                } else {
                    s.transcript = Some(transcript);
                    true
                }
            })
            .unwrap_or(false)
    }

    fn checks_for<'a>(&'a self, spec: &'a ProverSpec) -> VerifyChecks<'a> {
        VerifyChecks {
            file_id: &self.file_id,
            n_segments: self.n_segments,
            device_key: &spec.device_key,
            sla_location: spec.sla_location,
            location_tolerance: self.config.location_tolerance,
            policy: &self.config.policy,
        }
    }

    /// Verifies every collected session **sequentially** — the reference
    /// path, calling [`PorEncoder::verify_segment`] per round exactly as
    /// the single-prover [`crate::auditor::Auditor`] does. Sessions stay
    /// in the table with their reports attached; results are sorted by
    /// prover id. Already-`Done` sessions are re-verified (verdicts are
    /// deterministic, so this can only reproduce them) — long-lived
    /// engines should evict finished sessions with
    /// [`AuditEngine::take_finished`].
    pub fn verify_collected_sequential(&self) -> Vec<(ProverId, AuditReport)> {
        self.verify_sequential_filtered(None)
    }

    fn verify_sequential_filtered(
        &self,
        only: Option<&std::collections::HashSet<ProverId>>,
    ) -> Vec<(ProverId, AuditReport)> {
        self.verify_collected_with(only, |_prover, transcript| {
            transcript
                .rounds
                .iter()
                .map(|round| {
                    self.encoder.verify_segment(
                        self.auditor_key.mac_key(),
                        &self.file_id,
                        round.index,
                        &round.segment,
                    )
                })
                .collect()
        })
    }

    /// Verifies every collected session in **one batched pass**: all
    /// sessions share a single [`SegmentBatchVerifier`] (one MAC
    /// parameterisation, one message buffer) over the whole fleet's
    /// rounds. Verdicts are byte-identical to
    /// [`AuditEngine::verify_collected_sequential`].
    pub fn verify_collected_batched(&self) -> Vec<(ProverId, AuditReport)> {
        self.verify_batched_filtered(None)
    }

    fn verify_batched_filtered(
        &self,
        only: Option<&std::collections::HashSet<ProverId>>,
    ) -> Vec<(ProverId, AuditReport)> {
        let mut batch =
            SegmentBatchVerifier::new(&self.encoder, self.auditor_key.mac_key(), &self.file_id);
        self.verify_collected_with(only, move |_prover, transcript| {
            transcript
                .rounds
                .iter()
                .map(|round| batch.verify_one(round.index, &round.segment))
                .collect()
        })
    }

    /// Shared driver: `segment_verdicts` maps a transcript to one MAC
    /// verdict per round; everything else (signature, nonce, GPS, round
    /// sanity, timing) is the common [`VerifyChecks`] logic. `only`
    /// restricts the pass to a subset of provers so callers auditing in
    /// rounds don't re-verify earlier rounds' finished sessions.
    fn verify_collected_with(
        &self,
        only: Option<&std::collections::HashSet<ProverId>>,
        mut segment_verdicts: impl FnMut(&ProverId, &SignedTranscript) -> Vec<bool>,
    ) -> Vec<(ProverId, AuditReport)> {
        let provers = self.provers.lock().clone();
        let mut out = Vec::new();
        for id in self.table.ids() {
            if only.is_some_and(|set| !set.contains(&id)) {
                continue; // outside the caller's scope
            }
            let snapshot = self
                .table
                .with_mut(&id, |s| {
                    s.transcript.clone().map(|t| (s.request.clone(), t))
                })
                .flatten();
            let Some((request, transcript)) = snapshot else {
                continue; // still in flight
            };
            let Some(spec) = provers.get(&id) else {
                continue; // deregistered mid-audit
            };
            let verdicts = segment_verdicts(&id, &transcript);
            let report =
                self.checks_for(spec)
                    .verify_transcript(&request, &transcript, |i, _round| {
                        verdicts.get(i).copied().unwrap_or(false)
                    });
            // Clone the sink handle out so no engine lock is held across
            // the sink's I/O. The epoch must be read *before* the report
            // is published: until then the session is not `Done`, so a
            // racing `open_session` cannot supersede it and bump the
            // count out from under us. (`epochs` counts opens, so the
            // session being judged is epoch `count - 1`.)
            let sink = self.sink.lock().clone();
            let epoch = if sink.is_some() {
                self.epochs
                    .lock()
                    .get(&id)
                    .copied()
                    .unwrap_or(1)
                    .saturating_sub(1)
            } else {
                0
            };
            let fresh_verdict = self
                .table
                .with_mut(&id, |s| {
                    // Publish only onto the session we actually verified:
                    // a concurrent `open_session` may have superseded a
                    // `Done` session while this pass held its snapshot,
                    // and stamping the old report (or recording duplicate
                    // evidence under the new epoch) onto the fresh
                    // session would corrupt it. Nonces are unique per
                    // epoch, so they identify the session.
                    if s.request.nonce != request.nonce {
                        return false;
                    }
                    let fresh = s.report.is_none();
                    s.report = Some(report.clone());
                    fresh
                })
                .unwrap_or(false);
            if fresh_verdict {
                let m = metrics();
                if report.accepted() {
                    m.accept.inc();
                } else {
                    m.reject.inc();
                }
                if let Some(sink) = sink {
                    let bundle = EvidenceBundle {
                        prover: id.0.clone(),
                        epoch,
                        device_key: spec.device_key.to_bytes(),
                        sla_location: spec.sla_location,
                        location_tolerance: self.config.location_tolerance,
                        policy: self.config.policy,
                        request,
                        mac_ok: verdicts,
                        report: report.clone(),
                        transcript: transcript.canonical_bytes(),
                    };
                    if let Err(e) = sink.record(&bundle) {
                        let mut err = self.sink_error.lock();
                        if err.is_none() {
                            *err = Some(e.to_string());
                        }
                    }
                }
            }
            out.push((id, report));
        }
        out
    }

    /// Drives many blocking sessions to completion on a work-stealing
    /// pool, then batch-verifies. Each entry supplies the prover's
    /// verifier device and the provider answering its challenges; the
    /// whole session (k ordered rounds + signing) runs as one job.
    ///
    /// Returns the reports of **this run's** sessions (sorted by id) plus
    /// pool statistics — provers whose session could not be opened (still
    /// mid-audit from elsewhere, or unregistered) are absent, never
    /// served stale verdicts from an earlier round.
    pub fn run_sessions(
        &self,
        fleet: Vec<(ProverId, VerifierDevice, Box<dyn SegmentProvider + Send>)>,
    ) -> (Vec<(ProverId, AuditReport)>, PoolStats) {
        let opened: Mutex<std::collections::HashSet<ProverId>> =
            Mutex::new(std::collections::HashSet::new());
        let jobs: Vec<Job<'_>> = fleet
            .into_iter()
            .map(|(id, mut device, mut provider)| {
                let opened = &opened;
                Box::new(move || {
                    let Some(request) = self.open_session(&id) else {
                        return;
                    };
                    let _span = geoproof_obs::span("audit_session");
                    let started = std::time::Instant::now();
                    opened.lock().insert(id.clone());
                    let fid = FileId(request.file_id.clone());
                    let mut run = device.begin_audit(&request);
                    while let Some(index) = run.next_index() {
                        let timer = device.clock().start_timer();
                        let (data, service_time) = provider.serve(&fid, index);
                        device.clock().advance(service_time);
                        run.record_round(data, timer.elapsed());
                    }
                    let transcript = device.finish_audit(run);
                    self.submit_transcript(&id, transcript);
                    metrics().latency.record_duration_us(started.elapsed());
                }) as Job<'_>
            })
            .collect();
        let stats = run_jobs(self.config.workers, jobs);
        let opened = opened.into_inner();
        // Verify only this run's sessions — earlier rounds' finished
        // sessions are neither re-verified nor reported.
        (self.verify_batched_filtered(Some(&opened)), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::LocalProvider;
    use geoproof_crypto::chacha::ChaChaRng;
    use geoproof_crypto::schnorr::SigningKey;
    use geoproof_geo::coords::places::BRISBANE;
    use geoproof_geo::gps::GpsReceiver;
    use geoproof_net::lan::LanPath;
    use geoproof_por::keys::PorKeys;
    use geoproof_por::params::PorParams;
    use geoproof_sim::clock::SimClock;
    use geoproof_storage::hdd::{HddModel, WD_2500JD};
    use geoproof_storage::server::StorageServer;

    fn session(id: &str) -> AuditSession {
        AuditSession {
            prover: ProverId::from(id),
            request: AuditRequest {
                file_id: "f".into(),
                n_segments: 10,
                k: 2,
                nonce: [0u8; 32],
            },
            transcript: None,
            report: None,
        }
    }

    #[test]
    fn table_insert_is_exclusive() {
        let t = SessionTable::new(4);
        assert!(t.insert(session("p")));
        assert!(!t.insert(session("p")), "duplicate insert must fail");
        assert_eq!(t.len(), 1);
        assert!(t.complete(&ProverId::from("p")).is_some());
        assert!(t.complete(&ProverId::from("p")).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn table_ids_are_sorted_across_shards() {
        let t = SessionTable::new(8);
        for id in ["zeta", "alpha", "mu", "beta"] {
            assert!(t.insert(session(id)));
        }
        let ids: Vec<String> = t.ids().into_iter().map(|p| p.0).collect();
        assert_eq!(ids, vec!["alpha", "beta", "mu", "zeta"]);
    }

    #[test]
    fn one_shard_still_works() {
        let t = SessionTable::new(0); // clamps to 1
        assert_eq!(t.shard_count(), 1);
        assert!(t.insert(session("a")));
        assert!(t.insert(session("b")));
        assert_eq!(t.len(), 2);
    }

    /// One prover's kit: identity, device, and the provider under audit.
    type FleetEntry = (ProverId, VerifierDevice, Box<dyn SegmentProvider + Send>);

    /// A full in-memory rig: one encoded file, n provers with their own
    /// devices and honest local storage.
    fn rig(n_provers: usize, seed: u64) -> (AuditEngine, Vec<FleetEntry>) {
        let params = PorParams::test_small();
        let encoder = PorEncoder::new(params);
        let keys = PorKeys::derive(b"engine-master", "ef");
        let data: Vec<u8> = (0..6000u32).map(|i| (i % 251) as u8).collect();
        let tagged = encoder.encode_arena(&data, &keys, "ef");
        let n = tagged.metadata().segments;

        let engine = AuditEngine::new(
            "ef",
            n,
            PorEncoder::new(params),
            keys.auditor_view(),
            EngineConfig {
                seed,
                k: 8,
                workers: 4,
                ..EngineConfig::default()
            },
        );

        let mut fleet = Vec::new();
        for i in 0..n_provers {
            let id = ProverId(format!("prover-{i:03}"));
            let mut rng = ChaChaRng::from_u64_seed(seed ^ (i as u64 + 1) << 8);
            let sk = SigningKey::generate(&mut rng);
            engine.register_prover(
                id.clone(),
                ProverSpec {
                    device_key: sk.verifying_key(),
                    sla_location: BRISBANE,
                },
            );
            let device = VerifierDevice::new(
                sk,
                GpsReceiver::new(BRISBANE),
                SimClock::new(),
                seed ^ (i as u64 + 77),
            );
            let mut storage = StorageServer::new(HddModel::deterministic(WD_2500JD), i as u64);
            storage.put_arena(FileId::from("ef"), crate::provider::shared_store(&tagged));
            let provider: Box<dyn SegmentProvider + Send> = Box::new(LocalProvider::new(
                storage,
                LanPath::adjacent(),
                i as u64 + 9,
            ));
            fleet.push((id, device, provider));
        }
        (engine, fleet)
    }

    #[test]
    fn concurrent_sessions_all_verify() {
        let (engine, fleet) = rig(12, 5);
        let (reports, stats) = engine.run_sessions(fleet);
        assert_eq!(reports.len(), 12);
        assert_eq!(stats.jobs, 12);
        for (id, report) in &reports {
            assert!(report.accepted(), "{id}: {:?}", report.violations);
            assert_eq!(report.segments_ok, 8);
        }
    }

    #[test]
    fn batched_equals_sequential_verdicts() {
        let (engine, fleet) = rig(6, 11);
        let (_, _) = engine.run_sessions(fleet);
        let sequential = engine.verify_collected_sequential();
        let batched = engine.verify_collected_batched();
        assert_eq!(sequential, batched);
    }

    #[test]
    fn unregistered_prover_cannot_open_session() {
        let (engine, _) = rig(1, 1);
        assert!(engine.open_session(&ProverId::from("ghost")).is_none());
    }

    #[test]
    fn double_open_is_rejected() {
        let (engine, _) = rig(1, 2);
        let id = ProverId::from("prover-000");
        assert!(engine.open_session(&id).is_some());
        assert!(engine.open_session(&id).is_none());
    }

    #[test]
    fn session_plans_are_independent_of_open_order() {
        let (a, _) = rig(3, 9);
        let (b, _) = rig(3, 9);
        let ids: Vec<ProverId> = (0..3).map(|i| ProverId(format!("prover-{i:03}"))).collect();
        let fwd: Vec<_> = ids.iter().map(|i| a.open_session(i).unwrap()).collect();
        let rev: Vec<_> = ids
            .iter()
            .rev()
            .map(|i| b.open_session(i).unwrap())
            .collect();
        assert_eq!(fwd[0], rev[2]);
        assert_eq!(fwd[2], rev[0]);
    }

    #[test]
    fn submit_requires_live_session_and_is_single_shot() {
        let (engine, fleet) = rig(1, 3);
        let (id, mut device, mut provider) = fleet.into_iter().next().unwrap();
        let request = engine.open_session(&id).unwrap();
        let transcript = device.run_audit(&request, provider.as_mut());
        assert!(!engine.submit_transcript(&ProverId::from("ghost"), transcript.clone()));
        assert!(engine.submit_transcript(&id, transcript.clone()));
        assert!(
            !engine.submit_transcript(&id, transcript),
            "second submit rejected"
        );
        let state = engine.table().with_mut(&id, |s| s.state()).unwrap();
        assert_eq!(state, SessionState::Collected);
    }

    #[test]
    fn finished_sessions_can_be_reaudited_and_old_transcripts_cannot_replay() {
        let (engine, fleet) = rig(1, 6);
        let (id, mut device, mut provider) = fleet.into_iter().next().unwrap();
        let req1 = engine.open_session(&id).unwrap();
        let t1 = device.run_audit(&req1, provider.as_mut());
        engine.submit_transcript(&id, t1.clone());
        let first = engine.verify_collected_batched();
        assert_eq!(first.len(), 1);
        assert!(first[0].1.accepted());

        // Re-opening evicts the finished session and derives a *fresh*
        // nonce (epoch bump), so the first transcript cannot replay.
        let req2 = engine.open_session(&id).unwrap();
        assert_ne!(req1.nonce, req2.nonce, "re-audit must rotate the nonce");
        engine.submit_transcript(&id, t1); // replay attempt
        let replayed = engine.verify_collected_batched();
        assert!(
            replayed[0]
                .1
                .violations
                .contains(&crate::auditor::Violation::StaleNonce),
            "replayed transcript must be flagged: {:?}",
            replayed[0].1.violations
        );

        // A genuine fresh audit under the new request is accepted.
        let (engine2, fleet2) = rig(1, 6);
        let (id2, mut device2, mut provider2) = fleet2.into_iter().next().unwrap();
        engine2.open_session(&id2).unwrap();
        engine2.take_finished(&id2); // no-op: not finished
        assert!(engine2.table().with_mut(&id2, |s| s.state()).is_some());
        let req = AuditRequest {
            nonce: req2.nonce,
            ..req2.clone()
        };
        let t2 = device2.run_audit(&req, provider2.as_mut());
        // Different device key, so only the nonce path is exercised here;
        // the point is the fresh transcript carries the fresh nonce.
        assert_eq!(t2.nonce, req2.nonce);
    }

    #[test]
    fn take_finished_only_removes_done_sessions() {
        let (engine, fleet) = rig(1, 12);
        let (id, mut device, mut provider) = fleet.into_iter().next().unwrap();
        let request = engine.open_session(&id).unwrap();
        assert!(engine.take_finished(&id).is_none(), "in-flight stays put");
        let transcript = device.run_audit(&request, provider.as_mut());
        engine.submit_transcript(&id, transcript);
        assert!(engine.take_finished(&id).is_none(), "collected stays put");
        engine.verify_collected_batched();
        let taken = engine.take_finished(&id).expect("done session evictable");
        assert!(taken.report.unwrap().accepted());
        assert!(engine.table().is_empty());
    }

    #[test]
    fn session_state_progression() {
        let (engine, fleet) = rig(1, 4);
        let (id, mut device, mut provider) = fleet.into_iter().next().unwrap();
        let request = engine.open_session(&id).unwrap();
        assert_eq!(
            engine.table().with_mut(&id, |s| s.state()).unwrap(),
            SessionState::InFlight
        );
        let transcript = device.run_audit(&request, provider.as_mut());
        engine.submit_transcript(&id, transcript);
        engine.verify_collected_batched();
        assert_eq!(
            engine.table().with_mut(&id, |s| s.state()).unwrap(),
            SessionState::Done
        );
    }
}
