//! A bounds-checked, zero-copy parse cursor over [`Bytes`].
//!
//! Every canonical-format parser in the workspace (transcripts,
//! reports, ledger records, inclusion proofs) reads the same way:
//! length-delimited, order-fixed fields, reject-don't-panic on
//! truncation, reject trailing bytes. This cursor is that read loop,
//! written once — `take` returns [`Bytes::slice`] views of the input,
//! so parsing payloads out of a larger buffer never copies.
//!
//! Errors are the unit [`Truncated`]; parsers map it onto their own
//! error vocabulary at the call site.

use bytes::Bytes;

/// The input ended before the requested field completed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Truncated;

/// A forward-only cursor over a shared buffer.
#[derive(Debug)]
pub struct ByteCursor<'a> {
    bytes: &'a Bytes,
    pos: usize,
}

impl<'a> ByteCursor<'a> {
    /// Starts a cursor at the beginning of `bytes`.
    pub fn new(bytes: &'a Bytes) -> Self {
        ByteCursor { bytes, pos: 0 }
    }

    /// Takes the next `n` bytes as a zero-copy view.
    ///
    /// # Errors
    ///
    /// [`Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<Bytes, Truncated> {
        let end = self.pos.checked_add(n).ok_or(Truncated)?;
        if end > self.bytes.len() {
            return Err(Truncated);
        }
        let out = self.bytes.slice(self.pos..end);
        self.pos = end;
        Ok(out)
    }

    /// Takes a fixed-size array (copied — arrays are small headers,
    /// not payloads).
    ///
    /// # Errors
    ///
    /// [`Truncated`] when fewer than `N` bytes remain.
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], Truncated> {
        let view = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(&view);
        Ok(out)
    }

    /// Takes a big-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`Truncated`] when fewer than 2 bytes remain.
    pub fn take_u16(&mut self) -> Result<u16, Truncated> {
        Ok(u16::from_be_bytes(self.take_array()?))
    }

    /// Takes a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`Truncated`] when fewer than 4 bytes remain.
    pub fn take_u32(&mut self) -> Result<u32, Truncated> {
        Ok(u32::from_be_bytes(self.take_array()?))
    }

    /// Takes a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`Truncated`] when fewer than 8 bytes remain.
    pub fn take_u64(&mut self) -> Result<u64, Truncated> {
        Ok(u64::from_be_bytes(self.take_array()?))
    }

    /// Takes an `f64` from its big-endian bit pattern (bit-exact — the
    /// canonical formats round-trip computed floats).
    ///
    /// # Errors
    ///
    /// [`Truncated`] when fewer than 8 bytes remain.
    pub fn take_f64_bits(&mut self) -> Result<f64, Truncated> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// True when every byte has been consumed — canonical parsers
    /// require this before accepting, so nothing hides after the last
    /// field.
    pub fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_fields_in_order_and_zero_copy() {
        let mut raw = vec![0x01, 0x02]; // u16
        raw.extend_from_slice(&7u32.to_be_bytes());
        raw.extend_from_slice(&9u64.to_be_bytes());
        raw.extend_from_slice(&1.5f64.to_bits().to_be_bytes());
        raw.extend_from_slice(b"payload");
        let bytes = Bytes::from(raw);
        let mut c = ByteCursor::new(&bytes);
        assert_eq!(c.take_u16().unwrap(), 0x0102);
        assert_eq!(c.take_u32().unwrap(), 7);
        assert_eq!(c.take_u64().unwrap(), 9);
        assert_eq!(c.take_f64_bits().unwrap(), 1.5);
        let payload = c.take(7).unwrap();
        assert_eq!(payload.as_ref(), b"payload");
        assert!(payload.aliases(&bytes.slice(bytes.len() - 7..)));
        assert!(c.at_end());
    }

    #[test]
    fn truncation_is_an_error_at_every_cut() {
        let bytes = Bytes::from(vec![1u8; 7]);
        let mut c = ByteCursor::new(&bytes);
        assert_eq!(c.take_u64(), Err(Truncated));
        assert!(c.take(4).is_ok());
        assert_eq!(c.take(4).map(|b| b.len()), Err(Truncated));
        // A failed take consumes nothing.
        assert_eq!(c.take(3).unwrap().len(), 3);
        assert!(c.at_end());
        assert_eq!(c.take(1).map(|b| b.len()), Err(Truncated));
    }

    #[test]
    fn at_end_detects_trailing_bytes() {
        let bytes = Bytes::from(vec![0u8; 3]);
        let mut c = ByteCursor::new(&bytes);
        c.take(2).unwrap();
        assert!(!c.at_end());
    }
}
