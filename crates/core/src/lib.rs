//! # geoproof-core
//!
//! The GeoProof protocol (Albeshri, Boyd, Gonzalez Nieto — ICDCSW 2012):
//! geographic-location assurance for cloud storage by combining the
//! Juels–Kaliski Proof of Retrievability with a timed, distance-bounding
//! style challenge–response phase.
//!
//! The cast (paper Fig. 4):
//!
//! * the **data owner** ([`deployment::DataOwner`]) encodes the file
//!   (RS + encrypt + permute + MAC) and provisions the TPA;
//! * the **cloud provider** ([`provider::SegmentProvider`]) answers
//!   segment challenges — honestly from the SLA site, or adversarially
//!   (relay, corruption, stalling);
//! * the **verifier device** ([`verifier::VerifierDevice`]) — tamper-proof
//!   and GPS-enabled, on the provider's LAN — times each of the k rounds
//!   and signs the transcript;
//! * the **third-party auditor** ([`auditor::Auditor`]) checks signature,
//!   GPS position, MACs and `max Δt_j ≤ Δt_max`
//!   ([`policy::TimingPolicy`], ≈ 16 ms in the paper).
//!
//! Beyond the paper's single-prover protocol, [`engine`] runs many audit
//! sessions concurrently (sharded session table, work-stealing [`pool`],
//! batched verification), and [`fleet`] simulates whole mixed
//! honest/adversarial prover fleets deterministically on a seeded event
//! scheduler.
//!
//! # Examples
//!
//! ```
//! use geoproof_core::deployment::{DeploymentBuilder, ProviderBehaviour};
//! use geoproof_geo::coords::places::BRISBANE;
//! use geoproof_sim::time::Km;
//! use geoproof_storage::hdd::IBM_36Z15;
//! use geoproof_net::wan::AccessKind;
//!
//! // Honest provider: audits pass.
//! let mut honest = DeploymentBuilder::new(BRISBANE).build();
//! assert!(honest.run_audit(10).accepted());
//!
//! // Provider that moved the data 720 km away: timing gives it away.
//! let mut cheat = DeploymentBuilder::new(BRISBANE)
//!     .behaviour(ProviderBehaviour::Relay {
//!         remote_disk: IBM_36Z15,
//!         distance: Km(720.0),
//!         access: AccessKind::DataCentre,
//!     })
//!     .build();
//! assert!(!cheat.run_audit(10).accepted());
//! ```

pub mod auditor;
pub mod cache_attack;
pub mod campaign;
pub mod cost;
pub mod cursor;
pub mod deployment;
pub mod dynamic_audit;
pub mod engine;
pub mod evidence;
pub mod fleet;
pub mod landmark_audit;
pub mod messages;
pub mod multisite;
pub mod policy;
pub mod provider;
pub mod scheduler;
pub mod vantage;
pub mod verifier;

pub use auditor::{AuditReport, Auditor, SegmentVerdict, VerifyChecks, Violation};
pub use cache_attack::CachingRelayProvider;
pub use campaign::{run_campaign, CampaignResult, MisbehaviourOnset};
pub use cost::{audit_cost, naive_download_bytes, AuditCost};
pub use deployment::{DataOwner, Deployment, DeploymentBuilder, ProviderBehaviour};
pub use dynamic_audit::{
    DynAuditRequest, DynAuditor, DynSegmentProvider, DynSignedTranscript, DynTimedRound,
    LocalDynProvider,
};
pub use engine::{
    AuditEngine, AuditSession, EngineConfig, ProverId, ProverSpec, SessionState, SessionTable,
};
pub use evidence::{
    decode_report, encode_report, DynEvidenceBundle, EvidenceBundle, EvidenceSink, PositionBundle,
};
pub use fleet::{run_fleet, run_fleet_with_evidence, AdversaryProfile, FleetConfig, FleetOutcome};
/// The shared work-stealing pool, lifted to its own crate so the POR
/// encoder (below `core` in the dependency DAG) can use it too;
/// re-exported here to keep the historical `geoproof_core::pool` path.
pub use geoproof_pool as pool;
pub use landmark_audit::{
    harden_report, landmark_position_check, robust_landmark_position_check, LandmarkPing,
};
pub use messages::{AuditRequest, SignedTranscript, TimedRound};
pub use multisite::{ReplicaSite, ReplicationAudit, ReplicationReport};
pub use policy::{paper_relay_bound, relay_distance_bound, TimingPolicy};
pub use pool::{run_jobs, PoolStats};
pub use provider::{DelayedProvider, LocalProvider, RelayProvider, SegmentProvider};
pub use scheduler::{AuditScheduler, SchedulePolicy};
pub use vantage::{
    aggregate_vantages, observation_range, run_vantage_sessions, MultiVantageEstimate,
    MultiVantageOutcome, VantageObservation, VantagePolicy, VantageSession,
};
pub use verifier::VerifierDevice;
