//! # geoproof-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! DESIGN.md §4 for the index) plus Criterion micro-benchmarks. This
//! library holds the shared report-formatting helpers so every experiment
//! prints aligned, diff-friendly tables.
//!
//! Run an experiment with e.g.
//! `cargo run -p geoproof-bench --bin exp_table1`.

/// A plain-text table printer producing aligned monospace output.
///
/// # Examples
///
/// ```
/// use geoproof_bench::Table;
///
/// let mut t = Table::new(&["disk", "lookup (ms)"]);
/// t.row(&["WD 2500JD", "13.11"]);
/// let rendered = t.render();
/// assert!(rendered.contains("WD 2500JD"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: &[&str]) {
        let mut row: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        let mut row = cells;
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                out.push_str("| ");
                out.push_str(cell);
                out.push_str(&" ".repeat(widths[c] - cell.len() + 1));
            }
            out.push_str("|\n");
        };
        line(&mut out, &self.headers);
        for w in &widths {
            out.push('|');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("|\n");
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints a titled experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===\n");
}

// --- committed benchmark snapshots -------------------------------------------

/// A scalar JSON value for [`BenchSnapshot`] fields — a minimal
/// renderer so every committed `BENCH_*.json` at the repo root comes
/// out of one writer with one key layout, without a serde dependency.
#[derive(Clone, Debug)]
pub enum Json {
    Bool(bool),
    U64(u64),
    /// Fixed-precision float: `F64(1.236, 2)` renders `1.24`.
    F64(f64, usize),
    Str(String),
    /// Pre-rendered JSON spliced verbatim (e.g. an obs registry dump).
    Raw(String),
}

impl Json {
    fn render(&self) -> String {
        match self {
            Json::Bool(b) => b.to_string(),
            Json::U64(v) => v.to_string(),
            Json::F64(v, decimals) => format!("{v:.decimals$}"),
            Json::Str(s) => json_string(s),
            Json::Raw(s) => s.clone(),
        }
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The one writer behind every committed `BENCH_*.json`: a fixed key
/// layout — `bench`, `params`, `host_cores`, context fields, the
/// baseline pin, a `runs` array with explicit `run_order`, then result
/// fields — so snapshots from different benches diff uniformly and CI
/// can consume them all the same way.
///
/// # Examples
///
/// ```
/// use geoproof_bench::{BenchSnapshot, Json};
///
/// let rendered = BenchSnapshot::new("demo", "demo_bench", "n=1")
///     .baseline("baseline_ops_per_s", Json::U64(100), "seed pin")
///     .run(vec![("ops_per_s".into(), Json::U64(500))])
///     .result("speedup_vs_baseline", Json::F64(5.0, 1))
///     .render();
/// assert!(rendered.contains("\"run_order\": 0"));
/// assert!(rendered.contains("\"speedup_vs_baseline\": 5.0"));
/// ```
#[derive(Clone, Debug)]
pub struct BenchSnapshot {
    file_stem: String,
    head: Vec<(String, Json)>,
    runs: Vec<Vec<(String, Json)>>,
    tail: Vec<(String, Json)>,
}

impl BenchSnapshot {
    /// Starts a snapshot destined for `BENCH_<file_stem>.json`, seeded
    /// with the bench name, its parameter description, and the host's
    /// core count (throughput numbers are meaningless without it).
    pub fn new(file_stem: &str, bench: &str, params: &str) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        BenchSnapshot {
            file_stem: file_stem.to_owned(),
            head: vec![
                ("bench".to_owned(), Json::Str(bench.to_owned())),
                ("params".to_owned(), Json::Str(params.to_owned())),
                ("host_cores".to_owned(), Json::U64(cores as u64)),
            ],
            runs: Vec::new(),
            tail: Vec::new(),
        }
    }

    /// A context field (workload shape, input size) — rendered before
    /// the baseline and runs.
    #[must_use]
    pub fn context(mut self, key: &str, value: Json) -> Self {
        self.head.push((key.to_owned(), value));
        self
    }

    /// The baseline pin this snapshot's speedups are measured against,
    /// with a note naming where the pin came from.
    #[must_use]
    pub fn baseline(mut self, key: &str, value: Json, note: &str) -> Self {
        self.head.push((key.to_owned(), value));
        self.head
            .push(("baseline_note".to_owned(), Json::Str(note.to_owned())));
        self
    }

    /// Appends one measured run; `run_order` is assigned from the call
    /// sequence so the file records what ran before what (warm-up and
    /// cache effects are real).
    #[must_use]
    pub fn run(mut self, fields: Vec<(String, Json)>) -> Self {
        let mut row = vec![("run_order".to_owned(), Json::U64(self.runs.len() as u64))];
        row.extend(fields);
        self.runs.push(row);
        self
    }

    /// A result field — rendered after the runs array.
    #[must_use]
    pub fn result(mut self, key: &str, value: Json) -> Self {
        self.tail.push((key.to_owned(), value));
        self
    }

    /// Attaches the observability registry as a `metrics` field, so a
    /// committed snapshot carries the hot-path counters and histogram
    /// quantiles recorded during the measured runs.
    #[must_use]
    pub fn metrics(self, registry: &geoproof_obs::Snapshot) -> Self {
        self.result("metrics", Json::Raw(registry.to_json()))
    }

    /// Renders the snapshot (trailing newline included).
    pub fn render(&self) -> String {
        let mut fields: Vec<String> = Vec::new();
        for (k, v) in &self.head {
            fields.push(format!("  {}: {}", json_string(k), v.render()));
        }
        if !self.runs.is_empty() {
            let rows: Vec<String> = self
                .runs
                .iter()
                .map(|row| {
                    let cells: Vec<String> = row
                        .iter()
                        .map(|(k, v)| format!("{}: {}", json_string(k), v.render()))
                        .collect();
                    format!("    {{ {} }}", cells.join(", "))
                })
                .collect();
            fields.push(format!("  \"runs\": [\n{}\n  ]", rows.join(",\n")));
        }
        for (k, v) in &self.tail {
            fields.push(format!("  {}: {}", json_string(k), v.render()));
        }
        format!("{{\n{}\n}}\n", fields.join(",\n"))
    }

    /// Writes `BENCH_<file_stem>.json` at the repo root and returns the
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written — a bench snapshot that
    /// silently vanishes is worse than a loud failure.
    pub fn write(&self) -> std::path::PathBuf {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join(format!("../../BENCH_{}.json", self.file_stem));
        std::fs::write(&path, self.render()).expect("write BENCH snapshot");
        path
    }
}

/// Formats a float with fixed precision, trimming "-0.000".
pub fn fmt_f64(v: f64, decimals: usize) -> String {
    let s = format!("{v:.decimals$}");
    if s.starts_with("-0.") && s[3..].chars().all(|c| c == '0') {
        s[1..].to_string()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xxxxxx", "1"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines are the same width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["1"]);
        assert!(t.render().contains("| 1 "));
    }

    #[test]
    fn fmt_f64_trims_negative_zero() {
        assert_eq!(fmt_f64(-0.0001, 3), "0.000");
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
    }

    #[test]
    fn snapshot_layout_is_stable() {
        let rendered = BenchSnapshot::new("layout", "layout_bench", "p=1")
            .context("input_mib", Json::U64(8))
            .baseline("baseline_mib_per_s", Json::F64(0.37, 2), "seed pin")
            .run(vec![
                ("threads".to_owned(), Json::U64(1)),
                ("mib_per_s".to_owned(), Json::F64(47.3, 2)),
            ])
            .run(vec![("threads".to_owned(), Json::U64(2))])
            .result("outcomes_identical", Json::Bool(true))
            .render();
        let keys: Vec<usize> = [
            "\"bench\"",
            "\"params\"",
            "\"host_cores\"",
            "\"input_mib\"",
            "\"baseline_mib_per_s\"",
            "\"baseline_note\"",
            "\"runs\"",
            "\"outcomes_identical\"",
        ]
        .iter()
        .map(|k| rendered.find(k).unwrap_or_else(|| panic!("missing {k}")))
        .collect();
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "key order\n{rendered}"
        );
        assert!(rendered.contains("{ \"run_order\": 0, \"threads\": 1, \"mib_per_s\": 47.30 }"));
        assert!(rendered.contains("{ \"run_order\": 1, \"threads\": 2 }"));
        assert!(rendered.ends_with("}\n"));
    }

    #[test]
    fn snapshot_strings_escape() {
        let rendered = BenchSnapshot::new("esc", "esc", "a \"quoted\" \\ thing").render();
        assert!(rendered.contains("a \\\"quoted\\\" \\\\ thing"));
    }

    #[test]
    fn snapshot_metrics_field_embeds_registry_json() {
        let registry = geoproof_obs::Registry::new();
        geoproof_obs::set_enabled(true);
        registry.counter("snap_ops_total").add(3);
        let rendered = BenchSnapshot::new("m", "m", "")
            .metrics(&registry.snapshot())
            .render();
        assert!(
            rendered.contains("\"metrics\": {\"snap_ops_total\": 3}"),
            "{rendered}"
        );
    }
}
