//! # geoproof-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! DESIGN.md §4 for the index) plus Criterion micro-benchmarks. This
//! library holds the shared report-formatting helpers so every experiment
//! prints aligned, diff-friendly tables.
//!
//! Run an experiment with e.g.
//! `cargo run -p geoproof-bench --bin exp_table1`.

/// A plain-text table printer producing aligned monospace output.
///
/// # Examples
///
/// ```
/// use geoproof_bench::Table;
///
/// let mut t = Table::new(&["disk", "lookup (ms)"]);
/// t.row(&["WD 2500JD", "13.11"]);
/// let rendered = t.render();
/// assert!(rendered.contains("WD 2500JD"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: &[&str]) {
        let mut row: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        let mut row = cells;
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                out.push_str("| ");
                out.push_str(cell);
                out.push_str(&" ".repeat(widths[c] - cell.len() + 1));
            }
            out.push_str("|\n");
        };
        line(&mut out, &self.headers);
        for w in &widths {
            out.push('|');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("|\n");
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints a titled experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===\n");
}

/// Formats a float with fixed precision, trimming "-0.000".
pub fn fmt_f64(v: f64, decimals: usize) -> String {
    let s = format!("{v:.decimals$}");
    if s.starts_with("-0.") && s[3..].chars().all(|c| c == '0') {
        s[1..].to_string()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xxxxxx", "1"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines are the same width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["1"]);
        assert!(t.render().contains("| 1 "));
    }

    #[test]
    fn fmt_f64_trims_negative_zero() {
        assert_eq!(fmt_f64(-0.0001, 3), "0.000");
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
    }
}
