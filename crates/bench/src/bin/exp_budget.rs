//! Experiment E3 — reproduces §V-C(b)'s Δt_max budget: where the 16 ms
//! come from (3 ms network + 13 ms look-up) and what honest deployments
//! actually measure against it, per Table I disk, for both deterministic
//! and stochastic disk models.

use geoproof_bench::{banner, fmt_f64, Table};
use geoproof_core::deployment::{DeploymentBuilder, ProviderBehaviour};
use geoproof_core::policy::TimingPolicy;
use geoproof_geo::coords::places::BRISBANE;
use geoproof_sim::time::SimDuration;
use geoproof_storage::hdd::TABLE_I;

fn main() {
    banner("E3", "Δt_max timing budget (paper §V-C(b))");
    let policy = TimingPolicy::paper();
    println!(
        "budget: Δt_VP ≤ {} ms (LAN allowance) + Δt_L ≤ {} ms (disk) = Δt_max {} ms\n",
        fmt_f64(policy.max_network.as_millis_f64(), 0),
        fmt_f64(policy.max_lookup.as_millis_f64(), 0),
        fmt_f64(policy.max_rtt().as_millis_f64(), 0),
    );

    let mut table = Table::new(&[
        "disk at SLA site",
        "analytic lookup (ms)",
        "measured max Δt' (ms)",
        "within 16 ms budget",
        "audits passed /10",
    ]);
    for spec in TABLE_I {
        let mut d = DeploymentBuilder::new(BRISBANE)
            .behaviour(ProviderBehaviour::Honest { disk: spec.clone() })
            .seed(33)
            .build();
        let mut passed = 0;
        let mut max_rtt = SimDuration::ZERO;
        for _ in 0..10 {
            let r = d.run_audit(10);
            if r.accepted() {
                passed += 1;
            }
            max_rtt = max_rtt.max(r.max_rtt);
        }
        table.row_owned(vec![
            spec.name.to_string(),
            fmt_f64(spec.avg_lookup(83).as_millis_f64(), 3),
            fmt_f64(max_rtt.as_millis_f64(), 3),
            (max_rtt <= policy.max_rtt()).to_string(),
            passed.to_string(),
        ]);
    }
    table.print();
    println!("\nexpected shape: disks up to the WD 2500JD (13.1 ms) fit the budget; the");
    println!("slower IBM 40GNX and Hitachi DK23DA (≥ 17.5 ms) overrun it — the paper's");
    println!("policy assumes 'an average HDD in terms of RPM' at the provider, and the");
    println!("calibrated policy below restores acceptance for slower-but-honest sites:\n");

    let mut cal = Table::new(&["disk", "calibrated Δt_max (ms)", "audits passed /10"]);
    for spec in TABLE_I {
        let policy = TimingPolicy::calibrated(&spec, 83, 1.1);
        let mut d = DeploymentBuilder::new(BRISBANE)
            .behaviour(ProviderBehaviour::Honest { disk: spec.clone() })
            .policy(policy)
            .seed(34)
            .build();
        let mut passed = 0;
        for _ in 0..10 {
            if d.run_audit(10).accepted() {
                passed += 1;
            }
        }
        cal.row_owned(vec![
            spec.name.to_string(),
            fmt_f64(policy.max_rtt().as_millis_f64(), 2),
            passed.to_string(),
        ]);
    }
    cal.print();
    println!("\n(\"these measurements could be made at the contract time at the place where");
    println!("  the data centre is located\" — paper §V-C(b))");
}
