//! Extension experiment — the POS economy claim (paper §IV): "the size of
//! the information exchanged between client and server is very small and
//! may even be independent of the size of stored data". Audit traffic vs
//! whole-file download across file sizes, with the paper's k = 1000.

use geoproof_bench::{banner, fmt_f64, Table};
use geoproof_core::cost::{audit_cost, naive_download_bytes};
use geoproof_por::params::PorParams;

fn human(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    format!("{} {}", fmt_f64(v, 1), UNITS[u])
}

fn main() {
    banner(
        "COST",
        "Audit traffic vs naive download (paper §IV's POS property)",
    );
    let p = PorParams::paper();
    let k = 1000u32;
    let audit = audit_cost(&p, 8, k);
    println!("audit with k = {k} challenges (any file size):");
    println!("  TPA→V trigger    : {}", human(audit.trigger_bytes));
    println!("  V→P challenges   : {}", human(audit.challenge_bytes));
    println!("  P→V segments     : {}", human(audit.response_bytes));
    println!("  V→TPA transcript : {}", human(audit.transcript_bytes));
    println!("  total            : {}\n", human(audit.total_bytes()));

    let mut table = Table::new(&[
        "file size",
        "stored (encoded)",
        "audit traffic",
        "download / audit ratio",
    ]);
    for (label, bytes) in [
        ("1 MiB", 1u64 << 20),
        ("100 MiB", 100u64 << 20),
        ("2 GiB (paper)", 2u64 << 30),
        ("100 GiB", 100u64 << 30),
        ("1 TiB", 1u64 << 40),
    ] {
        let download = naive_download_bytes(&p, bytes);
        table.row_owned(vec![
            label.to_string(),
            human(download),
            human(audit.total_bytes()),
            format!(
                "{}x",
                fmt_f64(download as f64 / audit.total_bytes() as f64, 0)
            ),
        ]);
    }
    table.print();
    println!("\naudit traffic is flat in the file size (the middle column grows; the audit");
    println!("column does not) — the property that makes repeated geographic audits viable.");
}
