//! Experiment E1 — the §V-A(a) worked example: storage overhead of the
//! setup phase. Computes block counts and expansions for the paper's 2 GB
//! file and a size sweep, from both the closed-form arithmetic and an
//! actual encoding of a smaller file to confirm they agree.

use geoproof_bench::{banner, fmt_f64, Table};
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_por::encode::PorEncoder;
use geoproof_por::keys::PorKeys;
use geoproof_por::params::{overhead_example, PorParams};

fn main() {
    banner(
        "E1",
        "Setup-phase storage overhead (paper §V-A worked example)",
    );
    let p = PorParams::paper();
    println!("parameters: ℓ_B = 128 bits, RS(255, 223, 32), v = 5, ℓ_τ = 20 bits");
    println!(
        "segment size ℓ_S = 128×5 + 20 = {} bits (paper: 660)\n",
        p.segment_bits_nominal()
    );

    let mut table = Table::new(&[
        "file size",
        "raw blocks b",
        "encoded blocks b'",
        "segments ñ",
        "stored bytes",
        "overhead",
    ]);
    for (label, bytes) in [
        ("1 MiB", 1u64 << 20),
        ("100 MiB", 100u64 << 20),
        ("1 GiB", 1u64 << 30),
        ("2 GiB (paper)", 2u64 << 30),
        ("10 GiB", 10u64 << 30),
    ] {
        let ex = overhead_example(&p, bytes);
        table.row_owned(vec![
            label.to_string(),
            ex.raw_blocks.to_string(),
            ex.encoded_blocks.to_string(),
            ex.segments.to_string(),
            ex.stored_bytes.to_string(),
            format!(
                "{}%",
                fmt_f64(
                    (ex.stored_bytes as f64 / ex.file_bytes as f64 - 1.0) * 100.0,
                    2
                )
            ),
        ]);
    }
    table.print();

    println!(
        "\npaper reference: b = 2^27 = {} for 2 GiB; RS +14%, MAC +2.5%, total ≈ 16.5%",
        1u64 << 27
    );
    println!(
        "nominal expansions: RS ×{} MAC ×{} total ×{}",
        fmt_f64(p.rs_expansion(), 4),
        fmt_f64(p.mac_expansion(), 4),
        fmt_f64(p.total_expansion(), 4)
    );

    // Cross-check with a real encoding.
    let encoder = PorEncoder::new(p);
    let keys = PorKeys::derive(b"bench-master", "overhead-check");
    let mut rng = ChaChaRng::from_u64_seed(42);
    let mut data = vec![0u8; 1 << 20];
    rng.fill_bytes(&mut data);
    let tagged = encoder.encode(&data, &keys, "overhead-check");
    let stored: usize = tagged.segments.iter().map(Vec::len).sum();
    let predicted = overhead_example(&p, data.len() as u64);
    println!(
        "\nreal 1 MiB encoding: {} segments, {} stored bytes (closed form predicts {} / {})",
        tagged.segments.len(),
        stored,
        predicted.segments,
        predicted.stored_bytes
    );
    assert_eq!(tagged.segments.len() as u64, predicted.segments);
    assert_eq!(stored as u64, predicted.stored_bytes);
    println!("closed-form arithmetic matches the implementation exactly.");
}
