//! Experiment T1 — reproduces **Table I**: RPM, seek, rotation and IDR for
//! the five disk models, extended with the derived look-up latency
//! `Δt_L = Δt_seek + Δt_rotate + Δt_transfer` for a 512-byte read and a
//! stochastic-sample mean to confirm the model's distribution matches its
//! analytic mean.

use geoproof_bench::{banner, fmt_f64, Table};
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_storage::hdd::{HddModel, TABLE_I};

fn main() {
    banner("T1", "Latency for different HDD (paper Table I)");
    let mut table = Table::new(&[
        "Type",
        "RPM",
        "avg seek (ms)",
        "avg rotate (ms)",
        "avg IDR (MB/s)",
        "lookup 512B (ms)",
        "sampled mean (ms)",
    ]);
    let mut rng = ChaChaRng::from_u64_seed(1);
    for spec in TABLE_I {
        let analytic = spec.avg_lookup(512).as_millis_f64();
        let model = HddModel::stochastic(spec.clone());
        let n = 20_000;
        let sampled: f64 = (0..n)
            .map(|_| model.sample_lookup(512, &mut rng).as_millis_f64())
            .sum::<f64>()
            / f64::from(n);
        table.row_owned(vec![
            spec.name.to_string(),
            spec.rpm.to_string(),
            fmt_f64(spec.avg_seek_ms, 1),
            fmt_f64(spec.avg_rotate_ms, 1),
            fmt_f64(spec.idr_mb_s, 1),
            fmt_f64(analytic, 3),
            fmt_f64(sampled, 3),
        ]);
    }
    table.print();
    println!(
        "\npaper reference points: WD 2500JD lookup = 13.1055 ms, IBM 36Z15 lookup = 5.406 ms"
    );
}
