//! Experiment F6 — reproduces **Fig. 6**: the relay attack and its
//! distance bound. Sweeps the relay distance with the best disk
//! (IBM 36Z15) at the remote site and reports the observed max Δt′ and
//! audit verdicts; the detection crossover should sit near the paper's
//! analytic bound
//! `4/9 × 300 km/ms × 5.406 ms / 2 ≈ 360 km`, and we print the analytic
//! bound for every Table I disk alongside.

use geoproof_bench::{banner, fmt_f64, Table};
use geoproof_core::deployment::{DeploymentBuilder, ProviderBehaviour};
use geoproof_core::policy::{paper_relay_bound, relay_distance_bound};
use geoproof_geo::coords::places::BRISBANE;
use geoproof_net::wan::AccessKind;
use geoproof_sim::time::{Km, SimDuration, INTERNET_SPEED};
use geoproof_storage::hdd::{IBM_36Z15, TABLE_I, WD_2500JD};

fn main() {
    banner(
        "F6",
        "Relay attack distance bound (paper Fig. 6 and §V-C(b))",
    );

    println!("analytic bound: relay distance ≤ internet_speed × lookup_differential / 2\n");
    let mut bounds = Table::new(&[
        "remote disk",
        "lookup 512B (ms)",
        "differential vs WD 2500JD (ms)",
        "max hidden relay distance (km)",
    ]);
    let honest = WD_2500JD.avg_lookup(512).as_millis_f64();
    for spec in TABLE_I {
        let lookup = spec.avg_lookup(512).as_millis_f64();
        let diff = (honest - lookup).max(0.0);
        let bound = relay_distance_bound(SimDuration::from_millis_f64(diff), INTERNET_SPEED);
        bounds.row_owned(vec![
            spec.name.to_string(),
            fmt_f64(lookup, 3),
            fmt_f64(diff, 3),
            fmt_f64(bound.0, 0),
        ]);
    }
    bounds.print();
    println!(
        "\npaper's headline (differential taken as the full 5.406 ms best-disk lookup): {} km\n",
        fmt_f64(paper_relay_bound().0, 0)
    );

    // Empirical sweep: relay with IBM 36Z15 at increasing distance.
    let mut sweep = Table::new(&[
        "relay distance (km)",
        "max Δt' (ms)",
        "budget (ms)",
        "audits rejected /5",
    ]);
    for km in [0.0, 60.0, 120.0, 240.0, 360.0, 480.0, 720.0, 1440.0] {
        let behaviour = if km == 0.0 {
            ProviderBehaviour::Honest { disk: WD_2500JD }
        } else {
            ProviderBehaviour::Relay {
                remote_disk: IBM_36Z15,
                distance: Km(km),
                access: AccessKind::DataCentre,
            }
        };
        let mut d = DeploymentBuilder::new(BRISBANE)
            .behaviour(behaviour)
            .seed(606)
            .build();
        let mut rejected = 0;
        let mut max_rtt = SimDuration::ZERO;
        for _ in 0..5 {
            let r = d.run_audit(15);
            if !r.accepted() {
                rejected += 1;
            }
            max_rtt = max_rtt.max(r.max_rtt);
        }
        sweep.row_owned(vec![
            fmt_f64(km, 0),
            fmt_f64(max_rtt.as_millis_f64(), 2),
            "16.00".to_string(),
            rejected.to_string(),
        ]);
    }
    sweep.print();
    println!("\nexpected shape: rejection flips from 0/5 to 5/5 as distance crosses the few-hundred-km bound;");
    println!("WAN hop overheads put the empirical crossover somewhat below the paper's frictionless 360 km.");
}
