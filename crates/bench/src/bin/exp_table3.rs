//! Experiment T3 — reproduces **Table III**: Internet latency within
//! Australia from a Brisbane ADSL vantage. Distances come from the
//! geographic coordinates (haversine); latencies from the calibrated WAN
//! model (4/9 c + access + hops). The reproduction target is the *shape*:
//! monotone growth of latency with distance, and absolute values within a
//! few ms of the paper's traceroute measurements.

use geoproof_bench::{banner, fmt_f64, Table};
use geoproof_geo::coords::places;
use geoproof_net::wan::{AccessKind, WanModel};

fn main() {
    banner("T3", "Internet latency within Australia (paper Table III)");
    let hosts = [
        ("uq.edu.au", "Brisbane (AU)", places::UQ_ST_LUCIA, 8.0, 18.0),
        (
            "qut.edu.au",
            "Brisbane (AU)",
            places::QUT_GARDENS_POINT,
            12.0,
            20.0,
        ),
        ("une.edu.au", "Armidale (AU)", places::ARMIDALE, 350.0, 26.0),
        ("sydney.edu.au", "Sydney (AU)", places::SYDNEY, 722.0, 34.0),
        (
            "jcu.edu.au",
            "Townsville (AU)",
            places::TOWNSVILLE,
            1120.0,
            39.0,
        ),
        (
            "mh.org.au",
            "Melbourne (AU)",
            places::MELBOURNE,
            1363.0,
            42.0,
        ),
        (
            "rah.sa.gov.au",
            "Adelaide (AU)",
            places::ADELAIDE,
            1592.0,
            54.0,
        ),
        ("utas.edu.au", "Hobart (AU)", places::HOBART, 1785.0, 64.0),
        ("uwa.edu.au", "Perth (AU)", places::PERTH, 3605.0, 82.0),
    ];
    let wan = WanModel::calibrated(AccessKind::Adsl2);
    let mut table = Table::new(&[
        "URL",
        "Location",
        "Dist paper (km)",
        "Dist model (km)",
        "Latency model (ms)",
        "Latency paper (ms)",
    ]);
    let mut prev = 0.0;
    let mut monotone = true;
    let mut worst_err: f64 = 0.0;
    for (url, loc, point, paper_km, paper_ms) in hosts {
        let dist = places::ADSL_VANTAGE.distance(&point);
        let rtt = wan.mean_rtt(dist).as_millis_f64();
        if rtt < prev {
            monotone = false;
        }
        prev = rtt;
        worst_err = worst_err.max((rtt - paper_ms).abs());
        table.row_owned(vec![
            url.to_string(),
            loc.to_string(),
            fmt_f64(paper_km, 0),
            fmt_f64(dist.0, 0),
            fmt_f64(rtt, 1),
            fmt_f64(paper_ms, 0),
        ]);
    }
    table.print();
    println!(
        "\nlatency monotone in distance: {}",
        if monotone { "yes" } else { "NO" }
    );
    println!(
        "worst absolute error vs paper: {} ms",
        fmt_f64(worst_err, 1)
    );
    println!("(the paper's finding: \"a positive relationship between the physical distance and the Internet latency\")");
}
