//! Experiment T2 — reproduces **Table II**: LAN latency within a campus
//! network. Ten machine placements at the paper's distances (same level →
//! other campus, 0–45 km) pinged through the fibre LAN model; every row
//! must come out below 1 ms, the paper's headline observation.

use geoproof_bench::{banner, fmt_f64, Table};
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_net::lan::LanPath;
use geoproof_sim::time::Km;

fn main() {
    banner("T2", "LAN latency within QUT (paper Table II)");
    // (machine, location label, distance km) as in the paper.
    let rows: [(u32, &str, f64); 10] = [
        (1, "Same level", 0.0),
        (2, "Same level", 0.01),
        (3, "Same level", 0.02),
        (4, "Same Campus", 0.5),
        (5, "Other Campus", 3.2),
        (6, "Same Campus", 0.5),
        (7, "Other Campus", 3.2),
        (8, "Other Campus", 45.0),
        (9, "Other Campus", 3.2),
        (10, "Other Campus", 3.2),
    ];
    let mut table = Table::new(&[
        "Machine#",
        "Location",
        "Distance (km)",
        "Latency (ms)",
        "Paper",
    ]);
    let mut rng = ChaChaRng::from_u64_seed(2);
    let mut all_sub_ms = true;
    for (machine, location, km) in rows {
        let path = LanPath::campus(Km(km));
        // Ping-sized probe, median of 9 samples like traceroute reports.
        let mut samples: Vec<f64> = (0..9)
            .map(|_| path.one_way(64, &mut rng).as_millis_f64())
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = samples[4];
        if median >= 1.0 {
            all_sub_ms = false;
        }
        table.row_owned(vec![
            machine.to_string(),
            location.to_string(),
            fmt_f64(km, 2),
            format!(
                "{} ({})",
                fmt_f64(median, 3),
                if median < 1.0 { "< 1" } else { ">= 1" }
            ),
            "< 1".to_string(),
        ]);
    }
    table.print();
    println!(
        "\nall rows below 1 ms: {} (paper: LAN latency \"less than 1ms in most cases\")",
        if all_sub_ms { "yes" } else { "NO" }
    );
}
