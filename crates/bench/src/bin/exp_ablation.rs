//! Ablation study over GeoProof's design parameters (DESIGN.md calls out
//! the choices; this bench quantifies them):
//!
//! 1. challenge count k — detection probability vs audit cost,
//! 2. tag width ℓ_τ — storage overhead vs per-tag forgery probability,
//! 3. segment size v — overhead vs per-challenge disk time,
//! 4. RS code rate — overhead vs correctable corruption.

use geoproof_bench::{banner, fmt_f64, Table};
use geoproof_core::deployment::{DeploymentBuilder, ProviderBehaviour};
use geoproof_geo::coords::places::BRISBANE;
use geoproof_por::analysis::detection_probability;
use geoproof_por::params::{overhead_example, PorParams};
use geoproof_storage::hdd::WD_2500JD;

fn main() {
    banner("ABL", "Ablations over the paper's design choices");

    // --- 1. Challenge count k -------------------------------------------
    println!("1. challenge count k (ε = 1% segment corruption):\n");
    let mut t1 = Table::new(&[
        "k",
        "analytic detection",
        "measured detection (20 audits)",
        "audit wall time (simulated, ms)",
    ]);
    for k in [5u32, 10, 20, 50, 100] {
        let mut d = DeploymentBuilder::new(BRISBANE)
            .behaviour(ProviderBehaviour::Corrupting {
                disk: WD_2500JD,
                fraction: 0.01,
            })
            .file_bytes(60_000)
            .seed(u64::from(k))
            .build();
        let rate = d.detection_rate(20, k);
        // Sequential audit duration ≈ k × (lookup + LAN) ≈ k × 13.2 ms.
        let audit_ms = f64::from(k) * 13.2;
        t1.row_owned(vec![
            k.to_string(),
            fmt_f64(detection_probability(0.01, u64::from(k)), 3),
            fmt_f64(rate, 3),
            fmt_f64(audit_ms, 0),
        ]);
    }
    t1.print();
    println!("\ntrade-off: detection saturates geometrically while audit time grows linearly.\n");

    // --- 2. Tag width ---------------------------------------------------
    println!("2. tag width ℓ_τ (paper: 20 bits):\n");
    let mut t2 = Table::new(&[
        "ℓ_τ (bits)",
        "per-tag forgery prob",
        "stored overhead (2 GiB file)",
    ]);
    for bits in [8u32, 16, 20, 32, 64, 128] {
        let params = PorParams {
            tag_bits: bits,
            ..PorParams::paper()
        };
        let ex = overhead_example(&params, 2 << 30);
        t2.row_owned(vec![
            bits.to_string(),
            format!("2^-{bits}"),
            format!(
                "{}%",
                fmt_f64(
                    (ex.stored_bytes as f64 / ex.file_bytes as f64 - 1.0) * 100.0,
                    2
                )
            ),
        ]);
    }
    t2.print();
    println!("\nthe paper's 20-bit choice: forgery must survive k tags, so 2^-20 per tag");
    println!("(2^-20k per audit) buys overhead barely above the RS floor.\n");

    // --- 3. Segment size v ------------------------------------------------
    println!("3. segment size v (paper: 5 blocks):\n");
    let mut t3 = Table::new(&[
        "v (blocks)",
        "segment bytes",
        "segments (2 GiB)",
        "overhead",
        "disk transfer per challenge (µs)",
    ]);
    for v in [1usize, 2, 5, 10, 20] {
        let params = PorParams {
            segment_blocks: v,
            ..PorParams::paper()
        };
        let ex = overhead_example(&params, 2 << 30);
        let transfer = WD_2500JD.transfer_time(params.segment_bytes());
        t3.row_owned(vec![
            v.to_string(),
            params.segment_bytes().to_string(),
            ex.segments.to_string(),
            format!(
                "{}%",
                fmt_f64(
                    (ex.stored_bytes as f64 / ex.file_bytes as f64 - 1.0) * 100.0,
                    2
                )
            ),
            fmt_f64(transfer.as_micros_f64(), 1),
        ]);
    }
    t3.print();
    println!("\nlarger v amortises the tag but each challenge moves more data; transfer");
    println!("stays µs-scale against a ~13 ms seek, so v mostly tunes overhead.\n");

    // --- 4. RS code rate -----------------------------------------------------
    println!("4. Reed–Solomon rate (paper: (255, 223), t = 16):\n");
    let mut t4 = Table::new(&[
        "(n, k)",
        "t (block errors/chunk)",
        "erasures/chunk",
        "overhead",
    ]);
    for (n, k) in [(255usize, 239usize), (255, 223), (255, 191), (255, 127)] {
        let params = PorParams {
            rs_n: n,
            rs_k: k,
            ..PorParams::paper()
        };
        let ex = overhead_example(&params, 2 << 30);
        t4.row_owned(vec![
            format!("({n}, {k})"),
            ((n - k) / 2).to_string(),
            (n - k).to_string(),
            format!(
                "{}%",
                fmt_f64(
                    (ex.stored_bytes as f64 / ex.file_bytes as f64 - 1.0) * 100.0,
                    1
                )
            ),
        ]);
    }
    t4.print();
    println!("\nthe (255, 223) point: enough correction that sub-detection-threshold");
    println!("corruption cannot destroy the file, at ~14% cost (paper §V-C(a)).");
}
