//! Extension experiment — time-to-detection. The paper argues detection is
//! cumulative (§V-C(a)); this experiment measures the operational metric:
//! how many audit periods pass between a provider going rogue and the
//! first failed audit, per misbehaviour type and challenge size.
//! (The heaviest experiment binary: ~1000 full deployments; allow a few
//! minutes in debug builds, or run with --release.)

use geoproof_bench::{banner, fmt_f64, Table};
use geoproof_core::campaign::{expected_detection_lag, run_campaign, MisbehaviourOnset};
use geoproof_core::deployment::ProviderBehaviour;
use geoproof_geo::coords::places::BRISBANE;
use geoproof_net::wan::AccessKind;
use geoproof_por::analysis::detection_probability;
use geoproof_por::params::PorParams;
use geoproof_sim::time::Km;
use geoproof_storage::hdd::{IBM_36Z15, WD_2500JD};

fn main() {
    banner(
        "TTD",
        "Time-to-detection across audit campaigns (extends §V-C(a))",
    );
    let honest = ProviderBehaviour::Honest { disk: WD_2500JD };
    let cases: Vec<(&str, ProviderBehaviour, f64)> = vec![
        (
            "relay 720 km",
            ProviderBehaviour::Relay {
                remote_disk: IBM_36Z15,
                distance: Km(720.0),
                access: AccessKind::DataCentre,
            },
            1.0, // timing violations: certain per audit
        ),
        (
            "corrupt 20% of segments",
            ProviderBehaviour::Corrupting {
                disk: WD_2500JD,
                fraction: 0.20,
            },
            detection_probability(0.20, 10),
        ),
        (
            "corrupt 5% of segments",
            ProviderBehaviour::Corrupting {
                disk: WD_2500JD,
                fraction: 0.05,
            },
            detection_probability(0.05, 10),
        ),
        (
            "corrupt 1% of segments",
            ProviderBehaviour::Corrupting {
                disk: WD_2500JD,
                fraction: 0.01,
            },
            detection_probability(0.01, 10),
        ),
    ];

    let mut table = Table::new(&[
        "misbehaviour (onset period 3)",
        "per-audit P[detect] (k=10)",
        "expected lag (periods)",
        "measured mean lag (10 campaigns)",
        "never detected /10",
    ]);
    for (label, behaviour, p_detect) in cases {
        let mut lags = Vec::new();
        let mut misses = 0u32;
        for rep in 0..10u64 {
            let result = run_campaign(
                BRISBANE,
                PorParams::test_small(),
                honest.clone(),
                behaviour.clone(),
                MisbehaviourOnset(3),
                25,
                10,
                rep * 101 + 5,
            );
            match result.detection_lag() {
                Some(lag) => lags.push(f64::from(lag)),
                None => misses += 1,
            }
            assert_eq!(result.false_alarms(), 0, "honest periods must pass");
        }
        let mean_lag = if lags.is_empty() {
            f64::NAN
        } else {
            lags.iter().sum::<f64>() / lags.len() as f64
        };
        table.row_owned(vec![
            label.to_string(),
            fmt_f64(p_detect, 3),
            fmt_f64(expected_detection_lag(p_detect), 2),
            fmt_f64(mean_lag, 2),
            misses.to_string(),
        ]);
    }
    table.print();
    println!("\nshape: location violations are deterministic (lag 0); corruption detection");
    println!("lag follows the geometric 1/p - 1, converging to certainty over the campaign —");
    println!("the paper's \"cumulative process\", now with an operational clock on it.");
}
