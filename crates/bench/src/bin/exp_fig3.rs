//! Experiment F3 — reproduces **Fig. 3** (Reid et al.): the terrorist-
//! resistant protocol. Side-by-side with Hancke–Kuhn across attacks,
//! showing the one cell that changes: terrorist success drops from 1.0 to
//! (3/4)^n because handing both registers to an accomplice would reveal
//! the long-term secret `s = D_k(e)`.

use geoproof_bench::{banner, fmt_f64, Table};
use geoproof_distbound::attacks::{acceptance_probability, empirical_acceptance, Attack, Protocol};

fn main() {
    banner(
        "F3",
        "Reid et al. distance bounding (paper Fig. 3): terrorist resistance",
    );
    let n = 16u32;
    let mut table = Table::new(&[
        "attack",
        "Hancke-Kuhn analytic",
        "Hancke-Kuhn empirical",
        "Reid analytic",
        "Reid empirical",
    ]);
    for (attack, label) in [
        (Attack::Mafia, "mafia fraud"),
        (Attack::Distance, "distance fraud"),
        (Attack::Terrorist, "terrorist"),
    ] {
        let hk_a = acceptance_probability(Protocol::HanckeKuhn, attack, n);
        let hk_e = empirical_acceptance(Protocol::HanckeKuhn, attack, n as usize, 2000, 31);
        let rd_a = acceptance_probability(Protocol::Reid, attack, n);
        let rd_e = empirical_acceptance(Protocol::Reid, attack, n as usize, 2000, 37);
        table.row_owned(vec![
            label.to_string(),
            fmt_f64(hk_a, 5),
            fmt_f64(hk_e, 5),
            fmt_f64(rd_a, 5),
            fmt_f64(rd_e, 5),
        ]);
    }
    table.print();
    println!("\n(n = {n} rounds; \"the first distance-bounding protocol that provides protection");
    println!(" against a terrorist attack\" — paper §III-A citing Reid et al.)");

    // Security sizing: rounds needed per protocol for 32-bit security.
    use geoproof_distbound::attacks::rounds_for_security;
    println!("\nrounds for 2^-32 mafia-fraud acceptance:");
    for (p, name) in [
        (Protocol::BrandsChaum, "Brands-Chaum"),
        (Protocol::HanckeKuhn, "Hancke-Kuhn"),
        (Protocol::Reid, "Reid et al."),
    ] {
        let r = rounds_for_security(p, Attack::Mafia, 32).expect("attack is not certain");
        println!("  {name:>13}: {r} rounds");
    }
}
