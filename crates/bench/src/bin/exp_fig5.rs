//! Experiment F5 — reproduces **Fig. 5**: one full GeoProof protocol run,
//! message by message. Prints the TPA's trigger (ñ, k, N), each timed
//! round (c_j, |S_cj|, Δt_j), the signed transcript summary
//! (Δt*, c, {S_cj}, N, Pos_v, Sign_SK) and the TPA's four verification
//! steps with their outcomes.

use geoproof_bench::{banner, fmt_f64, Table};
use geoproof_core::deployment::DeploymentBuilder;
use geoproof_geo::coords::places::BRISBANE;

fn main() {
    banner("F5", "GeoProof protocol transcript (paper Fig. 5)");
    let mut d = DeploymentBuilder::new(BRISBANE).seed(5).build();
    let k = 12;

    // TPA → V: (ñ, k, N)
    let req = d.auditor.issue_request(k);
    println!(
        "TPA → V : StartAudit {{ fid: {:?}, ñ: {}, k: {}, N: {:02x?}… }}\n",
        req.file_id,
        req.n_segments,
        req.k,
        &req.nonce[..4]
    );

    // V ↔ P: timed rounds.
    let transcript = d.verifier.run_audit(&req, d.provider.as_mut());
    let mut table = Table::new(&["j", "challenge c_j", "|S_cj ‖ τ_cj| (bytes)", "Δt_j (ms)"]);
    for (j, r) in transcript.rounds.iter().enumerate() {
        table.row_owned(vec![
            (j + 1).to_string(),
            r.index.to_string(),
            r.segment.len().to_string(),
            fmt_f64(r.rtt.as_millis_f64(), 3),
        ]);
    }
    table.print();

    println!("\nV → TPA : Sign_SK(Δt*, c, {{S_cj}}, N, Pos_v)");
    println!("  Pos_v     = {}", transcript.position);
    println!(
        "  Δt' (max) = {} ms",
        fmt_f64(transcript.max_rtt().as_millis_f64(), 3)
    );
    println!("  signature = {:?}\n", transcript.signature);

    // TPA verification steps (paper §V-B(b)).
    let report = d.auditor.verify(&req, &transcript);
    println!("TPA verification:");
    println!(
        "  1. verify Sign_SK(R)            : {}",
        step(
            !report
                .violations
                .iter()
                .any(|v| matches!(v, geoproof_core::auditor::Violation::BadSignature))
        )
    );
    println!(
        "  2. verify Pos_v vs SLA location : {}",
        step(
            !report
                .violations
                .iter()
                .any(|v| matches!(v, geoproof_core::auditor::Violation::WrongLocation { .. }))
        )
    );
    println!(
        "  3. τ_cj = MAC_K'(S_cj, c_j, fid): {} ({}/{} segments)",
        step(report.segments_ok == k as usize),
        report.segments_ok,
        k
    );
    println!(
        "  4. Δt' ≤ Δt_max (16 ms)         : {}",
        step(
            !report
                .violations
                .iter()
                .any(|v| matches!(v, geoproof_core::auditor::Violation::TooSlow { .. }))
        )
    );
    println!(
        "\naudit verdict: {}",
        if report.accepted() {
            "ACCEPT"
        } else {
            "REJECT"
        }
    );
}

fn step(ok: bool) -> &'static str {
    if ok {
        "pass"
    } else {
        "FAIL"
    }
}
