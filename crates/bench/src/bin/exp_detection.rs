//! Experiment E2 — reproduces §V-C(a): POR detection probabilities.
//!
//! Three parts: (1) the paper's 71.3 %-per-challenge figure (1 M segments,
//! 1 k challenged) across corruption fractions, analytic vs Monte-Carlo;
//! (2) the cumulative-detection curve across repeated audits; (3) the
//! irretrievability bound at 0.5 % block corruption ("less than 1 in
//! 200,000").

use geoproof_bench::{banner, fmt_f64, Table};
use geoproof_por::analysis::{
    cumulative_detection, detection_probability, empirical_detection, irretrievability_bound,
};

fn main() {
    banner("E2", "POR detection probability (paper §V-C(a))");

    // Part 1: detection per challenge vs corruption fraction.
    println!("per-challenge detection, k = 1000 of ñ = 1,000,000 segments:\n");
    let mut t1 = Table::new(&[
        "corrupt segments",
        "ε",
        "analytic 1-(1-ε)^k",
        "Monte-Carlo (ñ=100k scaled)",
    ]);
    for eps in [0.0005, 0.00125, 0.0025, 0.005, 0.01] {
        let analytic = detection_probability(eps, 1000);
        // Scale the simulation to 100k segments for runtime; ε preserved.
        let n_sim = 100_000u64;
        let corrupt = (eps * n_sim as f64).round() as u64;
        let empirical = empirical_detection(n_sim, corrupt, 1000, 400, 7);
        t1.row_owned(vec![
            format!("{:.0}", eps * 1_000_000.0),
            format!("{:.3}%", eps * 100.0),
            fmt_f64(analytic, 4),
            fmt_f64(empirical, 4),
        ]);
    }
    t1.print();
    println!("\npaper reference: ε = 0.125% at k = 1000 → ≈ 71.3% (row 2)");

    // Part 2: cumulative detection across audits.
    println!("\ncumulative detection across audits (ε = 0.125%, k = 1000):\n");
    let mut t2 = Table::new(&["audits", "P[detected by now]"]);
    for audits in [1u32, 2, 3, 5, 10] {
        t2.row_owned(vec![
            audits.to_string(),
            fmt_f64(cumulative_detection(0.00125, 1000, audits), 6),
        ]);
    }
    t2.print();
    println!("\n(\"the detection of file corruption is a cumulative process\" — paper §V-C(a))");

    // Part 3: irretrievability bound.
    println!("\nirretrievability under 0.5% block corruption, RS(255,223,32), 2 GiB file:\n");
    let chunks = (1u64 << 27).div_ceil(223);
    let p = irretrievability_bound(255, 16, chunks, 0.005);
    println!("  union bound over {chunks} chunks: P[irretrievable] ≤ {p:.3e}");
    println!(
        "  paper: \"less than 1 in 200,000\" = {:.1e} — bound holds: {}",
        1.0 / 200_000.0,
        p < 1.0 / 200_000.0
    );

    let mut t3 = Table::new(&["block corruption", "P[irretrievable] (≤)"]);
    for frac in [0.005, 0.01, 0.02, 0.03, 0.05] {
        t3.row_owned(vec![
            format!("{:.1}%", frac * 100.0),
            format!("{:.3e}", irretrievability_bound(255, 16, chunks, frac)),
        ]);
    }
    println!();
    t3.print();
    println!("\nshape: the code wall — negligible below ~2%, certain loss by ~5%.");
}
