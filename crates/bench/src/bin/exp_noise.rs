//! Extension experiment — distance bounding over noisy channels
//! (§III-A's cited noise analyses): the availability/security trade-off
//! of threshold verification. Sweeps bit-error rate × allowed errors and
//! reports honest false-reject vs mafia acceptance, analytic and
//! empirical.

use geoproof_bench::{banner, fmt_f64, Table};
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_distbound::hancke_kuhn::HkSession;
use geoproof_distbound::noise::{
    honest_false_reject, mafia_acceptance_with_threshold, verify_with_threshold, NoisyChannel,
};
use geoproof_distbound::rounds::{ChannelModel, Scenario};
use geoproof_sim::time::Km;

const N: usize = 64;

fn empirical_honest_reject(ber: f64, e: usize, trials: u32, seed: u64) -> f64 {
    let ch = NoisyChannel::new(ChannelModel::default(), ber);
    let mut rng = ChaChaRng::from_u64_seed(seed);
    let max_rtt = ch.timing.max_rtt_for(Km(0.1));
    let mut rejects = 0u32;
    for t in 0..trials {
        let s = HkSession::initialise(b"secret", &t.to_be_bytes(), b"np", N);
        let tr = ch.run_hk(&s, Scenario::Honest { distance: Km(0.05) }, &mut rng);
        if !verify_with_threshold(&s, &tr, max_rtt, e).is_accept() {
            rejects += 1;
        }
    }
    f64::from(rejects) / f64::from(trials)
}

fn main() {
    banner(
        "NOISE",
        "Threshold verification on noisy channels (extends §III-A)",
    );
    println!("Hancke-Kuhn, n = {N} rounds; accept with ≤ e wrong bits\n");
    let mut table = Table::new(&[
        "BER",
        "e",
        "honest reject (analytic)",
        "honest reject (empirical)",
        "mafia accept (analytic)",
    ]);
    for ber in [0.0f64, 0.01, 0.05] {
        for e in [0u64, 2, 4, 8, 16] {
            let analytic = honest_false_reject(N as u64, ber, e);
            let empirical = empirical_honest_reject(ber, e as usize, 300, 1000 + e);
            let mafia = mafia_acceptance_with_threshold(N as u64, e);
            table.row_owned(vec![
                format!("{:.0}%", ber * 100.0),
                e.to_string(),
                fmt_f64(analytic, 4),
                fmt_f64(empirical, 4),
                format!("{mafia:.2e}"),
            ]);
        }
    }
    table.print();
    println!("\ntrade-off: at 5% BER, strict verification (e = 0) rejects ~96% of honest");
    println!("runs. e = 4 brings that to ~22% at mafia acceptance 9.7e-5; e = 8 reaches");
    println!("<1% honest rejection but cedes ~1e-2 to the relay — the operator picks the");
    println!("point, and n can grow to recover margin (security is per-round, noise is too).");
}
