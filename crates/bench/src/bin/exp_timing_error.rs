//! Extension experiment — timing-measurement error budget. The paper's
//! §III-A observation ("a timing error of 1 ms corresponds to a distance
//! error of 150 km" at RF speed; 66.7 km at Internet speed) applied to
//! GeoProof: how much verifier clock error can the 16 ms policy absorb
//! before honest providers fail (false reject) or relays slip through
//! (false accept)?

use geoproof_bench::{banner, fmt_f64, Table};
use geoproof_core::deployment::{DeploymentBuilder, ProviderBehaviour};
use geoproof_core::policy::TimingPolicy;
use geoproof_geo::coords::places::BRISBANE;
use geoproof_net::wan::AccessKind;
use geoproof_sim::time::{Km, SimDuration, INTERNET_SPEED};
use geoproof_storage::hdd::{IBM_36Z15, WD_2500JD};

/// Runs 10 audits with the per-round measurement inflated by `error_ms`
/// (modelled as added service delay, indistinguishable from clock error).
fn rejection_rate(behaviour: ProviderBehaviour, error_ms: f64, seed: u64) -> f64 {
    let behaviour = match behaviour {
        // Fold the measurement error into extra observed latency.
        ProviderBehaviour::Honest { disk } => ProviderBehaviour::Slow {
            disk,
            extra: SimDuration::from_millis_f64(error_ms),
        },
        other => other,
    };
    let mut d = DeploymentBuilder::new(BRISBANE)
        .behaviour(behaviour)
        .seed(seed)
        .build();
    d.detection_rate(10, 10)
}

fn main() {
    banner(
        "TIMERR",
        "Verifier timing-error budget (extends paper §III-A)",
    );
    println!(
        "distance value of timing error at 4/9 c: 1 ms ↔ {} km one-way\n",
        fmt_f64(
            INTERNET_SPEED.distance_in(SimDuration::from_millis(1)).0 / 2.0,
            1
        )
    );

    // False rejects: honest WD provider whose *measured* times read high.
    let mut t1 = Table::new(&[
        "measurement error (+ms)",
        "honest false-reject rate",
        "headroom left (ms)",
    ]);
    let honest_max = 13.3; // WD lookup + adjacent LAN
    let budget = TimingPolicy::paper().max_rtt().as_millis_f64();
    for err in [0.0f64, 1.0, 2.0, 2.5, 3.0, 4.0] {
        let rate = rejection_rate(ProviderBehaviour::Honest { disk: WD_2500JD }, err, 50);
        t1.row_owned(vec![
            fmt_f64(err, 1),
            fmt_f64(rate, 2),
            fmt_f64(budget - honest_max - err, 2),
        ]);
    }
    t1.print();
    println!("\nthe 16 ms budget tolerates ≈ 2.7 ms of one-sided measurement error before");
    println!("honest WD-2500JD audits start failing — the paper's 3 ms LAN allowance is");
    println!("exactly this guard band.\n");

    // False accepts: if the verifier *under*-measures (policy effectively
    // loosens), how much closer can a relay hide? Sweep the policy.
    let mut t2 = Table::new(&[
        "effective Δt_max (ms)",
        "relay @480 km detected /10",
        "relay @720 km detected /10",
    ]);
    for slack in [0.0f64, 2.0, 4.0, 8.0] {
        let policy = TimingPolicy {
            max_network: SimDuration::from_millis_f64(3.0 + slack),
            max_lookup: SimDuration::from_millis(13),
        };
        let rate_for = |km: f64, seed: u64| {
            let mut d = DeploymentBuilder::new(BRISBANE)
                .behaviour(ProviderBehaviour::Relay {
                    remote_disk: IBM_36Z15,
                    distance: Km(km),
                    access: AccessKind::DataCentre,
                })
                .policy(policy)
                .seed(seed)
                .build();
            (d.detection_rate(10, 10) * 10.0).round() as u32
        };
        t2.row_owned(vec![
            fmt_f64(16.0 + slack, 1),
            rate_for(480.0, 60).to_string(),
            rate_for(720.0, 61).to_string(),
        ]);
    }
    t2.print();
    println!("\nevery 1 ms of verifier sloppiness gifts the relay ≈ 66.7 km of hiding");
    println!("distance (RTT at 4/9 c) — why the device must sit on the provider's LAN");
    println!("and timestamp in hardware.");
}
