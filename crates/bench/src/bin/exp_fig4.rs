//! Experiment F4 — reproduces **Fig. 4**: the GeoProof architecture end to
//! end. Stands up owner → cloud → verifier-device → TPA deployments with
//! every provider behaviour and reports each audit verdict, demonstrating
//! the complete data flow of the architecture diagram.

use geoproof_bench::{banner, fmt_f64, Table};
use geoproof_core::deployment::{DeploymentBuilder, ProviderBehaviour};
use geoproof_geo::coords::places::BRISBANE;
use geoproof_net::wan::AccessKind;
use geoproof_sim::time::{Km, SimDuration};
use geoproof_storage::hdd::{IBM_36Z15, WD_2500JD};

fn main() {
    banner("F4", "GeoProof architecture end-to-end (paper Fig. 4)");
    let k = 20;
    let audits = 10;
    let behaviours: Vec<(&str, ProviderBehaviour)> = vec![
        (
            "honest, average disk (WD 2500JD)",
            ProviderBehaviour::Honest { disk: WD_2500JD },
        ),
        (
            "honest, best disk (IBM 36Z15)",
            ProviderBehaviour::Honest { disk: IBM_36Z15 },
        ),
        (
            "relay 720 km, best disk",
            ProviderBehaviour::Relay {
                remote_disk: IBM_36Z15,
                distance: Km(720.0),
                access: AccessKind::DataCentre,
            },
        ),
        (
            "corrupting 10% of segments",
            ProviderBehaviour::Corrupting {
                disk: WD_2500JD,
                fraction: 0.10,
            },
        ),
        (
            "overloaded (+10 ms per request)",
            ProviderBehaviour::Slow {
                disk: WD_2500JD,
                extra: SimDuration::from_millis(10),
            },
        ),
    ];
    let mut table = Table::new(&[
        "provider behaviour",
        "audits",
        "k",
        "rejected",
        "detection rate",
        "max Δt' seen (ms)",
    ]);
    for (label, behaviour) in behaviours {
        let mut d = DeploymentBuilder::new(BRISBANE)
            .behaviour(behaviour)
            .seed(99)
            .build();
        let mut rejected = 0u32;
        let mut max_rtt = SimDuration::ZERO;
        for _ in 0..audits {
            let report = d.run_audit(k);
            if !report.accepted() {
                rejected += 1;
            }
            max_rtt = max_rtt.max(report.max_rtt);
        }
        table.row_owned(vec![
            label.to_string(),
            audits.to_string(),
            k.to_string(),
            rejected.to_string(),
            fmt_f64(f64::from(rejected) / f64::from(audits), 2),
            fmt_f64(max_rtt.as_millis_f64(), 2),
        ]);
    }
    table.print();
    println!("\nΔt_max policy: 16 ms (3 ms network + 13 ms look-up, paper §V-C(b))");
    println!("expected shape: honest rows detect 0.00; all adversarial rows detect 1.00");
    println!("(corruption detection per audit is probabilistic; 10% corruption at k=20 ⇒ 1-(0.9)^20 ≈ 0.88 per audit)");
}
