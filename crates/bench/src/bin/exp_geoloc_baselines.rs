//! Experiment E4 — the §III-B comparison: baseline Internet-geolocation
//! schemes versus GeoProof. Measures localisation error of GeoPing,
//! Octant-style and TBG-style schemes on the simulated Australian
//! topology, honest and adversarial (the target delays its replies), and
//! contrasts with GeoProof's behaviour, which *rejects* instead of being
//! displaced.

use geoproof_bench::{banner, fmt_f64, Table};
use geoproof_core::deployment::{DeploymentBuilder, ProviderBehaviour};
use geoproof_geo::coords::places::*;
use geoproof_geo::coords::GeoPoint;
use geoproof_geo::schemes::{
    octant_locate, tbg_locate, CalibrationEntry, DelayObservation, GeoPingDb,
};
use geoproof_net::wan::{AccessKind, WanModel};
use geoproof_sim::time::{SimDuration, FIBRE_SPEED, INTERNET_SPEED};
use geoproof_storage::hdd::WD_2500JD;

const LANDMARKS: [GeoPoint; 5] = [SYDNEY, MELBOURNE, PERTH, TOWNSVILLE, ADELAIDE];

fn observe(target: GeoPoint, extra: SimDuration) -> Vec<DelayObservation> {
    let wan = WanModel::calibrated(AccessKind::Fibre);
    LANDMARKS
        .iter()
        .map(|lm| DelayObservation {
            landmark: *lm,
            rtt: wan.mean_rtt(lm.distance(&target)) + extra,
        })
        .collect()
}

fn main() {
    banner("E4", "Geolocation baselines vs GeoProof (paper §III-B)");
    let overhead = AccessKind::Fibre.overhead();

    // GeoPing calibration database: coarse, city-level.
    let mut db = GeoPingDb::new();
    for cal in [BRISBANE, SYDNEY, MELBOURNE, PERTH, HOBART, ADELAIDE] {
        db.add(CalibrationEntry {
            position: cal,
            delays: observe(cal, SimDuration::ZERO)
                .iter()
                .map(|o| o.rtt)
                .collect(),
        });
    }

    let targets = [
        ("Brisbane", BRISBANE),
        ("Armidale", ARMIDALE),
        ("Townsville", TOWNSVILLE),
    ];
    let mut table = Table::new(&[
        "target",
        "adversarial delay",
        "GeoPing err (km)",
        "Octant err (km)",
        "Octant radius (km)",
        "TBG err (km)",
    ]);
    let mut worst_honest: f64 = 0.0;
    let mut worst_adv: f64 = 0.0;
    for (name, target) in targets {
        for (dlabel, extra) in [
            ("none", SimDuration::ZERO),
            ("+40 ms", SimDuration::from_millis(40)),
        ] {
            let obs = observe(target, extra);
            let gp = db
                .locate(&obs.iter().map(|o| o.rtt).collect::<Vec<_>>())
                .map_or(f64::NAN, |p| p.distance(&target).0);
            let oct = octant_locate(&obs, overhead, FIBRE_SPEED);
            let (oct_err, oct_rad) = oct
                .map(|r| (r.center.distance(&target).0, r.radius.0))
                .unwrap_or((f64::NAN, f64::NAN));
            let tbg = tbg_locate(&obs, overhead, INTERNET_SPEED)
                .map_or(f64::NAN, |p| p.distance(&target).0);
            let worst = gp.max(oct_err).max(tbg);
            if extra == SimDuration::ZERO {
                worst_honest = worst_honest.max(worst);
            } else {
                worst_adv = worst_adv.max(worst);
            }
            table.row_owned(vec![
                name.to_string(),
                dlabel.to_string(),
                fmt_f64(gp, 0),
                fmt_f64(oct_err, 0),
                fmt_f64(oct_rad, 0),
                fmt_f64(tbg, 0),
            ]);
        }
    }
    table.print();
    println!(
        "\nworst-case error, honest targets:      {} km",
        fmt_f64(worst_honest, 0)
    );
    println!(
        "worst-case error, adversarial targets: {} km",
        fmt_f64(worst_adv, 0)
    );
    println!("(paper: \"most provide location estimates with worst-case errors of over 1000 km\"");
    println!(" and \"do not assume that the prover … is malicious\")");

    // GeoProof under the same adversarial delay: rejection, not displacement.
    println!("\nGeoProof with the same +40 ms stalling provider:");
    let mut d = DeploymentBuilder::new(BRISBANE)
        .behaviour(ProviderBehaviour::Slow {
            disk: WD_2500JD,
            extra: SimDuration::from_millis(40),
        })
        .seed(404)
        .build();
    let report = d.run_audit(10);
    println!(
        "  audit verdict: {} (max Δt' = {} ms > 16 ms budget)",
        if report.accepted() {
            "ACCEPT"
        } else {
            "REJECT"
        },
        fmt_f64(report.max_rtt.as_millis_f64(), 1)
    );
    println!("  delay cannot *relocate* a GeoProof deployment — it can only fail the audit;");
    println!("  a relay below the ~360 km bound is GeoProof's residual exposure (see exp_fig6).");
}
