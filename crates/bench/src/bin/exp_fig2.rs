//! Experiment F2 — reproduces **Fig. 2** (Hancke–Kuhn): the protocol's
//! security level as a function of the round count. For each n we print
//! the analytic adversary acceptance probability and a Monte-Carlo
//! estimate from the real implementation, for the mafia-fraud and
//! terrorist attacks — showing (3/4)^n decay and the terrorist weakness
//! (always accepted) the paper uses to motivate Reid et al.

use geoproof_bench::{banner, fmt_f64, Table};
use geoproof_distbound::attacks::{acceptance_probability, empirical_acceptance, Attack, Protocol};

fn main() {
    banner(
        "F2",
        "Hancke-Kuhn distance bounding (paper Fig. 2): attack success vs rounds",
    );
    let mut table = Table::new(&[
        "rounds n",
        "mafia analytic (3/4)^n",
        "mafia empirical",
        "terrorist analytic",
        "terrorist empirical",
    ]);
    for n in [1u32, 2, 4, 8, 16, 32] {
        let mafia_a = acceptance_probability(Protocol::HanckeKuhn, Attack::Mafia, n);
        let trials = if n <= 8 { 4000 } else { 1000 };
        let mafia_e = empirical_acceptance(
            Protocol::HanckeKuhn,
            Attack::Mafia,
            n as usize,
            trials,
            100 + u64::from(n),
        );
        let terror_a = acceptance_probability(Protocol::HanckeKuhn, Attack::Terrorist, n);
        let terror_e = empirical_acceptance(
            Protocol::HanckeKuhn,
            Attack::Terrorist,
            n as usize,
            200,
            200 + u64::from(n),
        );
        table.row_owned(vec![
            n.to_string(),
            fmt_f64(mafia_a, 6),
            fmt_f64(mafia_e, 6),
            fmt_f64(terror_a, 2),
            fmt_f64(terror_e, 2),
        ]);
    }
    table.print();
    println!("\nshape check: mafia success halves roughly every 2.4 rounds; terrorist success stays at 1.0");
    println!("(HK \"does not consider the relay (terrorist) attack\" — paper §III-A)");
}
