//! Extension experiment — the cache-assisted relay: a cheating provider
//! pins a fraction of the segments at the front node and relays the rest.
//! Because the TPA enforces `max Δt_j ≤ Δt_max`, the audit passes only if
//! *every* challenge hits the cache (hypergeometric). Sweeps cache size ×
//! challenge count, empirical vs analytic.

use geoproof_bench::{banner, Table};
use geoproof_core::auditor::Auditor;
use geoproof_core::cache_attack::CachingRelayProvider;
use geoproof_core::policy::TimingPolicy;
use geoproof_core::verifier::VerifierDevice;
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_crypto::schnorr::SigningKey;
use geoproof_geo::coords::places::BRISBANE;
use geoproof_geo::gps::GpsReceiver;
use geoproof_net::lan::LanPath;
use geoproof_net::wan::{AccessKind, WanModel};
use geoproof_por::encode::PorEncoder;
use geoproof_por::keys::PorKeys;
use geoproof_por::params::PorParams;
use geoproof_sim::clock::SimClock;
use geoproof_sim::time::Km;
use geoproof_storage::cache::all_hits_probability;
use geoproof_storage::hdd::{HddModel, IBM_36Z15};
use geoproof_storage::server::{FileId, StorageServer};

fn main() {
    banner(
        "CACHE",
        "Cache-assisted relay attack: partial front-node cache vs max-RTT check",
    );

    let params = PorParams::test_small();
    let encoder = PorEncoder::new(params);
    let keys = PorKeys::derive(b"cache-exp-master", "sla-file");
    let mut rng = ChaChaRng::from_u64_seed(1);
    let mut data = vec![0u8; 40_000];
    rng.fill_bytes(&mut data);
    let tagged = encoder.encode(&data, &keys, "sla-file");
    let n = tagged.metadata.segments;
    println!("file: {n} segments; relay store 1000 km away (IBM 36Z15); 10 audits per cell\n");

    let mut table = Table::new(&[
        "cache fraction",
        "k",
        "analytic P[all hits]",
        "audits passed /10",
    ]);
    for frac in [0.25f64, 0.5, 0.9, 0.99] {
        for k in [5u32, 10, 20] {
            let mut passed = 0;
            for trial in 0..10u64 {
                let mut remote = StorageServer::new(HddModel::deterministic(IBM_36Z15), trial);
                remote.put_file(FileId::from("sla-file"), tagged.segments.clone());
                let mut provider = CachingRelayProvider::new(
                    remote,
                    &FileId::from("sla-file"),
                    frac,
                    LanPath::adjacent(),
                    WanModel::calibrated(AccessKind::DataCentre),
                    Km(1000.0),
                    trial * 31 + 7,
                );
                let mut vrng = ChaChaRng::from_u64_seed(trial + 99);
                let sk = SigningKey::generate(&mut vrng);
                let mut verifier = VerifierDevice::new(
                    sk.clone(),
                    GpsReceiver::new(BRISBANE),
                    SimClock::new(),
                    trial + 500,
                );
                let mut auditor = Auditor::new(
                    "sla-file".into(),
                    n,
                    PorEncoder::new(params),
                    keys.auditor_view(),
                    sk.verifying_key(),
                    BRISBANE,
                    Km(25.0),
                    TimingPolicy::paper(),
                    trial + 900,
                );
                let req = auditor.issue_request(k);
                let t = verifier.run_audit(&req, &mut provider);
                if auditor.verify(&req, &t).accepted() {
                    passed += 1;
                }
            }
            let cached = ((n as f64) * frac).round() as u64;
            table.row_owned(vec![
                format!("{:.0}%", frac * 100.0),
                k.to_string(),
                format!("{:.2e}", all_hits_probability(n, cached, k)),
                passed.to_string(),
            ]);
        }
    }
    table.print();
    println!("\nshape: acceptance requires ALL k challenges to hit the cache — even a 90%");
    println!("cache fails virtually every k ≥ 10 audit. Only a ~100% cache passes, at which");
    println!("point the data genuinely is at the SLA site and there is nothing to detect.");
}
