//! Experiment F1 — reproduces **Fig. 1**: the general structure of a
//! distance-bounding protocol. Prints one annotated run: initialisation
//! (nonce exchange, register derivation) and the timed bit-exchange phase
//! with per-round RTTs, for an honest prover at two distances plus the
//! verification outcome.

use geoproof_bench::{banner, fmt_f64, Table};
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_distbound::hancke_kuhn::HkSession;
use geoproof_distbound::rounds::{ChannelModel, Scenario};
use geoproof_sim::time::Km;

fn run_at(distance_km: f64, max_km: f64) {
    let channel = ChannelModel::default();
    let mut rng = ChaChaRng::from_u64_seed(11);
    let session = HkSession::initialise(b"shared-secret-s", b"nonce-rA", b"nonce-rB", 8);
    let transcript = session.run(
        Scenario::Honest {
            distance: Km(distance_km),
        },
        &channel,
        &mut rng,
    );
    let max_rtt = channel.max_rtt_for(Km(max_km));
    println!(
        "prover at {} km, accepting RTTs up to {} µs (distance bound {} km):",
        fmt_f64(distance_km, 1),
        fmt_f64(max_rtt.as_micros_f64(), 3),
        fmt_f64(max_km, 1),
    );
    let mut table = Table::new(&[
        "round j",
        "challenge α_j",
        "response β_j",
        "Δt_j (µs)",
        "within Δt_max",
    ]);
    for (j, r) in transcript.rounds.iter().enumerate() {
        table.row_owned(vec![
            (j + 1).to_string(),
            r.challenge.to_string(),
            r.response.to_string(),
            fmt_f64(r.rtt.as_micros_f64(), 3),
            (r.rtt <= max_rtt).to_string(),
        ]);
    }
    table.print();
    let verdict = session.verify(&transcript, max_rtt);
    println!("verdict: {verdict:?}\n");
}

fn main() {
    banner(
        "F1",
        "General view of distance-bounding protocols (paper Fig. 1)",
    );
    println!(
        "initialisation phase: exchange nonces, derive per-session registers (not time-critical)\n"
    );
    // In range: 5 km prover against a 10 km bound.
    run_at(5.0, 10.0);
    // Out of range: 150 km prover against the same bound -> TooSlow.
    run_at(150.0, 10.0);
    println!(
        "paper reference: a 1 ms timing error corresponds to 150 km of distance error (RTT at c/2)"
    );
}
