//! Extension experiment — the §III-A protocol family side by side: all
//! five implemented distance-bounding protocols under all three attacks,
//! empirical acceptance at n = 16 rounds, plus per-round analytic rates.
//! Reproduces the survey narrative: each successor protocol closes the
//! previous one's gap.

use geoproof_bench::{banner, fmt_f64, Table};
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_distbound::attacks::{empirical_acceptance, Attack, Protocol};
use geoproof_distbound::rounds::{ChannelModel, Scenario};
use geoproof_distbound::swiss_knife::SwissKnifeSession;
use geoproof_distbound::void_challenge::{VoidChallengeSession, BALANCED_FULL_PROB};
use geoproof_sim::time::Km;

const N: usize = 16;
const TRIALS: u32 = 800;

fn scenario(attack: Attack) -> Scenario {
    match attack {
        Attack::Mafia => Scenario::MafiaFraud {
            attacker_distance: Km(0.05),
        },
        Attack::Distance => Scenario::DistanceFraud {
            claimed_distance: Km(0.05),
        },
        Attack::Terrorist => Scenario::Terrorist {
            accomplice_distance: Km(0.05),
        },
    }
}

fn void_challenge_rate(attack: Attack) -> f64 {
    let ch = ChannelModel::default();
    let mut rng = ChaChaRng::from_u64_seed(77);
    let max_rtt = ch.max_rtt_for(Km(0.1));
    let mut accepted = 0u32;
    for t in 0..TRIALS {
        let s = VoidChallengeSession::initialise(
            b"secret",
            &t.to_be_bytes(),
            b"np",
            N,
            BALANCED_FULL_PROB,
        );
        let out = s.run(scenario(attack), &ch, &mut rng);
        if s.verify(&out, max_rtt).is_accept() {
            accepted += 1;
        }
    }
    f64::from(accepted) / f64::from(TRIALS)
}

fn swiss_knife_rate(attack: Attack) -> f64 {
    let ch = ChannelModel::default();
    let mut rng = ChaChaRng::from_u64_seed(78);
    let max_rtt = ch.max_rtt_for(Km(0.1));
    let mut accepted = 0u32;
    for t in 0..TRIALS {
        let s = SwissKnifeSession::initialise(&[9u8; 32], b"idp", &t.to_be_bytes(), b"np", N);
        let out = s.run(scenario(attack), &ch, &mut rng);
        if s.verify(&out, max_rtt).is_accept() {
            accepted += 1;
        }
    }
    f64::from(accepted) / f64::from(TRIALS)
}

fn main() {
    banner(
        "DBCMP",
        "Distance-bounding family comparison (paper §III-A survey), n = 16",
    );
    let mut table = Table::new(&[
        "protocol",
        "mafia",
        "distance",
        "terrorist",
        "per-round mafia (analytic)",
    ]);
    // Library protocols via the shared estimator.
    for (p, name, per_round) in [
        (Protocol::BrandsChaum, "Brands-Chaum (1993)", "1/2"),
        (Protocol::HanckeKuhn, "Hancke-Kuhn (2005)", "3/4"),
        (Protocol::Reid, "Reid et al. (2007)", "3/4"),
    ] {
        let rates: Vec<f64> = [Attack::Mafia, Attack::Distance, Attack::Terrorist]
            .iter()
            .map(|&a| empirical_acceptance(p, a, N, TRIALS, 1234))
            .collect();
        table.row_owned(vec![
            name.to_string(),
            fmt_f64(rates[0], 4),
            fmt_f64(rates[1], 4),
            fmt_f64(rates[2], 4),
            per_round.to_string(),
        ]);
    }
    // Extension protocols with bespoke harnesses.
    let vc: Vec<f64> = [Attack::Mafia, Attack::Distance, Attack::Terrorist]
        .iter()
        .map(|&a| void_challenge_rate(a))
        .collect();
    table.row_owned(vec![
        "Munilla-Peinado voids (2008)".to_string(),
        fmt_f64(vc[0], 4),
        fmt_f64(vc[1], 4),
        fmt_f64(vc[2], 4),
        "3/5".to_string(),
    ]);
    let sk: Vec<f64> = [Attack::Mafia, Attack::Distance, Attack::Terrorist]
        .iter()
        .map(|&a| swiss_knife_rate(a))
        .collect();
    table.row_owned(vec![
        "Swiss-Knife style (2009)".to_string(),
        fmt_f64(sk[0], 4),
        fmt_f64(sk[1], 4),
        fmt_f64(sk[2], 4),
        "1/2".to_string(),
    ]);
    table.print();
    println!("\nnarrative reproduced: HK closes BC's noise problem but opens the terrorist");
    println!("hole (1.0 column); Reid closes it; voids sharpen the mafia bound; Swiss-Knife");
    println!("style gets (1/2)^n *and* terrorist resistance via the confirmation MAC.");
    println!("\nGeoProof needs none of the bit-level machinery: its 'response' is the stored");
    println!("segment itself, authenticated by MAC — but the timing skeleton is this family's.");
}
