//! Observability overhead guard: audits/s through the concurrent audit
//! engine with the metrics registry enabled vs disabled, committed to
//! `BENCH_obs_overhead.json`. The snapshot records whether the obs hot
//! path was compiled out (`--features obs-noop`) so CI can compare the
//! two builds, and the guard fails the bench outright if enabling
//! metrics costs more than 5% of engine throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use geoproof_bench::{BenchSnapshot, Json};
use geoproof_core::engine::{AuditEngine, EngineConfig, ProverId, ProverSpec};
use geoproof_core::provider::{LocalProvider, SegmentProvider};
use geoproof_core::verifier::VerifierDevice;
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_crypto::schnorr::SigningKey;
use geoproof_geo::coords::places::BRISBANE;
use geoproof_geo::gps::GpsReceiver;
use geoproof_net::lan::LanPath;
use geoproof_por::encode::{PorEncoder, TaggedFile};
use geoproof_por::keys::PorKeys;
use geoproof_por::params::PorParams;
use geoproof_sim::clock::SimClock;
use geoproof_storage::hdd::{HddModel, WD_2500JD};
use geoproof_storage::server::{FileId, StorageServer};
use std::hint::black_box;

const K: u32 = 8;
const SESSIONS: usize = 64;
const WORKERS: usize = 4;

struct Rig {
    tagged: TaggedFile,
    keys: PorKeys,
    device_keys: Vec<SigningKey>,
}

impl Rig {
    fn new(max_provers: usize) -> Self {
        let encoder = PorEncoder::new(PorParams::test_small());
        let keys = PorKeys::derive(b"bench-master", "obs");
        let data: Vec<u8> = (0..6000u32).map(|i| (i % 251) as u8).collect();
        let tagged = encoder.encode(&data, &keys, "obs");
        let mut rng = ChaChaRng::from_u64_seed(7);
        let device_keys = (0..max_provers)
            .map(|_| SigningKey::generate(&mut rng))
            .collect();
        Rig {
            tagged,
            keys,
            device_keys,
        }
    }

    #[allow(clippy::type_complexity)]
    fn fleet(
        &self,
        n: usize,
    ) -> (
        AuditEngine,
        Vec<(ProverId, VerifierDevice, Box<dyn SegmentProvider + Send>)>,
    ) {
        let engine = AuditEngine::new(
            "obs",
            self.tagged.metadata.segments,
            PorEncoder::new(PorParams::test_small()),
            self.keys.auditor_view(),
            EngineConfig {
                k: K,
                workers: WORKERS,
                ..EngineConfig::default()
            },
        );
        let fleet = (0..n)
            .map(|i| {
                let id = ProverId(format!("prover-{i:04}"));
                let sk = self.device_keys[i].clone();
                engine.register_prover(
                    id.clone(),
                    ProverSpec {
                        device_key: sk.verifying_key(),
                        sla_location: BRISBANE,
                    },
                );
                let device =
                    VerifierDevice::new(sk, GpsReceiver::new(BRISBANE), SimClock::new(), i as u64);
                let mut storage = StorageServer::new(HddModel::deterministic(WD_2500JD), i as u64);
                storage.put_file(FileId::from("obs"), self.tagged.segments.clone());
                let provider: Box<dyn SegmentProvider + Send> = Box::new(LocalProvider::new(
                    storage,
                    LanPath::adjacent(),
                    i as u64 + 9,
                ));
                (id, device, provider)
            })
            .collect();
        (engine, fleet)
    }
}

/// Best-of-`passes` engine throughput (sessions/s); fleet construction
/// happens outside the timed window, `run_sessions` is what's metered.
fn sessions_per_s(rig: &Rig, passes: usize) -> f64 {
    let mut best = 0f64;
    // One untimed warm-up pass (thread pool spin-up, page faults).
    let (engine, fleet) = rig.fleet(SESSIONS);
    black_box(engine.run_sessions(fleet));
    for _ in 0..passes {
        let (engine, fleet) = rig.fleet(SESSIONS);
        let start = std::time::Instant::now();
        let (reports, _) = engine.run_sessions(fleet);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(reports.len(), SESSIONS);
        best = best.max(SESSIONS as f64 / secs);
    }
    best
}

fn obs_overhead_snapshot(_c: &mut Criterion) {
    let rig = Rig::new(SESSIONS);
    let compiled_out = cfg!(feature = "obs-noop");

    geoproof_obs::set_enabled(false);
    let disabled = sessions_per_s(&rig, 3);
    geoproof_obs::set_enabled(true);
    let enabled = sessions_per_s(&rig, 3);
    let registry = geoproof_obs::global().snapshot();
    geoproof_obs::set_enabled(false);

    let ratio = enabled / disabled;
    let path = BenchSnapshot::new(
        "obs_overhead",
        "obs_overhead",
        &format!("audit engine, {SESSIONS} sessions x k={K}, {WORKERS} workers"),
    )
    .context("sessions", Json::U64(SESSIONS as u64))
    .context("workers", Json::U64(WORKERS as u64))
    .baseline(
        "min_allowed_enabled_over_disabled",
        Json::F64(0.95, 2),
        "metrics-enabled engine throughput must stay within 5% of disabled",
    )
    .run(vec![
        ("mode".to_owned(), Json::Str("metrics_disabled".to_owned())),
        ("sessions_per_s".to_owned(), Json::F64(disabled, 1)),
    ])
    .run(vec![
        ("mode".to_owned(), Json::Str("metrics_enabled".to_owned())),
        ("sessions_per_s".to_owned(), Json::F64(enabled, 1)),
    ])
    .result("enabled_over_disabled", Json::F64(ratio, 3))
    .result("compiled_out", Json::Bool(compiled_out))
    .metrics(&registry)
    .write();
    println!(
        "obs overhead snapshot: disabled {disabled:.1}/s, enabled {enabled:.1}/s \
         (ratio {ratio:.3}, compiled_out {compiled_out}) → {}",
        path.display()
    );
    assert!(
        ratio >= 0.95,
        "metrics-enabled engine ran at {ratio:.3}x the disabled throughput \
         ({enabled:.1} vs {disabled:.1} sessions/s) — the observability hot path regressed"
    );
}

criterion_group!(benches, obs_overhead_snapshot);
criterion_main!(benches);
