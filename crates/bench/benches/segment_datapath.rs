//! Segment data-path benchmarks: encode throughput (streaming vs the
//! legacy-shaped wrapper), segment serving rate (arena → wire), and an
//! allocation audit proving the serve path copies zero payload bytes.
//!
//! Run with `cargo bench --bench segment_datapath`. The allocation audit
//! prints bytes allocated per served-and-framed segment; with the arena
//! and `Bytes` framing this is a few dozen bytes of frame header,
//! independent of segment size — the payload itself is never copied
//! between the storage arena and the socket write.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geoproof_bench::{BenchSnapshot, Json};
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_por::encode::PorEncoder;
use geoproof_por::keys::PorKeys;
use geoproof_por::params::PorParams;
use geoproof_por::stream::ArenaSink;
use geoproof_storage::hdd::{HddModel, WD_2500JD};
use geoproof_storage::server::{FileId, StorageServer};
use geoproof_wire::codec::WireMessage;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};

// --- allocation counter ------------------------------------------------------

static ALLOCATED: AtomicUsize = AtomicUsize::new(0);
static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

/// Counts every byte handed out by the allocator (frees are ignored —
/// this measures traffic, not residency).
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size(), Ordering::Relaxed);
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size > layout.size() {
            ALLOCATED.fetch_add(new_size - layout.size(), Ordering::Relaxed);
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn data(len: usize) -> Vec<u8> {
    let mut rng = ChaChaRng::from_u64_seed(11);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

// --- encode throughput -------------------------------------------------------

fn bench_encode_streaming(c: &mut Criterion) {
    let encoder = PorEncoder::new(PorParams::paper());
    let keys = PorKeys::derive(b"bench-master", "dp");
    let mut g = c.benchmark_group("datapath_encode");
    g.sample_size(10);
    for size in [256 * 1024usize, 1024 * 1024] {
        let d = data(size);
        g.throughput(Throughput::Bytes(size as u64));
        // The streaming arena path (the hot path callers should use).
        g.bench_with_input(BenchmarkId::new("arena_streaming", size), &d, |b, d| {
            b.iter(|| {
                let mut s = encoder.begin_encode(&keys, "dp", d.len() as u64, ArenaSink::default());
                // 64 KiB pushes, as a file reader would feed it.
                for piece in d.chunks(64 * 1024) {
                    s.push(piece);
                }
                let (md, sink) = s.finish();
                black_box(sink.into_arena(md))
            });
        });
        // The legacy-shaped wrapper (same bytes, per-segment Vec output).
        g.bench_with_input(BenchmarkId::new("vec_wrapper", size), &d, |b, d| {
            b.iter(|| black_box(encoder.encode(black_box(d), &keys, "dp")));
        });
    }
    g.finish();
}

// --- parallel encode: thread scaling + committed snapshot --------------------

/// The thread counts worth measuring on this host: 1, 2, 4 and the
/// encoder's default, deduplicated and capped at the core count — a
/// 1-core host gets exactly one row, not four oversubscribed retellings
/// of the same measurement.
fn encode_thread_counts() -> Vec<usize> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1usize, 2, 4, geoproof_por::stream::default_encode_threads()];
    counts.retain(|&t| t <= cores);
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn bench_encode_parallel(c: &mut Criterion) {
    let encoder = PorEncoder::new(PorParams::paper());
    let keys = PorKeys::derive(b"bench-master", "dp");
    let size = 1024 * 1024usize;
    let d = data(size);
    let mut g = c.benchmark_group("parallel_encode");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(size as u64));
    for threads in encode_thread_counts() {
        g.bench_with_input(BenchmarkId::new("threads", threads), &d, |b, d| {
            b.iter(|| black_box(encoder.encode_arena_threads(black_box(d), &keys, "dp", threads)));
        });
    }
    g.finish();
}

/// Times the paper-parameter encode at several worker counts and commits
/// the numbers to `BENCH_encode.json` at the repo root, next to the
/// PR-3 baseline of 0.37 MiB/s (the HMAC-Feistel-bound sequential path
/// this PR's precompute + fan-out replaces). CI uploads the file as an
/// artifact so throughput regressions are visible per-commit.
fn encode_snapshot_json(_c: &mut Criterion) {
    let encoder = PorEncoder::new(PorParams::paper());
    let keys = PorKeys::derive(b"bench-master", "dp");
    let size = 8 * 1024 * 1024usize;
    let d = data(size);
    let mib = size as f64 / (1024.0 * 1024.0);
    const BASELINE_MIB_S: f64 = 0.37; // PR-3 `datapath_encode` pin, same host class

    let time_threads = |threads: usize| {
        // Warm once (PRP table build, page faults), then keep the best of
        // three — we are snapshotting capability, not scheduler noise.
        let _ = encoder.encode_arena_threads(&d, &keys, "dp", threads);
        (0..3)
            .map(|_| {
                let start = std::time::Instant::now();
                black_box(encoder.encode_arena_threads(&d, &keys, "dp", threads));
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };

    let mut snapshot = BenchSnapshot::new(
        "encode",
        "parallel_encode",
        "paper RS(255,223), v=5, 20-bit tags",
    )
    .context("input_mib", Json::F64(mib, 0))
    .baseline(
        "baseline_mib_per_s",
        Json::F64(BASELINE_MIB_S, 2),
        "PR-3 datapath_encode pin: per-block HMAC-Feistel PRP, no precompute",
    );
    let mut best = 0f64;
    for threads in encode_thread_counts() {
        let secs = time_threads(threads);
        let rate = mib / secs;
        best = best.max(rate);
        snapshot = snapshot.run(vec![
            ("threads".to_owned(), Json::U64(threads as u64)),
            ("mib_per_s".to_owned(), Json::F64(rate, 2)),
            (
                "speedup_vs_baseline".to_owned(),
                Json::F64(rate / BASELINE_MIB_S, 1),
            ),
        ]);
    }
    let path = snapshot
        .result("best_mib_per_s", Json::F64(best, 2))
        .result(
            "best_speedup_vs_baseline",
            Json::F64(best / BASELINE_MIB_S, 1),
        )
        .write();
    println!(
        "encode snapshot ({size} B input): best {best:.2} MiB/s → {}",
        path.display()
    );
    assert!(
        best / BASELINE_MIB_S >= 50.0,
        "encode throughput {best:.2} MiB/s is below 50× the {BASELINE_MIB_S} MiB/s baseline"
    );
}

// --- serving rate: storage arena → wire frame --------------------------------

fn bench_serve_segments(c: &mut Criterion) {
    let encoder = PorEncoder::new(PorParams::paper());
    let keys = PorKeys::derive(b"bench-master", "dp");
    let arena = encoder.encode_arena(&data(1024 * 1024), &keys, "dp");
    let n = arena.segment_count();
    let mut server = StorageServer::new(HddModel::deterministic(WD_2500JD), 5);
    server.put_arena(
        FileId::from("dp"),
        geoproof_storage::arena::SegmentArena::from_contiguous(
            arena.bytes().clone(),
            arena.stride(),
            n as usize,
        ),
    );
    let fid = FileId::from("dp");
    let mut sink = std::io::sink();

    let mut g = c.benchmark_group("datapath_serve");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("read_frame_write_1000", |b| {
        let mut next = 0u64;
        b.iter(|| {
            for _ in 0..1000 {
                next = (next + 7919) % n; // pseudo-random audit pattern
                let read = server.read_segment(&fid, next as usize);
                let msg = WireMessage::Response { segment: read.data };
                geoproof_wire::codec::write_frame(&mut sink, &msg).expect("sink write");
            }
        });
    });
    g.finish();
}

// --- allocation audit: zero payload copies server → wire ---------------------

fn alloc_audit_serve_path(_c: &mut Criterion) {
    let encoder = PorEncoder::new(PorParams::paper());
    let keys = PorKeys::derive(b"bench-master", "dp");
    let arena = encoder.encode_arena(&data(512 * 1024), &keys, "dp");
    let n = arena.segment_count();
    let stride = arena.stride();
    let mut server = StorageServer::new(HddModel::deterministic(WD_2500JD), 6);
    server.put_arena(
        FileId::from("dp"),
        geoproof_storage::arena::SegmentArena::from_contiguous(
            arena.bytes().clone(),
            stride,
            n as usize,
        ),
    );
    let fid = FileId::from("dp");
    let mut sink = std::io::sink();

    // Warm up whatever lazily allocates (hash maps, access counters).
    for i in 0..n {
        let read = server.read_segment(&fid, i as usize);
        let msg = WireMessage::Response { segment: read.data };
        geoproof_wire::codec::write_frame(&mut sink, &msg).expect("sink write");
    }

    const OPS: usize = 10_000;
    let bytes_before = ALLOCATED.load(Ordering::Relaxed);
    let count_before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut next = 0u64;
    for _ in 0..OPS {
        next = (next + 7919) % n;
        let read = server.read_segment(&fid, next as usize);
        let msg = WireMessage::Response { segment: read.data };
        geoproof_wire::codec::write_frame(&mut sink, &msg).expect("sink write");
    }
    let bytes_per_op = (ALLOCATED.load(Ordering::Relaxed) - bytes_before) / OPS;
    let allocs_per_op = (ALLOCATIONS.load(Ordering::Relaxed) - count_before) as f64 / OPS as f64;
    println!(
        "alloc audit: serve+frame allocates {bytes_per_op} B/op over {allocs_per_op:.2} \
         allocations (segment payload {stride} B) — payload bytes are never copied"
    );
    assert!(
        bytes_per_op < stride,
        "serve path allocated {bytes_per_op} B/op, at least one payload copy crept back in"
    );
}

criterion_group!(
    benches,
    bench_encode_streaming,
    bench_encode_parallel,
    encode_snapshot_json,
    bench_serve_segments,
    alloc_audit_serve_path
);
criterion_main!(benches);
