//! Evidence-ledger throughput baselines: append (records/s and
//! payload MB/s at several transcript sizes), sealed re-verification
//! (chain + checkpoint + verdict replay), and inclusion-proof
//! build/verify — so future PRs measure regressions against these
//! numbers.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geoproof_core::auditor::AuditReport;
use geoproof_core::evidence::encode_report;
use geoproof_core::messages::AuditRequest;
use geoproof_core::policy::TimingPolicy;
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_crypto::schnorr::SigningKey;
use geoproof_geo::coords::GeoPoint;
use geoproof_ledger::{replay, EvidenceRecord, Ledger, LedgerWriter};
use geoproof_sim::time::{Km, SimDuration};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gp-ledger-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tempdir");
    dir.join(format!(
        "{tag}-{}.log",
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ))
}

fn tpa() -> SigningKey {
    SigningKey::generate(&mut ChaChaRng::from_u64_seed(0xbe7c))
}

/// A record with a ~`payload`-byte canonical transcript: 20 rounds of
/// equal segments (the writer insists transcript bytes parse, so the
/// bench pays the same validation cost as production appends).
fn record(payload: usize) -> EvidenceRecord {
    use geoproof_core::messages::{SignedTranscript, TimedRound};
    use geoproof_crypto::schnorr::Signature;
    const K: usize = 20;
    let report = AuditReport {
        violations: vec![],
        max_rtt: SimDuration::from_millis(9),
        segments_ok: K,
    };
    let rounds: Vec<TimedRound> = (0..K)
        .map(|i| TimedRound {
            index: i as u64,
            segment: Bytes::from(vec![0x6cu8; payload / K]),
            rtt: SimDuration::from_millis(5),
        })
        .collect();
    let transcript = SignedTranscript {
        file_id: "bench-file".into(),
        nonce: [3u8; 32],
        position: GeoPoint::new(-27.47, 153.02),
        rounds,
        signature: Signature::from_bytes(&[0x42u8; 64]),
    }
    .canonical_bytes();
    EvidenceRecord {
        prover: "bench-prover".into(),
        epoch: 0,
        device_key: [7u8; 32],
        sla_location: GeoPoint::new(-27.47, 153.02),
        location_tolerance: Km(25.0),
        policy: TimingPolicy::paper(),
        request: AuditRequest {
            file_id: "bench-file".into(),
            n_segments: 4096,
            k: K as u32,
            nonce: [3u8; 32],
        },
        mac_ok: vec![true; K],
        report_bytes: Bytes::from(encode_report(&report)),
        transcript,
    }
}

/// Append throughput at realistic transcript sizes (a paper-parameter
/// k=20 transcript with ~100 B segments is ~2 KiB; a bulk-segment one
/// is ~64 KiB).
fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("ledger_append");
    for payload in [2 * 1024usize, 64 * 1024] {
        let rec = record(payload);
        group.throughput(Throughput::Bytes(payload as u64));
        group.bench_with_input(BenchmarkId::new("payload", payload), &rec, |b, rec| {
            let path = tmp("append");
            std::fs::remove_file(&path).ok();
            let mut w = LedgerWriter::create(&path, &tpa(), 0, 1).expect("create");
            b.iter(|| w.append(black_box(rec)).expect("append"));
            std::fs::remove_file(&path).ok();
        });
    }
    group.finish();
}

/// Builds a sealed ledger of `n` records with `payload`-byte
/// transcripts, returning its path.
fn sealed_ledger(n: usize, payload: usize, interval: u32) -> PathBuf {
    let path = tmp("sealed");
    std::fs::remove_file(&path).ok();
    let mut w = LedgerWriter::create(&path, &tpa(), interval, 1).expect("create");
    let rec = record(payload);
    for _ in 0..n {
        w.append(&rec).expect("append");
    }
    w.finish().expect("finish");
    path
}

/// Full offline re-verification of a sealed 256-record ledger: read +
/// chain + checkpoints. (Verdict replay is skipped here because the
/// synthetic transcript is not signature-valid; end-to-end replay cost
/// is dominated by the same SHA/Schnorr work measured below.)
fn bench_reverify(c: &mut Criterion) {
    let mut group = c.benchmark_group("ledger_reverify");
    group.sample_size(10);
    let (n, payload) = (256usize, 2 * 1024usize);
    let path = sealed_ledger(n, payload, 64);
    let total = std::fs::metadata(&path).expect("stat").len();
    group.throughput(Throughput::Bytes(total));
    group.bench_function(BenchmarkId::new("read_and_chain", n), |b| {
        b.iter(|| {
            let ledger = Ledger::read(black_box(&path)).expect("read");
            black_box(ledger.head());
            black_box(ledger.evidence_count());
        });
    });
    std::fs::remove_file(&path).ok();
    group.finish();
}

/// Genuine end-to-end replay over a real audited deployment's ledger:
/// chain + checkpoint signatures + transcript signatures + verdict
/// byte-comparison, per evidence record.
fn bench_replay_real_evidence(c: &mut Criterion) {
    use geoproof_core::deployment::DeploymentBuilder;
    use geoproof_geo::coords::places::BRISBANE;
    use geoproof_ledger::LedgerSink;
    use std::sync::Arc;

    let path = tmp("replay-real");
    std::fs::remove_file(&path).ok();
    let tpa = tpa();
    let sink = Arc::new(LedgerSink::create(&path, &tpa, 8, 1).expect("create"));
    let mut d = DeploymentBuilder::new(BRISBANE)
        .seed(5)
        .evidence_sink(sink.clone())
        .build();
    const AUDITS: usize = 16;
    for _ in 0..AUDITS {
        d.run_audit(10);
    }
    sink.finish().expect("finish");
    let ledger = Ledger::read(&path).expect("read");
    let tpa_pub = tpa.verifying_key();

    let mut group = c.benchmark_group("ledger_replay");
    group.sample_size(10);
    group.throughput(Throughput::Elements(AUDITS as u64));
    group.bench_function(BenchmarkId::new("verdicts", AUDITS), |b| {
        b.iter(|| replay(black_box(&ledger), &tpa_pub, None).expect("replay"));
    });
    group.finish();

    let mut group = c.benchmark_group("ledger_prove");
    group.sample_size(10);
    group.bench_function("build_and_verify", |b| {
        b.iter(|| {
            let proof = ledger.prove(black_box(7)).expect("prove");
            proof.verify(&tpa_pub).expect("verify")
        });
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(
    benches,
    bench_append,
    bench_reverify,
    bench_replay_real_evidence
);
criterion_main!(benches);
