//! Latency-model benchmarks: sampling cost of the HDD, LAN and WAN models
//! that every protocol simulation leans on.

use criterion::{criterion_group, criterion_main, Criterion};
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_net::lan::LanPath;
use geoproof_net::wan::{AccessKind, WanModel};
use geoproof_sim::time::Km;
use geoproof_storage::hdd::{HddModel, WD_2500JD};
use std::hint::black_box;

fn bench_hdd(c: &mut Criterion) {
    let det = HddModel::deterministic(WD_2500JD);
    let sto = HddModel::stochastic(WD_2500JD);
    let mut rng = ChaChaRng::from_u64_seed(1);
    c.bench_function("hdd_lookup_deterministic", |b| {
        b.iter(|| det.sample_lookup(black_box(512), &mut rng));
    });
    c.bench_function("hdd_lookup_stochastic", |b| {
        b.iter(|| sto.sample_lookup(black_box(512), &mut rng));
    });
}

fn bench_lan(c: &mut Criterion) {
    let path = LanPath::adjacent();
    let mut rng = ChaChaRng::from_u64_seed(2);
    c.bench_function("lan_rtt_sample", |b| {
        b.iter(|| path.rtt(black_box(64), black_box(83), &mut rng));
    });
}

fn bench_wan(c: &mut Criterion) {
    let wan = WanModel::calibrated(AccessKind::Adsl2);
    let mut rng = ChaChaRng::from_u64_seed(3);
    c.bench_function("wan_rtt_sample_3605km", |b| {
        b.iter(|| wan.rtt(black_box(Km(3605.0)), &mut rng));
    });
    c.bench_function("wan_mean_rtt", |b| {
        b.iter(|| wan.mean_rtt(black_box(Km(3605.0))));
    });
}

criterion_group!(benches, bench_hdd, bench_lan, bench_wan);
criterion_main!(benches);
