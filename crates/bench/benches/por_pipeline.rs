//! POR pipeline benchmarks: the owner's setup cost (five-step encode), the
//! extractor, and per-segment tag verification — the TPA's inner loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_por::encode::PorEncoder;
use geoproof_por::keys::PorKeys;
use geoproof_por::params::PorParams;
use std::hint::black_box;

fn data(len: usize) -> Vec<u8> {
    let mut rng = ChaChaRng::from_u64_seed(3);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

fn bench_encode(c: &mut Criterion) {
    let encoder = PorEncoder::new(PorParams::paper());
    let keys = PorKeys::derive(b"bench-master", "bench-file");
    let mut g = c.benchmark_group("por_encode_paper_params");
    g.sample_size(10);
    for size in [64 * 1024usize, 256 * 1024] {
        let d = data(size);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &d, |b, d| {
            b.iter(|| encoder.encode(black_box(d), &keys, "bench-file"));
        });
    }
    g.finish();
}

fn bench_extract(c: &mut Criterion) {
    let encoder = PorEncoder::new(PorParams::paper());
    let keys = PorKeys::derive(b"bench-master", "bench-file");
    let d = data(64 * 1024);
    let tagged = encoder.encode(&d, &keys, "bench-file");
    let mut g = c.benchmark_group("por_extract_paper_params");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(d.len() as u64));
    g.bench_function("clean_64KiB", |b| {
        b.iter(|| {
            encoder
                .extract(black_box(&tagged.segments), &keys, &tagged.metadata)
                .unwrap()
        });
    });
    let mut corrupted = tagged.clone();
    corrupted.segments[3][0] ^= 0xff;
    corrupted.segments[11][7] ^= 0xff;
    g.bench_function("with_2_corrupt_segments_64KiB", |b| {
        b.iter(|| {
            encoder
                .extract(black_box(&corrupted.segments), &keys, &corrupted.metadata)
                .unwrap()
        });
    });
    g.finish();
}

fn bench_verify_segment(c: &mut Criterion) {
    let encoder = PorEncoder::new(PorParams::paper());
    let keys = PorKeys::derive(b"bench-master", "bench-file");
    let tagged = encoder.encode(&data(64 * 1024), &keys, "bench-file");
    c.bench_function("por_verify_segment", |b| {
        b.iter(|| {
            encoder.verify_segment(
                black_box(keys.mac_key()),
                "bench-file",
                0,
                black_box(&tagged.segments[0]),
            )
        });
    });
    // The TPA verifies k = 1000 tags per audit in the paper's example.
    c.bench_function("por_verify_1000_segments", |b| {
        b.iter(|| {
            let mut ok = 0u32;
            for i in 0..1000u64 {
                let idx = (i as usize) % tagged.segments.len();
                if encoder.verify_segment(
                    keys.mac_key(),
                    "bench-file",
                    idx as u64,
                    &tagged.segments[idx],
                ) {
                    ok += 1;
                }
            }
            ok
        });
    });
}

criterion_group!(benches, bench_encode, bench_extract, bench_verify_segment);
criterion_main!(benches);
