//! Micro-benchmarks for the from-scratch crypto substrate: the per-audit
//! cost of GeoProof is dominated by MAC verification and the transcript
//! signature, so these underpin the protocol-level numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geoproof_crypto::aes::{Aes128, Aes128Ctr};
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_crypto::hmac::{HmacSha256, TruncatedMac};
use geoproof_crypto::prp::DomainPrp;
use geoproof_crypto::schnorr::SigningKey;
use geoproof_crypto::sha256::Sha256;
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| Sha256::digest(black_box(d)));
        });
    }
    g.finish();
}

fn bench_hmac_segment_tag(c: &mut Criterion) {
    // An 83-byte segment, as the paper's (v = 5, 20-bit-tag) layout.
    let key = [7u8; 32];
    let segment = vec![0x5au8; 83];
    let mac = TruncatedMac::new(20);
    c.bench_function("hmac/tag_83B_segment", |b| {
        b.iter(|| mac.mac(black_box(&key), black_box(&segment)));
    });
    let tag = mac.mac(&key, &segment);
    c.bench_function("hmac/verify_83B_segment", |b| {
        b.iter(|| mac.verify(black_box(&key), black_box(&segment), black_box(&tag)));
    });
    c.bench_function("hmac/full_sha256", |b| {
        b.iter(|| HmacSha256::mac(black_box(&key), black_box(&segment)));
    });
}

fn bench_aes(c: &mut Criterion) {
    let key = [1u8; 16];
    let cipher = Aes128::new(&key);
    let block = [0u8; 16];
    c.bench_function("aes128/encrypt_block", |b| {
        b.iter(|| cipher.encrypt_block(black_box(&block)));
    });
    let ctr = Aes128Ctr::new(&key, *b"benchnon");
    let mut buf = vec![0u8; 4096];
    let mut g = c.benchmark_group("aes128_ctr");
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("stream_4KiB", |b| {
        b.iter(|| ctr.apply_keystream(black_box(&mut buf)));
    });
    g.finish();
}

fn bench_prp(c: &mut Criterion) {
    // Domain size from the paper's 2 GiB example.
    let prp = DomainPrp::new(&[9u8; 32], 153_008_209);
    c.bench_function("prp/permute_paper_domain", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 153_008_209;
            prp.permute(black_box(i))
        });
    });
}

fn bench_schnorr(c: &mut Criterion) {
    let mut rng = ChaChaRng::from_u64_seed(5);
    let sk = SigningKey::generate(&mut rng);
    // A transcript-sized message: 20 rounds × ~100 bytes.
    let msg = vec![0x42u8; 2000];
    c.bench_function("schnorr/sign_transcript", |b| {
        b.iter(|| sk.sign(black_box(&msg), &mut rng));
    });
    let sig = sk.sign(&msg, &mut rng);
    let vk = sk.verifying_key();
    c.bench_function("schnorr/verify_transcript", |b| {
        b.iter(|| vk.verify(black_box(&msg), black_box(&sig)));
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_hmac_segment_tag,
    bench_aes,
    bench_prp,
    bench_schnorr
);
criterion_main!(benches);
