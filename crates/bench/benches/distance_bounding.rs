//! Distance-bounding protocol benchmarks: session initialisation and the
//! full n-round timed phase for all three protocols, plus the Monte-Carlo
//! attack estimators used by experiments F2/F3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_crypto::schnorr::SigningKey;
use geoproof_distbound::brands_chaum::BcProver;
use geoproof_distbound::hancke_kuhn::HkSession;
use geoproof_distbound::reid::ReidSession;
use geoproof_distbound::rounds::{ChannelModel, Scenario};
use geoproof_sim::time::Km;
use std::hint::black_box;

fn bench_initialise(c: &mut Criterion) {
    let mut g = c.benchmark_group("db_initialise");
    for n in [32usize, 64, 128] {
        g.bench_with_input(BenchmarkId::new("hancke_kuhn", n), &n, |b, &n| {
            b.iter(|| HkSession::initialise(b"secret", b"nv", b"np", black_box(n)));
        });
        g.bench_with_input(BenchmarkId::new("reid", n), &n, |b, &n| {
            b.iter(|| {
                ReidSession::initialise(&[7u8; 32], b"idv", b"idp", b"nv", b"np", black_box(n))
            });
        });
    }
    g.finish();
}

fn bench_run_protocol(c: &mut Criterion) {
    let channel = ChannelModel::default();
    let scenario = Scenario::Honest { distance: Km(0.05) };
    let mut g = c.benchmark_group("db_run_64_rounds");
    let hk = HkSession::initialise(b"secret", b"nv", b"np", 64);
    g.bench_function("hancke_kuhn", |b| {
        let mut rng = ChaChaRng::from_u64_seed(1);
        b.iter(|| hk.run(black_box(scenario), &channel, &mut rng));
    });
    let reid = ReidSession::initialise(&[7u8; 32], b"idv", b"idp", b"nv", b"np", 64);
    g.bench_function("reid", |b| {
        let mut rng = ChaChaRng::from_u64_seed(2);
        b.iter(|| reid.run(black_box(scenario), &channel, &mut rng));
    });
    let mut rng = ChaChaRng::from_u64_seed(3);
    let sk = SigningKey::generate(&mut rng);
    g.bench_function("brands_chaum_with_commit_and_sign", |b| {
        b.iter(|| {
            let (p, commit) = BcProver::new(sk.clone(), 64, &mut rng);
            let t = p.run(scenario, &channel, &mut rng);
            let open = p.open(&t, &mut rng);
            black_box((commit, open))
        });
    });
    g.finish();
}

fn bench_verify(c: &mut Criterion) {
    let channel = ChannelModel::default();
    let hk = HkSession::initialise(b"secret", b"nv", b"np", 64);
    let mut rng = ChaChaRng::from_u64_seed(4);
    let t = hk.run(Scenario::Honest { distance: Km(0.05) }, &channel, &mut rng);
    let max = channel.max_rtt_for(Km(0.1));
    c.bench_function("db_verify_hk_64_rounds", |b| {
        b.iter(|| hk.verify(black_box(&t), max));
    });
}

criterion_group!(benches, bench_initialise, bench_run_protocol, bench_verify);
criterion_main!(benches);
