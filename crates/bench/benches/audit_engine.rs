//! Concurrent audit engine benchmarks: audits/sec at 1, 16 and 128
//! concurrent sessions on the work-stealing pool, plus the batched vs
//! sequential verification passes in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geoproof_core::engine::{AuditEngine, EngineConfig, ProverId, ProverSpec};
use geoproof_core::provider::{LocalProvider, SegmentProvider};
use geoproof_core::verifier::VerifierDevice;
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_crypto::schnorr::SigningKey;
use geoproof_geo::coords::places::BRISBANE;
use geoproof_geo::gps::GpsReceiver;
use geoproof_net::lan::LanPath;
use geoproof_por::encode::{PorEncoder, TaggedFile};
use geoproof_por::keys::PorKeys;
use geoproof_por::params::PorParams;
use geoproof_sim::clock::SimClock;
use geoproof_storage::hdd::{HddModel, WD_2500JD};
use geoproof_storage::server::{FileId, StorageServer};
use std::hint::black_box;

const K: u32 = 8;

struct Rig {
    tagged: TaggedFile,
    keys: PorKeys,
    device_keys: Vec<SigningKey>,
}

impl Rig {
    /// One-time expensive setup: encode the file, generate device keys.
    fn new(max_provers: usize) -> Self {
        let encoder = PorEncoder::new(PorParams::test_small());
        let keys = PorKeys::derive(b"bench-master", "bf");
        let data: Vec<u8> = (0..6000u32).map(|i| (i % 251) as u8).collect();
        let tagged = encoder.encode(&data, &keys, "bf");
        let mut rng = ChaChaRng::from_u64_seed(1);
        let device_keys = (0..max_provers)
            .map(|_| SigningKey::generate(&mut rng))
            .collect();
        Rig {
            tagged,
            keys,
            device_keys,
        }
    }

    /// Cheap per-iteration construction of an engine plus an n-prover
    /// fleet (honest local providers on the paper's reference disk).
    #[allow(clippy::type_complexity)]
    fn fleet(
        &self,
        n: usize,
        workers: usize,
    ) -> (
        AuditEngine,
        Vec<(ProverId, VerifierDevice, Box<dyn SegmentProvider + Send>)>,
    ) {
        let engine = AuditEngine::new(
            "bf",
            self.tagged.metadata.segments,
            PorEncoder::new(PorParams::test_small()),
            self.keys.auditor_view(),
            EngineConfig {
                k: K,
                workers,
                ..EngineConfig::default()
            },
        );
        let fleet = (0..n)
            .map(|i| {
                let id = ProverId(format!("prover-{i:04}"));
                let sk = self.device_keys[i].clone();
                engine.register_prover(
                    id.clone(),
                    ProverSpec {
                        device_key: sk.verifying_key(),
                        sla_location: BRISBANE,
                    },
                );
                let device =
                    VerifierDevice::new(sk, GpsReceiver::new(BRISBANE), SimClock::new(), i as u64);
                let mut storage = StorageServer::new(HddModel::deterministic(WD_2500JD), i as u64);
                storage.put_file(FileId::from("bf"), self.tagged.segments.clone());
                let provider: Box<dyn SegmentProvider + Send> = Box::new(LocalProvider::new(
                    storage,
                    LanPath::adjacent(),
                    i as u64 + 9,
                ));
                (id, device, provider)
            })
            .collect();
        (engine, fleet)
    }
}

fn bench_concurrent_sessions(c: &mut Criterion) {
    let rig = Rig::new(128);
    let mut g = c.benchmark_group("audit_engine");
    g.sample_size(10);
    for n in [1usize, 16, 128] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("sessions", n), &n, |b, &n| {
            b.iter(|| {
                let (engine, fleet) = rig.fleet(n, 4);
                let (reports, _) = engine.run_sessions(fleet);
                assert_eq!(reports.len(), n);
                black_box(reports)
            });
        });
    }
    g.finish();
}

fn bench_verification_passes(c: &mut Criterion) {
    let rig = Rig::new(128);
    let (engine, fleet) = rig.fleet(128, 4);
    engine.run_sessions(fleet); // park 128 collected sessions
    let mut g = c.benchmark_group("verify_128_sessions");
    g.sample_size(10);
    g.throughput(Throughput::Elements(128));
    g.bench_function("sequential", |b| {
        b.iter(|| black_box(engine.verify_collected_sequential()));
    });
    g.bench_function("batched", |b| {
        b.iter(|| black_box(engine.verify_collected_batched()));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_concurrent_sessions,
    bench_verification_passes
);
criterion_main!(benches);
