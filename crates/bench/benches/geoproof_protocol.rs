//! Protocol-level benchmarks: a full audit round trip (request → timed
//! rounds → signed transcript → four-step verification) at several
//! challenge counts, and the TPA verification step alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geoproof_core::deployment::{DeploymentBuilder, ProviderBehaviour};
use geoproof_geo::coords::places::BRISBANE;
use geoproof_net::wan::AccessKind;
use geoproof_sim::time::Km;
use geoproof_storage::hdd::{IBM_36Z15, WD_2500JD};
use std::hint::black_box;

fn bench_full_audit(c: &mut Criterion) {
    let mut g = c.benchmark_group("audit_roundtrip");
    g.sample_size(20);
    for k in [10u32, 50, 200] {
        g.bench_with_input(BenchmarkId::new("honest", k), &k, |b, &k| {
            let mut d = DeploymentBuilder::new(BRISBANE).seed(1).build();
            b.iter(|| black_box(d.run_audit(k)));
        });
    }
    g.bench_function("relay_720km_k50", |b| {
        let mut d = DeploymentBuilder::new(BRISBANE)
            .behaviour(ProviderBehaviour::Relay {
                remote_disk: IBM_36Z15,
                distance: Km(720.0),
                access: AccessKind::DataCentre,
            })
            .seed(2)
            .build();
        b.iter(|| black_box(d.run_audit(50)));
    });
    g.bench_function("corrupting_k50", |b| {
        let mut d = DeploymentBuilder::new(BRISBANE)
            .behaviour(ProviderBehaviour::Corrupting {
                disk: WD_2500JD,
                fraction: 0.05,
            })
            .seed(3)
            .build();
        b.iter(|| black_box(d.run_audit(50)));
    });
    g.finish();
}

fn bench_verify_only(c: &mut Criterion) {
    let mut d = DeploymentBuilder::new(BRISBANE).seed(4).build();
    let req = d.auditor.issue_request(50);
    let transcript = d.verifier.run_audit(&req, d.provider.as_mut());
    c.bench_function("tpa_verify_k50", |b| {
        b.iter(|| black_box(d.auditor.verify(&req, &transcript)));
    });
}

criterion_group!(benches, bench_full_audit, bench_verify_only);
criterion_main!(benches);
