//! Reed–Solomon codec benchmarks at the paper's (255, 223, 32)
//! configuration: chunk encode, clean decode, and decode under the
//! worst-case correctable error load (t = 16 block errors).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use geoproof_ecc::block_code::{Block, BlockCode};
use geoproof_ecc::rs::RsCode;
use std::hint::black_box;

fn chunk() -> Vec<Block> {
    (0..223)
        .map(|i| {
            let mut b = [0u8; 16];
            for (j, byte) in b.iter_mut().enumerate() {
                *byte = (i as u8).wrapping_mul(13).wrapping_add(j as u8);
            }
            b
        })
        .collect()
}

fn bench_block_code(c: &mut Criterion) {
    let code = BlockCode::paper_code();
    let data = chunk();
    let mut g = c.benchmark_group("rs_255_223_blocks");
    g.throughput(Throughput::Bytes((223 * 16) as u64));
    g.bench_function("encode_chunk", |b| {
        b.iter(|| code.encode_chunk(black_box(&data)));
    });
    let encoded = code.encode_chunk(&data);
    g.bench_function("decode_clean", |b| {
        b.iter(|| code.decode_chunk(black_box(&encoded), &[]).unwrap());
    });
    let mut corrupted = encoded.clone();
    for i in 0..16 {
        corrupted[i * 15] = [0xee; 16];
    }
    g.bench_function("decode_16_block_errors", |b| {
        b.iter(|| code.decode_chunk(black_box(&corrupted), &[]).unwrap());
    });
    let erased: Vec<usize> = (0..32).map(|i| i * 7).collect();
    let mut with_erasures = encoded.clone();
    for &e in &erased {
        with_erasures[e] = [0u8; 16];
    }
    g.bench_function("decode_32_block_erasures", |b| {
        b.iter(|| {
            code.decode_chunk(black_box(&with_erasures), black_box(&erased))
                .unwrap()
        });
    });
    g.finish();
}

fn bench_symbol_code(c: &mut Criterion) {
    let code = RsCode::paper_code();
    let data: Vec<u8> = (0..223).map(|i| i as u8).collect();
    let mut g = c.benchmark_group("rs_255_223_symbols");
    g.throughput(Throughput::Bytes(223));
    g.bench_function("encode", |b| {
        b.iter(|| code.encode(black_box(&data)));
    });
    let cw = code.encode(&data);
    g.bench_function("decode_clean", |b| {
        b.iter(|| code.decode(black_box(&cw), &[]).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_block_code, bench_symbol_code);
criterion_main!(benches);
