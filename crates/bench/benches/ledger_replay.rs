//! Ledger-scale replay throughput: batched Schnorr settlement vs the
//! one-signature-at-a-time reference walk, over a ledger of genuinely
//! signed evidence records — and a committed JSON snapshot
//! (`BENCH_ledger_replay.json`) so CI tracks the number per commit.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use geoproof_bench::{BenchSnapshot, Json};
use geoproof_core::auditor::VerifyChecks;
use geoproof_core::evidence::encode_report;
use geoproof_core::messages::{AuditRequest, SignedTranscript, TimedRound};
use geoproof_core::policy::TimingPolicy;
use geoproof_crypto::chacha::ChaChaRng;
use geoproof_crypto::schnorr::SigningKey;
use geoproof_geo::coords::GeoPoint;
use geoproof_ledger::{replay, replay_sequential, EvidenceRecord, Ledger, LedgerWriter};
use geoproof_sim::time::{Km, SimDuration};
use std::hint::black_box;
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gp-replay-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tempdir");
    dir.join(format!("{tag}.log"))
}

const K: usize = 8;
const N_SEGMENTS: u64 = 4096;

/// One evidence record with a *genuinely signed* transcript and a
/// report re-derived through the exact live check sequence, so replay
/// does full-price signature verification and the verdict byte-compare
/// passes — the same work a production re-audit pays.
fn signed_record(i: u64, sk: &SigningKey, rng: &mut ChaChaRng) -> EvidenceRecord {
    let position = GeoPoint::new(-27.47, 153.02);
    let mut nonce = [0u8; 32];
    nonce[..8].copy_from_slice(&i.to_be_bytes());
    let rounds: Vec<TimedRound> = (0..K as u64)
        .map(|j| TimedRound {
            index: (i * 31 + j * 7) % N_SEGMENTS,
            segment: Bytes::from(vec![0x6cu8; 64]),
            rtt: SimDuration::from_millis(5),
        })
        .collect();
    let bytes = SignedTranscript::signing_bytes("bench-file", &nonce, &position, &rounds);
    let transcript = SignedTranscript {
        file_id: "bench-file".into(),
        nonce,
        position,
        rounds,
        signature: sk.sign(&bytes, rng),
    };
    let request = AuditRequest {
        file_id: "bench-file".into(),
        n_segments: N_SEGMENTS,
        k: K as u32,
        nonce,
    };
    let policy = TimingPolicy::paper();
    let device_key = sk.verifying_key();
    let checks = VerifyChecks {
        file_id: &request.file_id,
        n_segments: N_SEGMENTS,
        device_key: &device_key,
        sla_location: position,
        location_tolerance: Km(25.0),
        policy: &policy,
    };
    let report = checks.verify_transcript(&request, &transcript, |_, _| true);
    EvidenceRecord {
        prover: format!("prover-{:03}", i % 16),
        epoch: i / 16,
        device_key: device_key.to_bytes(),
        sla_location: position,
        location_tolerance: Km(25.0),
        policy,
        request,
        mac_ok: vec![true; K],
        report_bytes: Bytes::from(encode_report(&report)),
        transcript: transcript.canonical_bytes(),
    }
}

/// A sealed ledger of `n` signed records from 16 devices (key reuse is
/// the realistic shape — per-key aggregation in the batch equation sees
/// repeated keys).
fn signed_ledger(n: u64, interval: u32) -> (PathBuf, SigningKey) {
    let tpa = SigningKey::generate(&mut ChaChaRng::from_u64_seed(0x1ed6e7));
    let mut rng = ChaChaRng::from_u64_seed(0xd00d);
    let devices: Vec<SigningKey> = (0..16).map(|_| SigningKey::generate(&mut rng)).collect();
    let path = tmp(&format!("signed-{n}"));
    std::fs::remove_file(&path).ok();
    let mut w = LedgerWriter::create(&path, &tpa, interval, 1).expect("create");
    for i in 0..n {
        let rec = signed_record(i, &devices[(i % 16) as usize], &mut rng);
        w.append(&rec).expect("append");
    }
    w.finish().expect("finish");
    (path, tpa)
}

fn bench_replay_batched_vs_sequential(c: &mut Criterion) {
    let n = 512u64;
    let (path, tpa) = signed_ledger(n, 128);
    let ledger = Ledger::read(&path).expect("read");
    let tpa_pub = tpa.verifying_key();

    let mut group = c.benchmark_group("ledger_replay_scale");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n));
    group.bench_function(BenchmarkId::new("batched", n), |b| {
        b.iter(|| replay(black_box(&ledger), &tpa_pub, None).expect("replay"));
    });
    group.bench_function(BenchmarkId::new("sequential", n), |b| {
        b.iter(|| replay_sequential(black_box(&ledger), &tpa_pub, None).expect("replay"));
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

/// Times full-ledger replay over 4.7k signed verdicts — batched and
/// sequential, in that order — checks the two outcomes are identical,
/// and commits the numbers to `BENCH_ledger_replay.json` at the repo
/// root against the PR-5 pin of 4.7k verdicts/s (per-record Schnorr,
/// per-checkpoint Merkle rebuild).
fn replay_snapshot_json(_c: &mut Criterion) {
    const BASELINE_VERDICTS_S: f64 = 4_700.0; // PR-5 `ledger_replay` pin, same host class
    let n = 4_700u64;
    let (path, tpa) = signed_ledger(n, 512);
    let ledger = Ledger::read(&path).expect("read");
    let tpa_pub = tpa.verifying_key();

    // Warm once, then best-of-three: snapshotting capability, not noise.
    let time_best = |f: &dyn Fn() -> geoproof_ledger::ReplayOutcome, passes: usize| {
        let _ = f();
        (0..passes)
            .map(|_| {
                let start = std::time::Instant::now();
                black_box(f());
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let batched_secs = time_best(&|| replay(&ledger, &tpa_pub, None).expect("replay"), 3);
    let sequential_secs = time_best(
        &|| replay_sequential(&ledger, &tpa_pub, None).expect("replay"),
        2,
    );

    // The contract the speedup is worthless without: identical outcomes.
    let batched = replay(&ledger, &tpa_pub, None).expect("replay");
    let sequential = replay_sequential(&ledger, &tpa_pub, None).expect("replay");
    assert_eq!(batched, sequential, "batched replay must match sequential");
    assert_eq!(batched.evidence, n);

    let batched_rate = n as f64 / batched_secs;
    let sequential_rate = n as f64 / sequential_secs;
    let out = BenchSnapshot::new(
        "ledger_replay",
        "ledger_replay",
        &format!("k={K} rounds, 64 B segments, 16 device keys"),
    )
    .context("records", Json::U64(n))
    .context("checkpoint_interval", Json::U64(512))
    .baseline(
        "baseline_verdicts_per_s",
        Json::F64(BASELINE_VERDICTS_S, 0),
        "PR-5 replay pin: per-record Schnorr verify, per-checkpoint Merkle rebuild",
    )
    .run(vec![
        ("mode".to_owned(), Json::Str("batched".to_owned())),
        ("verdicts_per_s".to_owned(), Json::F64(batched_rate, 0)),
        (
            "speedup_vs_baseline".to_owned(),
            Json::F64(batched_rate / BASELINE_VERDICTS_S, 1),
        ),
    ])
    .run(vec![
        ("mode".to_owned(), Json::Str("sequential".to_owned())),
        ("verdicts_per_s".to_owned(), Json::F64(sequential_rate, 0)),
        (
            "speedup_vs_baseline".to_owned(),
            Json::F64(sequential_rate / BASELINE_VERDICTS_S, 1),
        ),
    ])
    .result(
        "speedup_batched_vs_sequential",
        Json::F64(batched_rate / sequential_rate, 1),
    )
    .result("outcomes_identical", Json::Bool(true))
    .write();
    println!(
        "replay snapshot ({n} verdicts): batched {batched_rate:.0}/s, \
         sequential {sequential_rate:.0}/s → {}",
        out.display()
    );
    std::fs::remove_file(&path).ok();
    assert!(
        batched_rate / BASELINE_VERDICTS_S >= 10.0,
        "batched replay {batched_rate:.0} verdicts/s is below 10x the \
         {BASELINE_VERDICTS_S} verdicts/s baseline"
    );
}

criterion_group!(
    benches,
    bench_replay_batched_vs_sequential,
    replay_snapshot_json
);
criterion_main!(benches);
